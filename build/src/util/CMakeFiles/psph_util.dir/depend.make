# Empty dependencies file for psph_util.
# This may be replaced when dependencies are built.
