file(REMOVE_RECURSE
  "CMakeFiles/psph_util.dir/cli.cpp.o"
  "CMakeFiles/psph_util.dir/cli.cpp.o.d"
  "CMakeFiles/psph_util.dir/logging.cpp.o"
  "CMakeFiles/psph_util.dir/logging.cpp.o.d"
  "CMakeFiles/psph_util.dir/random.cpp.o"
  "CMakeFiles/psph_util.dir/random.cpp.o.d"
  "CMakeFiles/psph_util.dir/timer.cpp.o"
  "CMakeFiles/psph_util.dir/timer.cpp.o.d"
  "libpsph_util.a"
  "libpsph_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psph_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
