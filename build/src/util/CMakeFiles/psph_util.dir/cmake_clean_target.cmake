file(REMOVE_RECURSE
  "libpsph_util.a"
)
