# Empty dependencies file for psph_topology.
# This may be replaced when dependencies are built.
