file(REMOVE_RECURSE
  "libpsph_topology.a"
)
