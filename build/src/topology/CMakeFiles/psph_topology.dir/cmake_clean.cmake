file(REMOVE_RECURSE
  "CMakeFiles/psph_topology.dir/collapse.cpp.o"
  "CMakeFiles/psph_topology.dir/collapse.cpp.o.d"
  "CMakeFiles/psph_topology.dir/complex.cpp.o"
  "CMakeFiles/psph_topology.dir/complex.cpp.o.d"
  "CMakeFiles/psph_topology.dir/components.cpp.o"
  "CMakeFiles/psph_topology.dir/components.cpp.o.d"
  "CMakeFiles/psph_topology.dir/export.cpp.o"
  "CMakeFiles/psph_topology.dir/export.cpp.o.d"
  "CMakeFiles/psph_topology.dir/homology.cpp.o"
  "CMakeFiles/psph_topology.dir/homology.cpp.o.d"
  "CMakeFiles/psph_topology.dir/isomorphism.cpp.o"
  "CMakeFiles/psph_topology.dir/isomorphism.cpp.o.d"
  "CMakeFiles/psph_topology.dir/mayer_vietoris.cpp.o"
  "CMakeFiles/psph_topology.dir/mayer_vietoris.cpp.o.d"
  "CMakeFiles/psph_topology.dir/operations.cpp.o"
  "CMakeFiles/psph_topology.dir/operations.cpp.o.d"
  "CMakeFiles/psph_topology.dir/simplex.cpp.o"
  "CMakeFiles/psph_topology.dir/simplex.cpp.o.d"
  "CMakeFiles/psph_topology.dir/subdivision.cpp.o"
  "CMakeFiles/psph_topology.dir/subdivision.cpp.o.d"
  "libpsph_topology.a"
  "libpsph_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psph_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
