
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/collapse.cpp" "src/topology/CMakeFiles/psph_topology.dir/collapse.cpp.o" "gcc" "src/topology/CMakeFiles/psph_topology.dir/collapse.cpp.o.d"
  "/root/repo/src/topology/complex.cpp" "src/topology/CMakeFiles/psph_topology.dir/complex.cpp.o" "gcc" "src/topology/CMakeFiles/psph_topology.dir/complex.cpp.o.d"
  "/root/repo/src/topology/components.cpp" "src/topology/CMakeFiles/psph_topology.dir/components.cpp.o" "gcc" "src/topology/CMakeFiles/psph_topology.dir/components.cpp.o.d"
  "/root/repo/src/topology/export.cpp" "src/topology/CMakeFiles/psph_topology.dir/export.cpp.o" "gcc" "src/topology/CMakeFiles/psph_topology.dir/export.cpp.o.d"
  "/root/repo/src/topology/homology.cpp" "src/topology/CMakeFiles/psph_topology.dir/homology.cpp.o" "gcc" "src/topology/CMakeFiles/psph_topology.dir/homology.cpp.o.d"
  "/root/repo/src/topology/isomorphism.cpp" "src/topology/CMakeFiles/psph_topology.dir/isomorphism.cpp.o" "gcc" "src/topology/CMakeFiles/psph_topology.dir/isomorphism.cpp.o.d"
  "/root/repo/src/topology/mayer_vietoris.cpp" "src/topology/CMakeFiles/psph_topology.dir/mayer_vietoris.cpp.o" "gcc" "src/topology/CMakeFiles/psph_topology.dir/mayer_vietoris.cpp.o.d"
  "/root/repo/src/topology/operations.cpp" "src/topology/CMakeFiles/psph_topology.dir/operations.cpp.o" "gcc" "src/topology/CMakeFiles/psph_topology.dir/operations.cpp.o.d"
  "/root/repo/src/topology/simplex.cpp" "src/topology/CMakeFiles/psph_topology.dir/simplex.cpp.o" "gcc" "src/topology/CMakeFiles/psph_topology.dir/simplex.cpp.o.d"
  "/root/repo/src/topology/subdivision.cpp" "src/topology/CMakeFiles/psph_topology.dir/subdivision.cpp.o" "gcc" "src/topology/CMakeFiles/psph_topology.dir/subdivision.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/psph_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
