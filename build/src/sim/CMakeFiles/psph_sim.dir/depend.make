# Empty dependencies file for psph_sim.
# This may be replaced when dependencies are built.
