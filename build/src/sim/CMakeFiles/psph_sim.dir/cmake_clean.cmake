file(REMOVE_RECURSE
  "CMakeFiles/psph_sim.dir/adversary.cpp.o"
  "CMakeFiles/psph_sim.dir/adversary.cpp.o.d"
  "CMakeFiles/psph_sim.dir/async_executor.cpp.o"
  "CMakeFiles/psph_sim.dir/async_executor.cpp.o.d"
  "CMakeFiles/psph_sim.dir/bridge.cpp.o"
  "CMakeFiles/psph_sim.dir/bridge.cpp.o.d"
  "CMakeFiles/psph_sim.dir/semisync_executor.cpp.o"
  "CMakeFiles/psph_sim.dir/semisync_executor.cpp.o.d"
  "CMakeFiles/psph_sim.dir/semisync_round_enum.cpp.o"
  "CMakeFiles/psph_sim.dir/semisync_round_enum.cpp.o.d"
  "CMakeFiles/psph_sim.dir/sync_executor.cpp.o"
  "CMakeFiles/psph_sim.dir/sync_executor.cpp.o.d"
  "CMakeFiles/psph_sim.dir/trace.cpp.o"
  "CMakeFiles/psph_sim.dir/trace.cpp.o.d"
  "libpsph_sim.a"
  "libpsph_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psph_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
