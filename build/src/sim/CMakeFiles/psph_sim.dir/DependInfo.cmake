
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/adversary.cpp" "src/sim/CMakeFiles/psph_sim.dir/adversary.cpp.o" "gcc" "src/sim/CMakeFiles/psph_sim.dir/adversary.cpp.o.d"
  "/root/repo/src/sim/async_executor.cpp" "src/sim/CMakeFiles/psph_sim.dir/async_executor.cpp.o" "gcc" "src/sim/CMakeFiles/psph_sim.dir/async_executor.cpp.o.d"
  "/root/repo/src/sim/bridge.cpp" "src/sim/CMakeFiles/psph_sim.dir/bridge.cpp.o" "gcc" "src/sim/CMakeFiles/psph_sim.dir/bridge.cpp.o.d"
  "/root/repo/src/sim/semisync_executor.cpp" "src/sim/CMakeFiles/psph_sim.dir/semisync_executor.cpp.o" "gcc" "src/sim/CMakeFiles/psph_sim.dir/semisync_executor.cpp.o.d"
  "/root/repo/src/sim/semisync_round_enum.cpp" "src/sim/CMakeFiles/psph_sim.dir/semisync_round_enum.cpp.o" "gcc" "src/sim/CMakeFiles/psph_sim.dir/semisync_round_enum.cpp.o.d"
  "/root/repo/src/sim/sync_executor.cpp" "src/sim/CMakeFiles/psph_sim.dir/sync_executor.cpp.o" "gcc" "src/sim/CMakeFiles/psph_sim.dir/sync_executor.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/psph_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/psph_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/psph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/psph_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psph_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/psph_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
