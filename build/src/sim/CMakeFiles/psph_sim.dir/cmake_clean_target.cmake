file(REMOVE_RECURSE
  "libpsph_sim.a"
)
