
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/approx_agreement.cpp" "src/protocols/CMakeFiles/psph_protocols.dir/approx_agreement.cpp.o" "gcc" "src/protocols/CMakeFiles/psph_protocols.dir/approx_agreement.cpp.o.d"
  "/root/repo/src/protocols/async_kset.cpp" "src/protocols/CMakeFiles/psph_protocols.dir/async_kset.cpp.o" "gcc" "src/protocols/CMakeFiles/psph_protocols.dir/async_kset.cpp.o.d"
  "/root/repo/src/protocols/early_stopping.cpp" "src/protocols/CMakeFiles/psph_protocols.dir/early_stopping.cpp.o" "gcc" "src/protocols/CMakeFiles/psph_protocols.dir/early_stopping.cpp.o.d"
  "/root/repo/src/protocols/floodset.cpp" "src/protocols/CMakeFiles/psph_protocols.dir/floodset.cpp.o" "gcc" "src/protocols/CMakeFiles/psph_protocols.dir/floodset.cpp.o.d"
  "/root/repo/src/protocols/semisync_kset.cpp" "src/protocols/CMakeFiles/psph_protocols.dir/semisync_kset.cpp.o" "gcc" "src/protocols/CMakeFiles/psph_protocols.dir/semisync_kset.cpp.o.d"
  "/root/repo/src/protocols/synchronizer.cpp" "src/protocols/CMakeFiles/psph_protocols.dir/synchronizer.cpp.o" "gcc" "src/protocols/CMakeFiles/psph_protocols.dir/synchronizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/psph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/psph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psph_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/psph_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/psph_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
