file(REMOVE_RECURSE
  "CMakeFiles/psph_protocols.dir/approx_agreement.cpp.o"
  "CMakeFiles/psph_protocols.dir/approx_agreement.cpp.o.d"
  "CMakeFiles/psph_protocols.dir/async_kset.cpp.o"
  "CMakeFiles/psph_protocols.dir/async_kset.cpp.o.d"
  "CMakeFiles/psph_protocols.dir/early_stopping.cpp.o"
  "CMakeFiles/psph_protocols.dir/early_stopping.cpp.o.d"
  "CMakeFiles/psph_protocols.dir/floodset.cpp.o"
  "CMakeFiles/psph_protocols.dir/floodset.cpp.o.d"
  "CMakeFiles/psph_protocols.dir/semisync_kset.cpp.o"
  "CMakeFiles/psph_protocols.dir/semisync_kset.cpp.o.d"
  "CMakeFiles/psph_protocols.dir/synchronizer.cpp.o"
  "CMakeFiles/psph_protocols.dir/synchronizer.cpp.o.d"
  "libpsph_protocols.a"
  "libpsph_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psph_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
