file(REMOVE_RECURSE
  "libpsph_protocols.a"
)
