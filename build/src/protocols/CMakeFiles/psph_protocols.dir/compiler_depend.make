# Empty compiler generated dependencies file for psph_protocols.
# This may be replaced when dependencies are built.
