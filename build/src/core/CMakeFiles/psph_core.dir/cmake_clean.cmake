file(REMOVE_RECURSE
  "CMakeFiles/psph_core.dir/agreement.cpp.o"
  "CMakeFiles/psph_core.dir/agreement.cpp.o.d"
  "CMakeFiles/psph_core.dir/async_complex.cpp.o"
  "CMakeFiles/psph_core.dir/async_complex.cpp.o.d"
  "CMakeFiles/psph_core.dir/chains.cpp.o"
  "CMakeFiles/psph_core.dir/chains.cpp.o.d"
  "CMakeFiles/psph_core.dir/decision_search.cpp.o"
  "CMakeFiles/psph_core.dir/decision_search.cpp.o.d"
  "CMakeFiles/psph_core.dir/iis_complex.cpp.o"
  "CMakeFiles/psph_core.dir/iis_complex.cpp.o.d"
  "CMakeFiles/psph_core.dir/pseudosphere.cpp.o"
  "CMakeFiles/psph_core.dir/pseudosphere.cpp.o.d"
  "CMakeFiles/psph_core.dir/semisync_complex.cpp.o"
  "CMakeFiles/psph_core.dir/semisync_complex.cpp.o.d"
  "CMakeFiles/psph_core.dir/sperner.cpp.o"
  "CMakeFiles/psph_core.dir/sperner.cpp.o.d"
  "CMakeFiles/psph_core.dir/sync_complex.cpp.o"
  "CMakeFiles/psph_core.dir/sync_complex.cpp.o.d"
  "CMakeFiles/psph_core.dir/theorems.cpp.o"
  "CMakeFiles/psph_core.dir/theorems.cpp.o.d"
  "CMakeFiles/psph_core.dir/view.cpp.o"
  "CMakeFiles/psph_core.dir/view.cpp.o.d"
  "libpsph_core.a"
  "libpsph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
