
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agreement.cpp" "src/core/CMakeFiles/psph_core.dir/agreement.cpp.o" "gcc" "src/core/CMakeFiles/psph_core.dir/agreement.cpp.o.d"
  "/root/repo/src/core/async_complex.cpp" "src/core/CMakeFiles/psph_core.dir/async_complex.cpp.o" "gcc" "src/core/CMakeFiles/psph_core.dir/async_complex.cpp.o.d"
  "/root/repo/src/core/chains.cpp" "src/core/CMakeFiles/psph_core.dir/chains.cpp.o" "gcc" "src/core/CMakeFiles/psph_core.dir/chains.cpp.o.d"
  "/root/repo/src/core/decision_search.cpp" "src/core/CMakeFiles/psph_core.dir/decision_search.cpp.o" "gcc" "src/core/CMakeFiles/psph_core.dir/decision_search.cpp.o.d"
  "/root/repo/src/core/iis_complex.cpp" "src/core/CMakeFiles/psph_core.dir/iis_complex.cpp.o" "gcc" "src/core/CMakeFiles/psph_core.dir/iis_complex.cpp.o.d"
  "/root/repo/src/core/pseudosphere.cpp" "src/core/CMakeFiles/psph_core.dir/pseudosphere.cpp.o" "gcc" "src/core/CMakeFiles/psph_core.dir/pseudosphere.cpp.o.d"
  "/root/repo/src/core/semisync_complex.cpp" "src/core/CMakeFiles/psph_core.dir/semisync_complex.cpp.o" "gcc" "src/core/CMakeFiles/psph_core.dir/semisync_complex.cpp.o.d"
  "/root/repo/src/core/sperner.cpp" "src/core/CMakeFiles/psph_core.dir/sperner.cpp.o" "gcc" "src/core/CMakeFiles/psph_core.dir/sperner.cpp.o.d"
  "/root/repo/src/core/sync_complex.cpp" "src/core/CMakeFiles/psph_core.dir/sync_complex.cpp.o" "gcc" "src/core/CMakeFiles/psph_core.dir/sync_complex.cpp.o.d"
  "/root/repo/src/core/theorems.cpp" "src/core/CMakeFiles/psph_core.dir/theorems.cpp.o" "gcc" "src/core/CMakeFiles/psph_core.dir/theorems.cpp.o.d"
  "/root/repo/src/core/view.cpp" "src/core/CMakeFiles/psph_core.dir/view.cpp.o" "gcc" "src/core/CMakeFiles/psph_core.dir/view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/psph_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/psph_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
