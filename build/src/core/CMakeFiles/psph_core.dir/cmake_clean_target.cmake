file(REMOVE_RECURSE
  "libpsph_core.a"
)
