# Empty dependencies file for psph_core.
# This may be replaced when dependencies are built.
