# Empty dependencies file for psph_math.
# This may be replaced when dependencies are built.
