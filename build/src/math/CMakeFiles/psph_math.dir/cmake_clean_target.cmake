file(REMOVE_RECURSE
  "libpsph_math.a"
)
