file(REMOVE_RECURSE
  "CMakeFiles/psph_math.dir/bigint.cpp.o"
  "CMakeFiles/psph_math.dir/bigint.cpp.o.d"
  "CMakeFiles/psph_math.dir/combinatorics.cpp.o"
  "CMakeFiles/psph_math.dir/combinatorics.cpp.o.d"
  "CMakeFiles/psph_math.dir/matrix.cpp.o"
  "CMakeFiles/psph_math.dir/matrix.cpp.o.d"
  "CMakeFiles/psph_math.dir/smith.cpp.o"
  "CMakeFiles/psph_math.dir/smith.cpp.o.d"
  "libpsph_math.a"
  "libpsph_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psph_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
