
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/bigint.cpp" "src/math/CMakeFiles/psph_math.dir/bigint.cpp.o" "gcc" "src/math/CMakeFiles/psph_math.dir/bigint.cpp.o.d"
  "/root/repo/src/math/combinatorics.cpp" "src/math/CMakeFiles/psph_math.dir/combinatorics.cpp.o" "gcc" "src/math/CMakeFiles/psph_math.dir/combinatorics.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "src/math/CMakeFiles/psph_math.dir/matrix.cpp.o" "gcc" "src/math/CMakeFiles/psph_math.dir/matrix.cpp.o.d"
  "/root/repo/src/math/smith.cpp" "src/math/CMakeFiles/psph_math.dir/smith.cpp.o" "gcc" "src/math/CMakeFiles/psph_math.dir/smith.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/psph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
