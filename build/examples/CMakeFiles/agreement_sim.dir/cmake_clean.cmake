file(REMOVE_RECURSE
  "CMakeFiles/agreement_sim.dir/agreement_sim.cpp.o"
  "CMakeFiles/agreement_sim.dir/agreement_sim.cpp.o.d"
  "agreement_sim"
  "agreement_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agreement_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
