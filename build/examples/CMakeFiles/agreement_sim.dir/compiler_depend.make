# Empty compiler generated dependencies file for agreement_sim.
# This may be replaced when dependencies are built.
