file(REMOVE_RECURSE
  "CMakeFiles/sperner_demo.dir/sperner_demo.cpp.o"
  "CMakeFiles/sperner_demo.dir/sperner_demo.cpp.o.d"
  "sperner_demo"
  "sperner_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sperner_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
