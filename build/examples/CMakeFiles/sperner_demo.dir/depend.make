# Empty dependencies file for sperner_demo.
# This may be replaced when dependencies are built.
