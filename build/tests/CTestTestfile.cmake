# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/math_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/pseudosphere_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/protocols_test[1]_include.cmake")
include("/root/repo/build/tests/theorems_test[1]_include.cmake")
include("/root/repo/build/tests/components_test[1]_include.cmake")
include("/root/repo/build/tests/synchronizer_test[1]_include.cmake")
include("/root/repo/build/tests/agreement_test[1]_include.cmake")
include("/root/repo/build/tests/iis_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/mayer_vietoris_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/chains_test[1]_include.cmake")
include("/root/repo/build/tests/early_stopping_test[1]_include.cmake")
include("/root/repo/build/tests/approx_agreement_test[1]_include.cmake")
