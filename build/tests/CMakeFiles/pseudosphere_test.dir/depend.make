# Empty dependencies file for pseudosphere_test.
# This may be replaced when dependencies are built.
