file(REMOVE_RECURSE
  "CMakeFiles/pseudosphere_test.dir/pseudosphere_test.cpp.o"
  "CMakeFiles/pseudosphere_test.dir/pseudosphere_test.cpp.o.d"
  "pseudosphere_test"
  "pseudosphere_test.pdb"
  "pseudosphere_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pseudosphere_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
