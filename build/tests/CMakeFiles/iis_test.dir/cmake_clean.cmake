file(REMOVE_RECURSE
  "CMakeFiles/iis_test.dir/iis_test.cpp.o"
  "CMakeFiles/iis_test.dir/iis_test.cpp.o.d"
  "iis_test"
  "iis_test.pdb"
  "iis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
