# Empty dependencies file for early_stopping_test.
# This may be replaced when dependencies are built.
