# Empty compiler generated dependencies file for mayer_vietoris_test.
# This may be replaced when dependencies are built.
