file(REMOVE_RECURSE
  "CMakeFiles/mayer_vietoris_test.dir/mayer_vietoris_test.cpp.o"
  "CMakeFiles/mayer_vietoris_test.dir/mayer_vietoris_test.cpp.o.d"
  "mayer_vietoris_test"
  "mayer_vietoris_test.pdb"
  "mayer_vietoris_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mayer_vietoris_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
