# Empty compiler generated dependencies file for approx_agreement_test.
# This may be replaced when dependencies are built.
