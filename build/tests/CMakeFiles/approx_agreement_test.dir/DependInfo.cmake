
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/approx_agreement_test.cpp" "tests/CMakeFiles/approx_agreement_test.dir/approx_agreement_test.cpp.o" "gcc" "tests/CMakeFiles/approx_agreement_test.dir/approx_agreement_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/psph_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/psph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/psph_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/psph_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
