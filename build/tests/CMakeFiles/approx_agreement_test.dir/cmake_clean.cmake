file(REMOVE_RECURSE
  "CMakeFiles/approx_agreement_test.dir/approx_agreement_test.cpp.o"
  "CMakeFiles/approx_agreement_test.dir/approx_agreement_test.cpp.o.d"
  "approx_agreement_test"
  "approx_agreement_test.pdb"
  "approx_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
