# Empty dependencies file for thm5_connectivity_transfer.
# This may be replaced when dependencies are built.
