file(REMOVE_RECURSE
  "../bench/thm5_connectivity_transfer"
  "../bench/thm5_connectivity_transfer.pdb"
  "CMakeFiles/thm5_connectivity_transfer.dir/thm5_connectivity_transfer.cpp.o"
  "CMakeFiles/thm5_connectivity_transfer.dir/thm5_connectivity_transfer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm5_connectivity_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
