# Empty dependencies file for fig3_sync_one_round.
# This may be replaced when dependencies are built.
