file(REMOVE_RECURSE
  "../bench/fig3_sync_one_round"
  "../bench/fig3_sync_one_round.pdb"
  "CMakeFiles/fig3_sync_one_round.dir/fig3_sync_one_round.cpp.o"
  "CMakeFiles/fig3_sync_one_round.dir/fig3_sync_one_round.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_sync_one_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
