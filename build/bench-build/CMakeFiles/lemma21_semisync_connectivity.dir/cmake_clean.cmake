file(REMOVE_RECURSE
  "../bench/lemma21_semisync_connectivity"
  "../bench/lemma21_semisync_connectivity.pdb"
  "CMakeFiles/lemma21_semisync_connectivity.dir/lemma21_semisync_connectivity.cpp.o"
  "CMakeFiles/lemma21_semisync_connectivity.dir/lemma21_semisync_connectivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma21_semisync_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
