# Empty dependencies file for lemma21_semisync_connectivity.
# This may be replaced when dependencies are built.
