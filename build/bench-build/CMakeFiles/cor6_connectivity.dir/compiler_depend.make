# Empty compiler generated dependencies file for cor6_connectivity.
# This may be replaced when dependencies are built.
