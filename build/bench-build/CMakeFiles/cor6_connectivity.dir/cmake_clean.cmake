file(REMOVE_RECURSE
  "../bench/cor6_connectivity"
  "../bench/cor6_connectivity.pdb"
  "CMakeFiles/cor6_connectivity.dir/cor6_connectivity.cpp.o"
  "CMakeFiles/cor6_connectivity.dir/cor6_connectivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cor6_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
