# Empty dependencies file for early_stopping_rounds.
# This may be replaced when dependencies are built.
