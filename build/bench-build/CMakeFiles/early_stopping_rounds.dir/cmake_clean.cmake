file(REMOVE_RECURSE
  "../bench/early_stopping_rounds"
  "../bench/early_stopping_rounds.pdb"
  "CMakeFiles/early_stopping_rounds.dir/early_stopping_rounds.cpp.o"
  "CMakeFiles/early_stopping_rounds.dir/early_stopping_rounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_stopping_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
