# Empty compiler generated dependencies file for lemma16_sync_connectivity.
# This may be replaced when dependencies are built.
