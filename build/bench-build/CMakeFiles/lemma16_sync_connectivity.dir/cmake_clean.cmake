file(REMOVE_RECURSE
  "../bench/lemma16_sync_connectivity"
  "../bench/lemma16_sync_connectivity.pdb"
  "CMakeFiles/lemma16_sync_connectivity.dir/lemma16_sync_connectivity.cpp.o"
  "CMakeFiles/lemma16_sync_connectivity.dir/lemma16_sync_connectivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma16_sync_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
