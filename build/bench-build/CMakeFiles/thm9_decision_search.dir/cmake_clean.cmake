file(REMOVE_RECURSE
  "../bench/thm9_decision_search"
  "../bench/thm9_decision_search.pdb"
  "CMakeFiles/thm9_decision_search.dir/thm9_decision_search.cpp.o"
  "CMakeFiles/thm9_decision_search.dir/thm9_decision_search.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm9_decision_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
