# Empty dependencies file for thm9_decision_search.
# This may be replaced when dependencies are built.
