file(REMOVE_RECURSE
  "../bench/chain_argument"
  "../bench/chain_argument.pdb"
  "CMakeFiles/chain_argument.dir/chain_argument.cpp.o"
  "CMakeFiles/chain_argument.dir/chain_argument.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_argument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
