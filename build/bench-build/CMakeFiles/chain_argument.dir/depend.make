# Empty dependencies file for chain_argument.
# This may be replaced when dependencies are built.
