file(REMOVE_RECURSE
  "../bench/perf_complexes"
  "../bench/perf_complexes.pdb"
  "CMakeFiles/perf_complexes.dir/perf_complexes.cpp.o"
  "CMakeFiles/perf_complexes.dir/perf_complexes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_complexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
