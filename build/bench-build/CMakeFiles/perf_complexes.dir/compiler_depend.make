# Empty compiler generated dependencies file for perf_complexes.
# This may be replaced when dependencies are built.
