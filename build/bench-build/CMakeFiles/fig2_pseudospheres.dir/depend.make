# Empty dependencies file for fig2_pseudospheres.
# This may be replaced when dependencies are built.
