file(REMOVE_RECURSE
  "../bench/fig2_pseudospheres"
  "../bench/fig2_pseudospheres.pdb"
  "CMakeFiles/fig2_pseudospheres.dir/fig2_pseudospheres.cpp.o"
  "CMakeFiles/fig2_pseudospheres.dir/fig2_pseudospheres.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pseudospheres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
