file(REMOVE_RECURSE
  "../bench/lemma4_identities"
  "../bench/lemma4_identities.pdb"
  "CMakeFiles/lemma4_identities.dir/lemma4_identities.cpp.o"
  "CMakeFiles/lemma4_identities.dir/lemma4_identities.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma4_identities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
