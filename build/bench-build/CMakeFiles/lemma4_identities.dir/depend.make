# Empty dependencies file for lemma4_identities.
# This may be replaced when dependencies are built.
