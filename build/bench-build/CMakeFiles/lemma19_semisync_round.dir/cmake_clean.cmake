file(REMOVE_RECURSE
  "../bench/lemma19_semisync_round"
  "../bench/lemma19_semisync_round.pdb"
  "CMakeFiles/lemma19_semisync_round.dir/lemma19_semisync_round.cpp.o"
  "CMakeFiles/lemma19_semisync_round.dir/lemma19_semisync_round.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma19_semisync_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
