# Empty dependencies file for lemma19_semisync_round.
# This may be replaced when dependencies are built.
