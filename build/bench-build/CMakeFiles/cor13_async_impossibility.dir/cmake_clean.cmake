file(REMOVE_RECURSE
  "../bench/cor13_async_impossibility"
  "../bench/cor13_async_impossibility.pdb"
  "CMakeFiles/cor13_async_impossibility.dir/cor13_async_impossibility.cpp.o"
  "CMakeFiles/cor13_async_impossibility.dir/cor13_async_impossibility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cor13_async_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
