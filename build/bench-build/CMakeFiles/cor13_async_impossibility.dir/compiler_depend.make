# Empty compiler generated dependencies file for cor13_async_impossibility.
# This may be replaced when dependencies are built.
