# Empty dependencies file for cor22_semisync_time.
# This may be replaced when dependencies are built.
