file(REMOVE_RECURSE
  "../bench/cor22_semisync_time"
  "../bench/cor22_semisync_time.pdb"
  "CMakeFiles/cor22_semisync_time.dir/cor22_semisync_time.cpp.o"
  "CMakeFiles/cor22_semisync_time.dir/cor22_semisync_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cor22_semisync_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
