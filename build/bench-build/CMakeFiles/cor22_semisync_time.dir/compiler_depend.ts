# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cor22_semisync_time.
