file(REMOVE_RECURSE
  "../bench/lemma12_async_connectivity"
  "../bench/lemma12_async_connectivity.pdb"
  "CMakeFiles/lemma12_async_connectivity.dir/lemma12_async_connectivity.cpp.o"
  "CMakeFiles/lemma12_async_connectivity.dir/lemma12_async_connectivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma12_async_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
