# Empty compiler generated dependencies file for lemma12_async_connectivity.
# This may be replaced when dependencies are built.
