file(REMOVE_RECURSE
  "../bench/lemma11_async_round"
  "../bench/lemma11_async_round.pdb"
  "CMakeFiles/lemma11_async_round.dir/lemma11_async_round.cpp.o"
  "CMakeFiles/lemma11_async_round.dir/lemma11_async_round.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma11_async_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
