# Empty compiler generated dependencies file for lemma11_async_round.
# This may be replaced when dependencies are built.
