# Empty dependencies file for lemma14_sync_round.
# This may be replaced when dependencies are built.
