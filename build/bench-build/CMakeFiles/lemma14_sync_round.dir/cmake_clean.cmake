file(REMOVE_RECURSE
  "../bench/lemma14_sync_round"
  "../bench/lemma14_sync_round.pdb"
  "CMakeFiles/lemma14_sync_round.dir/lemma14_sync_round.cpp.o"
  "CMakeFiles/lemma14_sync_round.dir/lemma14_sync_round.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma14_sync_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
