# Empty dependencies file for thm18_sync_rounds.
# This may be replaced when dependencies are built.
