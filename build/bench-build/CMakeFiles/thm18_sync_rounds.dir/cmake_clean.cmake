file(REMOVE_RECURSE
  "../bench/thm18_sync_rounds"
  "../bench/thm18_sync_rounds.pdb"
  "CMakeFiles/thm18_sync_rounds.dir/thm18_sync_rounds.cpp.o"
  "CMakeFiles/thm18_sync_rounds.dir/thm18_sync_rounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm18_sync_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
