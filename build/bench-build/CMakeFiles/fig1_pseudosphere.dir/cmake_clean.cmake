file(REMOVE_RECURSE
  "../bench/fig1_pseudosphere"
  "../bench/fig1_pseudosphere.pdb"
  "CMakeFiles/fig1_pseudosphere.dir/fig1_pseudosphere.cpp.o"
  "CMakeFiles/fig1_pseudosphere.dir/fig1_pseudosphere.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_pseudosphere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
