# Empty compiler generated dependencies file for fig1_pseudosphere.
# This may be replaced when dependencies are built.
