# Empty dependencies file for iis_subdivision.
# This may be replaced when dependencies are built.
