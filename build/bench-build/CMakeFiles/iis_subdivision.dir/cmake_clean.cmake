file(REMOVE_RECURSE
  "../bench/iis_subdivision"
  "../bench/iis_subdivision.pdb"
  "CMakeFiles/iis_subdivision.dir/iis_subdivision.cpp.o"
  "CMakeFiles/iis_subdivision.dir/iis_subdivision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iis_subdivision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
