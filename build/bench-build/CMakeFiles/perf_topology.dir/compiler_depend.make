# Empty compiler generated dependencies file for perf_topology.
# This may be replaced when dependencies are built.
