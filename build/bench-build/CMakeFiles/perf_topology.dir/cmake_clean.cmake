file(REMOVE_RECURSE
  "../bench/perf_topology"
  "../bench/perf_topology.pdb"
  "CMakeFiles/perf_topology.dir/perf_topology.cpp.o"
  "CMakeFiles/perf_topology.dir/perf_topology.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
