# Empty dependencies file for bridge_trace_vs_theory.
# This may be replaced when dependencies are built.
