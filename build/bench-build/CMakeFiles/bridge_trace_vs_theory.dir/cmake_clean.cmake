file(REMOVE_RECURSE
  "../bench/bridge_trace_vs_theory"
  "../bench/bridge_trace_vs_theory.pdb"
  "CMakeFiles/bridge_trace_vs_theory.dir/bridge_trace_vs_theory.cpp.o"
  "CMakeFiles/bridge_trace_vs_theory.dir/bridge_trace_vs_theory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridge_trace_vs_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
