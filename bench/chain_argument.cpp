// The indistinguishability-chain engine (Section 1's similarity structure):
// similarity-degree histograms of the protocol complexes, and explicit
// chain witnesses proving consensus impossible — a third, independent
// derivation of the same verdicts as the homology and search engines.

#include "bench_util.h"
#include "core/async_complex.h"
#include "core/chains.h"
#include "core/pseudosphere.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Chain argument",
      "similarity chains between forced facets refute consensus; their "
      "absence coincides with solvability");

  report.header(
      "  model n+1  f  r   facets  max-deg  chain?  length  verdict-match");
  struct Case {
    const char* model;
    int n1, f, r;
    bool expect_chain;  // consensus impossible on this instance?
  };
  for (const Case& c : std::vector<Case>{
           {"async", 2, 1, 1, true},
           {"async", 3, 1, 1, true},
           {"async", 3, 2, 1, true},
           {"async", 3, 1, 2, true},
           {"sync", 3, 1, 1, true},
           {"sync", 3, 1, 2, false},  // solvable at 2 rounds
           {"sync", 4, 1, 2, false},
       }) {
    util::Timer timer;
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::SimplicialComplex inputs =
        core::input_complex(c.n1, {0, 1}, views, arena);
    topology::SimplicialComplex protocol;
    if (std::string(c.model) == "async") {
      protocol = core::async_protocol_complex_over(
          inputs, {c.n1, c.f, c.r}, views, arena);
    } else {
      protocol = core::sync_protocol_complex_over(
          inputs, {c.n1, c.f, c.f, c.r}, views, arena);
    }
    const std::size_t max_degree = core::max_similarity_degree(protocol);
    const auto witness =
        core::consensus_chain_witness(protocol, views, arena);
    const bool match = witness.has_value() == c.expect_chain;
    report.row("  %-5s %3d %2d %2d %8zu %8zu  %-6s %6zu  %s (%s)", c.model,
               c.n1, c.f, c.r, protocol.facet_count(), max_degree,
               witness ? "yes" : "no",
               witness ? witness->chain.size() : 0, match ? "yes" : "NO",
               timer.pretty().c_str());
    report.check(match, std::string("chain presence matches verdict (") +
                            c.model + " n+1=" + std::to_string(c.n1) +
                            " f=" + std::to_string(c.f) + " r=" +
                            std::to_string(c.r) + ")");
    if (witness) {
      // Validate the witness links.
      const core::SimilarityGraph graph = core::similarity_graph(protocol);
      bool links_ok = true;
      for (std::size_t i = 1; i < witness->chain.size(); ++i) {
        if (graph.facets[witness->chain[i - 1]]
                .intersect(graph.facets[witness->chain[i]])
                .empty()) {
          links_ok = false;
        }
      }
      report.check(links_ok, "witness chain links share vertices");
    }
  }

  report.header("  similarity histogram (async, n+1=3, f=1, binary inputs)");
  {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::SimplicialComplex inputs =
        core::input_complex(3, {0, 1}, views, arena);
    const topology::SimplicialComplex protocol =
        core::async_protocol_complex_over(inputs, {3, 1, 1}, views, arena);
    const core::SimilarityGraph graph = core::similarity_graph(protocol);
    for (std::size_t s = 1; s < graph.degree_histogram.size(); ++s) {
      report.row("    pairs sharing %zu vertex(es): %zu", s,
                 graph.degree_histogram[s]);
    }
    report.check(graph.degree_histogram.size() >= 3,
                 "degrees of similarity up to 2 realized");
  }
  return report.finish();
}
