// Early-stopping consensus vs FloodSet: rounds used as a function of the
// *actual* failure count f' (FloodSet always pays f+1; the clean-round rule
// pays min(f'+2, f+1)). Exhaustive validation at small sizes plus a
// rounds-used table from scripted adversaries.

#include "bench_util.h"
#include "check/soak.h"
#include "protocols/early_stopping.h"
#include "protocols/floodset.h"
#include "util/cli.h"
#include "util/timer.h"

namespace {

// Crashes `count` fixed victims in round 1, delivering nothing.
class CrashSome : public psph::sim::SyncAdversary {
 public:
  explicit CrashSome(int count) : count_(count) {}
  psph::sim::SyncRoundPlan plan_round(
      int round, const std::vector<psph::sim::ProcessId>& alive) override {
    psph::sim::SyncRoundPlan plan;
    if (round != 1) return plan;
    for (int i = 0; i < count_ && i + 1 < static_cast<int>(alive.size());
         ++i) {
      plan.crash.push_back(alive[static_cast<std::size_t>(i)]);
      plan.delivered_to[alive[static_cast<std::size_t>(i)]] = {};
    }
    return plan;
  }

 private:
  int count_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace psph;

  std::int64_t seed = 7700;
  std::string schedule_out, schedule_in;
  util::Cli cli("early_stopping_rounds",
                "decides in min(f'+2, f+1) rounds vs FloodSet's fixed f+1");
  cli.flag("seed", &seed, "base seed for the protocol soaks");
  cli.flag("schedule-out", &schedule_out,
           "record one early-stopping adversary schedule to this file");
  cli.flag("schedule-in", &schedule_in,
           "replay a recorded schedule under the monitors and exit");
  cli.parse(argc, argv);

  if (!schedule_in.empty()) {
    const check::RunOutcome outcome =
        check::replay_schedule(check::load_schedule(schedule_in));
    std::printf("replayed %s: %s\n", outcome.schedule.summary().c_str(),
                outcome.ok() ? "ok" : outcome.violations.front().detail.c_str());
    return outcome.ok() ? 0 : 1;
  }

  bench::Report report(
      "Early-stopping consensus",
      "decides in min(f'+2, f+1) rounds vs FloodSet's fixed f+1");

  report.header("  n+1  f  f'   floodset-rounds  early-rounds  agree?");
  for (const auto& [n1, f] :
       std::vector<std::array<int, 2>>{{4, 2}, {5, 3}, {6, 4}}) {
    for (int actual = 0; actual <= f; ++actual) {
      core::ViewRegistry views;
      CrashSome adversary(actual);
      std::vector<std::int64_t> inputs;
      for (int p = 0; p < n1; ++p) inputs.push_back(p);
      const protocols::EarlyStoppingOutcome outcome =
          protocols::run_early_stopping(inputs, {n1, f}, adversary, views);
      const protocols::EarlyAudit audit =
          protocols::audit_early(outcome, inputs, f);
      const int expected = std::min(actual + 2, f + 1);
      report.row("  %3d %2d %3d %16d %13d  %s", n1, f, actual, f + 1,
                 outcome.max_round_used, audit.ok() ? "yes" : "NO");
      report.check(audit.ok(), "audit at n+1=" + std::to_string(n1) + " f'=" +
                                   std::to_string(actual));
      report.check(outcome.max_round_used <= expected,
                   "rounds <= min(f'+2, f+1) at f'=" + std::to_string(actual));
    }
  }

  report.header("  exhaustive validation: n+1  f  cap -> ok?");
  for (const auto& [n1, f, cap] : std::vector<std::array<int, 3>>{
           {3, 1, 1}, {3, 2, 2}, {4, 1, 1}, {4, 2, 1}}) {
    util::Timer timer;
    std::vector<std::int64_t> inputs;
    for (int p = 0; p < n1; ++p) inputs.push_back(p);
    const protocols::EarlyAudit audit =
        protocols::exhaustive_early_check(inputs, f, cap);
    report.row("            %3d %2d %4d -> %s (%s)", n1, f, cap,
               audit.ok() ? "ok" : audit.failure.c_str(),
               timer.pretty().c_str());
    report.check(audit.ok(), "exhaustive at n+1=" + std::to_string(n1) +
                                 " f=" + std::to_string(f));
  }

  report.header("  soak: n+1 f executions -> ok?");
  for (const auto& [n1, f] :
       std::vector<std::array<int, 2>>{{3, 1}, {4, 2}, {5, 2}, {6, 3}}) {
    util::Timer timer;
    const protocols::EarlyAudit audit = protocols::soak_early_stopping(
        {n1, f}, static_cast<std::uint64_t>(seed) + n1, 400);
    report.row("        %3d %d %10d -> %s (%s)", n1, f, 400,
               audit.ok() ? "ok" : audit.failure.c_str(),
               timer.pretty().c_str());
    report.check(audit.ok(), "soak at n+1=" + std::to_string(n1));
  }

  if (!schedule_out.empty()) {
    check::RunSpec spec;
    spec.protocol = check::ProtocolKind::kEarlyStopping;
    spec.n = 4;
    spec.f = 2;
    spec.seed = static_cast<std::uint64_t>(seed);
    check::save_schedule(schedule_out, check::run_recorded(spec).schedule);
    std::printf("recorded schedule -> %s\n", schedule_out.c_str());
  }
  return report.finish();
}
