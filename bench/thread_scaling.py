#!/usr/bin/env python3
"""Multi-core scaling rig for the google-benchmark binaries.

Runs a perf binary once per requested thread count (via its --threads flag),
merges the per-thread-count timings into one JSON document, and stamps the
measurement context (num_cpus, build type, SIMD dispatch) at the top level:

    {
      "context": {..., "num_cpus": 8, "thread_counts": [1, 2, 4, 8]},
      "runs": {"1": [<benchmark entries>], "2": [...], ...}
    }

The rig exists because thread-scaling numbers recorded on a single-CPU host
describe scheduling overhead, not the engine: the binaries print
warn_if_single_cpu() to stderr, but a warning nobody reads is no gate. Here
the same condition is a hard failure unless --allow-single-cpu is given
explicitly, so a BENCH_scaling.json from a 1-CPU machine can only exist on
purpose (and says so in its context block).

Usage:
    python3 bench/thread_scaling.py --binary build/bench/perf_complexes \
        --filter ProtocolComplex --threads 1,2,4 --out BENCH_scaling.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run_one(binary, bench_filter, threads, min_time):
    """Runs the binary at one thread count; returns its parsed benchmark JSON."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        out_path = handle.name
    cmd = [
        binary,
        "--threads=%d" % threads,
        "--benchmark_out=%s" % out_path,
        "--benchmark_out_format=json",
    ]
    if bench_filter:
        cmd.append("--benchmark_filter=%s" % bench_filter)
    if min_time:
        cmd.append("--benchmark_min_time=%s" % min_time)
    try:
        result = subprocess.run(cmd, stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE)
        if result.returncode != 0:
            sys.stderr.write(result.stderr.decode(errors="replace"))
            raise SystemExit(
                "benchmark run failed at --threads=%d (exit %d)"
                % (threads, result.returncode))
        with open(out_path) as handle:
            return json.load(handle)
    finally:
        os.unlink(out_path)


def main():
    parser = argparse.ArgumentParser(
        description="record per-thread-count benchmark timings")
    parser.add_argument("--binary", required=True,
                        help="path to a google-benchmark perf binary that "
                             "accepts --threads")
    parser.add_argument("--filter", default="ProtocolComplex",
                        help="--benchmark_filter regex (default: the "
                             "multi-round construction family)")
    parser.add_argument("--threads", default="1,2,4",
                        help="comma-separated thread counts to sweep")
    parser.add_argument("--min-time", default="",
                        help="--benchmark_min_time per run (e.g. 0.01 for "
                             "smoke)")
    parser.add_argument("--out", default="BENCH_scaling.json",
                        help="merged output path")
    parser.add_argument("--allow-single-cpu", action="store_true",
                        help="permit recording on a 1-CPU host (numbers "
                             "then measure scheduling overhead, not "
                             "scaling; the context block records the "
                             "override)")
    args = parser.parse_args()

    thread_counts = sorted({int(t) for t in args.threads.split(",") if t})
    if not thread_counts or any(t < 1 for t in thread_counts):
        raise SystemExit("--threads needs positive integers, got %r"
                         % args.threads)

    num_cpus = os.cpu_count() or 0
    if num_cpus <= 1 and not args.allow_single_cpu:
        raise SystemExit(
            "only %d CPU visible: thread-scaling timings from this host "
            "would be meaningless. Re-run with --allow-single-cpu to "
            "record anyway (the output will be marked)." % num_cpus)

    runs = {}
    context = None
    for threads in thread_counts:
        doc = run_one(args.binary, args.filter, threads, args.min_time)
        if context is None:
            context = dict(doc.get("context", {}))
        got = doc.get("context", {}).get("psph_threads")
        if got != str(threads):
            raise SystemExit(
                "binary did not honor --threads=%d (context says "
                "psph_threads=%r); is this a psph perf binary?"
                % (threads, got))
        runs[str(threads)] = doc.get("benchmarks", [])
        best = min((b.get("real_time", float("nan"))
                    for b in runs[str(threads)]
                    if b.get("run_type") == "iteration"), default=None)
        print("threads=%d: %d benchmarks recorded (fastest %.3g %s)"
              % (threads, len(runs[str(threads)]), best or 0,
                 runs[str(threads)][0].get("time_unit", "ns")
                 if runs[str(threads)] else ""))

    context = context or {}
    context["num_cpus"] = num_cpus
    context["thread_counts"] = thread_counts
    context["single_cpu_override"] = bool(num_cpus <= 1)
    with open(args.out, "w") as handle:
        json.dump({"context": context, "runs": runs}, handle, indent=1)
        handle.write("\n")
    print("wrote %s (num_cpus=%d, thread counts %s)"
          % (args.out, num_cpus, thread_counts))


if __name__ == "__main__":
    main()
