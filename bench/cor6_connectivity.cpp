// Corollaries 6 and 8: every pseudosphere ψ(S^m; U_0..U_m) with nonempty
// value sets is (m-1)-connected, and unions ∪_i ψ(S^m; A_i) with a common
// value remain (m-1)-connected. Swept over dimensions and value-set shapes;
// connectivity measured homologically.

#include "bench_util.h"
#include "core/pseudosphere.h"
#include "topology/homology.h"
#include "util/random.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Corollaries 6 and 8",
      "pseudospheres are (m-1)-connected; unions sharing a value stay so");
  report.header("  m+1 shape          facets  conn>=  expect  build");
  util::Rng rng(607);

  for (int m1 = 1; m1 <= 4; ++m1) {
    for (int variant = 0; variant < 3; ++variant) {
      util::Timer timer;
      topology::VertexArena arena;
      std::vector<core::ProcessId> pids;
      std::vector<std::vector<core::StateId>> sets;
      std::string shape;
      for (int i = 0; i < m1; ++i) {
        pids.push_back(i);
        const int size = variant == 0 ? 2
                         : variant == 1
                             ? 3
                             : 1 + static_cast<int>(rng.next_below(4));
        std::vector<core::StateId> values;
        for (int v = 0; v < size; ++v) {
          values.push_back(static_cast<core::StateId>(8 * i + v));
        }
        shape += (i ? "," : "") + std::to_string(size);
        sets.push_back(std::move(values));
      }
      const topology::SimplicialComplex psi =
          core::pseudosphere(pids, sets, arena);
      const int expected = m1 - 2;  // (m - 1) with m = m1 - 1
      const int measured =
          topology::homological_connectivity(psi, std::max(expected, 0));
      report.row("  %3d {%-12s} %6zu %7d %7d  %s", m1, shape.c_str(),
                 psi.facet_count(), measured, expected,
                 timer.pretty().c_str());
      report.check(measured >= expected || expected < -1,
                   "Cor 6 at m+1=" + std::to_string(m1) + " shape " + shape);
      // Stronger than Cor 6: the exact wedge-of-spheres profile,
      // β̃_{m} = Π(|U_i| - 1) and 0 below.
      long long expected_top = 1;
      for (const auto& set : sets) {
        expected_top *= static_cast<long long>(set.size()) - 1;
      }
      const topology::HomologyReport h =
          topology::reduced_homology(psi, {.max_dim = m1 - 1});
      report.check(h.reduced_betti[static_cast<std::size_t>(m1 - 1)] ==
                       expected_top,
                   "wedge profile at m+1=" + std::to_string(m1) + " shape " +
                       shape);
    }
  }

  // Corollary 8: unions with a shared value.
  report.header("  union sweep: m+1 families  facets  conn>=  expect");
  for (int m1 = 2; m1 <= 4; ++m1) {
    for (int families = 2; families <= 4; ++families) {
      topology::VertexArena arena;
      std::vector<core::ProcessId> pids;
      for (int i = 0; i < m1; ++i) pids.push_back(i);
      topology::SimplicialComplex u;
      for (int a = 0; a < families; ++a) {
        // Family A_a = {0 (shared), 10 + a}.
        u.merge(core::pseudosphere_uniform(
            pids, {0, static_cast<core::StateId>(10 + a)}, arena));
      }
      const int expected = m1 - 2;
      const int measured =
          topology::homological_connectivity(u, std::max(expected, 0));
      report.row("               %3d %8d %7zu %7d %7d", m1, families,
                 u.facet_count(), measured, expected);
      report.check(measured >= expected,
                   "Cor 8 at m+1=" + std::to_string(m1) + " families=" +
                       std::to_string(families));
    }
  }
  return report.finish();
}
