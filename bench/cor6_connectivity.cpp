// Corollaries 6 and 8: every pseudosphere ψ(S^m; U_0..U_m) with nonempty
// value sets is (m-1)-connected, and unions ∪_i ψ(S^m; A_i) with a common
// value remain (m-1)-connected. Swept over dimensions and value-set shapes;
// connectivity measured homologically.
//
// With --cache-dir both sweeps run through sweep::SweepEngine. The Cor 6
// jobs are keyed on the value-set shape; the Cor 8 union jobs are keyed on
// the *canonical facet encoding* of the explicitly built union complex, so
// any construction that produces the same complex shares the cache entry.
// Default (no flag) output is identical to the uncached original.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/pseudosphere.h"
#include "store/serialize.h"
#include "sweep/sweep.h"
#include "topology/homology.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace psph;

/// Everything one Cor 6 row and its wedge-profile check consume.
struct Cor6Result {
  std::uint64_t facets = 0;
  int measured = -2;
  topology::HomologyReport homology;
};

std::vector<std::uint8_t> serialize_cor6(const Cor6Result& result) {
  store::ByteWriter out;
  out.u64(result.facets);
  out.i32(result.measured);
  store::encode_homology_report(out, result.homology);
  return store::seal(store::PayloadKind::kRawBytes, out.bytes());
}

Cor6Result deserialize_cor6(const std::vector<std::uint8_t>& bytes) {
  const std::vector<std::uint8_t> payload =
      store::unseal(bytes, store::PayloadKind::kRawBytes);
  store::ByteReader in(payload);
  Cor6Result result;
  result.facets = in.u64();
  result.measured = in.i32();
  result.homology = store::decode_homology_report(in);
  in.expect_done("cor6 result");
  return result;
}

topology::SimplicialComplex build_pseudosphere(
    const std::vector<int>& sizes) {
  topology::VertexArena arena;
  std::vector<core::ProcessId> pids;
  std::vector<std::vector<core::StateId>> sets;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    pids.push_back(static_cast<core::ProcessId>(i));
    std::vector<core::StateId> values;
    for (int v = 0; v < sizes[i]; ++v) {
      values.push_back(static_cast<core::StateId>(8 * i + v));
    }
    sets.push_back(std::move(values));
  }
  return core::pseudosphere(pids, sets, arena);
}

topology::SimplicialComplex build_union(int m1, int families) {
  topology::VertexArena arena;
  std::vector<core::ProcessId> pids;
  for (int i = 0; i < m1; ++i) pids.push_back(i);
  topology::SimplicialComplex u;
  for (int a = 0; a < families; ++a) {
    // Family A_a = {0 (shared), 10 + a}.
    u.merge(core::pseudosphere_uniform(
        pids, {0, static_cast<core::StateId>(10 + a)}, arena));
  }
  return u;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cache_dir;
  int threads = 0;
  util::Cli cli("cor6_connectivity",
                "Corollaries 6/8: pseudosphere connectivity sweep");
  cli.flag("cache-dir", &cache_dir,
           "result-store root; empty disables caching");
  cli.flag("threads", &threads,
           "worker threads for uncached jobs (0 = PSPH_THREADS/default)");
  bench::ObsOptions obs_options;
  bench::add_obs_flags(cli, &obs_options);
  cli.parse(argc, argv);
  if (threads > 0) util::set_thread_count(threads);

  bench::Report report(
      "Corollaries 6 and 8",
      "pseudospheres are (m-1)-connected; unions sharing a value stay so");
  report.header("  m+1 shape          facets  conn>=  expect  build");
  util::Rng rng(607);

  // The value-set shapes, precomputed in the original loop order so the
  // rng draws (variant 2) match the uncached binary exactly.
  struct Cor6Point {
    int m1 = 0;
    std::vector<int> sizes;
    std::string shape;
  };
  std::vector<Cor6Point> points;
  for (int m1 = 1; m1 <= 4; ++m1) {
    for (int variant = 0; variant < 3; ++variant) {
      Cor6Point point;
      point.m1 = m1;
      for (int i = 0; i < m1; ++i) {
        const int size = variant == 0 ? 2
                         : variant == 1
                             ? 3
                             : 1 + static_cast<int>(rng.next_below(4));
        point.shape += (i ? "," : "") + std::to_string(size);
        point.sizes.push_back(size);
      }
      points.push_back(std::move(point));
    }
  }

  const auto emit_cor6 = [&](const Cor6Point& point, const Cor6Result& result,
                             const char* build_time) {
    const int m1 = point.m1;
    const int expected = m1 - 2;  // (m - 1) with m = m1 - 1
    report.row("  %3d {%-12s} %6zu %7d %7d  %s", m1, point.shape.c_str(),
               static_cast<std::size_t>(result.facets), result.measured,
               expected, build_time);
    report.check(result.measured >= expected || expected < -1,
                 "Cor 6 at m+1=" + std::to_string(m1) + " shape " +
                     point.shape);
    // Stronger than Cor 6: the exact wedge-of-spheres profile,
    // β̃_{m} = Π(|U_i| - 1) and 0 below.
    long long expected_top = 1;
    for (int size : point.sizes) {
      expected_top *= static_cast<long long>(size) - 1;
    }
    report.check(result.homology.reduced_betti[static_cast<std::size_t>(
                     m1 - 1)] == expected_top,
                 "wedge profile at m+1=" + std::to_string(m1) + " shape " +
                     point.shape);
  };

  if (cache_dir.empty()) {
    for (const Cor6Point& point : points) {
      util::Timer timer;
      const topology::SimplicialComplex psi = build_pseudosphere(point.sizes);
      const int expected = point.m1 - 2;
      Cor6Result result;
      result.facets = psi.facet_count();
      result.measured =
          topology::homological_connectivity(psi, std::max(expected, 0));
      result.homology =
          topology::reduced_homology(psi, {.max_dim = point.m1 - 1});
      emit_cor6(point, result, timer.pretty().c_str());
    }
  } else {
    std::vector<sweep::JobSpec> jobs;
    for (const Cor6Point& point : points) {
      sweep::JobSpec spec;
      spec.kind = "cor6/pseudosphere-connectivity";
      spec.params.push_back(point.m1);
      for (int size : point.sizes) spec.params.push_back(size);
      jobs.push_back(std::move(spec));
    }
    sweep::SweepEngine engine({.cache_dir = cache_dir});
    const std::vector<Cor6Result> results = sweep::run_sweep<Cor6Result>(
        engine, jobs,
        [&points](const sweep::JobSpec&, std::size_t index) {
          const Cor6Point& point = points[index];
          const topology::SimplicialComplex psi =
              build_pseudosphere(point.sizes);
          const int expected = point.m1 - 2;
          Cor6Result result;
          result.facets = psi.facet_count();
          result.measured =
              topology::homological_connectivity(psi, std::max(expected, 0));
          result.homology =
              topology::reduced_homology(psi, {.max_dim = point.m1 - 1});
          return result;
        },
        serialize_cor6, deserialize_cor6);
    for (std::size_t i = 0; i < points.size(); ++i) {
      emit_cor6(points[i], results[i], "-");
    }
    std::printf("sweep: %s\n", engine.stats().to_string().c_str());
  }

  // Corollary 8: unions with a shared value. Rows carry no time column, so
  // cached and uncached output coincide.
  report.header("  union sweep: m+1 families  facets  conn>=  expect");
  struct Cor8Point {
    int m1 = 0;
    int families = 0;
    topology::SimplicialComplex complex;
  };
  std::vector<Cor8Point> unions;
  for (int m1 = 2; m1 <= 4; ++m1) {
    for (int families = 2; families <= 4; ++families) {
      unions.push_back({m1, families, build_union(m1, families)});
    }
  }

  const auto emit_cor8 = [&](const Cor8Point& point,
                             const core::ConnectivityCheck& check) {
    report.row("               %3d %8d %7zu %7d %7d", point.m1,
               point.families, static_cast<std::size_t>(check.facet_count),
               check.measured, check.expected);
    report.check(check.measured >= check.expected,
                 "Cor 8 at m+1=" + std::to_string(point.m1) + " families=" +
                     std::to_string(point.families));
  };

  const auto measure_cor8 = [](const Cor8Point& point) {
    core::ConnectivityCheck check;
    check.expected = point.m1 - 2;
    check.facet_count = point.complex.facet_count();
    check.vertex_count = point.complex.vertex_ids().size();
    check.dimension = point.complex.dimension();
    check.measured = topology::homological_connectivity(
        point.complex, std::max(check.expected, 0));
    check.satisfied = check.measured >= check.expected;
    return check;
  };

  if (cache_dir.empty()) {
    for (const Cor8Point& point : unions) emit_cor8(point, measure_cor8(point));
  } else {
    std::vector<sweep::JobSpec> jobs;
    for (const Cor8Point& point : unions) {
      sweep::JobSpec spec;
      spec.kind = "cor8/union-connectivity";
      spec.params = {point.m1, point.families};
      // Key on the canonical facet encoding: the complex itself is the
      // query, the (m1, families) params are just provenance.
      store::ByteWriter encoding;
      store::encode_complex(encoding, point.complex);
      spec.key_extra = encoding.take();
      jobs.push_back(std::move(spec));
    }
    sweep::SweepEngine engine({.cache_dir = cache_dir});
    const std::vector<core::ConnectivityCheck> checks =
        sweep::run_sweep<core::ConnectivityCheck>(
            engine, jobs,
            [&unions, &measure_cor8](const sweep::JobSpec&,
                                     std::size_t index) {
              return measure_cor8(unions[index]);
            },
            store::serialize_connectivity_check,
            store::deserialize_connectivity_check);
    for (std::size_t i = 0; i < unions.size(); ++i) {
      emit_cor8(unions[i], checks[i]);
    }
    std::printf("sweep: %s\n", engine.stats().to_string().c_str());
  }
  const int obs_exit = bench::finish_obs(obs_options);
  const int exit_code = report.finish();
  return exit_code != 0 ? exit_code : obs_exit;
}
