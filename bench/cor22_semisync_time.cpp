// Corollary 22: wait-free semi-synchronous k-set agreement requires time
// ⌊f/k⌋·d + C·d. Two regenerations:
//   1. the round-structure core — k-set agreement is impossible on the
//      r-round complex M^r while n >= (r+1)k (exhaustive search on a small
//      instance);
//   2. the timed simulator — the FloodMin-over-timeouts protocol is run
//      under the slowest-execution adversary across sweeps of f/k (with d
//      fixed) and of C (= c2/c1); measured decision times always dominate
//      the bound and scale the same way (columns: bound vs measured).

#include "bench_util.h"
#include "check/soak.h"
#include "core/theorems.h"
#include "protocols/semisync_kset.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace psph;

  std::int64_t seed = 2200;
  std::string schedule_out, schedule_in;
  util::Cli cli("cor22_semisync_time",
                "wait-free semi-sync k-set agreement takes time >= "
                "floor(f/k) d + C d");
  cli.flag("seed", &seed, "base seed for the crash soaks");
  cli.flag("schedule-out", &schedule_out,
           "record one semi-sync adversary schedule to this file");
  cli.flag("schedule-in", &schedule_in,
           "replay a recorded schedule under the monitors and exit");
  cli.parse(argc, argv);

  if (!schedule_in.empty()) {
    const check::RunOutcome outcome =
        check::replay_schedule(check::load_schedule(schedule_in));
    std::printf("replayed %s: %s\n", outcome.schedule.summary().c_str(),
                outcome.ok() ? "ok" : outcome.violations.front().detail.c_str());
    return outcome.ok() ? 0 : 1;
  }

  bench::Report report(
      "Corollary 22",
      "wait-free semi-sync k-set agreement takes time >= floor(f/k) d + C d");

  report.header("  complex core: n+1 f k mu r -> verdict");
  {
    util::Timer timer;
    const core::AgreementCheck check =
        core::check_semisync_agreement(3, 1, 1, 2, 1);
    report.row("                 3  1 1  2 1 -> %s (%llu nodes, %s)",
               check.impossible ? "impossible" : "UNEXPECTED",
               static_cast<unsigned long long>(check.nodes),
               timer.pretty().c_str());
    report.check(check.search_exhausted && check.impossible,
                 "one-round semi-sync consensus impossible at n+1=3");
  }

  report.header(
      "  timing sweep (d=30, c1=1): f  k  C   bound  measured  ratio");
  for (const auto& [f, k, c2] : std::vector<std::array<int, 3>>{
           {1, 1, 1}, {1, 1, 2}, {1, 1, 4}, {1, 1, 8},
           {2, 1, 2}, {3, 1, 2}, {4, 1, 2},
           {2, 2, 2}, {4, 2, 2}, {6, 2, 2}}) {
    protocols::SemiSyncKSetConfig config;
    config.timing = {.c1 = 1,
                     .c2 = static_cast<sim::Time>(c2),
                     .d = 30,
                     .num_processes = f + 2,
                     .max_time = 100'000'000};
    config.max_failures = f;
    config.k = k;
    sim::ScriptedSemiSyncAdversary slowest(config.timing.c2, config.timing.d);
    std::vector<std::int64_t> inputs;
    for (int p = 0; p < config.timing.num_processes; ++p) inputs.push_back(p);
    const sim::SemiSyncResult result = sim::run_semisync(
        inputs, config.timing, protocols::make_semisync_kset(config),
        slowest);
    const protocols::SemiSyncAudit audit =
        protocols::audit_semisync(result, inputs, k);
    const double c_ratio = static_cast<double>(c2);
    const double bound = (f / k) * 30.0 + c_ratio * 30.0;
    const double measured = static_cast<double>(audit.last_decision_time);
    report.row("            %24d %2d %2.0f %7.0f %9.0f %6.2f", f, k, c_ratio,
               bound, measured, measured / bound);
    report.check(audit.ok(), "protocol correct under slowest adversary");
    report.check(measured >= bound,
                 "measured time dominates the Cor 22 bound at f=" +
                     std::to_string(f) + " k=" + std::to_string(k) + " C=" +
                     std::to_string(c2));
  }

  report.header("  crash soak (random adversaries): n+1 f k -> ok?");
  for (const auto& [n1, f, k] : std::vector<std::array<int, 3>>{
           {3, 1, 1}, {4, 2, 1}, {4, 2, 2}, {5, 3, 2}}) {
    util::Timer timer;
    protocols::SemiSyncKSetConfig config;
    config.timing = {.c1 = 1, .c2 = 2, .d = 5, .num_processes = n1};
    config.max_failures = f;
    config.k = k;
    const protocols::SemiSyncAudit audit = protocols::soak_semisync_kset(
        config, static_cast<std::uint64_t>(seed) + n1, 200);
    report.row("                            %3d %2d %2d -> %s (%s)", n1, f, k,
               audit.ok() ? "ok" : audit.failure.c_str(),
               timer.pretty().c_str());
    report.check(audit.ok(), "soak at n+1=" + std::to_string(n1));
  }

  if (!schedule_out.empty()) {
    check::RunSpec spec;
    spec.protocol = check::ProtocolKind::kSemiSyncKSet;
    spec.n = 4;
    spec.f = 2;
    spec.k = 1;
    spec.c1 = 1;
    spec.c2 = 2;
    spec.d = 5;
    spec.seed = static_cast<std::uint64_t>(seed);
    check::save_schedule(schedule_out, check::run_recorded(spec).schedule);
    std::printf("recorded schedule -> %s\n", schedule_out.c_str());
  }
  return report.finish();
}
