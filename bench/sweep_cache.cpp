// Result-store warm-cache benchmark: runs a Lemma 12 connectivity sweep
// cold (every job computed and persisted) and then warm (every job served
// from the store), reporting per-pass wall times and the speedup on the
// largest sweep point. The acceptance bar is a >=5x wall-time reduction on
// that point — in practice a warm load is a single checksummed file read
// and lands orders of magnitude below the homology computation.
//
// By default the cache lives in a fresh temp directory that is removed on
// exit; pass --cache-dir to aim at (and keep) a persistent store.

#include <unistd.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/theorems.h"
#include "store/serialize.h"
#include "sweep/sweep.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace psph;
  namespace fs = std::filesystem;

  std::string cache_dir;
  int threads = 0;
  util::Cli cli("sweep_cache",
                "warm-cache speedup of the sweep engine on Lemma 12 points");
  cli.flag("cache-dir", &cache_dir,
           "result-store root (default: fresh temp dir, removed on exit)");
  cli.flag("threads", &threads,
           "worker threads for uncached jobs (0 = PSPH_THREADS/default)");
  cli.parse(argc, argv);
  if (threads > 0) util::set_thread_count(threads);

  bool scratch = false;
  if (cache_dir.empty()) {
    cache_dir = (fs::temp_directory_path() /
                 ("psph_sweep_cache." + std::to_string(::getpid())))
                    .string();
    fs::remove_all(cache_dir);
    scratch = true;
  }

  bench::Report report("Sweep cache",
                       "warm result-store sweeps skip recomputation "
                       "(>=5x on the largest point)");

  const std::vector<std::array<int, 4>> grid{
      {3, 3, 1, 2}, {4, 4, 2, 1}, {4, 3, 2, 1}, {5, 5, 1, 1}, {3, 3, 1, 3}};
  // {3,3,1,3} is the slowest point of the Lemma 12 grid (the r-round async
  // complex grows exponentially in r).
  const std::size_t largest = grid.size() - 1;

  std::vector<sweep::JobSpec> jobs;
  for (const auto& [n1, m1, f, r] : grid) {
    jobs.push_back({"lemma12/async-connectivity", {n1, m1, f, r}, {}});
  }
  const auto compute = [](const sweep::JobSpec& spec, std::size_t) {
    return core::check_async_connectivity(static_cast<int>(spec.params[0]),
                                          static_cast<int>(spec.params[1]),
                                          static_cast<int>(spec.params[2]),
                                          static_cast<int>(spec.params[3]));
  };
  const auto run_pass = [&](const std::vector<sweep::JobSpec>& pass_jobs,
                            sweep::SweepStats* stats_out) {
    sweep::SweepEngine engine({.cache_dir = cache_dir});
    const std::vector<core::ConnectivityCheck> checks =
        sweep::run_sweep<core::ConnectivityCheck>(
            engine, pass_jobs, compute, store::serialize_connectivity_check,
            store::deserialize_connectivity_check);
    if (stats_out != nullptr) *stats_out = engine.stats();
    return checks;
  };

  report.header("  pass                 jobs  hits  computed      wall");

  // Cold pass over the largest point alone, so its wall time is isolated.
  util::Timer cold_timer;
  sweep::SweepStats cold_stats;
  const std::vector<core::ConnectivityCheck> cold_largest =
      run_pass({jobs[largest]}, &cold_stats);
  const double cold_ms = cold_timer.millis();
  report.row("  largest cold        %5zu %5zu %9zu %8.1fms", cold_stats.jobs,
             cold_stats.cache_hits, cold_stats.computed, cold_ms);
  report.check(cold_stats.computed == 1, "cold pass computes the job");

  // Cold pass over the rest of the grid (the largest point now hits).
  sweep::SweepStats fill_stats;
  util::Timer fill_timer;
  run_pass(jobs, &fill_stats);
  report.row("  grid fill           %5zu %5zu %9zu %8.1fms", fill_stats.jobs,
             fill_stats.cache_hits, fill_stats.computed, fill_timer.millis());
  report.check(fill_stats.cache_hits == 1 &&
                   fill_stats.computed == grid.size() - 1,
               "grid fill reuses the largest point");

  // Fully warm pass: every job served from the store.
  sweep::SweepStats warm_stats;
  util::Timer warm_all_timer;
  run_pass(jobs, &warm_stats);
  report.row("  grid warm           %5zu %5zu %9zu %8.1fms", warm_stats.jobs,
             warm_stats.cache_hits, warm_stats.computed,
             warm_all_timer.millis());
  report.check(warm_stats.cache_hits == grid.size() && warm_stats.computed == 0,
               "warm pass is 100% cache hits");

  // Warm pass over the largest point alone: the speedup measurement.
  util::Timer warm_timer;
  sweep::SweepStats warm_largest_stats;
  const std::vector<core::ConnectivityCheck> warm_largest =
      run_pass({jobs[largest]}, &warm_largest_stats);
  const double warm_ms = warm_timer.millis();
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 1e9;
  report.row("  largest warm        %5zu %5zu %9zu %8.1fms",
             warm_largest_stats.jobs, warm_largest_stats.cache_hits,
             warm_largest_stats.computed, warm_ms);
  report.row("  largest point speedup: %.1fx (cold %.1fms / warm %.1fms)",
             speedup, cold_ms, warm_ms);
  report.check(speedup >= 5.0, "warm cache >=5x on the largest sweep point");
  report.check(cold_largest[0].facet_count == warm_largest[0].facet_count &&
                   cold_largest[0].measured == warm_largest[0].measured &&
                   cold_largest[0].expected == warm_largest[0].expected &&
                   cold_largest[0].satisfied == warm_largest[0].satisfied,
               "warm result identical to cold result");

  if (scratch) fs::remove_all(cache_dir);
  return report.finish();
}
