// Theorems 5 and 7: if a protocol preserves connectivity on every face of a
// simplex, it preserves it on any input pseudosphere (Thm 5) and on unions
// of pseudospheres with a common value (Thm 7). Instantiated with the
// one-round asynchronous protocol (c = n - f): the hypothesis is measured
// per face dimension, the conclusion on a sweep of value-set shapes and
// family collections.

#include "bench_util.h"
#include "core/theorems.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Theorems 5 and 7",
      "per-face connectivity transfers to pseudospheres and their unions");

  report.header(
      "  Thm 5: n+1  f  c  shape           hyp?  facets expect conn  build");
  struct Shape {
    const char* name;
    std::vector<std::vector<std::int64_t>> sets;
  };
  for (const auto& [n1, f] :
       std::vector<std::array<int, 2>>{{3, 1}, {3, 2}, {4, 2}}) {
    std::vector<Shape> shapes;
    std::vector<std::vector<std::int64_t>> binary, mixed, singleton;
    for (int i = 0; i < n1; ++i) {
      binary.push_back({0, 1});
      mixed.push_back(i % 2 == 0 ? std::vector<std::int64_t>{0, 1, 2}
                                 : std::vector<std::int64_t>{3});
      singleton.push_back({7});
    }
    shapes.push_back({"binary", binary});
    shapes.push_back({"mixed", mixed});
    shapes.push_back({"singleton", singleton});
    for (const Shape& shape : shapes) {
      util::Timer timer;
      const core::Theorem5Check check =
          core::check_theorem5_async(n1, f, shape.sets);
      report.row("        %3d %2d %2d  %-14s %-4s %7zu %6d %4d  %s", n1, f,
                 check.c, shape.name,
                 check.hypothesis_holds ? "yes" : "NO",
                 check.conclusion.facet_count, check.conclusion.expected,
                 check.conclusion.measured, timer.pretty().c_str());
      report.check(check.hypothesis_holds,
                   "hypothesis (Lemma 12 r=1) at n+1=" + std::to_string(n1) +
                       " f=" + std::to_string(f));
      report.check(check.conclusion.satisfied,
                   "Thm 5 conclusion for " + std::string(shape.name) +
                       " at n+1=" + std::to_string(n1) + " f=" +
                       std::to_string(f));
    }
  }

  report.header("  Thm 7: n+1  f  families            facets expect conn");
  struct FamilyCase {
    const char* name;
    std::vector<std::vector<std::int64_t>> families;
    bool expect;  // whether the common-value condition holds
  };
  for (int n1 : {3, 4}) {
    for (const FamilyCase& fc : std::vector<FamilyCase>{
             {"{0,1},{0,2}", {{0, 1}, {0, 2}}, true},
             {"{0,1},{0,2},{0,3}", {{0, 1}, {0, 2}, {0, 3}}, true},
             {"{0,1,2},{0,3}", {{0, 1, 2}, {0, 3}}, true},
             {"{0},{1}  (no common)", {{0}, {1}}, false},
         }) {
      const core::Theorem5Check check =
          core::check_theorem7_async(n1, 1, fc.families);
      report.row("        %3d %2d  %-20s %6zu %6d %4d", n1, 1, fc.name,
                 check.conclusion.facet_count, check.conclusion.expected,
                 check.conclusion.measured);
      if (fc.expect) {
        report.check(check.conclusion.satisfied,
                     "Thm 7 at n+1=" + std::to_string(n1) + " families " +
                         fc.name);
      } else {
        report.check(!check.conclusion.satisfied,
                     "common-value condition is necessary at n+1=" +
                         std::to_string(n1));
      }
    }
  }
  return report.finish();
}
