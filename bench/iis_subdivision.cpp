// The iterated immediate snapshot model (Related Work / Section 6 remark):
// IIS one-round complexes are chromatic subdivisions with ordered-Bell
// facet counts, contractible, and — with hash-consed views — literally
// subcomplexes of the paper's wait-free asynchronous round complexes. The
// impossibility threshold (k <= n) reproduces via the Sperner argument on
// the single rainbow input.

#include "bench_util.h"
#include "core/async_complex.h"
#include "core/decision_search.h"
#include "core/iis_complex.h"
#include "core/theorems.h"
#include "topology/collapse.h"
#include "topology/homology.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "IIS (Borowsky-Gafni)",
      "one-round IIS = chromatic subdivision; IIS^r embeds in wait-free A^r");

  report.header("  n+1  r   facets  ordered-Bell^r  contractible  build");
  for (const auto& [n1, r] : std::vector<std::array<int, 2>>{
           {2, 1}, {3, 1}, {4, 1}, {2, 3}, {3, 2}}) {
    util::Timer timer;
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const topology::SimplicialComplex iis =
        core::iis_protocol_complex(input, r, views, arena);
    std::uint64_t predicted = 1;
    for (int i = 0; i < r; ++i) predicted *= core::ordered_bell(n1);
    const topology::HomologyReport h =
        topology::reduced_homology(iis, {.max_dim = n1 - 1});
    bool trivial = true;
    for (long long betti : h.reduced_betti) {
      if (betti != 0) trivial = false;
    }
    report.row("  %3d %2d %8zu %15llu  %-11s %s", n1, r, iis.facet_count(),
               static_cast<unsigned long long>(predicted),
               trivial ? "yes" : "NO", timer.pretty().c_str());
    report.check(iis.facet_count() == predicted,
                 "ordered-Bell count at n+1=" + std::to_string(n1) + " r=" +
                     std::to_string(r));
    report.check(trivial, "homologically trivial (subdivision)");
  }

  report.header("  embedding: n+1 r  IIS-facets  A^r-facets  subcomplex?");
  for (const auto& [n1, r] :
       std::vector<std::array<int, 2>>{{2, 1}, {3, 1}, {3, 2}, {4, 1}}) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const topology::SimplicialComplex iis =
        core::iis_protocol_complex(input, r, views, arena);
    const topology::SimplicialComplex async_wf =
        core::async_protocol_complex(input, {n1, n1 - 1, r}, views, arena);
    const bool embeds = iis.is_subcomplex_of(async_wf);
    report.row("             %3d %d %11zu %11zu  %s", n1, r,
               iis.facet_count(), async_wf.facet_count(),
               embeds ? "yes" : "NO");
    report.check(embeds, "IIS^r subcomplex of wait-free A^r at n+1=" +
                             std::to_string(n1) + " r=" + std::to_string(r));
  }

  report.header("  agreement on IIS^1 (rainbow input, Sperner): n+1 k -> verdict");
  for (const auto& [n1, k, expect_impossible] :
       std::vector<std::array<int, 3>>{{2, 1, 1}, {3, 2, 1}, {3, 3, 0},
                                       {2, 2, 0}}) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const topology::SimplicialComplex protocol =
        core::iis_protocol_complex(input, 1, views, arena);
    const core::SearchResult result =
        core::search_decision_map(protocol, k, views, arena);
    const bool impossible = result.exhausted && !result.decidable;
    report.row("               %3d %2d -> %s (%llu nodes)", n1, k,
               impossible ? "impossible" : "solvable",
               static_cast<unsigned long long>(result.nodes_explored));
    report.check(impossible == (expect_impossible == 1),
                 "IIS threshold at n+1=" + std::to_string(n1) + " k=" +
                     std::to_string(k));
  }
  return report.finish();
}
