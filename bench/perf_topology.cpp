// Performance of the topology engine (google-benchmark): pseudosphere
// construction, face enumeration, boundary matrices, GF(p) homology, exact
// SNF, barycentric subdivision, and collapse.

#include <benchmark/benchmark.h>

#include <array>

#include "bench_util.h"
#include "core/pseudosphere.h"
#include "math/simd.h"
#include "math/smith.h"
#include "topology/collapse.h"
#include "topology/homology.h"
#include "topology/operations.h"
#include "topology/subdivision.h"
#include "util/parallel.h"
#include "util/random.h"

namespace {

using namespace psph;

constexpr int kMaxProcesses = 6;

// The binary pseudospheres ψ(S^{n}; {0,1}) shared by the sweeps below,
// built once for every configuration. The constructions are independent,
// so the setup fans out across the thread pool; each complex's face cache
// is warmed so the benchmarks measure steady-state query cost.
const topology::SimplicialComplex& binary_pseudosphere(int n1) {
  static const auto cache = [] {
    std::array<topology::SimplicialComplex, kMaxProcesses + 1> built;
    util::parallel_for(built.size(), [&](std::size_t n) {
      if (n < 2) return;
      topology::VertexArena arena;
      std::vector<core::ProcessId> pids;
      for (std::size_t i = 0; i < n; ++i) {
        pids.push_back(static_cast<core::ProcessId>(i));
      }
      built[n] = core::pseudosphere_uniform(pids, {0, 1}, arena);
      built[n].warm_face_cache();
    });
    return built;
  }();
  return cache[static_cast<std::size_t>(n1)];
}

void BM_PseudosphereConstruct(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  std::vector<core::ProcessId> pids;
  for (int i = 0; i < n1; ++i) pids.push_back(i);
  for (auto _ : state) {
    topology::VertexArena arena;
    benchmark::DoNotOptimize(
        core::pseudosphere_uniform(pids, {0, 1, 2}, arena));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PseudosphereConstruct)->DenseRange(2, 6);

void BM_FaceEnumeration(benchmark::State& state) {
  const topology::SimplicialComplex& k =
      binary_pseudosphere(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.simplices_of_dim(1));
  }
}
BENCHMARK(BM_FaceEnumeration)->DenseRange(3, 6);

void BM_BoundaryMatrix(benchmark::State& state) {
  const topology::SimplicialComplex& k =
      binary_pseudosphere(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::boundary_matrix(k, 2));
  }
}
BENCHMARK(BM_BoundaryMatrix)->DenseRange(3, 6);

void BM_HomologyGFp(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const topology::SimplicialComplex& k = binary_pseudosphere(n1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topology::reduced_homology(k, {.max_dim = n1 - 1}));
  }
}
BENCHMARK(BM_HomologyGFp)->DenseRange(3, 6);

// The raw elimination path (Morse preprocessor disabled) on the same
// complexes, so the shrink the preprocessor buys stays measured instead of
// assumed: compare against BM_HomologyGFp.
void BM_HomologyGFpUnreduced(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const topology::SimplicialComplex& k = binary_pseudosphere(n1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topology::reduced_homology(k, {.max_dim = n1 - 1, .morse = false}));
  }
}
BENCHMARK(BM_HomologyGFpUnreduced)->DenseRange(3, 6);

// The Morse preprocessor alone: cascade + critical-matrix extraction.
void BM_MorseReduce(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const topology::SimplicialComplex& k = binary_pseudosphere(n1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::morse_reduce(k, n1));
  }
}
BENCHMARK(BM_MorseReduce)->DenseRange(3, 6);

// GF(2) elimination kernel, SIMD dispatch vs forced scalar. The paper's
// boundary matrices are only a handful of 64-bit words wide, so a fixed
// seeded random matrix with a few thousand columns is used to expose the
// XOR kernel itself; arg 0 is the column count in units of 1024. Restores
// the dispatch level afterwards.
void BM_RankMod2(benchmark::State& state) {
  const std::size_t cols = static_cast<std::size_t>(state.range(0)) * 1024;
  const std::size_t rows = cols / 4;
  util::Rng rng(0x52414e4bu);
  math::SparseMatrix matrix(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.next_below(16) == 0) matrix.set(r, c, 1);
    }
  }
  const math::SimdLevel previous = math::simd_level();
  math::set_simd_level(state.range(1) != 0 ? math::max_supported_simd_level()
                                           : math::SimdLevel::kScalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matrix.rank_mod_p(2));
  }
  math::set_simd_level(previous);
}
BENCHMARK(BM_RankMod2)
    ->ArgsProduct({{1, 4}, {0, 1}})
    ->ArgNames({"kcols", "simd"});

// Exact SNF on a raw boundary matrix, bypassing the Morse preprocessor so
// the dense elimination (and its parallel row phase) is what's timed.
void BM_SmithNormalForm(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const topology::SimplicialComplex& k = binary_pseudosphere(n1);
  const math::SparseMatrix boundary = topology::boundary_matrix(k, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::smith_normal_form(boundary));
  }
}
BENCHMARK(BM_SmithNormalForm)->DenseRange(3, 5);

void BM_HomologyExactSNF(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const topology::SimplicialComplex& k = binary_pseudosphere(n1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topology::reduced_homology(k, {.max_dim = 2, .exact = true}));
  }
}
BENCHMARK(BM_HomologyExactSNF)->DenseRange(3, 5);

void BM_BarycentricSubdivision(benchmark::State& state) {
  topology::SimplicialComplex k;
  std::vector<topology::VertexId> vertices;
  for (int i = 0; i <= state.range(0); ++i) {
    vertices.push_back(static_cast<topology::VertexId>(i));
  }
  k.add_facet(topology::Simplex(vertices));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::barycentric_subdivision(k));
  }
}
BENCHMARK(BM_BarycentricSubdivision)->DenseRange(2, 5);

void BM_GreedyCollapse(benchmark::State& state) {
  topology::SimplicialComplex k;
  std::vector<topology::VertexId> vertices;
  for (int i = 0; i <= state.range(0); ++i) {
    vertices.push_back(static_cast<topology::VertexId>(i));
  }
  k.add_facet(topology::Simplex(vertices));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::collapse_greedily(k));
  }
}
BENCHMARK(BM_GreedyCollapse)->DenseRange(3, 8);

void BM_IntersectionOfPseudospheres(benchmark::State& state) {
  topology::VertexArena arena;
  const int n1 = static_cast<int>(state.range(0));
  std::vector<core::ProcessId> pids;
  for (int i = 0; i < n1; ++i) pids.push_back(i);
  const topology::SimplicialComplex a =
      core::pseudosphere_uniform(pids, {0, 1, 2}, arena);
  const topology::SimplicialComplex b =
      core::pseudosphere_uniform(pids, {1, 2, 3}, arena);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::intersection_of(a, b));
  }
}
BENCHMARK(BM_IntersectionOfPseudospheres)->DenseRange(2, 4);

}  // namespace

// Custom main instead of BENCHMARK_MAIN so --threads reaches the pool
// before google-benchmark sees (and would reject) the flag.
int main(int argc, char** argv) {
  psph::bench::ObsOptions obs_options;
  argc = psph::bench::apply_threads_flag(argc, argv);
  argc = psph::bench::apply_obs_flags(argc, argv, &obs_options);
  psph::bench::warn_if_unoptimized_build();
  psph::bench::warn_if_single_cpu();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  for (const auto& [key, value] : psph::bench::bench_context()) {
    benchmark::AddCustomContext(key, value);
  }
  benchmark::RunSpecifiedBenchmarks();
  const int obs_exit = psph::bench::finish_obs(obs_options);
  benchmark::Shutdown();
  return obs_exit;
}
