// Performance of the protocol-complex constructions and the simulator
// (google-benchmark): r-round complex builds in all three models, the
// decision-map search, and executor throughput.

#include <benchmark/benchmark.h>

#include <array>
#include <memory>
#include <vector>

#include "bench_util.h"

#include "core/async_complex.h"
#include "core/construction.h"
#include "core/decision_search.h"
#include "core/pseudosphere.h"
#include "core/semisync_complex.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "math/simd.h"
#include "solve/decide.h"
#include "solve/engine.h"
#include "obs/obs.h"
#include "protocols/floodset.h"
#include "protocols/semisync_kset.h"
#include "sim/semisync_executor.h"
#include "topology/homology.h"
#include "util/random.h"

namespace {

using namespace psph;

void BM_AsyncRoundComplex(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(
        core::async_round_complex(input, {n1, 1, 1}, views, arena));
  }
}
BENCHMARK(BM_AsyncRoundComplex)->DenseRange(3, 5);

void BM_AsyncTwoRoundComplex(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(
        core::async_protocol_complex(input, {n1, 1, 2}, views, arena));
  }
}
BENCHMARK(BM_AsyncTwoRoundComplex)->DenseRange(3, 4);

void BM_SyncRoundComplex(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(core::sync_round_complex(
        input, {n1, 1, 1, 1}, views, arena));
  }
}
BENCHMARK(BM_SyncRoundComplex)->DenseRange(3, 6);

void BM_SemiSyncRoundComplex(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(core::semisync_round_complex(
        input, {n1, 1, 1, 2, 1}, views, arena));
  }
}
BENCHMARK(BM_SemiSyncRoundComplex)->DenseRange(3, 5);

// ---- Multi-round construction: pipeline vs sequential reference ----
//
// Three variants per model, all over Args({n, rounds}):
//   *ProtocolComplex      — level-synchronous pipeline, cold memo cache per
//                           iteration (the default path users hit).
//   *ProtocolComplexSeq   — the `_seq` depth-first reference construction,
//                           single-threaded and unmemoized; the baseline the
//                           pipeline speedup is measured against.
//   *ProtocolComplexCached — pipeline with registries and memo cache kept
//                           warm across iterations: the rebuild-after-the-
//                           first cost, i.e. the memoization win for sweeps
//                           that reconstruct the same complexes repeatedly.
//
// Run with --threads=N to size the pool; thread scaling needs a multi-core
// host (results are bit-identical at every thread count either way).

void BM_AsyncProtocolComplex(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(
        core::async_protocol_complex(input, {n1, 1, rounds}, views, arena));
  }
}
BENCHMARK(BM_AsyncProtocolComplex)
    ->ArgNames({"n", "r"})
    ->Args({3, 2})
    ->Args({3, 3})
    ->Args({4, 2});

void BM_AsyncProtocolComplexSeq(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(core::async_protocol_complex_seq(
        input, {n1, 1, rounds}, views, arena));
  }
}
BENCHMARK(BM_AsyncProtocolComplexSeq)
    ->ArgNames({"n", "r"})
    ->Args({3, 2})
    ->Args({3, 3})
    ->Args({4, 2});

void BM_AsyncProtocolComplexCached(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  core::ViewRegistry views;
  topology::VertexArena arena;
  core::ConstructionCache cache;
  const topology::Simplex input = core::rainbow_input(n1, views, arena);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::async_protocol_complex(
        input, {n1, 1, rounds}, views, arena, cache));
  }
}
BENCHMARK(BM_AsyncProtocolComplexCached)
    ->ArgNames({"n", "r"})
    ->Args({3, 2})
    ->Args({3, 3})
    ->Args({4, 2});

void BM_SyncProtocolComplex(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(core::sync_protocol_complex(
        input, {n1, 2, 1, rounds}, views, arena));
  }
}
BENCHMARK(BM_SyncProtocolComplex)
    ->ArgNames({"n", "r"})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Args({5, 2})
    ->Args({5, 3});

void BM_SyncProtocolComplexSeq(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(core::sync_protocol_complex_seq(
        input, {n1, 2, 1, rounds}, views, arena));
  }
}
BENCHMARK(BM_SyncProtocolComplexSeq)
    ->ArgNames({"n", "r"})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Args({5, 2})
    ->Args({5, 3});

void BM_SyncProtocolComplexCached(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  core::ViewRegistry views;
  topology::VertexArena arena;
  core::ConstructionCache cache;
  const topology::Simplex input = core::rainbow_input(n1, views, arena);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sync_protocol_complex(
        input, {n1, 2, 1, rounds}, views, arena, cache));
  }
}
BENCHMARK(BM_SyncProtocolComplexCached)
    ->ArgNames({"n", "r"})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Args({5, 2})
    ->Args({5, 3});

void BM_SemisyncProtocolComplex(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(core::semisync_protocol_complex(
        input, {n1, 1, 1, 2, rounds}, views, arena));
  }
}
BENCHMARK(BM_SemisyncProtocolComplex)
    ->ArgNames({"n", "r"})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Args({5, 2});

void BM_SemisyncProtocolComplexSeq(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(core::semisync_protocol_complex_seq(
        input, {n1, 1, 1, 2, rounds}, views, arena));
  }
}
BENCHMARK(BM_SemisyncProtocolComplexSeq)
    ->ArgNames({"n", "r"})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Args({5, 2});

void BM_SemisyncProtocolComplexCached(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  core::ViewRegistry views;
  topology::VertexArena arena;
  core::ConstructionCache cache;
  const topology::Simplex input = core::rainbow_input(n1, views, arena);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::semisync_protocol_complex(
        input, {n1, 1, 1, 2, rounds}, views, arena, cache));
  }
}
BENCHMARK(BM_SemisyncProtocolComplexCached)
    ->ArgNames({"n", "r"})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Args({5, 2});

// ---- Symmetry-reduced (orbit) construction ----
//
// The BM_*Orbit variants build the same complexes through the orbit-quotient
// pipeline (DESIGN §5.16). Rainbow inputs carry the full diagonal symmetric
// group, so the frontier shrinks by a factor approaching n!; facet counts,
// f-vectors, and homology stay bit-identical to the full pipeline
// (tests/orbit_test.cpp proves it on every shared datapoint). Arg pairs
// repeat the BM_*ProtocolComplex grids so the speedup is a same-JSON ratio,
// plus larger orbit-only points the full pipeline cannot finish in bench
// time — the "beyond the wall" rows in BENCH_complexes.json.

void BM_AsyncProtocolComplexOrbit(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  std::uint64_t full_facets = 0;
  std::uint64_t reps = 0;
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    core::ConstructionCache cache;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const core::OrbitComplexResult result = core::async_protocol_complex_orbit(
        input, {n1, 1, rounds}, views, arena, cache);
    full_facets = result.full_facet_count;
    reps = result.orbits.size();
    benchmark::DoNotOptimize(result.reduced.facet_count());
  }
  state.counters["full_facets"] = static_cast<double>(full_facets);
  state.counters["orbit_reps"] = static_cast<double>(reps);
}
BENCHMARK(BM_AsyncProtocolComplexOrbit)
    ->ArgNames({"n", "r"})
    ->Args({3, 2})
    ->Args({3, 3})
    ->Args({4, 2})
    // Beyond the wall: ~9.77M full facets from 83,061 orbit reps. The full
    // pipeline does not finish this point in bench time (see EXPERIMENTS).
    ->Args({5, 2})
    ->Unit(benchmark::kMillisecond);

void BM_SyncProtocolComplexOrbit(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  std::uint64_t full_facets = 0;
  std::uint64_t reps = 0;
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    core::ConstructionCache cache;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const core::OrbitComplexResult result = core::sync_protocol_complex_orbit(
        input, {n1, 2, 1, rounds}, views, arena, cache);
    full_facets = result.full_facet_count;
    reps = result.orbits.size();
    benchmark::DoNotOptimize(result.reduced.facet_count());
  }
  state.counters["full_facets"] = static_cast<double>(full_facets);
  state.counters["orbit_reps"] = static_cast<double>(reps);
}
BENCHMARK(BM_SyncProtocolComplexOrbit)
    ->ArgNames({"n", "r"})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Args({5, 2})
    ->Args({5, 3})
    ->Unit(benchmark::kMillisecond);

void BM_SemisyncProtocolComplexOrbit(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  std::uint64_t full_facets = 0;
  std::uint64_t reps = 0;
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    core::ConstructionCache cache;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const core::OrbitComplexResult result =
        core::semisync_protocol_complex_orbit(input, {n1, 1, 1, 2, rounds},
                                              views, arena, cache);
    full_facets = result.full_facet_count;
    reps = result.orbits.size();
    benchmark::DoNotOptimize(result.reduced.facet_count());
  }
  state.counters["full_facets"] = static_cast<double>(full_facets);
  state.counters["orbit_reps"] = static_cast<double>(reps);
}
BENCHMARK(BM_SemisyncProtocolComplexOrbit)
    ->ArgNames({"n", "r"})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Args({5, 2})
    ->Unit(benchmark::kMillisecond);

// Orbit pipeline with the frontier spilled through an in-memory chunk store
// at a deliberately tiny budget: measures the encode/flush/replay overhead
// of out-of-core operation, isolated from disk I/O.
void BM_AsyncOrbitSpill(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    core::ConstructionCache cache;
    core::InMemoryFrontierStorage storage;
    core::ConstructionOptions options;
    options.frontier_budget_bytes = 4096;
    options.storage = &storage;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(core::async_protocol_complex_orbit(
        input, {n1, 1, rounds}, views, arena, cache, options));
  }
}
BENCHMARK(BM_AsyncOrbitSpill)
    ->ArgNames({"n", "r"})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Unit(benchmark::kMillisecond);

// ---- End-to-end: construction + homology in one measured unit ----
//
// The span coverage of a full connectivity query: construction.* spans from
// the pipeline, homology.*/smith.* spans from the engine, pool.* spans from
// the fan-outs. This is the benchmark to run with --trace-out to see the
// whole system on one timeline.

void BM_EndToEndConnectivity(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  const int rounds = static_cast<int>(state.range(1));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const topology::SimplicialComplex k =
        core::async_protocol_complex(input, {n1, 1, rounds}, views, arena);
    topology::HomologyOptions options;
    options.max_dim = n1 - 1;
    benchmark::DoNotOptimize(topology::reduced_homology(k, options));
  }
}
BENCHMARK(BM_EndToEndConnectivity)
    ->ArgNames({"n", "r"})
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({4, 1});

// ---- Observability overhead ----
//
// The cost of one instrumentation point in both gate states. The disabled
// number is the per-probe price every instrumented hot path pays under
// PSPH_OBS=0 — it must stay at a branch-and-return (sub-nanosecond) for
// the "within 2% of uninstrumented" budget to hold at our span density.
// Each benchmark restores the prior gate state so ordering cannot leak
// into other benchmarks.

void BM_ObsSpanDisabled(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::SpanTimer span("bench.obs_probe");
    benchmark::DoNotOptimize(&span);
  }
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  // Shrink the per-thread event cap so millions of probe iterations cannot
  // flood a --trace-out of the same run; aggregates are unaffected.
  obs::set_event_capacity(1024);
  for (auto _ : state) {
    obs::SpanTimer span("bench.obs_probe");
    benchmark::DoNotOptimize(&span);
  }
  obs::set_event_capacity(std::size_t{1} << 20);
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_DecisionSearchSolvable(benchmark::State& state) {
  // k = f + 1: a witness exists; measures time-to-first-witness.
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::check_async_agreement(3, 1, 2, 1));
  }
}
BENCHMARK(BM_DecisionSearchSolvable);

void BM_DecisionSearchImpossible(benchmark::State& state) {
  // Exhaustive refutation of 2-process consensus.
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::check_async_agreement(2, 1, 1, 1));
  }
}
BENCHMARK(BM_DecisionSearchImpossible);

void BM_FloodSetExecution(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  util::Rng rng(77);
  std::vector<std::int64_t> inputs;
  for (int p = 0; p < n1; ++p) inputs.push_back(p);
  for (auto _ : state) {
    core::ViewRegistry views;
    sim::RandomSyncAdversary adversary(util::Rng(rng.next()), 2);
    benchmark::DoNotOptimize(protocols::run_floodset(
        inputs, {n1, 2, 1}, adversary, views));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FloodSetExecution)->DenseRange(3, 8);

void BM_SemiSyncExecution(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  util::Rng rng(78);
  protocols::SemiSyncKSetConfig config;
  config.timing = {.c1 = 1, .c2 = 2, .d = 5, .num_processes = n1};
  config.max_failures = 1;
  config.k = 1;
  std::vector<std::int64_t> inputs;
  for (int p = 0; p < n1; ++p) inputs.push_back(p);
  for (auto _ : state) {
    sim::RandomSemiSyncAdversary adversary(util::Rng(rng.next()),
                                           config.timing, 1, 0.3, 20);
    benchmark::DoNotOptimize(
        sim::run_semisync(inputs, config.timing,
                          protocols::make_semisync_kset(config), adversary));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SemiSyncExecution)->DenseRange(3, 8);

// --- solvability engine (src/solve, DESIGN §5.17) -------------------------
//
// BM_DecisionEngine*: decide k-set agreement on a pre-built, pre-compiled
// instance — construction is hoisted out of the loop so the numbers time
// the decision procedures alone. Seq is the seed backtracker on the same
// complex; Propagate/Learn/Portfolio are the engine stages. The IIS hard
// case (3 processes, k=2 — the verdict the seq backtracker cannot reach in
// bounded time) is engine-only.

solve::DecideRequest decision_request(const benchmark::State& state) {
  solve::DecideRequest request;
  request.model = solve::Model::kAsync;
  request.processes = static_cast<int>(state.range(0));
  request.f = static_cast<int>(state.range(1));
  request.k = static_cast<int>(state.range(2));
  request.rounds = 1;
  return request;
}

void BM_DecisionEngineSeq(benchmark::State& state) {
  const std::unique_ptr<solve::Instance> instance =
      solve::build_instance(decision_request(state));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::search_decision_map_seq(
        instance->protocol, static_cast<int>(state.range(2)), instance->views,
        instance->arena));
  }
}
BENCHMARK(BM_DecisionEngineSeq)->ArgNames({"n", "f", "k"})->Args({3, 1, 2})
    ->Args({3, 2, 2})->Args({4, 1, 2});

void decision_engine_stage(benchmark::State& state,
                           solve::EngineStage stage) {
  const std::unique_ptr<solve::Instance> instance =
      solve::build_instance(decision_request(state));
  solve::EngineOptions options;
  options.stage = stage;
  options.canonical_witness = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve::solve(instance->problem, options));
  }
}

void BM_DecisionEnginePropagate(benchmark::State& state) {
  decision_engine_stage(state, solve::EngineStage::kPropagate);
}
void BM_DecisionEngineLearn(benchmark::State& state) {
  decision_engine_stage(state, solve::EngineStage::kLearn);
}
void BM_DecisionEnginePortfolio(benchmark::State& state) {
  decision_engine_stage(state, solve::EngineStage::kPortfolio);
}
BENCHMARK(BM_DecisionEnginePropagate)->ArgNames({"n", "f", "k"})
    ->Args({3, 1, 2})->Args({3, 2, 2})->Args({4, 1, 2});
BENCHMARK(BM_DecisionEngineLearn)->ArgNames({"n", "f", "k"})
    ->Args({3, 1, 2})->Args({3, 2, 2})->Args({4, 1, 2});
BENCHMARK(BM_DecisionEnginePortfolio)->ArgNames({"n", "f", "k"})
    ->Args({3, 1, 2})->Args({3, 2, 2})->Args({4, 1, 2});

void BM_DecisionEngineIisHard(benchmark::State& state) {
  // The separation instance: one-round IIS 2-set agreement over 3
  // processes. The seq backtracker runs past 60 s without reaching the
  // verdict (14 s buys it just 2M of its 200M-node budget); the engine
  // refutes it per-iteration here, in microseconds.
  solve::DecideRequest request;
  request.model = solve::Model::kIis;
  request.processes = 3;
  request.k = 2;
  request.rounds = static_cast<int>(state.range(0));
  const std::unique_ptr<solve::Instance> instance =
      solve::build_instance(request);
  solve::EngineOptions options;
  options.stage = solve::EngineStage::kLearn;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve::solve(instance->problem, options));
  }
}
BENCHMARK(BM_DecisionEngineIisHard)->ArgNames({"r"})->Arg(1);

}  // namespace

// Custom main instead of BENCHMARK_MAIN so --threads / --trace-out /
// --stats reach us before google-benchmark sees (and would reject) them.
int main(int argc, char** argv) {
  psph::bench::ObsOptions obs_options;
  argc = psph::bench::apply_threads_flag(argc, argv);
  argc = psph::bench::apply_obs_flags(argc, argv, &obs_options);
  psph::bench::warn_if_unoptimized_build();
  psph::bench::warn_if_single_cpu();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  for (const auto& [key, value] : psph::bench::bench_context()) {
    benchmark::AddCustomContext(key, value);
  }
  benchmark::RunSpecifiedBenchmarks();
  const int obs_exit = psph::bench::finish_obs(obs_options);
  benchmark::Shutdown();
  return obs_exit;
}
