// Performance of the protocol-complex constructions and the simulator
// (google-benchmark): r-round complex builds in all three models, the
// decision-map search, and executor throughput.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "core/async_complex.h"
#include "core/decision_search.h"
#include "core/pseudosphere.h"
#include "core/semisync_complex.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "protocols/floodset.h"
#include "protocols/semisync_kset.h"
#include "sim/semisync_executor.h"
#include "util/random.h"

namespace {

using namespace psph;

void BM_AsyncRoundComplex(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(
        core::async_round_complex(input, {n1, 1, 1}, views, arena));
  }
}
BENCHMARK(BM_AsyncRoundComplex)->DenseRange(3, 5);

void BM_AsyncTwoRoundComplex(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(
        core::async_protocol_complex(input, {n1, 1, 2}, views, arena));
  }
}
BENCHMARK(BM_AsyncTwoRoundComplex)->DenseRange(3, 4);

void BM_SyncRoundComplex(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(core::sync_round_complex(
        input, {n1, 1, 1, 1}, views, arena));
  }
}
BENCHMARK(BM_SyncRoundComplex)->DenseRange(3, 6);

void BM_SemiSyncRoundComplex(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    benchmark::DoNotOptimize(core::semisync_round_complex(
        input, {n1, 1, 1, 2, 1}, views, arena));
  }
}
BENCHMARK(BM_SemiSyncRoundComplex)->DenseRange(3, 5);

void BM_DecisionSearchSolvable(benchmark::State& state) {
  // k = f + 1: a witness exists; measures time-to-first-witness.
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::check_async_agreement(3, 1, 2, 1));
  }
}
BENCHMARK(BM_DecisionSearchSolvable);

void BM_DecisionSearchImpossible(benchmark::State& state) {
  // Exhaustive refutation of 2-process consensus.
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::check_async_agreement(2, 1, 1, 1));
  }
}
BENCHMARK(BM_DecisionSearchImpossible);

void BM_FloodSetExecution(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  util::Rng rng(77);
  std::vector<std::int64_t> inputs;
  for (int p = 0; p < n1; ++p) inputs.push_back(p);
  for (auto _ : state) {
    core::ViewRegistry views;
    sim::RandomSyncAdversary adversary(util::Rng(rng.next()), 2);
    benchmark::DoNotOptimize(protocols::run_floodset(
        inputs, {n1, 2, 1}, adversary, views));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FloodSetExecution)->DenseRange(3, 8);

void BM_SemiSyncExecution(benchmark::State& state) {
  const int n1 = static_cast<int>(state.range(0));
  util::Rng rng(78);
  protocols::SemiSyncKSetConfig config;
  config.timing = {.c1 = 1, .c2 = 2, .d = 5, .num_processes = n1};
  config.max_failures = 1;
  config.k = 1;
  std::vector<std::int64_t> inputs;
  for (int p = 0; p < n1; ++p) inputs.push_back(p);
  for (auto _ : state) {
    sim::RandomSemiSyncAdversary adversary(util::Rng(rng.next()),
                                           config.timing, 1, 0.3, 20);
    benchmark::DoNotOptimize(
        sim::run_semisync(inputs, config.timing,
                          protocols::make_semisync_kset(config), adversary));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SemiSyncExecution)->DenseRange(3, 8);

}  // namespace

// Custom main instead of BENCHMARK_MAIN so --threads reaches the pool
// before google-benchmark sees (and would reject) the flag.
int main(int argc, char** argv) {
  argc = psph::bench::apply_threads_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
