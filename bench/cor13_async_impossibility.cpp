// Corollary 13: no asynchronous f-resilient k-set agreement for k <= f —
// decided exhaustively on explicit r-round complexes — while k = f + 1 is
// achievable (witness found, and the min-seen rule independently passes).
// The table shows the threshold sitting exactly at k = f + 1.

#include "bench_util.h"
#include "core/agreement.h"
#include "core/async_complex.h"
#include "core/pseudosphere.h"
#include "core/theorems.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Corollary 13",
      "async k-set agreement: impossible iff k <= f (exhaustive search)");
  report.header(
      "  n+1  f  k  r   facets vertices      nodes   verdict        build");

  struct Case {
    int n1, f, k, r;
    bool expect_impossible;
  };
  for (const Case& c : std::vector<Case>{
           {2, 1, 1, 1, true},
           {2, 1, 1, 2, true},
           {3, 1, 1, 1, true},
           {3, 1, 1, 2, true},
           {3, 2, 2, 1, true},  // wait-free 2-set agreement [BG93,HS93,SZ93]
           {3, 1, 2, 1, false},
           {3, 2, 3, 1, false},
           {4, 1, 2, 1, false},
       }) {
    util::Timer timer;
    const core::AgreementCheck check =
        core::check_async_agreement(c.n1, c.f, c.k, c.r);
    const char* verdict = check.impossible   ? "impossible"
                          : check.possible   ? "solvable"
                                             : "inconclusive";
    report.row("  %3d %2d %2d %2d %8zu %8zu %10llu   %-12s %s", c.n1, c.f,
               c.k, c.r, check.protocol_facets, check.protocol_vertices,
               static_cast<unsigned long long>(check.nodes), verdict,
               timer.pretty().c_str());
    report.check(check.search_exhausted, "search exhausted");
    report.check(check.impossible == c.expect_impossible,
                 "threshold at n+1=" + std::to_string(c.n1) + " f=" +
                     std::to_string(c.f) + " k=" + std::to_string(c.k));
  }

  // The matching upper bound: the min-seen rule solves (f+1)-set agreement
  // on the full one-round complex.
  for (const auto& [n1, f] :
       std::vector<std::array<int, 2>>{{3, 1}, {4, 1}, {4, 2}}) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    std::vector<std::int64_t> values;
    for (int v = 0; v <= f + 1; ++v) values.push_back(v);
    const topology::SimplicialComplex inputs =
        core::input_complex(n1, values, views, arena);
    const topology::SimplicialComplex protocol =
        core::async_protocol_complex_over(inputs, {n1, f, 1}, views, arena);
    const core::RuleCheckResult rule = core::check_decision_rule(
        protocol, f + 1, core::min_seen_rule(views), views, arena);
    report.check(rule.ok, "min rule solves (f+1)-set agreement at n+1=" +
                              std::to_string(n1) + " f=" + std::to_string(f));
  }
  return report.finish();
}
