// Figure 2: the two-process pseudospheres ψ(S¹; {0,1}) and ψ(S¹; {0,1,2}).
// We regenerate both, report their structure, and sweep |V| further: for
// two processes ψ is the complete bipartite graph K_{|V|,|V|}, so
// facets = |V|², vertices = 2|V|, and β̃₁ = (|V|-1)².

#include "bench_util.h"
#include "core/pseudosphere.h"
#include "topology/homology.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Figure 2",
      "psi(S^1; V) is K_{|V|,|V|}: facets |V|^2, beta1 = (|V|-1)^2; "
      "|V| = 2 is the circle");
  report.header("  |V|   facets vertices  beta0~ beta1~   build");

  for (int v = 1; v <= 6; ++v) {
    util::Timer timer;
    topology::VertexArena arena;
    std::vector<core::StateId> values;
    for (int i = 0; i < v; ++i) values.push_back(static_cast<core::StateId>(i));
    const topology::SimplicialComplex psi =
        core::pseudosphere_uniform({0, 1}, values, arena);
    const topology::HomologyReport h =
        topology::reduced_homology(psi, {.max_dim = 1});
    report.row("  %3d %8zu %8zu %7lld %6lld   %s", v, psi.facet_count(),
               psi.count_of_dim(0), h.reduced_betti[0], h.reduced_betti[1],
               timer.pretty().c_str());
    report.check(psi.facet_count() == static_cast<std::size_t>(v) * v,
                 "facets = |V|^2 at |V|=" + std::to_string(v));
    report.check(h.reduced_betti[0] == 0, "connected at |V|=" + std::to_string(v));
    report.check(h.reduced_betti[1] == static_cast<long long>(v - 1) * (v - 1),
                 "beta1 = (|V|-1)^2 at |V|=" + std::to_string(v));
  }
  return report.finish();
}
