// Theorem 9 (and its Sperner engine): (k-1)-connected protocol complexes
// over every input pseudosphere admit no k-set agreement map. We pair the
// connectivity measurements with the exhaustive search verdicts on the same
// instances — connectivity high ⇔ search refutes — and exercise the Sperner
// machinery the proof rests on (panchromatic counts are odd for every
// coloring tried).

#include "bench_util.h"
#include "core/sperner.h"
#include "core/theorems.h"
#include "solve/decide.h"
#include "solve/engine.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace psph;
  // --engine selects who produces the search verdict: the seed backtracker
  // (seq, the default — the seed behavior) or the solvability engine at one
  // of its stages. Theorem 9's connectivity side is engine-independent, so
  // the agreement column doubles as a cross-check of the chosen engine.
  std::string engine = "seq";
  util::Cli cli("thm9_decision_search",
                "Theorem 9: connectivity forbids k-set agreement");
  cli.flag_choice("engine", &engine,
                  {"seq", "propagate", "learn", "portfolio"},
                  "decision-search engine for the verdict column");
  cli.parse(argc, argv);

  bench::Report report(
      "Theorem 9 (engine=" + engine + ")",
      "(k-1)-connectivity forbids k-set agreement; Sperner counts are odd");

  report.header(
      "  model    n+1  f  k  r  conn>=k-1?  search-verdict   agree?");
  struct Row {
    const char* model;
    int n1, f, k, r;
  };
  for (const Row& row : std::vector<Row>{
           {"async", 2, 1, 1, 1},
           {"async", 3, 1, 1, 1},
           {"async", 3, 1, 2, 1},
           {"sync", 3, 1, 1, 1},
           {"sync", 3, 1, 1, 2},
       }) {
    const bool is_async = std::string(row.model) == "async";
    bool impossible = false;
    if (engine == "seq") {
      const core::AgreementCheck check =
          is_async ? core::check_async_agreement(row.n1, row.f, row.k, row.r)
                   : core::check_sync_agreement(row.n1, row.f, row.k, row.r);
      impossible = check.impossible;
    } else {
      solve::DecideRequest request;
      request.model = is_async ? solve::Model::kAsync : solve::Model::kSync;
      request.processes = row.n1;
      request.f = row.f;
      request.k = row.k;
      request.rounds = row.r;
      solve::EngineOptions options;
      options.stage = engine == "propagate" ? solve::EngineStage::kPropagate
                      : engine == "learn"   ? solve::EngineStage::kLearn
                                            : solve::EngineStage::kPortfolio;
      const store::DecisionRecord record =
          solve::decide(request, options).record;
      impossible = record.exhausted && !record.solvable;
    }
    const core::ConnectivityCheck conn =
        is_async
            ? core::check_async_connectivity(row.n1, row.n1, row.f, row.r)
            : core::check_sync_connectivity(row.n1, row.n1, row.k, row.r);
    const bool connected_enough = conn.measured >= row.k - 1;
    report.row("  %-8s %3d %2d %2d %2d  %-10s  %-14s  %s", row.model, row.n1,
               row.f, row.k, row.r, connected_enough ? "yes" : "no",
               impossible ? "impossible" : "solvable",
               connected_enough == impossible ? "yes" : "NO");
    // Theorem 9's direction: connectivity implies impossibility.
    if (connected_enough) {
      report.check(impossible, "connectivity implies no decision map (" +
                                   std::string(row.model) + ")");
    }
  }

  report.header("  Sperner: dim rounds  vertices facets  panchromatic (odd)");
  util::Rng rng(90001);
  for (const auto& [dim, rounds] : std::vector<std::array<int, 2>>{
           {1, 1}, {1, 3}, {2, 1}, {2, 2}, {3, 1}}) {
    util::Timer timer;
    core::SpernerInstance instance =
        core::make_subdivided_simplex(dim, rounds);
    bool all_odd = true;
    std::size_t sample_count = 0;
    // The canonical coloring plus several random ones.
    core::color_min_carrier(instance);
    sample_count = core::count_panchromatic(instance);
    if (sample_count % 2 == 0) all_odd = false;
    for (int trial = 0; trial < 20; ++trial) {
      core::color_randomly(instance, rng);
      if (core::count_panchromatic(instance) % 2 == 0) all_odd = false;
    }
    report.row("           %3d %6d %9zu %6zu  %12zu  %s", dim, rounds,
               instance.carriers.size(), instance.complex.facet_count(),
               sample_count, timer.pretty().c_str());
    report.check(all_odd, "all panchromatic counts odd at dim=" +
                              std::to_string(dim) + " rounds=" +
                              std::to_string(rounds));
  }
  return report.finish();
}
