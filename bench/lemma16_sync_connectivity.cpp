// Lemmas 16 and 17: S^r(S^m) is (m - (n - k) - 1)-connected when
// n >= rk + k. The sweep includes boundary cases where the hypothesis
// *fails* (marked "n/a"), showing the hypothesis is doing real work.
//
// With --cache-dir verdicts are served from the result store (time column
// "-", deterministic rows); without it, output matches the original.

#include <array>
#include <vector>

#include "bench_util.h"
#include "core/theorems.h"
#include "store/serialize.h"
#include "sweep/sweep.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace psph;
  std::string cache_dir;
  int threads = 0;
  bench::ObsOptions obs_options;
  util::Cli cli("lemma16_sync_connectivity",
                "Lemmas 16/17: S^r(S^m) connectivity sweep");
  cli.flag("cache-dir", &cache_dir,
           "result-store root; empty disables caching");
  cli.flag("threads", &threads,
           "worker threads for uncached jobs (0 = PSPH_THREADS/default)");
  bench::add_obs_flags(cli, &obs_options);
  cli.parse(argc, argv);
  if (threads > 0) util::set_thread_count(threads);

  bench::Report report(
      "Lemmas 16 and 17",
      "S^r(S^m) is (m - (n - k) - 1)-connected when n >= rk + k");
  report.header(
      "  n+1 m+1  k  r hyp?   facets vertices  expect conn  build");

  const std::vector<std::array<int, 4>> grid{
      {3, 3, 1, 1},
      {4, 4, 1, 1},
      {4, 4, 1, 2},
      {4, 3, 1, 1},
      {5, 5, 1, 1},
      {5, 5, 2, 1},
      {5, 5, 1, 2},
      {3, 3, 1, 2},   // hypothesis violated: n = 2 < rk + k = 3
      {5, 5, 2, 2}};  // hypothesis violated: n = 4 < 6

  const auto emit = [&](const std::array<int, 4>& point,
                        const core::ConnectivityCheck& check,
                        const char* build_time) {
    const auto& [n1, m1, k, r] = point;
    const bool hypothesis = (n1 - 1) >= r * k + k;
    report.row("  %3d %3d %2d %2d %4s %8zu %8zu %7d %4d  %s", n1, m1, k, r,
               hypothesis ? "yes" : "no", check.facet_count,
               check.vertex_count, check.expected, check.measured,
               build_time);
    if (hypothesis) {
      report.check(check.satisfied,
                   "Lemma 16/17 at n+1=" + std::to_string(n1) + " k=" +
                       std::to_string(k) + " r=" + std::to_string(r));
    }
  };

  if (cache_dir.empty()) {
    for (const auto& point : grid) {
      const auto& [n1, m1, k, r] = point;
      util::Timer timer;
      const core::ConnectivityCheck check =
          core::check_sync_connectivity(n1, m1, k, r);
      emit(point, check, timer.pretty().c_str());
    }
    const int obs_exit = bench::finish_obs(obs_options);
    const int exit_code = report.finish();
    return exit_code != 0 ? exit_code : obs_exit;
  }

  std::vector<sweep::JobSpec> jobs;
  for (const auto& [n1, m1, k, r] : grid) {
    jobs.push_back({"lemma16/sync-connectivity", {n1, m1, k, r}, {}});
  }
  sweep::SweepEngine engine({.cache_dir = cache_dir});
  const std::vector<core::ConnectivityCheck> checks =
      sweep::run_sweep<core::ConnectivityCheck>(
          engine, jobs,
          [](const sweep::JobSpec& spec, std::size_t) {
            return core::check_sync_connectivity(
                static_cast<int>(spec.params[0]),
                static_cast<int>(spec.params[1]),
                static_cast<int>(spec.params[2]),
                static_cast<int>(spec.params[3]));
          },
          store::serialize_connectivity_check,
          store::deserialize_connectivity_check);
  for (std::size_t i = 0; i < grid.size(); ++i) emit(grid[i], checks[i], "-");
  std::printf("sweep: %s\n", engine.stats().to_string().c_str());
  const int obs_exit = bench::finish_obs(obs_options);
  const int exit_code = report.finish();
  return exit_code != 0 ? exit_code : obs_exit;
}
