// Lemmas 16 and 17: S^r(S^m) is (m - (n - k) - 1)-connected when
// n >= rk + k. The sweep includes boundary cases where the hypothesis
// *fails* (marked "n/a"), showing the hypothesis is doing real work.

#include "bench_util.h"
#include "core/theorems.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Lemmas 16 and 17",
      "S^r(S^m) is (m - (n - k) - 1)-connected when n >= rk + k");
  report.header(
      "  n+1 m+1  k  r hyp?   facets vertices  expect conn  build");

  for (const auto& [n1, m1, k, r] : std::vector<std::array<int, 4>>{
           {3, 3, 1, 1},
           {4, 4, 1, 1},
           {4, 4, 1, 2},
           {4, 3, 1, 1},
           {5, 5, 1, 1},
           {5, 5, 2, 1},
           {5, 5, 1, 2},
           {3, 3, 1, 2},   // hypothesis violated: n = 2 < rk + k = 3
           {5, 5, 2, 2}}) {  // hypothesis violated: n = 4 < 6
    util::Timer timer;
    const bool hypothesis = (n1 - 1) >= r * k + k;
    const core::ConnectivityCheck check =
        core::check_sync_connectivity(n1, m1, k, r);
    report.row("  %3d %3d %2d %2d %4s %8zu %8zu %7d %4d  %s", n1, m1, k, r,
               hypothesis ? "yes" : "no", check.facet_count,
               check.vertex_count, check.expected, check.measured,
               timer.pretty().c_str());
    if (hypothesis) {
      report.check(check.satisfied,
                   "Lemma 16/17 at n+1=" + std::to_string(n1) + " k=" +
                       std::to_string(k) + " r=" + std::to_string(r));
    }
  }
  return report.finish();
}
