// Lemma 11: the one-round asynchronous complex A¹(S) is a single
// pseudosphere ψ(S; 2^{P-{P_0}}_{>=n-f}, ...). We regenerate A¹ for a sweep
// of (n, f), check the facet/vertex counts predicted by the pseudosphere
// shape, and confirm purity (a pseudosphere over m+1 live positions is pure
// of dimension m).

#include "bench_util.h"
#include "core/async_complex.h"
#include "core/theorems.h"
#include "math/combinatorics.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Lemma 11",
      "A^1(S) is one pseudosphere: facets = prod_i |2^{others}_{>=n-f}|");
  report.header("  n+1  f   facets predicted vertices  pure  build");

  for (const auto& [n1, f] : std::vector<std::array<int, 2>>{
           {3, 1}, {3, 2}, {4, 1}, {4, 2}, {4, 3}, {5, 1}, {5, 2}}) {
    util::Timer timer;
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const topology::SimplicialComplex a1 =
        core::async_round_complex(input, {n1, f, 1}, views, arena);
    const std::uint64_t predicted = core::async_round_facet_count(n1, n1, f);
    // Vertices: per process, the number of admissible heard-sets.
    std::uint64_t per_process = 0;
    for (int j = std::max(n1 - 1 - f, 0); j <= n1 - 1; ++j) {
      per_process += math::binomial(n1 - 1, j);
    }
    report.row("  %3d %2d %8zu %9llu %8zu  %4s  %s", n1, f, a1.facet_count(),
               static_cast<unsigned long long>(predicted),
               a1.count_of_dim(0), a1.is_pure() ? "yes" : "NO",
               timer.pretty().c_str());
    report.check(a1.facet_count() == predicted,
                 "facet count matches Lemma 11 at n+1=" + std::to_string(n1) +
                     " f=" + std::to_string(f));
    report.check(
        a1.count_of_dim(0) == static_cast<std::size_t>(n1) * per_process,
        "vertex count matches at n+1=" + std::to_string(n1) +
            " f=" + std::to_string(f));
    report.check(a1.is_pure() && a1.dimension() == n1 - 1,
                 "pure of dimension n");
  }

  // Sub-participation: A^1(S^m) empty iff m+1 < n+1-f.
  report.header("  participation: n+1 f m+1 -> empty?");
  for (const auto& [n1, f, m1] : std::vector<std::array<int, 3>>{
           {4, 1, 2}, {4, 1, 3}, {4, 2, 2}, {4, 2, 1}, {3, 1, 1}}) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(m1, views, arena);
    const topology::SimplicialComplex a1 =
        core::async_round_complex(input, {n1, f, 1}, views, arena);
    const bool expect_empty = m1 < n1 - f;
    report.row("                %3d %2d %3d -> %s", n1, f, m1,
               a1.empty() ? "empty" : "nonempty");
    report.check(a1.empty() == expect_empty,
                 "emptiness threshold at m+1=" + std::to_string(m1));
  }
  return report.finish();
}
