// k-set agreement frontier: for each (processes, failure budget) of a
// model, the least k the solvability engine can decide SOLVABLE — mapped
// by an exhaustive sweep of decide queries over the (p, f, k) grid.
//
// The sweep runs through sweep::SweepEngine, and the per-job compute passes
// the sweep's own ResultStore into solve::decide, so every decided verdict
// is memoized twice over: once as the sweep's sealed job result and once as
// a kDecision record any later decide() — a psph_serve daemon pointed at
// the same --cache-dir, another sweep, a direct call — hits without
// re-deciding. A second run of this binary with the same --cache-dir is
// pure cache hits (the final line prints the hit counts to prove it).
//
// Checked property per (p, f) column: the solvable set is upward closed in
// k — once k-set agreement is solvable, (k+1)-set agreement is too.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "solve/decide.h"
#include "solve/engine.h"
#include "store/serialize.h"
#include "sweep/sweep.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace psph;

  std::string model_name = "async";
  std::string engine_name = "portfolio";
  std::string cache_dir;
  int max_processes = 3;
  int rounds = 1;
  int mu = 1;
  int threads = 0;

  util::Cli cli("kset_frontier",
                "Map the k-set-agreement solvability frontier of a model "
                "with cached, sweep-driven decide queries");
  cli.flag_choice("model", &model_name, {"async", "sync", "semisync", "iis"},
                  "timing model");
  cli.flag_choice("engine", &engine_name,
                  {"propagate", "learn", "portfolio"}, "engine stage");
  cli.flag("cache-dir", &cache_dir,
           "ResultStore root shared with psph_serve / other sweeps "
           "(empty = no caching)");
  cli.flag("n", &max_processes, "largest process count to map");
  cli.flag("r", &rounds, "rounds");
  cli.flag("mu", &mu, "semisync synchrony bound");
  cli.flag("threads", &threads, "worker threads (0 = PSPH_THREADS/default)");
  cli.parse(argc, argv);
  if (threads > 0) util::set_thread_count(threads);

  const solve::Model model = *solve::parse_model(model_name);
  solve::EngineOptions engine_options;
  engine_options.stage = engine_name == "propagate"
                             ? solve::EngineStage::kPropagate
                         : engine_name == "learn"
                             ? solve::EngineStage::kLearn
                             : solve::EngineStage::kPortfolio;

  // One job per grid point. The JobSpec key doubles as the sweep's cache
  // key; decide() keys its own kDecision entry independently.
  struct Point {
    solve::DecideRequest request;
  };
  std::vector<Point> points;
  std::vector<sweep::JobSpec> jobs;
  for (int p = 2; p <= max_processes; ++p) {
    const int max_f = model == solve::Model::kIis ? 0 : p - 1;
    for (int f = 0; f <= max_f; ++f) {
      for (int k = 1; k <= p; ++k) {
        solve::DecideRequest request;
        request.model = model;
        request.processes = p;
        request.f = f;
        request.k = k;
        request.mu = model == solve::Model::kSemiSync ? mu : 0;
        request.rounds = rounds;
        points.push_back({solve::normalize(request)});
        sweep::JobSpec job;
        job.kind = "solve/kset_frontier";
        job.params = {static_cast<std::int64_t>(model), p, f, k,
                      points.back().request.mu, rounds,
                      static_cast<std::int64_t>(solve::kDecisionEngineVersion)};
        jobs.push_back(std::move(job));
      }
    }
  }

  sweep::SweepOptions sweep_options;
  sweep_options.cache_dir = cache_dir;
  sweep::SweepEngine sweep_engine(sweep_options);

  util::Timer timer;
  const std::vector<store::DecisionRecord> records =
      sweep::run_sweep<store::DecisionRecord>(
          sweep_engine, jobs,
          [&](const sweep::JobSpec&, std::size_t index) {
            return store::deserialize_decision(solve::decide_sealed(
                points[index].request, engine_options, sweep_engine.store()));
          },
          store::serialize_decision, store::deserialize_decision);
  const std::string wall = timer.pretty();

  bench::Report report(
      "k-set agreement frontier (" + model_name + ", r=" +
          std::to_string(rounds) + ", engine=" + engine_name + ")",
      "least solvable k per (processes, f); solvability is upward closed "
      "in k");
  report.header("  n+1  f   verdicts by k=1.. (s=solvable, x=impossible)"
                "   min solvable k");
  std::size_t at = 0;
  for (int p = 2; p <= max_processes; ++p) {
    const int max_f = model == solve::Model::kIis ? 0 : p - 1;
    for (int f = 0; f <= max_f; ++f) {
      std::string verdicts;
      int frontier = -1;
      bool upward_closed = true;
      for (int k = 1; k <= p; ++k, ++at) {
        const store::DecisionRecord& record = records[at];
        report.check(record.exhausted,
                     "decide exhausted at p=" + std::to_string(p) +
                         " f=" + std::to_string(f) + " k=" + std::to_string(k));
        verdicts += record.solvable ? 's' : 'x';
        if (record.solvable && frontier < 0) frontier = k;
        if (!record.solvable && frontier >= 0) upward_closed = false;
      }
      report.row("  %3d %2d   %-44s  %s", p, f, verdicts.c_str(),
                 frontier < 0 ? "none" : std::to_string(frontier).c_str());
      report.check(upward_closed,
                   "upward closure at p=" + std::to_string(p) +
                       " f=" + std::to_string(f));
    }
  }

  const sweep::SweepStats& stats = sweep_engine.stats();
  std::printf(
      "sweep: %zu jobs, %zu cache hits, %zu computed, wall %s%s\n",
      stats.jobs, stats.cache_hits, stats.computed, wall.c_str(),
      cache_dir.empty() ? " (uncached; pass --cache-dir to memoize)" : "");
  return report.finish();
}
