// Figure 3: the one-round three-process synchronous protocol complex with
// at most one failure, assembled as the union of the failure-free
// pseudosphere and the three single-failure pseudospheres. We regenerate
// each piece and the union, reporting the counts visible in the figure,
// then sweep the number of processes.

#include "bench_util.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "topology/homology.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Figure 3",
      "S^1(S^2) with k=1 = failure-free pseudosphere ∪ three single-failure "
      "pseudospheres: 1 triangle + 9 maximal edges on 9 vertices");

  {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(3, views, arena);
    report.header("  piece                facets vertices dim");
    const topology::SimplicialComplex none =
        core::sync_round_complex_for_failset(input, {}, views, arena);
    report.row("  no failures        %7zu %8zu %3d", none.facet_count(),
               none.count_of_dim(0), none.dimension());
    report.check(none.facet_count() == 1, "failure-free piece is one facet");
    for (core::ProcessId victim = 0; victim < 3; ++victim) {
      const topology::SimplicialComplex piece =
          core::sync_round_complex_for_failset(input, {victim}, views, arena);
      report.row("  K = {P%d}           %7zu %8zu %3d", victim,
                 piece.facet_count(), piece.count_of_dim(0),
                 piece.dimension());
      report.check(piece.facet_count() == 4,
                   "single-failure piece is a 4-facet pseudosphere");
    }
    const topology::SimplicialComplex all = core::sync_round_complex(
        input, {3, 1, 1, 1}, views, arena);
    report.row("  union              %7zu %8zu %3d", all.facet_count(),
               all.count_of_dim(0), all.dimension());
    report.check(all.facet_count() == 10, "union has 10 maximal simplexes");
    report.check(all.count_of_dim(0) == 9, "union has 9 vertices");
    report.check(topology::homological_connectivity(all, 0) >= 0,
                 "union is connected (Lemma 16 at m=n=2, k=1)");
  }

  report.header("  sweep: n+1  k   facets vertices  conn>=  build");
  for (const auto& [n1, k] :
       std::vector<std::array<int, 2>>{{3, 1}, {4, 1}, {4, 2}, {5, 1}}) {
    util::Timer timer;
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const topology::SimplicialComplex s1 = core::sync_round_complex(
        input, {n1, k, k, 1}, views, arena);
    const int expected = (n1 - 1) - ((n1 - 1) - k) - 1;  // k - 1
    const int measured =
        topology::homological_connectivity(s1, std::max(expected, 0));
    report.row("        %3d %3d %8zu %8zu %7d  %s", n1, k, s1.facet_count(),
               s1.count_of_dim(0), measured, timer.pretty().c_str());
    if ((n1 - 1) >= 2 * k) {
      report.check(measured >= expected,
                   "Lemma 16 connectivity at n+1=" + std::to_string(n1) +
                       " k=" + std::to_string(k));
    }
  }
  return report.finish();
}
