// Bridge cross-validation: exhaustive executor enumerations must regenerate
// the theoretical protocol complexes *exactly* (literal equality of facet
// sets over a shared vertex arena). This is the strongest end-to-end check
// that the executable model semantics and the paper's constructions agree.

#include "bench_util.h"
#include "core/async_complex.h"
#include "core/semisync_complex.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "sim/async_executor.h"
#include "sim/bridge.h"
#include "sim/semisync_round_enum.h"
#include "sim/sync_executor.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Bridge",
      "exhaustive simulation == theoretical construction (literal equality)");
  report.header("  model  n+1  f/k  r     traces   facets  equal?   time");

  // Synchronous instances.
  for (const auto& [n1, k, r] : std::vector<std::array<int, 3>>{
           {3, 1, 1}, {3, 1, 2}, {4, 1, 1}, {4, 2, 1}, {3, 2, 1}}) {
    util::Timer timer;
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const topology::SimplicialComplex theory = core::sync_protocol_complex(
        input, {n1, r * k, k, r}, views, arena);
    sim::TraceComplexBuilder builder(arena);
    std::vector<std::int64_t> inputs;
    for (int p = 0; p < n1; ++p) inputs.push_back(p);
    sim::enumerate_sync_executions(
        inputs, r, r * k, k, views,
        [&](const sim::Trace& trace) { builder.add(trace); });
    const bool equal = builder.complex() == theory;
    report.row("  sync   %3d  %3d %2d %10zu %8zu  %-6s %s", n1, k, r,
               builder.traces_added(), theory.facet_count(),
               equal ? "yes" : "NO", timer.pretty().c_str());
    report.check(equal, "sync bridge at n+1=" + std::to_string(n1) + " k=" +
                            std::to_string(k) + " r=" + std::to_string(r));
  }

  // Asynchronous instances.
  for (const auto& [n1, f, r] : std::vector<std::array<int, 3>>{
           {3, 1, 1}, {3, 1, 2}, {3, 2, 1}, {4, 1, 1}, {4, 2, 1}}) {
    util::Timer timer;
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const topology::SimplicialComplex theory =
        core::async_protocol_complex(input, {n1, f, r}, views, arena);
    sim::TraceComplexBuilder builder(arena);
    std::vector<std::int64_t> inputs;
    for (int p = 0; p < n1; ++p) inputs.push_back(p);
    sim::AsyncRunConfig config{n1, f, r, {}};
    sim::enumerate_async_executions(
        inputs, config, views,
        [&](const sim::Trace& trace) { builder.add(trace); });
    const bool equal = builder.complex() == theory;
    report.row("  async  %3d  %3d %2d %10zu %8zu  %-6s %s", n1, f, r,
               builder.traces_added(), theory.facet_count(),
               equal ? "yes" : "NO", timer.pretty().c_str());
    report.check(equal, "async bridge at n+1=" + std::to_string(n1) + " f=" +
                            std::to_string(f) + " r=" + std::to_string(r));
  }

  // Semi-synchronous instances (microround-level message simulation).
  for (const auto& [n1, k, mu] : std::vector<std::array<int, 3>>{
           {3, 1, 2}, {3, 1, 3}, {3, 2, 2}, {4, 1, 2}, {4, 1, 3}}) {
    util::Timer timer;
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const topology::SimplicialComplex theory = core::semisync_round_complex(
        input, {n1, k, k, mu, 1}, views, arena);
    sim::TraceComplexBuilder builder(arena);
    std::vector<std::int64_t> inputs;
    for (int p = 0; p < n1; ++p) inputs.push_back(p);
    sim::enumerate_semisync_round_executions(
        inputs, k, mu, views,
        [&](const sim::Trace& trace) { builder.add(trace); });
    const bool equal = builder.complex() == theory;
    report.row("  semi   %3d  %3d %2d %10zu %8zu  %-6s %s (mu=%d)", n1, k, 1,
               builder.traces_added(), theory.facet_count(),
               equal ? "yes" : "NO", timer.pretty().c_str(), mu);
    report.check(equal, "semisync bridge at n+1=" + std::to_string(n1) +
                            " k=" + std::to_string(k) + " mu=" +
                            std::to_string(mu));
  }
  return report.finish();
}
