// psph_loadgen — concurrent load generator for the psph_serve daemon.
//
// Drives thousands of mixed queries (connectivity / homology /
// complex_stats / decide) over N client connections with pipelined
// in-flight windows, and reports throughput plus client-side latency
// percentiles per kind, the server's coalescing counters, and the store
// hit rate. With --verify (default on) every ok response is compared
// against the batch compute path executed in-process — any byte of
// divergence is a hard failure, which is what makes the fault-injected
// soak (--fault-seed) meaningful: faults may cost misses and recomputes,
// never wrong bytes.
//
//   psph_loadgen                         # in-process server, 2000 queries
//   psph_loadgen --socket=/tmp/p.sock    # against an external daemon
//   psph_loadgen --fault-seed=7 --json-out=BENCH_serve.json   # soak
//
// Exits nonzero on any verification mismatch, wedged connection, or if the
// run produced no successful responses.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "check/fault_fs.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/queries.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "util/cli.h"
#include "util/random.h"

namespace fs = std::filesystem;
using namespace psph;
using Clock = std::chrono::steady_clock;

namespace {

/// The workload pool: a dozen distinct query shapes across all four kinds.
/// Small instances (the daemon's sweet spot: high query rate against a warm
/// store) with a couple of heavier ones mixed in. Weights sum to 100.
struct Shape {
  const char* json;
  int weight;
};
constexpr Shape kShapes[] = {
    {"{\"kind\":\"connectivity\",\"model\":\"async\",\"processes\":3,\"f\":1}", 14},
    {"{\"kind\":\"connectivity\",\"model\":\"async\",\"processes\":4,\"f\":1}", 8},
    {"{\"kind\":\"connectivity\",\"model\":\"sync\",\"processes\":3,\"k\":1}", 10},
    {"{\"kind\":\"connectivity\",\"model\":\"semisync\",\"processes\":3,\"k\":1,\"mu\":2}", 8},
    {"{\"kind\":\"connectivity\",\"model\":\"pseudosphere\",\"sizes\":[2,2,2]}", 10},
    {"{\"kind\":\"connectivity\",\"model\":\"pseudosphere\",\"sizes\":[3,2,3]}", 5},
    {"{\"kind\":\"complex_stats\",\"model\":\"async\",\"processes\":3,\"f\":1,\"rounds\":2}", 10},
    {"{\"kind\":\"complex_stats\",\"model\":\"sync\",\"processes\":4,\"k\":1}", 8},
    {"{\"kind\":\"homology\",\"model\":\"async\",\"processes\":3,\"f\":1,\"max_dim\":2}", 8},
    {"{\"kind\":\"homology\",\"model\":\"pseudosphere\",\"sizes\":[2,2,2,2],\"max_dim\":2}", 7},
    {"{\"kind\":\"decide\",\"model\":\"async\",\"processes\":3,\"f\":1,\"k\":1}", 7},
    {"{\"kind\":\"decide\",\"model\":\"sync\",\"processes\":3,\"f\":1,\"k\":1,\"rounds\":2}", 5},
};

struct Sample {
  int shape = 0;
  std::uint64_t us = 0;
};

struct WorkerResult {
  std::vector<Sample> samples;
  std::uint64_t ok = 0;
  std::uint64_t cached = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t overloaded_retries = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t dropped = 0;     // gave up after max retries
  std::uint64_t mismatches = 0;  // verification failures (must stay 0)
  std::uint64_t errors = 0;      // unexpected error responses
  bool wedged = false;
};

std::uint64_t percentile(std::vector<std::uint64_t>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const std::size_t index = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[index];
}

check::FaultPlan plan_from_seed(std::uint64_t seed, std::size_t horizon) {
  util::Rng rng(seed);
  check::FaultPlan plan;
  std::set<std::size_t>* categories[] = {
      &plan.fail_writes,    &plan.short_writes,  &plan.fail_renames,
      &plan.fail_dir_syncs, &plan.corrupt_reads, &plan.truncate_reads,
  };
  for (std::set<std::size_t>* category : categories) {
    for (std::size_t op = 0; op < horizon; ++op) {
      if (rng.next_below(16) == 0) category->insert(op);
    }
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket;
  std::string store_dir;
  std::string json_out;
  int queries = 2000;
  int connections = 16;
  int inflight = 8;
  std::int64_t seed = 1;
  std::int64_t deadline_ms = 0;
  std::int64_t fault_seed = 0;
  bool verify = true;

  util::Cli cli("psph_loadgen", "concurrent load generator for psph_serve");
  cli.flag("socket", &socket,
           "daemon socket; empty starts an in-process server");
  cli.flag("store-dir", &store_dir,
           "store root for the in-process server (empty: fresh temp dir)");
  cli.flag("queries", &queries, "total queries across all connections");
  cli.flag("connections", &connections, "concurrent client connections");
  cli.flag("inflight", &inflight, "pipelined requests per connection");
  cli.flag("seed", &seed, "workload shuffle seed");
  cli.flag("deadline-ms", &deadline_ms,
           "per-query deadline (0 = none); expirations are counted, not "
           "failures");
  cli.flag("fault-seed", &fault_seed,
           "nonzero: in-process server runs its store over an injected-"
           "fault filesystem (soak mode)");
  cli.flag("verify", &verify,
           "compare every response against the in-process batch path");
  cli.flag("json-out", &json_out, "write the report JSON here");
  cli.parse(argc, argv);

  bench::warn_if_unoptimized_build();

  // Parse + normalize the shape pool once; precompute expected bodies for
  // verification through the exact batch path.
  std::vector<serve::Query> shape_queries;
  std::vector<serve::Json> shape_requests;
  std::vector<std::string> expected_body;
  for (const Shape& shape : kShapes) {
    serve::Json request = serve::Json::parse(shape.json);
    if (deadline_ms > 0) {
      request.set("deadline_ms", serve::Json::integer(deadline_ms));
    }
    const serve::ParsedRequest parsed = serve::parse_request(request);
    if (!parsed.query.has_value()) {
      std::fprintf(stderr, "bad shape %s: %s\n", shape.json,
                   parsed.error->message.c_str());
      return 2;
    }
    shape_queries.push_back(*parsed.query);
    shape_requests.push_back(std::move(request));
    expected_body.push_back(
        verify ? serve::render_result(*parsed.query,
                                      serve::compute_sealed(*parsed.query))
                     .dump()
               : std::string());
  }

  // Optional in-process server.
  fs::path temp_root;
  std::unique_ptr<serve::Server> server;
  if (socket.empty()) {
    temp_root = fs::temp_directory_path() /
                ("psph_loadgen_" + std::to_string(::getpid()));
    fs::create_directories(temp_root);
    serve::ServerOptions options;
    options.socket_path = (temp_root / "serve.sock").string();
    options.store_dir =
        store_dir.empty() ? (temp_root / "store").string() : store_dir;
    if (fault_seed != 0) {
      options.fs = std::make_shared<check::FaultyFsOps>(
          plan_from_seed(static_cast<std::uint64_t>(fault_seed), 100'000));
    }
    server = std::make_unique<serve::Server>(options);
    server->start();
    socket = options.socket_path;
  } else if (fault_seed != 0) {
    std::fprintf(stderr,
                 "--fault-seed needs the in-process server (omit --socket)\n");
    return 2;
  }

  const int per_connection = std::max(1, queries / std::max(1, connections));
  const int window = std::max(1, inflight);
  std::vector<WorkerResult> results(static_cast<std::size_t>(connections));
  std::vector<std::thread> workers;

  const Clock::time_point wall_start = Clock::now();
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerResult& out = results[static_cast<std::size_t>(c)];
      util::Rng rng(static_cast<std::uint64_t>(seed) * 1000003u +
                    static_cast<std::uint64_t>(c));
      // Weighted shape sequence for this connection.
      std::vector<int> plan;
      plan.reserve(static_cast<std::size_t>(per_connection));
      for (int i = 0; i < per_connection; ++i) {
        std::uint64_t pick = rng.next_below(100);
        int chosen = 0;
        for (std::size_t s = 0; s < std::size(kShapes); ++s) {
          if (pick < static_cast<std::uint64_t>(kShapes[s].weight)) {
            chosen = static_cast<int>(s);
            break;
          }
          pick -= static_cast<std::uint64_t>(kShapes[s].weight);
        }
        plan.push_back(chosen);
      }

      try {
        serve::Client client(socket);
        struct InFlight {
          int shape;
          int attempts;
          Clock::time_point sent;
        };
        std::map<std::int64_t, InFlight> pending;
        std::int64_t next_id = 1;
        std::size_t cursor = 0;
        constexpr int kMaxAttempts = 6;

        const auto send_shape = [&](int shape, int attempts) {
          serve::Json request = shape_requests[static_cast<std::size_t>(shape)];
          request.set("id", serve::Json::integer(next_id));
          client.send(request);
          pending[next_id] = InFlight{shape, attempts, Clock::now()};
          ++next_id;
        };

        while (cursor < plan.size() && pending.size() <
                                           static_cast<std::size_t>(window)) {
          send_shape(plan[cursor++], 1);
        }
        while (!pending.empty()) {
          const serve::Json response = client.recv();
          const std::int64_t id = response.get("id")->as_int();
          const auto it = pending.find(id);
          if (it == pending.end()) continue;  // stray (shouldn't happen)
          const InFlight flight = it->second;
          pending.erase(it);

          if (response.get("ok")->as_bool()) {
            ++out.ok;
            const std::uint64_t us = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - flight.sent)
                    .count());
            out.samples.push_back({flight.shape, us});
            if (response.get("cached")->as_bool()) ++out.cached;
            if (response.get("coalesced")->as_bool()) ++out.coalesced;
            if (verify &&
                response.get("result")->dump() !=
                    expected_body[static_cast<std::size_t>(flight.shape)]) {
              ++out.mismatches;
            }
          } else {
            const std::string code =
                response.get("error")->get("code")->as_string();
            if (code == "overloaded" && flight.attempts < kMaxAttempts) {
              ++out.overloaded_retries;
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(1 << flight.attempts));
              send_shape(flight.shape, flight.attempts + 1);
            } else if (code == "overloaded") {
              ++out.dropped;
            } else if (code == "deadline_exceeded") {
              ++out.deadline_exceeded;
            } else {
              ++out.errors;
            }
          }
          if (cursor < plan.size()) send_shape(plan[cursor++], 1);
        }
      } catch (const std::exception& error) {
        std::fprintf(stderr, "connection %d wedged: %s\n", c, error.what());
        out.wedged = true;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  // Merge.
  WorkerResult total;
  std::vector<std::uint64_t> all_us;
  std::map<int, std::vector<std::uint64_t>> per_kind_us;
  for (const WorkerResult& r : results) {
    total.ok += r.ok;
    total.cached += r.cached;
    total.coalesced += r.coalesced;
    total.overloaded_retries += r.overloaded_retries;
    total.deadline_exceeded += r.deadline_exceeded;
    total.dropped += r.dropped;
    total.mismatches += r.mismatches;
    total.errors += r.errors;
    total.wedged = total.wedged || r.wedged;
    for (const Sample& sample : r.samples) {
      all_us.push_back(sample.us);
      per_kind_us[static_cast<int>(
                      shape_queries[static_cast<std::size_t>(sample.shape)]
                          .kind)]
          .push_back(sample.us);
    }
  }
  std::sort(all_us.begin(), all_us.end());

  // Server-side counters over the wire (works for external daemons too).
  serve::Json server_stats = serve::Json::object();
  try {
    serve::Client probe(socket);
    const serve::Json response =
        probe.call(serve::Client::request(0, "stats"));
    if (response.get("ok")->as_bool()) server_stats = *response.get("result");
  } catch (const std::exception&) {
    // stats are best-effort; the client-side numbers stand alone
  }

  if (server != nullptr) server->stop();

  serve::Json report = serve::Json::object();
  {
    serve::Json context = serve::Json::object();
    for (const auto& [key, value] : bench::bench_context()) {
      context.set(key, serve::Json::string(value));
    }
    context.set("queries", serve::Json::integer(queries));
    context.set("connections", serve::Json::integer(connections));
    context.set("inflight", serve::Json::integer(window));
    context.set("seed", serve::Json::integer(seed));
    context.set("fault_seed", serve::Json::integer(fault_seed));
    context.set("deadline_ms", serve::Json::integer(deadline_ms));
    report.set("context", std::move(context));
  }
  {
    serve::Json totals = serve::Json::object();
    totals.set("ok", serve::Json::integer(static_cast<std::int64_t>(total.ok)));
    totals.set("cached",
               serve::Json::integer(static_cast<std::int64_t>(total.cached)));
    totals.set("coalesced", serve::Json::integer(
                                static_cast<std::int64_t>(total.coalesced)));
    totals.set("overloaded_retries",
               serve::Json::integer(
                   static_cast<std::int64_t>(total.overloaded_retries)));
    totals.set("deadline_exceeded",
               serve::Json::integer(
                   static_cast<std::int64_t>(total.deadline_exceeded)));
    totals.set("dropped",
               serve::Json::integer(static_cast<std::int64_t>(total.dropped)));
    totals.set("verify_mismatches", serve::Json::integer(static_cast<
                                        std::int64_t>(total.mismatches)));
    totals.set("unexpected_errors",
               serve::Json::integer(static_cast<std::int64_t>(total.errors)));
    totals.set("wall_seconds", serve::Json::number(wall_s));
    totals.set("throughput_qps",
               serve::Json::number(wall_s > 0
                                       ? static_cast<double>(total.ok) / wall_s
                                       : 0.0));
    report.set("totals", std::move(totals));
  }
  {
    serve::Json latency = serve::Json::object();
    const auto emit = [](std::vector<std::uint64_t>& us) {
      std::sort(us.begin(), us.end());
      serve::Json entry = serve::Json::object();
      entry.set("count",
                serve::Json::integer(static_cast<std::int64_t>(us.size())));
      entry.set("p50_us", serve::Json::integer(
                              static_cast<std::int64_t>(percentile(us, 0.50))));
      entry.set("p90_us", serve::Json::integer(
                              static_cast<std::int64_t>(percentile(us, 0.90))));
      entry.set("p99_us", serve::Json::integer(
                              static_cast<std::int64_t>(percentile(us, 0.99))));
      return entry;
    };
    latency.set("all", emit(all_us));
    for (auto& [kind, us] : per_kind_us) {
      latency.set(serve::kind_name(static_cast<serve::QueryKind>(kind)),
                  emit(us));
    }
    report.set("latency", std::move(latency));
  }
  report.set("server", std::move(server_stats));

  const std::string text = report.dump();
  std::printf("%s\n", text.c_str());
  if (!json_out.empty()) {
    std::FILE* file = std::fopen(json_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::fprintf(stderr, "report -> %s\n", json_out.c_str());
  }

  if (!temp_root.empty()) {
    std::error_code ec;
    fs::remove_all(temp_root, ec);
  }

  if (total.wedged || total.mismatches != 0 || total.errors != 0 ||
      total.ok == 0) {
    std::fprintf(stderr,
                 "loadgen FAIL: wedged=%d mismatches=%llu errors=%llu ok=%llu\n",
                 total.wedged ? 1 : 0,
                 static_cast<unsigned long long>(total.mismatches),
                 static_cast<unsigned long long>(total.errors),
                 static_cast<unsigned long long>(total.ok));
    return 1;
  }
  return 0;
}
