#pragma once

// Shared output helpers for the experiment binaries. Each binary prints a
// header, one row per configuration, and a PASS/FAIL summary; it exits
// nonzero if any checked property failed, so `for b in build/bench/*; do $b;
// done` doubles as an acceptance run.

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <utility>

#include "math/simd.h"
#include "obs/obs.h"
#include "util/cli.h"
#include "util/parallel.h"

namespace psph::bench {

/// CMake build type this binary was compiled under ("Release",
/// "RelWithDebInfo", "Debug", ...), for stamping measured output.
inline const char* build_type() {
#ifdef PSPH_BUILD_TYPE
  return PSPH_BUILD_TYPE;
#else
  return "unknown";
#endif
}

/// Prints an unmissable warning when timing numbers are about to come out
/// of an unoptimized binary. Release and RelWithDebInfo both compile with
/// -O2 -DNDEBUG and are fine; anything else (notably Debug, -O0) produces
/// numbers that must not be recorded as baselines. Returns true if the
/// build is optimized.
inline bool warn_if_unoptimized_build() {
  const std::string type = build_type();
  if (type == "Release" || type == "RelWithDebInfo") return true;
  std::fprintf(stderr,
               "********************************************************\n"
               "* WARNING: this benchmark binary was built as '%s'.\n"
               "* Timings from unoptimized builds are meaningless; do\n"
               "* NOT record them as baselines. Rebuild with\n"
               "*   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release\n"
               "* (the bench_json target does this automatically).\n"
               "********************************************************\n",
               type.c_str());
  return false;
}

/// The measurement context every JSON-emitting benchmark stamps into its
/// output: build type, visible CPUs, pool size, and the SIMD dispatch level
/// actually selected at runtime. The google-benchmark binaries feed these
/// to AddCustomContext; hand-rolled emitters (psph_loadgen) write them into
/// their own JSON — one definition keeps the field set in sync.
inline std::vector<std::pair<std::string, std::string>> bench_context() {
  return {
      {"build_type", build_type()},
      {"hardware_concurrency",
       std::to_string(std::thread::hardware_concurrency())},
      {"psph_threads", std::to_string(util::thread_count())},
      {"simd_dispatch", math::simd_level_name(math::simd_level())},
  };
}

/// Prints a warning when the machine exposes a single hardware thread:
/// parallel speedups cannot show up, so multi-thread timings recorded here
/// describe scheduling overhead, not the engine. Returns the detected
/// count (0 when unknown, per the standard).
inline unsigned warn_if_single_cpu() {
  const unsigned cpus = std::thread::hardware_concurrency();
  if (cpus == 1) {
    std::fprintf(stderr,
                 "********************************************************\n"
                 "* WARNING: only 1 hardware thread is visible. Parallel\n"
                 "* paths will run inline; do not read thread-scaling\n"
                 "* conclusions out of timings from this machine.\n"
                 "********************************************************\n");
  }
  return cpus;
}

/// Consumes a leading-anywhere `--threads=N` / `--threads N` flag, applying
/// it via util::set_thread_count, and compacts argv. Returns the new argc.
/// The perf binaries call this before benchmark::Initialize so the flag
/// coexists with google-benchmark's own arguments. A --threads with no
/// value or a malformed count is a hard error (exit 2), not a silent
/// fallback to a default thread count.
inline int apply_threads_flag(int argc, char** argv) {
  const auto parse_count = [](const char* text) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (*text == '\0' || end == nullptr || *end != '\0' || errno == ERANGE ||
        value < INT_MIN || value > INT_MAX) {
      std::fprintf(stderr, "bad value for --threads: '%s'\n", text);
      std::exit(2);
    }
    return static_cast<int>(value);
  };
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      util::set_thread_count(parse_count(argv[i] + 10));
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "flag --threads needs a value but is last on the "
                     "command line\n");
        std::exit(2);
      }
      util::set_thread_count(parse_count(argv[++i]));
      continue;
    }
    argv[out++] = argv[i];
  }
  for (int i = out; i < argc; ++i) argv[i] = nullptr;
  return out;
}

/// Observability output requested on the command line. Every bench binary
/// accepts the same two flags: --stats prints the aggregated span/counter
/// table after the run, --trace-out=<file> writes a Chrome trace_event JSON
/// loadable in chrome://tracing or https://ui.perfetto.dev. Recording is
/// additionally gated by PSPH_OBS (PSPH_OBS=0 disables it entirely).
struct ObsOptions {
  std::string trace_out;
  bool stats = false;
};

/// Registers --trace-out / --stats on a util::Cli (the sweep binaries).
inline void add_obs_flags(util::Cli& cli, ObsOptions* options) {
  cli.flag("trace-out", &options->trace_out,
           "write Chrome trace_event JSON here (chrome://tracing)");
  cli.flag("stats", &options->stats,
           "print the observability stats table after the run");
}

/// Consumes --trace-out=<file> / --trace-out <file> / --stats from argv and
/// compacts it, same contract as apply_threads_flag. For the
/// google-benchmark binaries, whose argv must be filtered before
/// benchmark::Initialize rejects unknown flags.
inline int apply_obs_flags(int argc, char** argv, ObsOptions* options) {
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      options->trace_out = argv[i] + 12;
      continue;
    }
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "flag --trace-out needs a value but is last on the "
                     "command line\n");
        std::exit(2);
      }
      options->trace_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--stats") == 0) {
      options->stats = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  for (int i = out; i < argc; ++i) argv[i] = nullptr;
  return out;
}

/// Emits the requested observability output at the end of a run. Returns 0,
/// or 1 when a requested trace file could not be written (so callers can
/// fold it into the exit code).
inline int finish_obs(const ObsOptions& options) {
  if (options.stats) {
    std::fputs(obs::stats_table().c_str(), stdout);
  }
  if (options.trace_out.empty()) return 0;
  if (!obs::write_trace(options.trace_out)) {
    std::fprintf(stderr, "failed to write trace to %s\n",
                 options.trace_out.c_str());
    return 1;
  }
  std::printf("trace -> %s (load in chrome://tracing or ui.perfetto.dev)\n",
              options.trace_out.c_str());
  return 0;
}

class Report {
 public:
  Report(std::string experiment, std::string claim)
      : experiment_(std::move(experiment)) {
    std::printf("=== %s ===\n", experiment_.c_str());
    std::printf("claim: %s\n", claim.c_str());
  }

  void header(const std::string& columns) {
    std::printf("%s\n", columns.c_str());
  }

  template <typename... Args>
  void row(const char* format, Args... args) {
    std::printf(format, args...);
    std::printf("\n");
  }

  /// Records one checked property; prints a marker on failure.
  void check(bool ok, const std::string& what) {
    ++checks_;
    if (!ok) {
      ++failures_;
      std::printf("  CHECK FAILED: %s\n", what.c_str());
    }
  }

  /// Prints the summary; returns the process exit code.
  int finish() {
    std::printf("%s: %zu/%zu checks passed\n\n", experiment_.c_str(),
                checks_ - failures_, checks_);
    return failures_ == 0 ? 0 : 1;
  }

 private:
  std::string experiment_;
  std::size_t checks_ = 0;
  std::size_t failures_ = 0;
};

}  // namespace psph::bench
