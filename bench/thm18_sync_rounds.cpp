// Theorem 18: synchronous f-resilient k-set agreement needs ⌊f/k⌋ + 1
// rounds when n > f + k, and ⌊f/k⌋ rounds when n < f + k (the easier case:
// fewer processes than failures-plus-degree). Three independent
// regenerations of the bound:
//   1. the decision-map search proves impossibility at r = ⌊f/k⌋ on small
//      instances and finds a witness at r = ⌊f/k⌋ + 1;
//   2. the FloodMin rule fails below the bound and succeeds at it on the
//      full constructed complex;
//   3. the FloodSet protocol, run through the simulator against random
//      adversaries, never violates k-agreement at the bound.

#include "bench_util.h"
#include "check/soak.h"
#include "core/theorems.h"
#include "protocols/floodset.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace psph;

  std::int64_t seed = 180000;
  std::string schedule_out, schedule_in;
  util::Cli cli("thm18_sync_rounds",
                "sync k-set agreement takes exactly floor(f/k)+1 rounds");
  cli.flag("seed", &seed, "base seed for the protocol soaks");
  cli.flag("schedule-out", &schedule_out,
           "record one FloodSet adversary schedule to this file");
  cli.flag("schedule-in", &schedule_in,
           "replay a recorded schedule under the monitors and exit");
  cli.parse(argc, argv);

  if (!schedule_in.empty()) {
    const check::RunOutcome outcome =
        check::replay_schedule(check::load_schedule(schedule_in));
    std::printf("replayed %s: %s\n", outcome.schedule.summary().c_str(),
                outcome.ok() ? "ok" : outcome.violations.front().detail.c_str());
    return outcome.ok() ? 0 : 1;
  }

  bench::Report report(
      "Theorem 18",
      "sync k-set agreement takes exactly floor(f/k)+1 rounds");

  report.header(
      "  search: n+1  f  k  r    facets      nodes   verdict      build");
  struct Case {
    int n1, f, k, r;
    bool expect_impossible;
  };
  for (const Case& c : std::vector<Case>{
           {3, 1, 1, 1, true},    // n >= f+k, r = floor(f/k): impossible
           {3, 1, 1, 2, false},   // r = floor(f/k)+1: solvable
           {4, 1, 1, 1, true},
           {4, 1, 1, 2, false},
           {4, 2, 2, 1, false},   // n = 3 < f+k = 4: floor(f/k) rounds do
           {4, 2, 2, 2, false},   //   suffice (Theorem 18, second case)
       }) {
    util::Timer timer;
    const core::AgreementCheck check =
        core::check_sync_agreement(c.n1, c.f, c.k, c.r);
    const char* verdict = check.impossible ? "impossible"
                          : check.possible ? "solvable"
                                           : "inconclusive";
    report.row("          %3d %2d %2d %2d %9zu %10llu   %-10s %s", c.n1, c.f,
               c.k, c.r, check.protocol_facets,
               static_cast<unsigned long long>(check.nodes), verdict,
               timer.pretty().c_str());
    report.check(check.search_exhausted &&
                 check.impossible == c.expect_impossible,
                 "search verdict at n+1=" + std::to_string(c.n1) + " f=" +
                     std::to_string(c.f) + " k=" + std::to_string(c.k) +
                     " r=" + std::to_string(c.r));
  }

  report.header("  FloodMin on the complex: n+1  f  k case  rounds -> ok?");
  for (const auto& [n1, f, k] : std::vector<std::array<int, 3>>{
           {3, 1, 1}, {4, 1, 1}, {4, 2, 2}, {3, 2, 2}, {4, 2, 1}}) {
    const int n = n1 - 1;
    // n >= f + k: the hard case, floor(f/k)+1 rounds needed; n < f + k:
    // floor(f/k) rounds suffice (Theorem 18's case split).
    const bool hard_case = n >= f + k;
    const int bound = f / k + (hard_case ? 1 : 0);
    const bool below =
        bound >= 2 ? core::floodmin_solves_sync(n1, f, k, bound - 1) : false;
    const bool at = core::floodmin_solves_sync(n1, f, k, bound);
    report.row("                 %3d %2d %2d %-6s %d->%-3s %d->%s", n1, f, k,
               hard_case ? "hard" : "easy", bound - 1,
               bound >= 2 ? (below ? "ok" : "fail") : "n/a", bound,
               at ? "ok" : "fail");
    if (bound >= 2) {
      report.check(!below, "FloodMin fails below the bound (n+1=" +
                               std::to_string(n1) + " f=" +
                               std::to_string(f) + " k=" + std::to_string(k) +
                               ")");
    }
    report.check(at, "FloodMin succeeds at the bound (n+1=" +
                         std::to_string(n1) + " f=" + std::to_string(f) +
                         " k=" + std::to_string(k) + ")");
  }

  report.header("  protocol soak: n+1  f  k rounds executions -> ok?");
  for (const auto& [n1, f, k] : std::vector<std::array<int, 3>>{
           {3, 1, 1}, {4, 2, 1}, {4, 2, 2}, {5, 3, 2}, {6, 4, 2}}) {
    util::Timer timer;
    const protocols::FloodSetConfig config{n1, f, k};
    const protocols::AgreementAudit result = protocols::soak_floodset(
        config, static_cast<std::uint64_t>(seed) + n1, 400);
    report.row("               %3d %2d %2d %6d %10d -> %s (%s)", n1, f, k,
               protocols::floodset_rounds(config), 400,
               result.ok() ? "ok" : result.failure.c_str(),
               timer.pretty().c_str());
    report.check(result.ok(), "soak at n+1=" + std::to_string(n1) + " f=" +
                                  std::to_string(f) + " k=" +
                                  std::to_string(k));
  }

  if (!schedule_out.empty()) {
    check::RunSpec spec;
    spec.protocol = check::ProtocolKind::kFloodSet;
    spec.n = 4;
    spec.f = 2;
    spec.k = 1;
    spec.seed = static_cast<std::uint64_t>(seed);
    check::save_schedule(schedule_out, check::run_recorded(spec).schedule);
    std::printf("recorded schedule -> %s\n", schedule_out.c_str());
  }
  return report.finish();
}
