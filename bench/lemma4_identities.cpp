// Lemma 4: the pseudosphere identities. Property 1 (singleton sets give the
// simplex), property 2 (empty value set deletes the position), property 3
// (pseudospheres intersect position-wise), each swept over randomized
// instances. Identities are checked as literal complex equality over a
// shared vertex arena.

#include "bench_util.h"
#include "core/pseudosphere.h"
#include "topology/operations.h"
#include "util/random.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  using topology::SimplicialComplex;
  bench::Report report("Lemma 4", "pseudosphere combinatorial identities");
  util::Rng rng(20260705);
  util::Timer timer;

  int trials = 0;
  // Property 1: singletons.
  for (int m1 = 1; m1 <= 5; ++m1) {
    topology::VertexArena arena;
    std::vector<core::ProcessId> pids;
    std::vector<std::vector<core::StateId>> sets;
    for (int i = 0; i < m1; ++i) {
      pids.push_back(i);
      sets.push_back({static_cast<core::StateId>(100 + i)});
    }
    const SimplicialComplex psi = core::pseudosphere(pids, sets, arena);
    report.check(psi.facet_count() == 1 && psi.dimension() == m1 - 1,
                 "property 1 at m+1=" + std::to_string(m1));
    ++trials;
  }

  // Property 2: empty sets delete positions (randomized).
  for (int trial = 0; trial < 40; ++trial) {
    topology::VertexArena arena;
    const int m1 = 2 + static_cast<int>(rng.next_below(4));
    std::vector<core::ProcessId> pids, kept_pids;
    std::vector<std::vector<core::StateId>> sets, kept_sets;
    for (int i = 0; i < m1; ++i) {
      pids.push_back(i);
      std::vector<core::StateId> values;
      if (!rng.next_bool(0.3)) {  // 30% empty
        const int size = 1 + static_cast<int>(rng.next_below(3));
        for (int v = 0; v < size; ++v) {
          values.push_back(static_cast<core::StateId>(10 * i + v));
        }
      }
      if (!values.empty()) {
        kept_pids.push_back(i);
        kept_sets.push_back(values);
      }
      sets.push_back(std::move(values));
    }
    const SimplicialComplex with_gaps = core::pseudosphere(pids, sets, arena);
    const SimplicialComplex compacted =
        core::pseudosphere(kept_pids, kept_sets, arena);
    report.check(with_gaps == compacted,
                 "property 2 trial " + std::to_string(trial));
    ++trials;
  }

  // Property 3: position-wise intersection (randomized).
  for (int trial = 0; trial < 40; ++trial) {
    topology::VertexArena arena;
    std::vector<std::vector<core::StateId>> universe(5);
    std::vector<std::vector<core::StateId>> universe_b(5);
    const auto draw = [&]() {
      std::vector<core::StateId> vals;
      for (core::StateId v = 0; v < 4; ++v) {
        if (rng.next_bool(0.55)) vals.push_back(v);
      }
      if (vals.empty()) vals.push_back(rng.next_below(4));
      return vals;
    };
    for (auto& u : universe) u = draw();
    for (auto& u : universe_b) u = draw();
    const std::vector<int> ia = rng.sample_without_replacement(5, 3);
    const std::vector<int> ib = rng.sample_without_replacement(5, 3);
    std::vector<core::ProcessId> pa(ia.begin(), ia.end());
    std::vector<core::ProcessId> pb(ib.begin(), ib.end());
    std::vector<std::vector<core::StateId>> va, vb;
    for (core::ProcessId p : pa) va.push_back(universe[static_cast<std::size_t>(p)]);
    for (core::ProcessId p : pb) vb.push_back(universe_b[static_cast<std::size_t>(p)]);
    const SimplicialComplex psi_a = core::pseudosphere(pa, va, arena);
    const SimplicialComplex psi_b = core::pseudosphere(pb, vb, arena);
    std::vector<core::ProcessId> common;
    std::vector<std::vector<core::StateId>> meets;
    for (core::ProcessId p : pa) {
      if (std::find(pb.begin(), pb.end(), p) == pb.end()) continue;
      common.push_back(p);
      std::vector<core::StateId> meet;
      for (core::StateId v : universe[static_cast<std::size_t>(p)]) {
        const auto& other = universe_b[static_cast<std::size_t>(p)];
        if (std::find(other.begin(), other.end(), v) != other.end()) {
          meet.push_back(v);
        }
      }
      meets.push_back(std::move(meet));
    }
    const SimplicialComplex expected =
        core::pseudosphere(common, meets, arena);
    report.check(topology::intersection_of(psi_a, psi_b) == expected,
                 "property 3 trial " + std::to_string(trial));
    ++trials;
  }

  report.row("  %d randomized identity instances verified in %s", trials,
             timer.pretty().c_str());
  return report.finish();
}
