// Lemmas 14 and 15: S¹_K(S) ≅ ψ(S\K; 2^K) (facet count 2^{|K|·survivors}),
// and the lexicographic intersections are unions of restricted
// pseudospheres — checked as literal complex equality for every K in lex
// order, for several process counts.

#include "bench_util.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "topology/operations.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Lemmas 14 and 15",
      "S^1_K(S) = psi(S\\K; 2^K); prefix intersections are unions of "
      "psi(S\\K; 2^{K-{j}})");

  report.header("  n+1 |K|   facets predicted vertices");
  for (int n1 : {3, 4, 5}) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    for (int ksize = 0; ksize < n1 && ksize <= 2; ++ksize) {
      std::vector<core::ProcessId> fail_set;
      for (int i = 0; i < ksize; ++i) fail_set.push_back(i);
      const topology::SimplicialComplex piece =
          core::sync_round_complex_for_failset(input, fail_set, views, arena);
      const int survivors = n1 - ksize;
      std::uint64_t predicted = 1;
      for (int s = 0; s < survivors; ++s) predicted <<= ksize;
      report.row("  %3d %3d %8zu %9llu %8zu", n1, ksize, piece.facet_count(),
                 static_cast<unsigned long long>(predicted),
                 piece.count_of_dim(0));
      report.check(piece.facet_count() == predicted,
                   "Lemma 14 facet count at n+1=" + std::to_string(n1) +
                       " |K|=" + std::to_string(ksize));
    }
  }

  report.header("  Lemma 15 verification: n+1 cap  #fail-sets  checked");
  for (const auto& [n1, cap] :
       std::vector<std::array<int, 2>>{{3, 2}, {4, 2}, {5, 2}}) {
    util::Timer timer;
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    std::vector<core::ProcessId> pids;
    for (int p = 0; p < n1; ++p) pids.push_back(p);
    const auto fail_sets = core::lexicographic_fail_sets(pids, cap);
    topology::SimplicialComplex earlier;
    bool all_equal = true;
    for (const auto& fail_set : fail_sets) {
      const topology::SimplicialComplex current =
          core::sync_round_complex_for_failset(input, fail_set, views, arena);
      const topology::SimplicialComplex lhs =
          topology::intersection_of(earlier, current);
      const topology::SimplicialComplex rhs =
          core::sync_lemma15_rhs(input, fail_set, views, arena);
      if (!(lhs == rhs)) all_equal = false;
      earlier.merge(current);
    }
    report.row("                             %3d %3d %11zu  %s (%s)", n1,
               cap, fail_sets.size(), all_equal ? "all equal" : "MISMATCH",
               timer.pretty().c_str());
    report.check(all_equal, "Lemma 15 at n+1=" + std::to_string(n1));
  }
  return report.finish();
}
