// Figure 1: construction of the three-process binary pseudosphere
// ψ(Δ²; {0,1}), plus the generalization ψ(Δ^n; {0,1}) ≅ S^n. For each n we
// regenerate the construction and report size, Euler characteristic, and
// reduced Betti numbers, checking the sphere profile the paper's
// "pseudosphere" name promises.

#include <vector>

#include "bench_util.h"
#include "core/pseudosphere.h"
#include "topology/homology.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Figure 1 (+ generalization)",
      "psi(Delta^n; {0,1}) is homeomorphic to the n-sphere");
  report.header(
      "  n+1 |V|   facets vertices  chi  reduced-betti           build");

  for (int n1 = 2; n1 <= 6; ++n1) {
    util::Timer timer;
    topology::VertexArena arena;
    std::vector<core::ProcessId> pids;
    for (int i = 0; i < n1; ++i) pids.push_back(i);
    const topology::SimplicialComplex psi =
        core::pseudosphere_uniform(pids, {0, 1}, arena);
    const int n = n1 - 1;
    const topology::HomologyReport h =
        topology::reduced_homology(psi, {.max_dim = n});
    std::string betti = "[";
    bool sphere = true;
    for (int d = 0; d <= n; ++d) {
      const long long value = h.reduced_betti[static_cast<std::size_t>(d)];
      betti += (d ? "," : "") + std::to_string(value);
      if (value != (d == n ? 1 : 0)) sphere = false;
    }
    betti += "]";
    report.row("  %3d   2 %8zu %8zu %4lld  %-22s %s", n1, psi.facet_count(),
               psi.count_of_dim(0), psi.euler_characteristic(), betti.c_str(),
               timer.pretty().c_str());
    report.check(psi.facet_count() == (1ULL << n1),
                 "facet count = 2^(n+1) at n+1=" + std::to_string(n1));
    report.check(sphere, "S^n homology at n+1=" + std::to_string(n1));
  }
  return report.finish();
}
