// Lemmas 19 and 20: M¹_{K,F}(S) ≅ ψ(S\K; [F]) with |[F]| = 2^{|K|}, and the
// prefix intersections in the paper's (K, F) order are unions of the pinned
// pseudospheres ψ(S\K; [F ↑ j]) — checked as literal complex equality over
// the full enumeration for several (n, μ).

#include "bench_util.h"
#include "core/semisync_complex.h"
#include "core/theorems.h"
#include "topology/operations.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Lemmas 19 and 20",
      "M^1_{K,F}(S) = psi(S\\K; [F]); prefix intersections are unions of "
      "psi(S\\K; [F up j])");

  report.header("  n+1 mu |K| F        facets predicted");
  for (const auto& [n1, mu] :
       std::vector<std::array<int, 2>>{{3, 2}, {3, 3}, {4, 2}}) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    // Sample: fail {0} at each microround; fail {0,1} at (mu, 1).
    std::vector<core::FailurePattern> samples;
    for (int micro = 1; micro <= mu; ++micro) {
      samples.push_back({{0}, {micro}});
    }
    samples.push_back({{0, 1}, {mu, 1}});
    for (const core::FailurePattern& pattern : samples) {
      const topology::SimplicialComplex piece =
          core::semisync_round_complex_for_pattern(input, pattern, mu, views,
                                                   arena);
      const int survivors = n1 - static_cast<int>(pattern.fail_set.size());
      std::uint64_t predicted = 1;
      for (int s = 0; s < survivors; ++s) {
        predicted *= core::view_count(pattern);
      }
      std::string f_str;
      for (std::size_t i = 0; i < pattern.fail_set.size(); ++i) {
        f_str += "P" + std::to_string(pattern.fail_set[i]) + "@" +
                 std::to_string(pattern.fail_micro[i]) + " ";
      }
      report.row("  %3d %2d %3zu %-9s %6zu %9llu", n1, mu,
                 pattern.fail_set.size(), f_str.c_str(), piece.facet_count(),
                 static_cast<unsigned long long>(predicted));
      report.check(piece.facet_count() == predicted,
                   "Lemma 19 count at n+1=" + std::to_string(n1) + " F=" +
                       f_str);
    }
  }

  report.header("  Lemma 20 verification: n+1 mu cap  #patterns  checked");
  for (const auto& [n1, mu, cap] :
       std::vector<std::array<int, 3>>{{3, 2, 1}, {3, 2, 2}, {3, 3, 1},
                                       {4, 2, 1}}) {
    util::Timer timer;
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    std::vector<core::ProcessId> pids;
    for (int p = 0; p < n1; ++p) pids.push_back(p);
    const auto patterns = core::enumerate_failure_patterns(pids, cap, mu);
    topology::SimplicialComplex earlier;
    bool all_equal = true;
    for (const core::FailurePattern& pattern : patterns) {
      const topology::SimplicialComplex current =
          core::semisync_round_complex_for_pattern(input, pattern, mu, views,
                                                   arena);
      const topology::SimplicialComplex lhs =
          topology::intersection_of(earlier, current);
      const topology::SimplicialComplex rhs =
          core::semisync_lemma20_rhs(input, pattern, mu, views, arena);
      if (!(lhs == rhs)) all_equal = false;
      earlier.merge(current);
    }
    report.row("                          %3d %2d %3d %10zu  %s (%s)", n1,
               mu, cap, patterns.size(),
               all_equal ? "all equal" : "MISMATCH", timer.pretty().c_str());
    report.check(all_equal, "Lemma 20 at n+1=" + std::to_string(n1) + " mu=" +
                                std::to_string(mu));
  }
  return report.finish();
}
