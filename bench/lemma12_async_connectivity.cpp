// Lemma 12: A^r(S^m) is (m - (n - f) - 1)-connected. Sweeps (n, m, f, r)
// over everything that builds in seconds and reports measured homological
// connectivity against the bound.

#include "bench_util.h"
#include "core/theorems.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report("Lemma 12",
                       "A^r(S^m) is (m - (n - f) - 1)-connected");
  report.header("  n+1 m+1  f  r   facets vertices  expect conn  build");

  for (const auto& [n1, m1, f, r] : std::vector<std::array<int, 4>>{
           {3, 3, 1, 1},
           {3, 3, 1, 2},
           {3, 3, 1, 3},
           {3, 3, 2, 1},
           {3, 3, 2, 2},
           {3, 2, 1, 1},
           {4, 4, 1, 1},
           {4, 4, 2, 1},
           {4, 3, 1, 1},
           {4, 3, 2, 1},
           {4, 4, 3, 1},
           {5, 5, 1, 1}}) {
    util::Timer timer;
    const core::ConnectivityCheck check =
        core::check_async_connectivity(n1, m1, f, r);
    report.row("  %3d %3d %2d %2d %8zu %8zu %7d %4d  %s", n1, m1, f, r,
               check.facet_count, check.vertex_count, check.expected,
               check.measured, timer.pretty().c_str());
    report.check(check.satisfied, "connectivity bound at n+1=" +
                                      std::to_string(n1) + " m+1=" +
                                      std::to_string(m1) + " f=" +
                                      std::to_string(f) + " r=" +
                                      std::to_string(r));
  }
  return report.finish();
}
