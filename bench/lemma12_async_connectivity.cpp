// Lemma 12: A^r(S^m) is (m - (n - f) - 1)-connected. Sweeps (n, m, f, r)
// over everything that builds in seconds and reports measured homological
// connectivity against the bound.
//
// With --cache-dir the sweep runs through sweep::SweepEngine: verdicts are
// served from the result store when present (the time column shows "-" so
// rows are byte-identical between cold and warm runs) and a sweep stats
// line is appended. Without the flag, output is identical to the uncached
// original.

#include <array>
#include <vector>

#include "bench_util.h"
#include "core/theorems.h"
#include "store/serialize.h"
#include "sweep/sweep.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace psph;
  std::string cache_dir;
  std::string mode = "full";
  int threads = 0;
  bench::ObsOptions obs_options;
  util::Cli cli("lemma12_async_connectivity",
                "Lemma 12: A^r(S^m) connectivity sweep");
  cli.flag("cache-dir", &cache_dir,
           "result-store root; empty disables caching");
  cli.flag("mode", &mode,
           "construction backend: full | orbit (symmetry-reduced)");
  cli.flag("threads", &threads,
           "worker threads for uncached jobs (0 = PSPH_THREADS/default)");
  bench::add_obs_flags(cli, &obs_options);
  cli.parse(argc, argv);
  if (threads > 0) util::set_thread_count(threads);
  if (mode != "full" && mode != "orbit") {
    std::fprintf(stderr, "unknown --mode '%s' (choices: full orbit)\n",
                 mode.c_str());
    return 2;
  }
  core::ConstructionOptions construction;
  if (mode == "orbit") construction.mode = core::ConstructionMode::kOrbit;
  // The backend is part of the job identity: cached verdicts from the two
  // pipelines must never alias, even though their values agree.
  const std::int64_t mode_param = mode == "orbit" ? 1 : 0;

  bench::Report report("Lemma 12",
                       "A^r(S^m) is (m - (n - f) - 1)-connected");
  report.header("  n+1 m+1  f  r   facets vertices  expect conn  build");

  const std::vector<std::array<int, 4>> grid{{3, 3, 1, 1},
                                             {3, 3, 1, 2},
                                             {3, 3, 1, 3},
                                             {3, 3, 2, 1},
                                             {3, 3, 2, 2},
                                             {3, 2, 1, 1},
                                             {4, 4, 1, 1},
                                             {4, 4, 2, 1},
                                             {4, 3, 1, 1},
                                             {4, 3, 2, 1},
                                             {4, 4, 3, 1},
                                             {5, 5, 1, 1}};

  const auto check_row = [&](const std::array<int, 4>& point,
                             const core::ConnectivityCheck& check) {
    const auto& [n1, m1, f, r] = point;
    report.check(check.satisfied, "connectivity bound at n+1=" +
                                      std::to_string(n1) + " m+1=" +
                                      std::to_string(m1) + " f=" +
                                      std::to_string(f) + " r=" +
                                      std::to_string(r));
  };

  if (cache_dir.empty()) {
    for (const auto& [n1, m1, f, r] : grid) {
      util::Timer timer;
      const core::ConnectivityCheck check =
          core::check_async_connectivity(n1, m1, f, r, construction);
      report.row("  %3d %3d %2d %2d %8zu %8zu %7d %4d  %s", n1, m1, f, r,
                 check.facet_count, check.vertex_count, check.expected,
                 check.measured, timer.pretty().c_str());
      check_row({n1, m1, f, r}, check);
    }
    const int obs_exit = bench::finish_obs(obs_options);
    const int exit_code = report.finish();
    return exit_code != 0 ? exit_code : obs_exit;
  }

  std::vector<sweep::JobSpec> jobs;
  for (const auto& [n1, m1, f, r] : grid) {
    jobs.push_back(
        {"lemma12/async-connectivity", {n1, m1, f, r, mode_param}, {}});
  }
  sweep::SweepEngine engine({.cache_dir = cache_dir});
  const std::vector<core::ConnectivityCheck> checks =
      sweep::run_sweep<core::ConnectivityCheck>(
          engine, jobs,
          [&construction](const sweep::JobSpec& spec, std::size_t) {
            return core::check_async_connectivity(
                static_cast<int>(spec.params[0]),
                static_cast<int>(spec.params[1]),
                static_cast<int>(spec.params[2]),
                static_cast<int>(spec.params[3]), construction);
          },
          store::serialize_connectivity_check,
          store::deserialize_connectivity_check);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& [n1, m1, f, r] = grid[i];
    report.row("  %3d %3d %2d %2d %8zu %8zu %7d %4d  %s", n1, m1, f, r,
               checks[i].facet_count, checks[i].vertex_count,
               checks[i].expected, checks[i].measured, "-");
    check_row(grid[i], checks[i]);
  }
  std::printf("sweep: %s\n", engine.stats().to_string().c_str());
  const int obs_exit = bench::finish_obs(obs_options);
  const int exit_code = report.finish();
  return exit_code != 0 ? exit_code : obs_exit;
}
