// Ablation: decision-search strategies on identical instances, same
// verdicts — the node counts show which machinery is load-bearing for the
// impossibility proofs.
//
// Default (--engine=seq) reproduces the seed ablation: the backtracker's
// most-constrained-vertex ordering with saturated-facet domain filtering
// (DESIGN.md §5.4) versus plain fixed-order backtracking.
//
// --engine=propagate|learn|portfolio instead pits that seq backtracker
// (MRV, the strong baseline) against the solvability engine (DESIGN.md
// §5.17) at the chosen stage, so the propagation / learning / portfolio
// increments can each be measured in isolation.

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/theorems.h"
#include "solve/decide.h"
#include "solve/engine.h"
#include "util/cli.h"
#include "util/timer.h"

namespace {

struct Case {
  const char* model;
  int n1, f, k, r;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases{
      {"async", 2, 1, 1, 1},
      {"async", 3, 1, 1, 1},
      {"async", 3, 1, 2, 1},
      {"async", 3, 2, 2, 1},  // wait-free 2-set agreement: the hard one
      {"async", 3, 2, 3, 1},
      {"sync", 3, 1, 1, 1},
      {"sync", 3, 1, 1, 2},
      {"sync", 4, 1, 1, 1},
  };
  return kCases;
}

int run_seq_ablation() {
  using namespace psph;
  bench::Report report(
      "Ablation: decision-search heuristics",
      "MRV + saturated-facet filtering vs fixed-order backtracking");
  report.header(
      "  model n+1  f  k  r   nodes(mrv)  time    nodes(fixed)  time   "
      "same-verdict?");

  for (const Case& c : cases()) {
    core::SearchOptions mrv;
    core::SearchOptions fixed;
    fixed.use_mrv = false;
    fixed.node_limit = 50'000'000;

    const auto run = [&](const core::SearchOptions& options) {
      if (std::string(c.model) == "async") {
        return core::check_async_agreement(c.n1, c.f, c.k, c.r, options);
      }
      return core::check_sync_agreement(c.n1, c.f, c.k, c.r, options);
    };

    util::Timer t1;
    const core::AgreementCheck with_mrv = run(mrv);
    const std::string mrv_time = t1.pretty();
    util::Timer t2;
    const core::AgreementCheck without = run(fixed);
    const std::string fixed_time = t2.pretty();

    const bool same = !without.search_exhausted ||
                      with_mrv.impossible == without.impossible;
    report.row("  %-5s %3d %2d %2d %2d %12llu  %-7s %12llu  %-7s %s",
               c.model, c.n1, c.f, c.k, c.r,
               static_cast<unsigned long long>(with_mrv.nodes),
               mrv_time.c_str(),
               static_cast<unsigned long long>(without.nodes),
               fixed_time.c_str(),
               without.search_exhausted ? (same ? "yes" : "NO")
                                        : "fixed hit limit");
    report.check(with_mrv.search_exhausted, "MRV search exhausted");
    report.check(same, "verdicts agree (when both complete)");
  }
  return report.finish();
}

int run_engine_ablation(psph::solve::EngineStage stage,
                        const std::string& stage_label) {
  using namespace psph;
  bench::Report report(
      "Ablation: solvability engine (" + stage_label + ") vs seq backtracker",
      "same instances, same verdicts; engine nodes show what " + stage_label +
          " buys over the seed MRV search");
  report.header(
      "  model n+1  f  k  r  nodes(engine)  time    nodes(seq)  time   "
      "same-verdict?");

  for (const Case& c : cases()) {
    solve::DecideRequest request;
    request.model = std::string(c.model) == "async" ? solve::Model::kAsync
                                                    : solve::Model::kSync;
    request.processes = c.n1;
    request.f = c.f;
    request.k = c.k;
    request.rounds = c.r;

    const std::unique_ptr<solve::Instance> instance =
        solve::build_instance(request);
    solve::EngineOptions options;
    options.stage = stage;
    options.canonical_witness = false;  // time the decision, not the lex-min

    util::Timer t1;
    const solve::SolveOutcome outcome = solve::solve(instance->problem, options);
    const std::string engine_time = t1.pretty();

    core::SearchOptions seq_options;
    seq_options.node_limit = 50'000'000;
    util::Timer t2;
    const core::AgreementCheck seq =
        std::string(c.model) == "async"
            ? core::check_async_agreement(c.n1, c.f, c.k, c.r, seq_options)
            : core::check_sync_agreement(c.n1, c.f, c.k, c.r, seq_options);
    const std::string seq_time = t2.pretty();

    const bool same = !seq.search_exhausted ||
                      outcome.solvable == !seq.impossible;
    report.row("  %-5s %3d %2d %2d %2d %13llu  %-7s %10llu  %-7s %s",
               c.model, c.n1, c.f, c.k, c.r,
               static_cast<unsigned long long>(outcome.stats.nodes),
               engine_time.c_str(),
               static_cast<unsigned long long>(seq.nodes), seq_time.c_str(),
               seq.search_exhausted ? (same ? "yes" : "NO")
                                    : "seq hit limit");
    report.check(outcome.exhausted, "engine search exhausted");
    report.check(same, "verdicts agree (when both complete)");
  }
  return report.finish();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psph;
  std::string engine = "seq";
  util::Cli cli("ablation_search",
                "Decision-search ablation: seq MRV-vs-fixed, or the "
                "solvability engine staged against the seq backtracker");
  cli.flag_choice("engine", &engine,
                  {"seq", "propagate", "learn", "portfolio"},
                  "search strategy to ablate");
  cli.parse(argc, argv);

  if (engine == "seq") return run_seq_ablation();
  const solve::EngineStage stage =
      engine == "propagate"  ? solve::EngineStage::kPropagate
      : engine == "learn"    ? solve::EngineStage::kLearn
                             : solve::EngineStage::kPortfolio;
  return run_engine_ablation(stage, engine);
}
