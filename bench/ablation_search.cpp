// Ablation: the decision-map search's most-constrained-vertex ordering with
// saturated-facet domain filtering (DESIGN.md §5.4), versus plain
// fixed-order backtracking. Same instances, same verdicts — the node counts
// show why the heuristic is load-bearing for the impossibility proofs.

#include "bench_util.h"
#include "core/theorems.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Ablation: decision-search heuristics",
      "MRV + saturated-facet filtering vs fixed-order backtracking");
  report.header(
      "  model n+1  f  k  r   nodes(mrv)  time    nodes(fixed)  time   "
      "same-verdict?");

  struct Case {
    const char* model;
    int n1, f, k, r;
  };
  for (const Case& c : std::vector<Case>{
           {"async", 2, 1, 1, 1},
           {"async", 3, 1, 1, 1},
           {"async", 3, 1, 2, 1},
           {"async", 3, 2, 2, 1},  // wait-free 2-set agreement: the hard one
           {"async", 3, 2, 3, 1},
           {"sync", 3, 1, 1, 1},
           {"sync", 3, 1, 1, 2},
           {"sync", 4, 1, 1, 1},
       }) {
    core::SearchOptions mrv;
    core::SearchOptions fixed;
    fixed.use_mrv = false;
    fixed.node_limit = 50'000'000;

    const auto run = [&](const core::SearchOptions& options) {
      if (std::string(c.model) == "async") {
        return core::check_async_agreement(c.n1, c.f, c.k, c.r, options);
      }
      return core::check_sync_agreement(c.n1, c.f, c.k, c.r, options);
    };

    util::Timer t1;
    const core::AgreementCheck with_mrv = run(mrv);
    const std::string mrv_time = t1.pretty();
    util::Timer t2;
    const core::AgreementCheck without = run(fixed);
    const std::string fixed_time = t2.pretty();

    const bool same = !without.search_exhausted ||
                      with_mrv.impossible == without.impossible;
    report.row("  %-5s %3d %2d %2d %2d %12llu  %-7s %12llu  %-7s %s",
               c.model, c.n1, c.f, c.k, c.r,
               static_cast<unsigned long long>(with_mrv.nodes),
               mrv_time.c_str(),
               static_cast<unsigned long long>(without.nodes),
               fixed_time.c_str(),
               without.search_exhausted ? (same ? "yes" : "NO")
                                        : "fixed hit limit");
    report.check(with_mrv.search_exhausted, "MRV search exhausted");
    report.check(same, "verdicts agree (when both complete)");
  }
  return report.finish();
}
