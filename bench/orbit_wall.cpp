// Beyond-the-(n, r)-wall driver: builds one protocol complex through either
// the full level-synchronous pipeline or the symmetry-reduced orbit pipeline
// (DESIGN §5.16), optionally spilling the inter-level frontier to sealed
// psph_store chunks under a byte budget. Prints the exact full-complex facet
// count and f-vector either way; with --verify-full the full pipeline runs
// too and the numbers must agree bit for bit (exit 1 otherwise). With
// --json-out a machine-readable record (parameters, timings, counters,
// spill stats, build context) is written for the experiment logs.
//
// The point of the binary: datapoints whose *full* frontier no longer fits
// in bench time or RAM stay reachable under --mode=orbit, and tiny
// --frontier-budget values force many spill/reload cycles so CI can smoke
// the out-of-core path end to end.

#include <unistd.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/construction.h"
#include "core/theorems.h"
#include "store/fs_ops.h"
#include "store/frontier.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

using namespace psph;

std::string fvec_string(const std::vector<std::size_t>& fvec) {
  std::string out = "[";
  for (std::size_t d = 0; d < fvec.size(); ++d) {
    if (d > 0) out += ", ";
    out += std::to_string(fvec[d]);
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "async";
  std::string mode = "orbit";
  int n1 = 4;
  int m1 = 0;  // 0 = same as --n
  int f = 1;
  int k = 1;
  int mu = 2;
  int rounds = 2;
  std::int64_t frontier_budget = 0;
  std::string spool_dir;
  bool verify_full = false;
  std::string json_out;
  int threads = 0;

  util::Cli cli("orbit_wall",
                "Build one protocol complex past the (n, r) wall via the "
                "symmetry-reduced, out-of-core pipeline");
  cli.flag_choice("model", &model, {"async", "sync", "semisync", "iis"},
                  "timing model");
  cli.flag_choice("mode", &mode, {"full", "orbit"}, "construction backend");
  cli.flag("n", &n1, "processes n+1");
  cli.flag("m", &m1, "participants m+1 (0 = same as --n)");
  cli.flag("f", &f, "async failure budget");
  cli.flag("k", &k, "per-round failure cap (sync/semisync)");
  cli.flag("mu", &mu, "semisync micro-round spacing");
  cli.flag("r", &rounds, "rounds");
  cli.flag("frontier-budget", &frontier_budget,
           "spill the inter-level frontier in chunks of ~budget/2 bytes "
           "(0 = keep in RAM)");
  cli.flag("spool-dir", &spool_dir,
           "directory for spilled chunks (default: a fresh temp dir)");
  cli.flag("verify-full", &verify_full,
           "also run the full pipeline and require identical counts");
  cli.flag("json-out", &json_out, "write a JSON record of the run here");
  cli.flag("threads", &threads, "worker threads (0 = PSPH_THREADS/default)");
  cli.parse(argc, argv);
  if (threads > 0) util::set_thread_count(threads);
  if (m1 <= 0) m1 = n1;
  if (m1 > n1) {
    std::fprintf(stderr, "--m must be <= --n\n");
    return 2;
  }
  if (frontier_budget < 0) {
    std::fprintf(stderr, "--frontier-budget must be >= 0\n");
    return 2;
  }

  core::ConstructionOptions options;
  options.frontier_budget_bytes = static_cast<std::size_t>(frontier_budget);
  std::unique_ptr<store::FrontierSpool> spool;
  if (frontier_budget > 0) {
    std::filesystem::path dir = spool_dir.empty()
                                    ? std::filesystem::temp_directory_path() /
                                          ("psph_orbit_wall_" +
                                           std::to_string(::getpid()))
                                    : std::filesystem::path(spool_dir);
    spool = std::make_unique<store::FrontierSpool>(store::FsOps::real(),
                                                   std::move(dir));
    options.storage = spool.get();
  }

  bench::Report report("orbit_wall",
                       "orbit-reduced construction reproduces the full "
                       "complex's counts exactly");
  std::printf("model=%s mode=%s n+1=%d m+1=%d f=%d k=%d mu=%d r=%d "
              "frontier-budget=%" PRId64 " build=%s\n",
              model.c_str(), mode.c_str(), n1, m1, f, k, mu, rounds,
              frontier_budget, bench::build_type());

  core::ViewRegistry views;
  topology::VertexArena arena;
  core::ConstructionCache cache;
  const topology::Simplex input = core::rainbow_input(m1, views, arena);
  const core::AsyncParams async_params{n1, f, rounds};
  const core::SyncParams sync_params{n1, rounds * k, k, rounds};
  const core::SemiSyncParams semisync_params{n1, rounds * k, k, mu, rounds};

  std::uint64_t full_facets = 0;
  std::vector<std::size_t> fvec;
  std::uint64_t group_order = 1;
  std::uint64_t orbit_reps = 0;
  std::uint64_t dominated = 0;
  std::uint64_t reduced_facets = 0;
  double build_seconds = 0;
  double fvector_seconds = 0;

  if (mode == "orbit") {
    options.mode = core::ConstructionMode::kOrbit;
    util::Timer build_timer;
    core::OrbitComplexResult result = [&] {
      if (model == "async") {
        return core::async_protocol_complex_orbit(input, async_params, views,
                                                  arena, cache, options);
      }
      if (model == "sync") {
        return core::sync_protocol_complex_orbit(input, sync_params, views,
                                                 arena, cache, options);
      }
      if (model == "semisync") {
        return core::semisync_protocol_complex_orbit(
            input, semisync_params, views, arena, cache, options);
      }
      return core::iis_protocol_complex_orbit(input, rounds, views, arena,
                                              cache, options);
    }();
    build_seconds = build_timer.seconds();
    group_order = result.group.size();
    orbit_reps = result.orbits.size();
    for (const core::OrbitRecord& rec : result.orbits) {
      if (rec.dominated) ++dominated;
    }
    reduced_facets = result.reduced.facet_count();
    full_facets = result.full_facet_count;
    util::Timer fvec_timer;
    fvec = core::orbit_full_f_vector(result, views, arena);
    fvector_seconds = fvec_timer.seconds();
    std::printf("group order %" PRIu64 ", %" PRIu64 " orbit reps (%" PRIu64
                " dominated), reduced facets %" PRIu64 "\n",
                group_order, orbit_reps, dominated, reduced_facets);
  } else {
    util::Timer build_timer;
    const topology::SimplicialComplex complex = [&] {
      if (model == "async") {
        return core::async_protocol_complex(input, async_params, views, arena,
                                            cache, options);
      }
      if (model == "sync") {
        return core::sync_protocol_complex(input, sync_params, views, arena,
                                           cache, options);
      }
      if (model == "semisync") {
        return core::semisync_protocol_complex(input, semisync_params, views,
                                               arena, cache, options);
      }
      return core::iis_protocol_complex(input, rounds, views, arena, cache,
                                        options);
    }();
    build_seconds = build_timer.seconds();
    full_facets = complex.facet_count();
    fvec = complex.f_vector();
  }

  std::printf("full facets %" PRIu64 ", f-vector %s\n", full_facets,
              fvec_string(fvec).c_str());
  std::printf("build %.3fs", build_seconds);
  if (mode == "orbit") std::printf(", f-vector %.3fs", fvector_seconds);
  if (spool != nullptr) {
    std::printf(", spill: %" PRIu64 " chunks written / %" PRIu64
                " read / %" PRIu64 " bytes",
                spool->stats().chunks_written, spool->stats().chunks_read,
                spool->stats().bytes_written);
  }
  std::printf("\n");
  if (spool != nullptr && frontier_budget > 0 && rounds > 1) {
    report.check(spool->stats().chunks_written > 0,
                 "a multi-round run under a budget actually spilled");
    report.check(spool->stats().chunks_read == spool->stats().chunks_written,
                 "every spilled chunk was read back exactly once");
  }

  double verify_seconds = 0;
  if (verify_full) {
    core::ViewRegistry full_views;
    topology::VertexArena full_arena;
    core::ConstructionCache full_cache;
    const topology::Simplex full_input =
        core::rainbow_input(m1, full_views, full_arena);
    util::Timer verify_timer;
    const topology::SimplicialComplex complex = [&] {
      if (model == "async") {
        return core::async_protocol_complex(full_input, async_params,
                                            full_views, full_arena,
                                            full_cache);
      }
      if (model == "sync") {
        return core::sync_protocol_complex(full_input, sync_params, full_views,
                                           full_arena, full_cache);
      }
      if (model == "semisync") {
        return core::semisync_protocol_complex(full_input, semisync_params,
                                               full_views, full_arena,
                                               full_cache);
      }
      return core::iis_protocol_complex(full_input, rounds, full_views,
                                        full_arena, full_cache);
    }();
    verify_seconds = verify_timer.seconds();
    report.check(complex.facet_count() == full_facets,
                 "facet count matches the full pipeline (" +
                     std::to_string(complex.facet_count()) + " vs " +
                     std::to_string(full_facets) + ")");
    report.check(complex.f_vector() == fvec,
                 "f-vector matches the full pipeline (" +
                     fvec_string(complex.f_vector()) + " vs " +
                     fvec_string(fvec) + ")");
    std::printf("verify (full pipeline) %.3fs\n", verify_seconds);
  }

  if (!json_out.empty()) {
    std::FILE* out = std::fopen(json_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"context\": {");
    bool first = true;
    for (const auto& [key, value] : bench::bench_context()) {
      // Context values are build-type names and small integers — nothing
      // that needs JSON escaping.
      std::fprintf(out, "%s\n    \"%s\": \"%s\"", first ? "" : ",",
                   key.c_str(), value.c_str());
      first = false;
    }
    std::fprintf(out, "\n  },\n");
    std::fprintf(out,
                 "  \"model\": \"%s\",\n  \"mode\": \"%s\",\n"
                 "  \"n\": %d,\n  \"m\": %d,\n  \"f\": %d,\n  \"k\": %d,\n"
                 "  \"mu\": %d,\n  \"rounds\": %d,\n"
                 "  \"frontier_budget_bytes\": %" PRId64 ",\n",
                 model.c_str(), mode.c_str(), n1, m1, f, k, mu, rounds,
                 frontier_budget);
    std::fprintf(out,
                 "  \"full_facets\": %" PRIu64 ",\n  \"group_order\": %" PRIu64
                 ",\n  \"orbit_reps\": %" PRIu64
                 ",\n  \"dominated_reps\": %" PRIu64
                 ",\n  \"reduced_facets\": %" PRIu64 ",\n",
                 full_facets, group_order, orbit_reps, dominated,
                 reduced_facets);
    std::fprintf(out, "  \"f_vector\": %s,\n", fvec_string(fvec).c_str());
    std::fprintf(out,
                 "  \"build_seconds\": %.6f,\n  \"fvector_seconds\": %.6f,\n"
                 "  \"verify_seconds\": %.6f,\n",
                 build_seconds, fvector_seconds, verify_seconds);
    std::fprintf(out,
                 "  \"spill\": {\"chunks_written\": %" PRIu64
                 ", \"chunks_read\": %" PRIu64 ", \"bytes_written\": %" PRIu64
                 "}\n}\n",
                 spool != nullptr ? spool->stats().chunks_written : 0,
                 spool != nullptr ? spool->stats().chunks_read : 0,
                 spool != nullptr ? spool->stats().bytes_written : 0);
    std::fclose(out);
    std::printf("json -> %s\n", json_out.c_str());
  }

  return report.finish();
}
