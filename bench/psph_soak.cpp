// psph_soak: randomized soak harness over the three executor models with
// schedule recording, replay, and counterexample shrinking.
//
// Every run's adversary decisions are recorded; the first run that trips an
// invariant monitor (agreement, validity, decision bounds, no-zombie-sends)
// has its schedule saved (--schedule-out) and optionally delta-debugged to
// a minimal reproducer (--shrink). A saved schedule replays bit-for-bit
// with --schedule-in.
//
//   ./psph_soak --runs 1000 --seed 42            # all six protocols
//   ./psph_soak --protocol floodset --n 6 --f 3  # one protocol, other sizes
//   ./psph_soak --protocol aba_byz --n 7 --byz-count 2   # Byzantine soak
//   ./psph_soak --protocol nbac_fd --fd evstrong # NBAC over a ◇S oracle
//   ./psph_soak --schedule-in repro.psph         # replay a saved failure
//   ./psph_soak --schedule-in repro.psph --shrink --schedule-out min.psph

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "check/shrink.h"
#include "check/soak.h"
#include "util/cli.h"
#include "util/timer.h"

namespace {

using namespace psph;

/// Replays a schedule, prints the verdict, optionally shrinks a failure.
int replay_main(const std::string& schedule_in,
                const std::string& schedule_out, bool do_shrink) {
  const check::Schedule schedule = check::load_schedule(schedule_in);
  const check::RunOutcome outcome = check::replay_schedule(schedule);
  std::printf("replayed %s\n", schedule.summary().c_str());
  if (outcome.ok()) {
    std::printf("no invariant violations\n");
    return 0;
  }
  for (const check::Violation& violation : outcome.violations) {
    std::printf("VIOLATION %s: %s\n", violation.monitor.c_str(),
                violation.detail.c_str());
  }
  if (do_shrink) {
    const check::ShrinkResult shrunk = check::shrink(
        schedule, [](const check::Schedule& candidate) {
          return !check::replay_schedule(candidate).ok();
        });
    std::printf("shrunk: %s (%zu -> %zu choices, %zu oracle calls)\n",
                shrunk.schedule.summary().c_str(), schedule.choice_count(),
                shrunk.schedule.choice_count(), shrunk.oracle_calls);
    if (!schedule_out.empty()) {
      check::save_schedule(schedule_out, shrunk.schedule);
      std::printf("minimal schedule -> %s\n", schedule_out.c_str());
    }
  } else if (!schedule_out.empty()) {
    check::save_schedule(schedule_out, schedule);
    std::printf("schedule -> %s\n", schedule_out.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int runs = 1000;
  std::int64_t seed = 42;
  std::string protocol = "all";
  int n = 4, f = 2, k = 1, monitor_k = -1;
  int byz_count = 1, max_rounds = 48;
  std::string fd = "somefail";
  std::int64_t c1 = 1, c2 = 2, d = 5;
  std::string schedule_out, schedule_in;
  bool do_shrink = false;

  util::Cli cli("psph_soak",
                "soak the agreement protocols under recorded random "
                "adversaries; replay and shrink failures");
  cli.flag("runs", &runs, "seeded runs per protocol");
  cli.flag("seed", &seed, "base seed (run i uses seed+i)");
  cli.flag_choice("protocol", &protocol,
                  {"floodset", "early_stopping", "async_kset",
                   "semisync_kset", "aba_byz", "nbac_fd", "all"},
                  "protocol to soak");
  cli.flag("n", &n, "number of processes");
  cli.flag("f", &f, "failure budget (nbac_fd: crash budget)");
  cli.flag("k", &k, "agreement degree");
  cli.flag("monitor-k", &monitor_k,
           "agreement degree the monitors enforce (-1 = protocol's k)");
  cli.flag("byz-count", &byz_count,
           "Byzantine corruption budget T (aba_byz)");
  cli.flag_choice("fd", &fd, {"somefail", "evstrong"},
                  "failure-detector oracle (nbac_fd)");
  cli.flag("max-rounds", &max_rounds,
           "adversary-controlled rounds before the drain phase (quorum)");
  cli.flag("c1", &c1, "min step spacing (semisync)");
  cli.flag("c2", &c2, "max step spacing (semisync)");
  cli.flag("d", &d, "max message delay (semisync)");
  cli.flag("schedule-out", &schedule_out,
           "save the first violating schedule (or the replayed/shrunk one)");
  cli.flag("schedule-in", &schedule_in,
           "replay a saved schedule instead of soaking");
  cli.flag("shrink", &do_shrink, "delta-debug failures to a minimal repro");
  bench::ObsOptions obs_options;
  bench::add_obs_flags(cli, &obs_options);
  cli.parse(argc, argv);

  if (!schedule_in.empty()) {
    const int replay_exit = replay_main(schedule_in, schedule_out, do_shrink);
    const int obs_exit = bench::finish_obs(obs_options);
    return replay_exit != 0 ? replay_exit : obs_exit;
  }

  std::vector<check::ProtocolKind> protocols;
  if (protocol == "all") {
    protocols = {check::ProtocolKind::kFloodSet,
                 check::ProtocolKind::kEarlyStopping,
                 check::ProtocolKind::kAsyncKSet,
                 check::ProtocolKind::kSemiSyncKSet,
                 check::ProtocolKind::kAbaByz,
                 check::ProtocolKind::kNbacFd};
  } else {
    // flag_choice already validated the name.
    for (const check::ProtocolKind candidate :
         {check::ProtocolKind::kFloodSet, check::ProtocolKind::kEarlyStopping,
          check::ProtocolKind::kAsyncKSet, check::ProtocolKind::kSemiSyncKSet,
          check::ProtocolKind::kAbaByz, check::ProtocolKind::kNbacFd}) {
      if (protocol == check::protocol_name(candidate)) {
        protocols = {candidate};
      }
    }
  }

  bool failed = false;
  for (const check::ProtocolKind kind : protocols) {
    check::RunSpec spec;
    spec.protocol = kind;
    spec.n = n;
    spec.f = f;
    spec.k = k;
    spec.monitor_k = monitor_k;
    spec.seed = static_cast<std::uint64_t>(seed);
    spec.c1 = c1;
    spec.c2 = c2;
    spec.d = d;
    spec.t = byz_count;
    spec.fd_kind = fd == "evstrong" ? 1 : 0;
    spec.max_rounds = max_rounds;

    util::Timer timer;
    const check::SoakReport report =
        check::soak(spec, static_cast<std::size_t>(runs));
    std::printf("%-14s %s n=%d f=%d k=%d: %zu runs, %zu violations (%s)\n",
                check::protocol_name(kind),
                check::model_name(check::protocol_model(kind)), n, f,
                spec.effective_monitor_k(), report.runs, report.violations,
                timer.pretty().c_str());
    if (report.ok()) continue;

    failed = true;
    for (const check::Violation& violation : report.first_violations) {
      std::printf("  VIOLATION %s: %s\n", violation.monitor.c_str(),
                  violation.detail.c_str());
    }
    std::printf("  schedule: %s\n", report.first_schedule.summary().c_str());
    check::Schedule to_save = report.first_schedule;
    if (do_shrink) {
      const check::ShrinkResult shrunk = check::shrink(
          report.first_schedule, [](const check::Schedule& candidate) {
            return !check::replay_schedule(candidate).ok();
          });
      std::printf("  shrunk to: %s\n", shrunk.schedule.summary().c_str());
      to_save = shrunk.schedule;
    }
    if (!schedule_out.empty()) {
      check::save_schedule(schedule_out, to_save);
      std::printf("  schedule -> %s\n", schedule_out.c_str());
    }
  }
  const int obs_exit = bench::finish_obs(obs_options);
  return failed ? 1 : obs_exit;
}
