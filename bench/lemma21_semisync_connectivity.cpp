// Lemma 21: M^r(S^m) is (m - (n - k) - 1)-connected when n >= (r+1)k.
// Swept over (n, k, μ, r) with hypothesis-violating rows marked.
//
// With --cache-dir verdicts are served from the result store (time column
// "-", deterministic rows); without it, output matches the original.

#include <array>
#include <vector>

#include "bench_util.h"
#include "core/theorems.h"
#include "store/serialize.h"
#include "sweep/sweep.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace psph;
  std::string cache_dir;
  std::string mode = "full";
  int threads = 0;
  util::Cli cli("lemma21_semisync_connectivity",
                "Lemma 21: M^r(S^m) connectivity sweep");
  cli.flag("cache-dir", &cache_dir,
           "result-store root; empty disables caching");
  cli.flag("mode", &mode,
           "construction backend: full | orbit (symmetry-reduced)");
  cli.flag("threads", &threads,
           "worker threads for uncached jobs (0 = PSPH_THREADS/default)");
  bench::ObsOptions obs_options;
  bench::add_obs_flags(cli, &obs_options);
  cli.parse(argc, argv);
  if (threads > 0) util::set_thread_count(threads);
  if (mode != "full" && mode != "orbit") {
    std::fprintf(stderr, "unknown --mode '%s' (choices: full orbit)\n",
                 mode.c_str());
    return 2;
  }
  core::ConstructionOptions construction;
  if (mode == "orbit") construction.mode = core::ConstructionMode::kOrbit;
  const std::int64_t mode_param = mode == "orbit" ? 1 : 0;

  bench::Report report(
      "Lemma 21",
      "M^r(S^m) is (m - (n - k) - 1)-connected when n >= (r+1)k");
  report.header(
      "  n+1 m+1  k mu  r hyp?   facets vertices  expect conn  build");

  const std::vector<std::array<int, 5>> grid{
      {3, 3, 1, 2, 1},
      {3, 3, 1, 3, 1},
      {3, 3, 1, 4, 1},
      {4, 4, 1, 2, 1},
      {4, 4, 1, 2, 2},
      {4, 3, 1, 2, 1},
      {4, 4, 1, 3, 1},
      {3, 3, 1, 2, 2},  // hypothesis violated: n = 2 < (r+1)k = 3
  };

  const auto emit = [&](const std::array<int, 5>& point,
                        const core::ConnectivityCheck& check,
                        const char* build_time) {
    const auto& [n1, m1, k, mu, r] = point;
    const bool hypothesis = (n1 - 1) >= (r + 1) * k;
    report.row("  %3d %3d %2d %2d %2d %4s %8zu %8zu %7d %4d  %s", n1, m1, k,
               mu, r, hypothesis ? "yes" : "no", check.facet_count,
               check.vertex_count, check.expected, check.measured,
               build_time);
    if (hypothesis) {
      report.check(check.satisfied,
                   "Lemma 21 at n+1=" + std::to_string(n1) + " k=" +
                       std::to_string(k) + " mu=" + std::to_string(mu) +
                       " r=" + std::to_string(r));
    }
  };

  if (cache_dir.empty()) {
    for (const auto& point : grid) {
      const auto& [n1, m1, k, mu, r] = point;
      util::Timer timer;
      const core::ConnectivityCheck check =
          core::check_semisync_connectivity(n1, m1, k, mu, r, construction);
      emit(point, check, timer.pretty().c_str());
    }
    const int obs_exit = bench::finish_obs(obs_options);
    const int exit_code = report.finish();
    return exit_code != 0 ? exit_code : obs_exit;
  }

  std::vector<sweep::JobSpec> jobs;
  for (const auto& [n1, m1, k, mu, r] : grid) {
    jobs.push_back({"lemma21/semisync-connectivity",
                    {n1, m1, k, mu, r, mode_param},
                    {}});
  }
  sweep::SweepEngine engine({.cache_dir = cache_dir});
  const std::vector<core::ConnectivityCheck> checks =
      sweep::run_sweep<core::ConnectivityCheck>(
          engine, jobs,
          [&construction](const sweep::JobSpec& spec, std::size_t) {
            return core::check_semisync_connectivity(
                static_cast<int>(spec.params[0]),
                static_cast<int>(spec.params[1]),
                static_cast<int>(spec.params[2]),
                static_cast<int>(spec.params[3]),
                static_cast<int>(spec.params[4]), construction);
          },
          store::serialize_connectivity_check,
          store::deserialize_connectivity_check);
  for (std::size_t i = 0; i < grid.size(); ++i) emit(grid[i], checks[i], "-");
  std::printf("sweep: %s\n", engine.stats().to_string().c_str());
  const int obs_exit = bench::finish_obs(obs_options);
  const int exit_code = report.finish();
  return exit_code != 0 ? exit_code : obs_exit;
}
