// Lemma 21: M^r(S^m) is (m - (n - k) - 1)-connected when n >= (r+1)k.
// Swept over (n, k, μ, r) with hypothesis-violating rows marked.

#include "bench_util.h"
#include "core/theorems.h"
#include "util/timer.h"

int main() {
  using namespace psph;
  bench::Report report(
      "Lemma 21",
      "M^r(S^m) is (m - (n - k) - 1)-connected when n >= (r+1)k");
  report.header(
      "  n+1 m+1  k mu  r hyp?   facets vertices  expect conn  build");

  for (const auto& [n1, m1, k, mu, r] : std::vector<std::array<int, 5>>{
           {3, 3, 1, 2, 1},
           {3, 3, 1, 3, 1},
           {3, 3, 1, 4, 1},
           {4, 4, 1, 2, 1},
           {4, 4, 1, 2, 2},
           {4, 3, 1, 2, 1},
           {4, 4, 1, 3, 1},
           {3, 3, 1, 2, 2},  // hypothesis violated: n = 2 < (r+1)k = 3
       }) {
    util::Timer timer;
    const bool hypothesis = (n1 - 1) >= (r + 1) * k;
    const core::ConnectivityCheck check =
        core::check_semisync_connectivity(n1, m1, k, mu, r);
    report.row("  %3d %3d %2d %2d %2d %4s %8zu %8zu %7d %4d  %s", n1, m1, k,
               mu, r, hypothesis ? "yes" : "no", check.facet_count,
               check.vertex_count, check.expected, check.measured,
               timer.pretty().c_str());
    if (hypothesis) {
      report.check(check.satisfied,
                   "Lemma 21 at n+1=" + std::to_string(n1) + " k=" +
                       std::to_string(k) + " mu=" + std::to_string(mu) +
                       " r=" + std::to_string(r));
    }
  }
  return report.finish();
}
