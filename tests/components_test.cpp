// Tests for the union-find connectivity fast path, cross-checked against
// the homological β̃₀ on random complexes.

#include <gtest/gtest.h>

#include "topology/components.h"
#include "topology/homology.h"
#include "topology/operations.h"
#include "util/random.h"

namespace psph::topology {
namespace {

TEST(UnionFind, Basics) {
  UnionFind dsu;
  dsu.add(1);
  dsu.add(2);
  EXPECT_EQ(dsu.count(), 2u);
  EXPECT_FALSE(dsu.same(1, 2));
  dsu.unite(1, 2);
  EXPECT_EQ(dsu.count(), 1u);
  EXPECT_TRUE(dsu.same(1, 2));
  dsu.unite(1, 2);  // idempotent
  EXPECT_EQ(dsu.count(), 1u);
  EXPECT_FALSE(dsu.same(1, 99));
}

TEST(UnionFind, UniteAddsUnknownVertices) {
  UnionFind dsu;
  dsu.unite(5, 6);
  EXPECT_EQ(dsu.count(), 1u);
  EXPECT_TRUE(dsu.same(5, 6));
}

TEST(Components, EmptyComplexHasZero) {
  EXPECT_EQ(connected_component_count(SimplicialComplex()), 0u);
  EXPECT_FALSE(is_connected(SimplicialComplex()));
}

TEST(Components, CountsPieces) {
  SimplicialComplex k;
  k.add_facet(Simplex{0, 1, 2});
  k.add_facet(Simplex{2, 3});
  k.add_facet(Simplex{5, 6});
  k.add_facet(Simplex{7});
  EXPECT_EQ(connected_component_count(k), 3u);
  EXPECT_FALSE(is_connected(k));
  k.add_facet(Simplex{3, 5});
  k.add_facet(Simplex{6, 7});
  EXPECT_EQ(connected_component_count(k), 1u);
  EXPECT_TRUE(is_connected(k));
}

TEST(Components, MatchesReducedBetti0OnRandomComplexes) {
  util::Rng rng(808);
  for (int trial = 0; trial < 40; ++trial) {
    SimplicialComplex k;
    const int edges = 1 + static_cast<int>(rng.next_below(12));
    for (int i = 0; i < edges; ++i) {
      const auto pair = rng.sample_without_replacement(10, 2);
      k.add_facet(Simplex{static_cast<VertexId>(pair[0]),
                          static_cast<VertexId>(pair[1])});
    }
    const HomologyReport h = reduced_homology(k, {.max_dim = 0});
    EXPECT_EQ(connected_component_count(k),
              static_cast<std::size_t>(h.reduced_betti[0] + 1))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace psph::topology
