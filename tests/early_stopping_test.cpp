// Tests for early-stopping consensus: failure-free fast path, the clean-
// round rule under scripted partial failures, the f'+2 bound, exhaustive
// validation over every execution at small sizes, and random soaks.

#include <gtest/gtest.h>

#include "protocols/early_stopping.h"

namespace psph::protocols {
namespace {

class NoFailure : public sim::SyncAdversary {
 public:
  sim::SyncRoundPlan plan_round(int,
                                const std::vector<sim::ProcessId>&) override {
    return {};
  }
};

TEST(EarlyStopping, FailureFreeDecidesInTwoRounds) {
  core::ViewRegistry views;
  NoFailure adversary;
  const EarlyStoppingOutcome outcome =
      run_early_stopping({7, 3, 9}, {3, 2}, adversary, views);
  ASSERT_EQ(outcome.decisions.size(), 3u);
  for (const auto& [pid, decision] : outcome.decisions) {
    (void)pid;
    EXPECT_EQ(decision.value, 3);
    EXPECT_EQ(decision.round, 2);
  }
  EXPECT_EQ(outcome.max_round_used, 2);
}

TEST(EarlyStopping, FloodSetWouldUseMoreRounds) {
  // With f = 3 the fallback is round 4; the clean-round rule cuts the
  // failure-free case to 2 regardless of f.
  core::ViewRegistry views;
  NoFailure adversary;
  const EarlyStoppingOutcome outcome =
      run_early_stopping({5, 4, 3, 2, 1}, {5, 3}, adversary, views);
  EXPECT_EQ(outcome.max_round_used, 2);
}

TEST(EarlyStopping, PartialCrashDelaysOnlyObservers) {
  // P2 crashes in round 1 delivering only to P0: P0 sees the failure late
  // (P2 missing from round 2), both survivors still agree.
  core::ViewRegistry views;
  class Split : public sim::SyncAdversary {
   public:
    sim::SyncRoundPlan plan_round(
        int round, const std::vector<sim::ProcessId>&) override {
      sim::SyncRoundPlan plan;
      if (round == 1) {
        plan.crash.push_back(2);
        plan.delivered_to[2] = {0};
      }
      return plan;
    }
  } adversary;
  const EarlyStoppingOutcome outcome =
      run_early_stopping({5, 6, 1}, {3, 2}, adversary, views);
  ASSERT_EQ(outcome.decisions.size(), 2u);
  EXPECT_EQ(outcome.decisions.at(0).value, outcome.decisions.at(1).value);
}

TEST(EarlyStopping, ExhaustiveSmallInstances) {
  // Every execution, every failure pattern, every partial delivery —
  // validity, agreement, and the min(f'+2, f+1) bound must all hold.
  EXPECT_TRUE(exhaustive_early_check({0, 1, 2}, /*f=*/1, /*cap=*/1).ok());
  EXPECT_TRUE(exhaustive_early_check({0, 1, 2}, /*f=*/2, /*cap=*/2).ok());
  EXPECT_TRUE(exhaustive_early_check({3, 1, 2}, /*f=*/2, /*cap=*/1).ok());
}

TEST(EarlyStopping, ExhaustiveFourProcesses) {
  EXPECT_TRUE(exhaustive_early_check({0, 1, 2, 3}, /*f=*/1, /*cap=*/1).ok());
}

TEST(EarlyStopping, Soak) {
  EXPECT_TRUE(soak_early_stopping({3, 1}, 61, 300).ok());
  EXPECT_TRUE(soak_early_stopping({4, 2}, 67, 300).ok());
  EXPECT_TRUE(soak_early_stopping({5, 3}, 71, 200).ok());
}

}  // namespace
}  // namespace psph::protocols
