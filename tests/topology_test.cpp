// Tests for the simplicial topology layer: simplex algebra, facet-based
// complexes, operations, boundary/homology on spaces with known homology
// (spheres, torus, projective plane), collapse certificates, barycentric
// subdivision, isomorphism machinery.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "topology/arena.h"
#include "topology/collapse.h"
#include "topology/complex.h"
#include "topology/homology.h"
#include "topology/isomorphism.h"
#include "topology/operations.h"
#include "topology/simplex.h"
#include "topology/subdivision.h"
#include "util/random.h"

namespace psph::topology {
namespace {

// ---------------------------------------------------------------- simplex --

TEST(Simplex, SortsAndValidates) {
  const Simplex s{3, 1, 2};
  EXPECT_EQ(s.vertices(), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(s.dimension(), 2);
  EXPECT_THROW((Simplex{1, 1}), std::invalid_argument);
}

TEST(Simplex, EmptySimplexDimension) {
  EXPECT_EQ(Simplex().dimension(), -1);
  EXPECT_TRUE(Simplex().empty());
}

TEST(Simplex, FaceRelation) {
  const Simplex big{1, 2, 3, 4};
  EXPECT_TRUE((Simplex{2, 4}).is_face_of(big));
  EXPECT_TRUE(big.is_face_of(big));
  EXPECT_TRUE(Simplex().is_face_of(big));
  EXPECT_FALSE((Simplex{2, 5}).is_face_of(big));
}

TEST(Simplex, FaceWithoutIndex) {
  const Simplex s{1, 2, 3};
  EXPECT_EQ(s.face_without_index(0), (Simplex{2, 3}));
  EXPECT_EQ(s.face_without_index(2), (Simplex{1, 2}));
  EXPECT_THROW(s.face_without_index(3), std::out_of_range);
}

TEST(Simplex, WithoutVertex) {
  const Simplex s{1, 2, 3};
  EXPECT_EQ(s.without_vertex(2), (Simplex{1, 3}));
  EXPECT_EQ(s.without_vertex(9), s);
}

TEST(Simplex, IntersectAndUnite) {
  const Simplex a{1, 2, 3};
  const Simplex b{2, 3, 4};
  EXPECT_EQ(a.intersect(b), (Simplex{2, 3}));
  EXPECT_EQ(a.unite(b), (Simplex{1, 2, 3, 4}));
  EXPECT_TRUE(a.intersect(Simplex{7}).empty());
}

TEST(Simplex, FacesOfDim) {
  const Simplex s{1, 2, 3};
  EXPECT_EQ(s.faces_of_dim(0).size(), 3u);
  EXPECT_EQ(s.faces_of_dim(1).size(), 3u);
  EXPECT_EQ(s.faces_of_dim(2).size(), 1u);
  EXPECT_TRUE(s.faces_of_dim(3).empty());
  EXPECT_TRUE(s.faces_of_dim(-1).empty());
  EXPECT_EQ(s.all_faces().size(), 7u);
}

// ---------------------------------------------------------------- complex --

TEST(Complex, AddFacetMaintainsMaximality) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2});
  k.add_facet(Simplex{1, 2, 3});  // dominates the edge
  EXPECT_EQ(k.facet_count(), 1u);
  k.add_facet(Simplex{2, 3});  // already a face
  EXPECT_EQ(k.facet_count(), 1u);
  k.add_facet(Simplex{4});
  EXPECT_EQ(k.facet_count(), 2u);
}

TEST(Complex, AddEmptyFacetThrows) {
  SimplicialComplex k;
  EXPECT_THROW(k.add_facet(Simplex()), std::invalid_argument);
}

TEST(Complex, AddFacetsMatchesAddFacetLoop) {
  // The bulk path and the per-facet path must build identical complexes,
  // whichever lane the bulk path takes.
  const std::vector<std::vector<Simplex>> batches = {
      // Pure batch into an empty complex (fast lane).
      {Simplex{1, 2, 3}, Simplex{2, 3, 4}, Simplex{1, 2, 3}},
      // Pure batch of matching dimension into a pure complex (fast lane).
      {Simplex{3, 4, 5}, Simplex{4, 5, 6}},
      // Mixed-dimension batch (fallback), with domination both ways.
      {Simplex{7, 8}, Simplex{6, 7, 8, 9}, Simplex{1, 2}},
  };
  SimplicialComplex bulk;
  SimplicialComplex loop;
  for (const std::vector<Simplex>& batch : batches) {
    bulk.add_facets(batch);
    for (const Simplex& s : batch) loop.add_facet(s);
    EXPECT_EQ(bulk, loop);
  }
  EXPECT_EQ(bulk.facets(), loop.facets());
  EXPECT_EQ(bulk.f_vector(), loop.f_vector());
}

TEST(Complex, AddFacetsPureLaneDeduplicates) {
  SimplicialComplex k;
  k.add_facets({Simplex{1, 2}, Simplex{2, 3}, Simplex{1, 2}, Simplex{2, 3}});
  EXPECT_EQ(k.facet_count(), 2u);
  EXPECT_TRUE(k.is_pure());
  // A second pure batch of the same dimension also takes the fast lane and
  // must still drop exact duplicates of facets already present.
  k.add_facets({Simplex{2, 3}, Simplex{3, 4}});
  EXPECT_EQ(k.facet_count(), 3u);
}

TEST(Complex, AddFacetsMixedBatchKeepsMaximality) {
  SimplicialComplex k;
  k.add_facets({Simplex{1, 2, 3}, Simplex{1, 2}, Simplex{4}});
  EXPECT_EQ(k.facet_count(), 2u);  // {1,2} is dominated
  k.add_facets({Simplex{1, 2, 3, 4, 5}});
  EXPECT_EQ(k.facet_count(), 1u);  // dominates everything so far
  EXPECT_THROW(k.add_facets({Simplex{6}, Simplex()}), std::invalid_argument);
}

TEST(Complex, AddFacetsEmptyBatchAndReserve) {
  SimplicialComplex k;
  k.add_facets({});
  EXPECT_TRUE(k.empty());
  k.reserve(64);
  EXPECT_TRUE(k.empty());
  k.add_facet(Simplex{1, 2});
  EXPECT_EQ(k.facet_count(), 1u);
}

TEST(Complex, AddFacetsInvalidatesFaceCache) {
  SimplicialComplex k;
  k.add_facets({Simplex{1, 2, 3}});
  EXPECT_EQ(k.count_of_dim(1), 3u);  // primes the face cache
  k.add_facets({Simplex{2, 3, 4}});  // fast lane must still invalidate
  EXPECT_EQ(k.count_of_dim(1), 5u);
  EXPECT_EQ(k.count_of_dim(2), 2u);
}

TEST(Complex, ContainsFaces) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  EXPECT_TRUE(k.contains(Simplex{1, 3}));
  EXPECT_TRUE(k.contains(Simplex{2}));
  EXPECT_TRUE(k.contains(Simplex()));
  EXPECT_FALSE(k.contains(Simplex{4}));
  EXPECT_FALSE(k.contains(Simplex{1, 4}));
  EXPECT_FALSE(SimplicialComplex().contains(Simplex()));
}

TEST(Complex, SimplicesOfDimDeduplicates) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  k.add_facet(Simplex{2, 3, 4});
  // Edge {2,3} is shared: 5 distinct edges total.
  EXPECT_EQ(k.count_of_dim(1), 5u);
  EXPECT_EQ(k.count_of_dim(0), 4u);
  EXPECT_EQ(k.count_of_dim(2), 2u);
  EXPECT_EQ(k.count_of_dim(3), 0u);
}

TEST(Complex, FVectorAndEuler) {
  // Two triangles sharing an edge: χ = 4 - 5 + 2 = 1 (a disk).
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  k.add_facet(Simplex{2, 3, 4});
  EXPECT_EQ(k.f_vector(), (std::vector<std::size_t>{4, 5, 2}));
  EXPECT_EQ(k.euler_characteristic(), 1);
}

TEST(FaceCache, InvalidatedByAddFacet) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  // Prime the cache, then mutate; every cached quantity must refresh.
  EXPECT_EQ(k.f_vector(), (std::vector<std::size_t>{3, 3, 1}));
  EXPECT_EQ(k.count_of_dim(1), 3u);
  k.add_facet(Simplex{2, 3, 4});
  EXPECT_EQ(k.f_vector(), (std::vector<std::size_t>{4, 5, 2}));
  EXPECT_EQ(k.count_of_dim(1), 5u);
  EXPECT_EQ(k.euler_characteristic(), 1);
  EXPECT_EQ(k.simplices_of_dim(0).size(), 4u);
}

TEST(FaceCache, InvalidatedWhenInsertDominatesCachedFacet) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2});
  EXPECT_EQ(k.count_of_dim(1), 1u);
  EXPECT_EQ(k.dimension(), 1);
  // {1,2,3} swallows the cached facet {1,2}; dimension and faces follow.
  k.add_facet(Simplex{1, 2, 3});
  EXPECT_EQ(k.dimension(), 2);
  EXPECT_EQ(k.facet_count(), 1u);
  EXPECT_EQ(k.f_vector(), (std::vector<std::size_t>{3, 3, 1}));
}

TEST(FaceCache, InvalidatedByMerge) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  EXPECT_EQ(k.count_of_dim(0), 3u);
  SimplicialComplex other;
  other.add_facet(Simplex{3, 4});
  other.add_facet(Simplex{5});
  k.merge(other);
  EXPECT_EQ(k.f_vector(), (std::vector<std::size_t>{5, 4, 1}));
  EXPECT_EQ(k.dimension(), 2);
  // The merge source keeps its own (still valid) cache.
  EXPECT_EQ(other.f_vector(), (std::vector<std::size_t>{3, 1}));
}

TEST(FaceCache, ApplyVertexMapAfterCachedQuery) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  k.add_facet(Simplex{2, 3, 4});
  EXPECT_EQ(k.count_of_dim(2), 2u);
  const SimplicialComplex image =
      k.apply_vertex_map([](VertexId v) { return v + 10; });
  EXPECT_EQ(image.f_vector(), k.f_vector());
  EXPECT_TRUE(image.contains(Simplex{12, 13}));
  // Collapsing map: both triangles land on the edge {20, 21}.
  const SimplicialComplex collapsed = k.apply_vertex_map(
      [](VertexId v) { return v < 3 ? 20 : 21; }, /*allow_collapse=*/true);
  EXPECT_EQ(collapsed.f_vector(), (std::vector<std::size_t>{2, 1}));
}

TEST(FaceCache, CopyAndMoveCarryCache) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  EXPECT_EQ(k.count_of_dim(1), 3u);  // warm the cache
  SimplicialComplex copy = k;
  EXPECT_EQ(copy.f_vector(), (std::vector<std::size_t>{3, 3, 1}));
  copy.add_facet(Simplex{3, 4});  // mutating the copy leaves k intact
  EXPECT_EQ(copy.count_of_dim(0), 4u);
  EXPECT_EQ(k.count_of_dim(0), 3u);
  const SimplicialComplex moved = std::move(copy);
  EXPECT_EQ(moved.count_of_dim(0), 4u);
  EXPECT_EQ(moved.dimension(), 2);
}

TEST(FaceCache, OutOfRangeDimensionsAreEmpty) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2});
  EXPECT_TRUE(k.simplices_of_dim(-1).empty());
  EXPECT_TRUE(k.simplices_of_dim(2).empty());
  EXPECT_TRUE(k.face_index_of_dim(7).empty());
  EXPECT_EQ(k.face_index_of_dim(1).at(Simplex{1, 2}), 0u);
}

TEST(Complex, EqualityAndSubcomplex) {
  SimplicialComplex a, b;
  a.add_facet(Simplex{1, 2});
  a.add_facet(Simplex{3});
  b.add_facet(Simplex{3});
  b.add_facet(Simplex{1, 2});
  EXPECT_EQ(a, b);
  SimplicialComplex c;
  c.add_facet(Simplex{1, 2});
  EXPECT_TRUE(c.is_subcomplex_of(a));
  EXPECT_FALSE(a.is_subcomplex_of(c));
}

TEST(Complex, IsPure) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  EXPECT_TRUE(k.is_pure());
  k.add_facet(Simplex{4, 5});
  EXPECT_FALSE(k.is_pure());
}

TEST(Complex, ApplyVertexMap) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  const SimplicialComplex image = k.apply_vertex_map(
      [](VertexId v) { return v + 10; });
  EXPECT_TRUE(image.contains(Simplex{11, 12, 13}));
  // A collapsing map must be requested explicitly.
  EXPECT_THROW(k.apply_vertex_map([](VertexId) { return VertexId{7}; }),
               std::invalid_argument);
  const SimplicialComplex collapsed = k.apply_vertex_map(
      [](VertexId) { return VertexId{7}; }, /*allow_collapse=*/true);
  EXPECT_EQ(collapsed.dimension(), 0);
}

// ------------------------------------------------------------- operations --

TEST(Operations, UnionAndIntersection) {
  SimplicialComplex a, b;
  a.add_facet(Simplex{1, 2, 3});
  b.add_facet(Simplex{2, 3, 4});
  const SimplicialComplex u = union_of(a, b);
  EXPECT_EQ(u.facet_count(), 2u);
  const SimplicialComplex meet = intersection_of(a, b);
  EXPECT_EQ(meet.facets(), (std::vector<Simplex>{Simplex{2, 3}}));
}

TEST(Operations, IntersectionEmptyWhenDisjoint) {
  SimplicialComplex a, b;
  a.add_facet(Simplex{1, 2});
  b.add_facet(Simplex{3, 4});
  EXPECT_TRUE(intersection_of(a, b).empty());
}

TEST(Operations, StarAndLink) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  k.add_facet(Simplex{3, 4});
  k.add_facet(Simplex{5});
  const SimplicialComplex st = star(k, Simplex{3});
  EXPECT_EQ(st.facet_count(), 2u);
  const SimplicialComplex lk = link(k, Simplex{3});
  EXPECT_TRUE(lk.contains(Simplex{1, 2}));
  EXPECT_TRUE(lk.contains(Simplex{4}));
  EXPECT_FALSE(lk.contains(Simplex{3}));
}

TEST(Operations, Skeleton) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3, 4});
  const SimplicialComplex skel = skeleton(k, 1);
  EXPECT_EQ(skel.dimension(), 1);
  EXPECT_EQ(skel.facet_count(), 6u);  // C(4,2) edges
  EXPECT_TRUE(skeleton(k, -1).empty());
}

TEST(Operations, JoinOfSpheres) {
  // S^0 * S^0 = S^1 (a square). Homology check below confirms.
  SimplicialComplex s0a, s0b;
  s0a.add_facet(Simplex{1});
  s0a.add_facet(Simplex{2});
  s0b.add_facet(Simplex{3});
  s0b.add_facet(Simplex{4});
  const SimplicialComplex square = join(s0a, s0b);
  EXPECT_EQ(square.facet_count(), 4u);
  const HomologyReport h = reduced_homology(square, {.max_dim = 1});
  EXPECT_EQ(h.reduced_betti[0], 0);
  EXPECT_EQ(h.reduced_betti[1], 1);
}

TEST(Operations, JoinRejectsSharedVertices) {
  SimplicialComplex a, b;
  a.add_facet(Simplex{1});
  b.add_facet(Simplex{1});
  EXPECT_THROW(join(a, b), std::invalid_argument);
}

TEST(Operations, InducedSubcomplex) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  const SimplicialComplex sub = induced(k, {1, 3});
  EXPECT_EQ(sub.facets(), (std::vector<Simplex>{Simplex{1, 3}}));
}

TEST(Operations, BoundaryComplexIsSphere) {
  // ∂Δ^3 is a 2-sphere.
  const SimplicialComplex sphere = boundary_complex(Simplex{0, 1, 2, 3});
  EXPECT_EQ(sphere.facet_count(), 4u);
  const HomologyReport h = reduced_homology(sphere, {.max_dim = 2});
  EXPECT_EQ(h.reduced_betti[0], 0);
  EXPECT_EQ(h.reduced_betti[1], 0);
  EXPECT_EQ(h.reduced_betti[2], 1);
}

// --------------------------------------------------------------- homology --

SimplicialComplex solid_simplex(int dim) {
  std::vector<VertexId> vertices;
  for (int i = 0; i <= dim; ++i) vertices.push_back(static_cast<VertexId>(i));
  SimplicialComplex k;
  k.add_facet(Simplex(vertices));
  return k;
}

TEST(Homology, PointIsAcyclic) {
  SimplicialComplex k;
  k.add_facet(Simplex{0});
  const HomologyReport h = reduced_homology(k, {.max_dim = 2});
  EXPECT_TRUE(h.nonempty);
  for (long long betti : h.reduced_betti) EXPECT_EQ(betti, 0);
}

TEST(Homology, EmptyComplex) {
  const HomologyReport h = reduced_homology(SimplicialComplex(), {.max_dim = 1});
  EXPECT_FALSE(h.nonempty);
}

TEST(Homology, TwoPointsHaveReducedBetti0) {
  SimplicialComplex k;
  k.add_facet(Simplex{0});
  k.add_facet(Simplex{1});
  const HomologyReport h = reduced_homology(k, {.max_dim = 1});
  EXPECT_EQ(h.reduced_betti[0], 1);  // two components → β̃₀ = 1
}

TEST(Homology, SolidSimplexesAreAcyclic) {
  for (int dim = 0; dim <= 4; ++dim) {
    const HomologyReport h =
        reduced_homology(solid_simplex(dim), {.max_dim = 4});
    for (long long betti : h.reduced_betti) {
      EXPECT_EQ(betti, 0) << "dim=" << dim;
    }
  }
}

TEST(Homology, SpheresHaveTopClass) {
  for (int dim = 1; dim <= 4; ++dim) {
    std::vector<VertexId> vertices;
    for (int i = 0; i <= dim + 1; ++i) {
      vertices.push_back(static_cast<VertexId>(i));
    }
    const SimplicialComplex sphere = boundary_complex(Simplex(vertices));
    const HomologyReport h = reduced_homology(sphere, {.max_dim = dim});
    for (int d = 0; d < dim; ++d) {
      EXPECT_EQ(h.reduced_betti[static_cast<std::size_t>(d)], 0)
          << "S^" << dim << " dim " << d;
    }
    EXPECT_EQ(h.reduced_betti[static_cast<std::size_t>(dim)], 1)
        << "S^" << dim;
  }
}

TEST(Homology, CircleHasOneLoop) {
  SimplicialComplex k;
  k.add_facet(Simplex{0, 1});
  k.add_facet(Simplex{1, 2});
  k.add_facet(Simplex{0, 2});
  const HomologyReport h = reduced_homology(k, {.max_dim = 1});
  EXPECT_EQ(h.reduced_betti[0], 0);
  EXPECT_EQ(h.reduced_betti[1], 1);
}

TEST(Homology, WedgeOfTwoCircles) {
  SimplicialComplex k;
  // Two triangles sharing exactly the vertex 0.
  k.add_facet(Simplex{0, 1});
  k.add_facet(Simplex{1, 2});
  k.add_facet(Simplex{0, 2});
  k.add_facet(Simplex{0, 3});
  k.add_facet(Simplex{3, 4});
  k.add_facet(Simplex{0, 4});
  const HomologyReport h = reduced_homology(k, {.max_dim = 1});
  EXPECT_EQ(h.reduced_betti[0], 0);
  EXPECT_EQ(h.reduced_betti[1], 2);
}

TEST(Homology, TorusBettiNumbers) {
  // Möbius' 7-vertex torus triangulation: faces {i, i+1, i+3} and
  // {i, i+2, i+3} mod 7. All 21 edges of K7 appear in exactly two faces and
  // χ = 7 - 21 + 14 = 0.
  SimplicialComplex k;
  for (VertexId i = 0; i < 7; ++i) {
    k.add_facet(Simplex{i, (i + 1) % 7, (i + 3) % 7});
    k.add_facet(Simplex{i, (i + 2) % 7, (i + 3) % 7});
  }
  ASSERT_EQ(k.facet_count(), 14u);
  ASSERT_EQ(k.count_of_dim(1), 21u);
  EXPECT_EQ(k.euler_characteristic(), 0);
  const HomologyReport h =
      reduced_homology(k, {.max_dim = 2, .exact = true});
  EXPECT_EQ(h.reduced_betti[0], 0);
  EXPECT_EQ(h.reduced_betti[1], 2);
  EXPECT_EQ(h.reduced_betti[2], 1);
  // The torus is orientable: no torsion anywhere.
  for (const auto& dim_torsion : h.torsion) EXPECT_TRUE(dim_torsion.empty());
}

TEST(Homology, ProjectivePlaneTorsion) {
  // The minimal 6-vertex triangulation of RP² (10 faces, all 15 edges of
  // K6). Rational Betti numbers vanish; the exact path must report the Z/2
  // in H₁.
  const int faces[10][3] = {{1, 2, 4}, {1, 2, 5}, {1, 3, 4}, {1, 3, 6},
                            {1, 5, 6}, {2, 3, 5}, {2, 3, 6}, {2, 4, 6},
                            {3, 4, 5}, {4, 5, 6}};
  SimplicialComplex k;
  for (const auto& f : faces) {
    k.add_facet(Simplex{static_cast<VertexId>(f[0]),
                        static_cast<VertexId>(f[1]),
                        static_cast<VertexId>(f[2])});
  }
  ASSERT_EQ(k.count_of_dim(1), 15u);
  EXPECT_EQ(k.euler_characteristic(), 1);
  const HomologyReport h =
      reduced_homology(k, {.max_dim = 2, .exact = true});
  EXPECT_EQ(h.reduced_betti[0], 0);
  EXPECT_EQ(h.reduced_betti[1], 0);
  EXPECT_EQ(h.reduced_betti[2], 0);
  ASSERT_EQ(h.torsion[1].size(), 1u);
  EXPECT_EQ(h.torsion[1][0], "2");
  EXPECT_TRUE(h.torsion[2].empty());
}

// ------------------------------------------------------------- collapse --

TEST(Collapse, SolidSimplexCollapses) {
  for (int dim = 1; dim <= 4; ++dim) {
    EXPECT_TRUE(collapses_to_point(solid_simplex(dim))) << dim;
  }
}

TEST(Collapse, SingleVertexIsAlreadyPoint) {
  SimplicialComplex k;
  k.add_facet(Simplex{0});
  const CollapseResult r = collapse_greedily(k);
  EXPECT_TRUE(r.collapsed_to_point);
  EXPECT_EQ(r.steps, 0u);
}

TEST(Collapse, SphereDoesNotCollapse) {
  const SimplicialComplex sphere = boundary_complex(Simplex{0, 1, 2, 3});
  EXPECT_FALSE(collapses_to_point(sphere));
}

TEST(Collapse, TreeCollapses) {
  SimplicialComplex k;
  k.add_facet(Simplex{0, 1});
  k.add_facet(Simplex{1, 2});
  k.add_facet(Simplex{1, 3});
  k.add_facet(Simplex{3, 4});
  EXPECT_TRUE(collapses_to_point(k));
}

TEST(Collapse, CircleDoesNotCollapse) {
  SimplicialComplex k;
  k.add_facet(Simplex{0, 1});
  k.add_facet(Simplex{1, 2});
  k.add_facet(Simplex{0, 2});
  const CollapseResult r = collapse_greedily(k);
  EXPECT_FALSE(r.collapsed_to_point);
  EXPECT_EQ(r.remaining_faces, 6u);  // nothing is free on a circle
}

// ------------------------------------------------------------ subdivision --

TEST(Subdivision, TriangleCounts) {
  // sd(Δ²) has 7 vertices (3 + 3 + 1) and 6 triangles.
  const Subdivision sd = barycentric_subdivision(solid_simplex(2));
  EXPECT_EQ(sd.complex.count_of_dim(0), 7u);
  EXPECT_EQ(sd.complex.facet_count(), 6u);
  EXPECT_EQ(sd.carriers.size(), 7u);
}

TEST(Subdivision, PreservesHomologyOfSphere) {
  const SimplicialComplex sphere = boundary_complex(Simplex{0, 1, 2, 3});
  const Subdivision sd = barycentric_subdivision(sphere);
  const HomologyReport h = reduced_homology(sd.complex, {.max_dim = 2});
  EXPECT_EQ(h.reduced_betti[0], 0);
  EXPECT_EQ(h.reduced_betti[1], 0);
  EXPECT_EQ(h.reduced_betti[2], 1);
}

TEST(Subdivision, PreservesEulerCharacteristic) {
  SimplicialComplex k;
  k.add_facet(Simplex{0, 1, 2});
  k.add_facet(Simplex{2, 3});
  const Subdivision sd = barycentric_subdivision(k);
  EXPECT_EQ(sd.complex.euler_characteristic(), k.euler_characteristic());
}

TEST(Subdivision, IteratedGrowth) {
  const Subdivision sd2 =
      iterated_barycentric_subdivision(solid_simplex(2), 2);
  // sd² of a triangle: each of the 6 triangles subdivides into 6.
  EXPECT_EQ(sd2.complex.facet_count(), 36u);
}

// ----------------------------------------------------------- isomorphism --

TEST(Isomorphism, IdentityIsIsomorphism) {
  SimplicialComplex k;
  k.add_facet(Simplex{0, 1, 2});
  VertexMap identity{{0, 0}, {1, 1}, {2, 2}};
  EXPECT_TRUE(is_isomorphism(k, k, identity));
}

TEST(Isomorphism, RelabelingIsIsomorphism) {
  SimplicialComplex a, b;
  a.add_facet(Simplex{0, 1});
  a.add_facet(Simplex{1, 2});
  b.add_facet(Simplex{10, 11});
  b.add_facet(Simplex{11, 12});
  VertexMap map{{0, 10}, {1, 11}, {2, 12}};
  EXPECT_TRUE(is_isomorphism(a, b, map));
  VertexMap wrong{{0, 11}, {1, 10}, {2, 12}};
  EXPECT_FALSE(is_isomorphism(a, b, wrong));
}

TEST(Isomorphism, FingerprintDistinguishes) {
  SimplicialComplex path, triangle;
  path.add_facet(Simplex{0, 1});
  path.add_facet(Simplex{1, 2});
  triangle.add_facet(Simplex{0, 1});
  triangle.add_facet(Simplex{1, 2});
  triangle.add_facet(Simplex{0, 2});
  EXPECT_FALSE(fingerprint(path) == fingerprint(triangle));
}

TEST(Isomorphism, SearchFindsWitness) {
  SimplicialComplex a, b;
  a.add_facet(Simplex{0, 1, 2});
  a.add_facet(Simplex{2, 3});
  b.add_facet(Simplex{5, 6});
  b.add_facet(Simplex{6, 7, 8});
  const auto witness = find_isomorphism(a, b);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(is_isomorphism(a, b, *witness));
}

TEST(Isomorphism, SearchRefutesNonIsomorphic) {
  SimplicialComplex path, star3;
  // Path on 4 vertices vs star with 3 leaves: same f-vector (4,3) but
  // different degree multisets.
  path.add_facet(Simplex{0, 1});
  path.add_facet(Simplex{1, 2});
  path.add_facet(Simplex{2, 3});
  star3.add_facet(Simplex{0, 1});
  star3.add_facet(Simplex{0, 2});
  star3.add_facet(Simplex{0, 3});
  EXPECT_FALSE(find_isomorphism(path, star3).has_value());
}

// ----------------------------------------------------------------- arena --

TEST(Arena, InternIsIdempotent) {
  VertexArena arena;
  const VertexId a = arena.intern(0, 42);
  const VertexId b = arena.intern(0, 42);
  const VertexId c = arena.intern(1, 42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(arena.pid(a), 0);
  EXPECT_EQ(arena.state(c), 42u);
  EXPECT_EQ(arena.size(), 2u);
  EXPECT_THROW(arena.label(99), std::out_of_range);
}

// --------------------------------------------------- randomized properties --

TEST(Property, EulerEqualsAlternatingBettiSum) {
  // χ(K) = Σ (-1)^d β_d (unreduced). Check on random 2-dimensional
  // complexes; unreduced β₀ = reduced β̃₀ + 1.
  util::Rng rng(211);
  for (int trial = 0; trial < 20; ++trial) {
    SimplicialComplex k;
    const int n = 6;
    for (int i = 0; i < 10; ++i) {
      const std::vector<int> tri = rng.sample_without_replacement(n, 3);
      k.add_facet(Simplex{static_cast<VertexId>(tri[0]),
                          static_cast<VertexId>(tri[1]),
                          static_cast<VertexId>(tri[2])});
    }
    const HomologyReport h = reduced_homology(k, {.max_dim = 2});
    const long long chi = 1 + h.reduced_betti[0] - h.reduced_betti[1] +
                          h.reduced_betti[2];
    EXPECT_EQ(k.euler_characteristic(), chi);
  }
}

TEST(Property, SubdivisionPreservesBetti) {
  util::Rng rng(223);
  for (int trial = 0; trial < 5; ++trial) {
    SimplicialComplex k;
    for (int i = 0; i < 6; ++i) {
      const std::vector<int> tri = rng.sample_without_replacement(5, 3);
      k.add_facet(Simplex{static_cast<VertexId>(tri[0]),
                          static_cast<VertexId>(tri[1]),
                          static_cast<VertexId>(tri[2])});
    }
    const Subdivision sd = barycentric_subdivision(k);
    const HomologyReport h1 = reduced_homology(k, {.max_dim = 2});
    const HomologyReport h2 = reduced_homology(sd.complex, {.max_dim = 2});
    EXPECT_EQ(h1.reduced_betti, h2.reduced_betti);
  }
}

TEST(Property, IntersectionIsSubcomplexOfBoth) {
  util::Rng rng(227);
  for (int trial = 0; trial < 20; ++trial) {
    SimplicialComplex a, b;
    for (int i = 0; i < 5; ++i) {
      const std::vector<int> ta = rng.sample_without_replacement(6, 3);
      const std::vector<int> tb = rng.sample_without_replacement(6, 3);
      a.add_facet(Simplex{static_cast<VertexId>(ta[0]),
                          static_cast<VertexId>(ta[1]),
                          static_cast<VertexId>(ta[2])});
      b.add_facet(Simplex{static_cast<VertexId>(tb[0]),
                          static_cast<VertexId>(tb[1]),
                          static_cast<VertexId>(tb[2])});
    }
    const SimplicialComplex meet = intersection_of(a, b);
    EXPECT_TRUE(meet.is_subcomplex_of(a));
    EXPECT_TRUE(meet.is_subcomplex_of(b));
    // And the union contains both.
    const SimplicialComplex u = union_of(a, b);
    EXPECT_TRUE(a.is_subcomplex_of(u));
    EXPECT_TRUE(b.is_subcomplex_of(u));
  }
}

// ------------------------------------------------- boundary link table --

TEST(Complex, BoundaryLinksMatchFaceIndexLookups) {
  // The link table the cache build records must agree with what explicit
  // face_without_index + index lookups produce, for every simplex and
  // omitted vertex, on an irregular complex.
  SimplicialComplex k;
  k.add_facet(Simplex{0, 1, 2, 3});
  k.add_facet(Simplex{2, 3, 4});
  k.add_facet(Simplex{4, 5});
  k.add_facet(Simplex{6});
  for (int d = 1; d <= k.dimension(); ++d) {
    const std::vector<Simplex>& simplices = k.simplices_of_dim(d);
    const std::vector<std::size_t>& links = k.boundary_links_of_dim(d);
    const auto& index = k.face_index_of_dim(d - 1);
    ASSERT_EQ(links.size(),
              simplices.size() * (static_cast<std::size_t>(d) + 1));
    for (std::size_t c = 0; c < simplices.size(); ++c) {
      for (std::size_t omit = 0; omit <= static_cast<std::size_t>(d);
           ++omit) {
        const Simplex face = simplices[c].face_without_index(omit);
        EXPECT_EQ(links[c * (static_cast<std::size_t>(d) + 1) + omit],
                  index.at(face))
            << "d=" << d << " c=" << c << " omit=" << omit;
      }
    }
  }
  EXPECT_TRUE(k.boundary_links_of_dim(0).empty());
  EXPECT_TRUE(k.boundary_links_of_dim(9).empty());
}

// ----------------------------------------------------- Morse reduction --

TEST(Morse, SolidSimplexReducesToNothing) {
  // A solid simplex is collapsible, and with the augmentation cell in play
  // the coreduction cascade pairs away every cell: no critical cells, all
  // reduced matrices empty.
  SimplicialComplex k;
  k.add_facet(Simplex{0, 1, 2, 3});
  const MorseComplex mc = morse_reduce(k, 4);
  EXPECT_EQ(mc.cells_after, 0u);
  EXPECT_EQ(2 * mc.pairs, mc.cells_before);
  for (const std::size_t c : mc.critical) EXPECT_EQ(c, 0u);
  EXPECT_EQ(mc.boundary[0].rows(), 0u);
}

TEST(Morse, BoundaryOfTetrahedronKeepsTopHomology) {
  // ∂Δ³ ≃ S²: β̃ = [0, 0, 1]. The cascade cannot eat the 2-sphere cycle,
  // and homology through the reduced matrices must see it.
  SimplicialComplex k;
  for (const auto& f : {Simplex{0, 1, 2}, Simplex{0, 1, 3}, Simplex{0, 2, 3},
                        Simplex{1, 2, 3}}) {
    k.add_facet(f);
  }
  const MorseComplex mc = morse_reduce(k, 3);
  EXPECT_LT(mc.cells_after, mc.cells_before);
  const HomologyReport with_morse =
      reduced_homology(k, {.max_dim = 2, .morse = true});
  const HomologyReport without_morse =
      reduced_homology(k, {.max_dim = 2, .morse = false});
  const std::vector<long long> expected = {0, 0, 1};
  EXPECT_EQ(with_morse.reduced_betti, expected);
  EXPECT_EQ(without_morse.reduced_betti, expected);
}

TEST(Morse, DisconnectedComplexKeepsComponentCount) {
  // Three components, one a hollow triangle: β̃_0 = 2, β̃_1 = 1. Only one
  // component's vertex can pair with the augmentation cell.
  SimplicialComplex k;
  k.add_facet(Simplex{0, 1});
  k.add_facet(Simplex{1, 2});
  k.add_facet(Simplex{0, 2});  // hollow triangle 0-1-2
  k.add_facet(Simplex{3, 4});
  k.add_facet(Simplex{5});
  for (const bool morse : {true, false}) {
    const HomologyReport report =
        reduced_homology(k, {.max_dim = 1, .morse = morse});
    const std::vector<long long> expected = {2, 1};
    EXPECT_EQ(report.reduced_betti, expected) << "morse=" << morse;
  }
}

TEST(Morse, TruncationDepthOnlyAffectsDimensionsAtOrAboveIt) {
  // Reducing with top_dim = t preserves homology strictly below t; the
  // engine always passes t = max_dim + 1 so every reported dimension is
  // safe. Cross-check on the 3-sphere pseudosphere-like boundary ∂Δ⁴.
  SimplicialComplex k;
  for (VertexId drop = 0; drop < 5; ++drop) {
    std::vector<VertexId> vs;
    for (VertexId v = 0; v < 5; ++v) {
      if (v != drop) vs.push_back(v);
    }
    k.add_facet(Simplex(vs));
  }
  for (int max_dim = 0; max_dim <= 3; ++max_dim) {
    const HomologyReport report =
        reduced_homology(k, {.max_dim = max_dim, .morse = true});
    for (int d = 0; d <= max_dim; ++d) {
      const long long expected = (d == 3) ? 1 : 0;
      EXPECT_EQ(report.reduced_betti[static_cast<std::size_t>(d)], expected)
          << "max_dim=" << max_dim << " d=" << d;
    }
  }
}

}  // namespace
}  // namespace psph::topology
