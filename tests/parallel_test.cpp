// Thread pool unit tests plus the homology thread-parity guarantee: Betti
// numbers and torsion must be byte-identical at every thread count (the
// pool only changes *when* a dimension's rank is computed, never its
// value). Run these under -DPSPH_SANITIZE=thread to validate the pool.

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/async_complex.h"
#include "core/construction.h"
#include "core/iis_complex.h"
#include "core/pseudosphere.h"
#include "core/semisync_complex.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "math/simd.h"
#include "math/smith.h"
#include "topology/homology.h"
#include "util/random.h"

namespace {

using namespace psph;

/// Seed for the randomized differential: PSPH_TEST_SEED overrides the
/// fallback so CI can re-run the draw on a second stream.
std::uint64_t test_seed(std::uint64_t fallback) {
  const char* raw = std::getenv("PSPH_TEST_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return parsed;
}

// Every test restores the global thread count so ordering does not leak
// configuration between tests.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = util::thread_count(); }
  void TearDown() override { util::set_thread_count(previous_); }

 private:
  int previous_ = 1;
};

TEST_F(ParallelTest, PoolRunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST_F(ParallelTest, PoolWithZeroWorkersRunsInline) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(5);
  pool.run(seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST_F(ParallelTest, PoolIsReusableAcrossBatches) {
  util::ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 20; ++batch) {
    pool.run(10, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST_F(ParallelTest, PoolRethrowsFirstExceptionAfterDraining) {
  util::ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.run(64,
                        [&](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                          ++completed;
                        }),
               std::runtime_error);
  // Every index other than the throwing one still ran.
  EXPECT_EQ(completed.load(), 63);
}

TEST_F(ParallelTest, ParallelForInlineWhenSingleThreaded) {
  util::set_thread_count(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  util::parallel_for(seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST_F(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock) {
  util::set_thread_count(4);
  std::atomic<int> total{0};
  util::parallel_for(4, [&](std::size_t) {
    util::parallel_for(4, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST_F(ParallelTest, SetThreadCountRoundTrip) {
  util::set_thread_count(8);
  EXPECT_EQ(util::thread_count(), 8);
  util::set_thread_count(1);
  EXPECT_EQ(util::thread_count(), 1);
  // n <= 0 selects hardware concurrency, which is always at least 1.
  util::set_thread_count(0);
  EXPECT_GE(util::thread_count(), 1);
}

// ------------------------------------------------------- thread parity --

// The Figure 1-3 complexes exercised by the experiment binaries.
topology::SimplicialComplex fig1_binary_pseudosphere(int n1) {
  topology::VertexArena arena;
  std::vector<core::ProcessId> pids;
  for (int i = 0; i < n1; ++i) pids.push_back(i);
  return core::pseudosphere_uniform(pids, {0, 1}, arena);
}

topology::SimplicialComplex fig2_ternary_pseudosphere() {
  topology::VertexArena arena;
  return core::pseudosphere_uniform({0, 1}, {0, 1, 2}, arena);
}

topology::SimplicialComplex fig3_sync_one_round() {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  return core::sync_round_complex(input, {3, 1, 1, 1}, views, arena);
}

std::string homology_at_threads(const topology::SimplicialComplex& k,
                                int threads, int max_dim) {
  util::set_thread_count(threads);
  const topology::HomologyReport report =
      topology::reduced_homology(k, {.max_dim = max_dim, .exact = true});
  return report.to_string();
}

TEST_F(ParallelTest, HomologyIdenticalAcrossThreadCounts) {
  const std::vector<topology::SimplicialComplex> complexes = {
      fig1_binary_pseudosphere(3),
      fig1_binary_pseudosphere(4),
      fig2_ternary_pseudosphere(),
      fig3_sync_one_round(),
  };
  for (const topology::SimplicialComplex& k : complexes) {
    const int max_dim = k.dimension() + 1;
    const std::string serial = homology_at_threads(k, 1, max_dim);
    const std::string parallel = homology_at_threads(k, 8, max_dim);
    EXPECT_EQ(serial, parallel) << k.to_string();
  }
}

TEST_F(ParallelTest, ConnectivityIdenticalAcrossThreadCounts) {
  const topology::SimplicialComplex sphere = fig1_binary_pseudosphere(4);
  util::set_thread_count(1);
  const int serial = topology::homological_connectivity(sphere, 3);
  util::set_thread_count(8);
  const int parallel = topology::homological_connectivity(sphere, 3);
  EXPECT_EQ(serial, parallel);
  // ψ(S^3; {0,1}) is the 3-sphere: 2-connected with H̃_3 ≠ 0.
  EXPECT_EQ(serial, 2);
}

TEST_F(ParallelTest, SmithNormalFormIdenticalAcrossThreadCounts) {
  // The dense SNF's parallel row-clearing phase must not change the
  // computed invariant factors (they are canonical, but this checks the
  // implementation took the same reduction path to them).
  const topology::SimplicialComplex k = fig1_binary_pseudosphere(4);
  const math::SparseMatrix boundary = topology::boundary_matrix(k, 2);
  std::vector<std::string> renderings;
  for (const int threads : {1, 2, 8}) {
    util::set_thread_count(threads);
    const math::SmithResult snf = math::smith_normal_form(boundary);
    std::string rendered;
    for (const math::BigInt& inv : snf.invariants) {
      rendered += inv.to_string();
      rendered += ',';
    }
    renderings.push_back(std::move(rendered));
  }
  EXPECT_EQ(renderings[0], renderings[1]);
  EXPECT_EQ(renderings[0], renderings[2]);
}

TEST_F(ParallelTest, SimdLevelsProduceIdenticalGf2Results) {
  // Kernel dispatch (scalar / AVX2 / AVX-512) must be observable only in
  // timing: GF(2) ranks and mod-2 homology identical at every level the
  // CPU supports. Random matrices come from a seed-reproducible stream.
  const math::SimdLevel previous = math::simd_level();
  const int max_level = static_cast<int>(math::max_supported_simd_level());
  const std::uint64_t seed = test_seed(20260810);
  util::Rng rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t rows = 16 + rng.next_below(48);
    const std::size_t cols = 64 + rng.next_below(512);
    math::SparseMatrix matrix(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (rng.next_below(8) == 0) matrix.set(r, c, 1);
      }
    }
    std::vector<std::size_t> ranks;
    for (int level = 0; level <= max_level; ++level) {
      math::set_simd_level(static_cast<math::SimdLevel>(level));
      ranks.push_back(matrix.rank_mod_p(2));
    }
    for (std::size_t i = 1; i < ranks.size(); ++i) {
      EXPECT_EQ(ranks[0], ranks[i])
          << "level " << i << "; seed=" << seed << " trial=" << trial;
    }
  }
  const topology::SimplicialComplex k = fig1_binary_pseudosphere(4);
  std::vector<std::string> reports;
  for (int level = 0; level <= max_level; ++level) {
    math::set_simd_level(static_cast<math::SimdLevel>(level));
    reports.push_back(
        topology::reduced_homology(k, {.max_dim = 3, .prime = 2}).to_string());
  }
  math::set_simd_level(previous);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[0], reports[i]) << "level " << i;
  }
}

// ------------------------------------- construction thread parity --------

// Everything the bit-identity guarantee covers: the complex's facet list as
// raw vertex ids, the full registry and arena contents in id order, and the
// homology computed from the complex. Two Snapshots compare equal only if
// the runs were indistinguishable down to numeric id assignment.
struct ConstructionSnapshot {
  std::vector<topology::Simplex> facets;
  std::vector<std::string> views_in_id_order;
  std::vector<std::pair<core::ProcessId, topology::StateId>>
      vertex_labels_in_id_order;
  std::string homology;

  bool operator==(const ConstructionSnapshot& other) const = default;
};

template <typename BuildFn>
ConstructionSnapshot snapshot_at_threads(int threads, int participants,
                                         const BuildFn& build) {
  util::set_thread_count(threads);
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input =
      core::rainbow_input(participants, views, arena);
  const topology::SimplicialComplex k = build(input, views, arena);
  ConstructionSnapshot snapshot;
  snapshot.facets = k.facets();
  for (topology::StateId id = 0; id < views.size(); ++id) {
    snapshot.views_in_id_order.push_back(views.to_string(id));
  }
  for (topology::VertexId id = 0; id < arena.size(); ++id) {
    snapshot.vertex_labels_in_id_order.emplace_back(arena.pid(id),
                                                    arena.state(id));
  }
  // Mod-p Betti numbers (the fast path) keep this cheap; the id-order
  // comparisons above already pin the complex bit-for-bit, and the fast
  // path additionally exercises the parallel rank engine being compared.
  snapshot.homology =
      topology::reduced_homology(k, {.max_dim = k.dimension()}).to_string();
  return snapshot;
}

template <typename BuildFn>
void expect_bit_identical_construction(int participants, const BuildFn& build,
                                       const char* label) {
  const ConstructionSnapshot at1 = snapshot_at_threads(1, participants, build);
  for (const int threads : {2, 8}) {
    const ConstructionSnapshot at_n =
        snapshot_at_threads(threads, participants, build);
    EXPECT_EQ(at1.facets, at_n.facets) << label << " threads=" << threads;
    EXPECT_EQ(at1.views_in_id_order, at_n.views_in_id_order)
        << label << " threads=" << threads;
    EXPECT_EQ(at1.vertex_labels_in_id_order, at_n.vertex_labels_in_id_order)
        << label << " threads=" << threads;
    EXPECT_EQ(at1.homology, at_n.homology) << label << " threads=" << threads;
  }
}

TEST_F(ParallelTest, AsyncConstructionBitIdenticalAcrossThreadCounts) {
  expect_bit_identical_construction(
      3,
      [](const topology::Simplex& input, core::ViewRegistry& views,
         topology::VertexArena& arena) {
        return core::async_protocol_complex(input, {3, 1, 2}, views, arena);
      },
      "async n=3 f=1 r=2");
}

TEST_F(ParallelTest, SyncConstructionBitIdenticalAcrossThreadCounts) {
  expect_bit_identical_construction(
      3,
      [](const topology::Simplex& input, core::ViewRegistry& views,
         topology::VertexArena& arena) {
        return core::sync_protocol_complex(input, {3, 2, 1, 2}, views, arena);
      },
      "sync n=3 f=2 k=1 r=2");
}

TEST_F(ParallelTest, SemisyncConstructionBitIdenticalAcrossThreadCounts) {
  expect_bit_identical_construction(
      3,
      [](const topology::Simplex& input, core::ViewRegistry& views,
         topology::VertexArena& arena) {
        return core::semisync_protocol_complex(input, {3, 1, 1, 2, 2}, views,
                                               arena);
      },
      "semisync n=3 f=1 k=1 mu=2 r=2");
}

TEST_F(ParallelTest, IisConstructionBitIdenticalAcrossThreadCounts) {
  expect_bit_identical_construction(
      3,
      [](const topology::Simplex& input, core::ViewRegistry& views,
         topology::VertexArena& arena) {
        return core::iis_protocol_complex(input, 2, views, arena);
      },
      "iis n=3 r=2");
}

// The pipeline and the sequential reference recursion, run against the SAME
// registry/arena, must produce the same complex (hash-consing makes the
// comparison exact regardless of id assignment order).
TEST_F(ParallelTest, PipelineMatchesSequentialReference) {
  util::set_thread_count(8);
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);

  EXPECT_EQ(core::async_protocol_complex(input, {3, 1, 2}, views, arena),
            core::async_protocol_complex_seq(input, {3, 1, 2}, views, arena));
  EXPECT_EQ(core::sync_protocol_complex(input, {3, 2, 1, 2}, views, arena),
            core::sync_protocol_complex_seq(input, {3, 2, 1, 2}, views,
                                            arena));
  EXPECT_EQ(
      core::semisync_protocol_complex(input, {3, 1, 1, 2, 2}, views, arena),
      core::semisync_protocol_complex_seq(input, {3, 1, 1, 2, 2}, views,
                                          arena));
  EXPECT_EQ(core::iis_protocol_complex(input, 2, views, arena),
            core::iis_protocol_complex_seq(input, 2, views, arena));
}

// Randomized extension of the same differential: the model, process count,
// failure budget, and round count are seeded random draws rather than the
// four fixed points above, and every drawn configuration is checked at both
// 1 and 8 threads. Each (pipeline, reference) pair shares one registry and
// arena, so hash-consing makes equality exact. Override the stream with
// PSPH_TEST_SEED.
TEST_F(ParallelTest, RandomizedPipelineMatchesSequentialReference) {
  const std::uint64_t seed = test_seed(20260806);
  util::Rng rng(seed);
  for (int trial = 0; trial < 12; ++trial) {
    const int model = static_cast<int>(rng.next_below(3));
    const int n1 = 3 + static_cast<int>(rng.next_below(2));
    // n+1 = 4 grows fast; cap its depth so the sweep stays in test budget.
    const int rounds =
        n1 >= 4 ? 1 : 1 + static_cast<int>(rng.next_below(2));
    const int failures =
        1 + static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(std::max(n1 - 2, 1))));
    const int micro_rounds = 2 + static_cast<int>(rng.next_below(2));
    const std::string label = "seed=" + std::to_string(seed) + " trial=" +
                              std::to_string(trial) + " model=" +
                              std::to_string(model) + " n+1=" +
                              std::to_string(n1) + " f=" +
                              std::to_string(failures) + " r=" +
                              std::to_string(rounds) + " mu=" +
                              std::to_string(micro_rounds);

    for (const int threads : {1, 8}) {
      util::set_thread_count(threads);
      core::ViewRegistry views;
      topology::VertexArena arena;
      const topology::Simplex input = core::rainbow_input(n1, views, arena);
      switch (model) {
        case 0:
          EXPECT_EQ(core::async_protocol_complex(input, {n1, failures, rounds},
                                                 views, arena),
                    core::async_protocol_complex_seq(
                        input, {n1, failures, rounds}, views, arena))
              << label << " threads=" << threads;
          break;
        case 1:
          EXPECT_EQ(core::sync_protocol_complex(input, {n1, failures, 1, rounds},
                                                views, arena),
                    core::sync_protocol_complex_seq(
                        input, {n1, failures, 1, rounds}, views, arena))
              << label << " threads=" << threads;
          break;
        default:
          EXPECT_EQ(core::semisync_protocol_complex(
                        input, {n1, failures, 1, micro_rounds, rounds}, views,
                        arena),
                    core::semisync_protocol_complex_seq(
                        input, {n1, failures, 1, micro_rounds, rounds}, views,
                        arena))
              << label << " threads=" << threads;
          break;
      }
    }
  }
}

// ------------------------------------------- memo-cache accounting -------

TEST_F(ParallelTest, ConstructionCacheHitAndMissAccounting) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  const core::AsyncParams params{3, 1, 2};

  core::ConstructionCache cache;
  const topology::SimplicialComplex first =
      core::async_protocol_complex(input, params, views, arena, cache);
  const core::ConstructionStats after_first = cache.stats();
  EXPECT_GT(after_first.lookups, 0u);
  EXPECT_EQ(after_first.hits + after_first.misses, after_first.lookups);
  EXPECT_EQ(after_first.misses, cache.size());  // every miss stored an entry

  // An identical second run is answered entirely from the cache.
  const topology::SimplicialComplex second =
      core::async_protocol_complex(input, params, views, arena, cache);
  EXPECT_EQ(first, second);
  const core::ConstructionStats after_second = cache.stats();
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_EQ(after_second.hits - after_first.hits,
            after_second.lookups - after_first.lookups);
  EXPECT_GT(after_second.hits, after_first.hits);
}

TEST_F(ParallelTest, ConstructionDedupeCollapsesSharedFrontierItems) {
  // Two input facets of ψ(3; {0,1}) that differ only in one process's input
  // produce a common child once that process fails unheard, so the round-2
  // frontier contains duplicates the dedupe phase must collapse.
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::SimplicialComplex inputs =
      core::input_complex(3, {0, 1}, views, arena);
  core::ConstructionCache cache;
  core::sync_protocol_complex_over(inputs, {3, 1, 1, 2}, views, arena, cache);
  const core::ConstructionStats stats = cache.stats();
  EXPECT_GT(stats.deduped, 0u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

TEST_F(ParallelTest, ConstructionCacheReusedAcrossRoundDepths) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);

  core::ConstructionCache cache;
  core::sync_protocol_complex(input, {3, 1, 1, 1}, views, arena, cache);
  const core::ConstructionStats after_r1 = cache.stats();
  // Entries are keyed without the round count, so the r=2 run's first level
  // is a pure cache hit.
  core::sync_protocol_complex(input, {3, 1, 1, 2}, views, arena, cache);
  const core::ConstructionStats after_r2 = cache.stats();
  EXPECT_GT(after_r2.hits, after_r1.hits);
}

TEST_F(ParallelTest, ConstructionCacheRejectsForeignRegistry) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  core::ConstructionCache cache;
  core::async_protocol_complex(input, {3, 1, 1}, views, arena, cache);

  core::ViewRegistry other_views;
  topology::VertexArena other_arena;
  const topology::Simplex other_input =
      core::rainbow_input(3, other_views, other_arena);
  EXPECT_THROW(core::async_protocol_complex(other_input, {3, 1, 1},
                                            other_views, other_arena, cache),
               std::logic_error);
}

}  // namespace
