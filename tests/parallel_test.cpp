// Thread pool unit tests plus the homology thread-parity guarantee: Betti
// numbers and torsion must be byte-identical at every thread count (the
// pool only changes *when* a dimension's rank is computed, never its
// value). Run these under -DPSPH_SANITIZE=thread to validate the pool.

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/pseudosphere.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "topology/homology.h"

namespace {

using namespace psph;

// Every test restores the global thread count so ordering does not leak
// configuration between tests.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = util::thread_count(); }
  void TearDown() override { util::set_thread_count(previous_); }

 private:
  int previous_ = 1;
};

TEST_F(ParallelTest, PoolRunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST_F(ParallelTest, PoolWithZeroWorkersRunsInline) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(5);
  pool.run(seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST_F(ParallelTest, PoolIsReusableAcrossBatches) {
  util::ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 20; ++batch) {
    pool.run(10, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST_F(ParallelTest, PoolRethrowsFirstExceptionAfterDraining) {
  util::ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.run(64,
                        [&](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                          ++completed;
                        }),
               std::runtime_error);
  // Every index other than the throwing one still ran.
  EXPECT_EQ(completed.load(), 63);
}

TEST_F(ParallelTest, ParallelForInlineWhenSingleThreaded) {
  util::set_thread_count(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  util::parallel_for(seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST_F(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock) {
  util::set_thread_count(4);
  std::atomic<int> total{0};
  util::parallel_for(4, [&](std::size_t) {
    util::parallel_for(4, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST_F(ParallelTest, SetThreadCountRoundTrip) {
  util::set_thread_count(8);
  EXPECT_EQ(util::thread_count(), 8);
  util::set_thread_count(1);
  EXPECT_EQ(util::thread_count(), 1);
  // n <= 0 selects hardware concurrency, which is always at least 1.
  util::set_thread_count(0);
  EXPECT_GE(util::thread_count(), 1);
}

// ------------------------------------------------------- thread parity --

// The Figure 1-3 complexes exercised by the experiment binaries.
topology::SimplicialComplex fig1_binary_pseudosphere(int n1) {
  topology::VertexArena arena;
  std::vector<core::ProcessId> pids;
  for (int i = 0; i < n1; ++i) pids.push_back(i);
  return core::pseudosphere_uniform(pids, {0, 1}, arena);
}

topology::SimplicialComplex fig2_ternary_pseudosphere() {
  topology::VertexArena arena;
  return core::pseudosphere_uniform({0, 1}, {0, 1, 2}, arena);
}

topology::SimplicialComplex fig3_sync_one_round() {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  return core::sync_round_complex(input, {3, 1, 1, 1}, views, arena);
}

std::string homology_at_threads(const topology::SimplicialComplex& k,
                                int threads, int max_dim) {
  util::set_thread_count(threads);
  const topology::HomologyReport report =
      topology::reduced_homology(k, {.max_dim = max_dim, .exact = true});
  return report.to_string();
}

TEST_F(ParallelTest, HomologyIdenticalAcrossThreadCounts) {
  const std::vector<topology::SimplicialComplex> complexes = {
      fig1_binary_pseudosphere(3),
      fig1_binary_pseudosphere(4),
      fig2_ternary_pseudosphere(),
      fig3_sync_one_round(),
  };
  for (const topology::SimplicialComplex& k : complexes) {
    const int max_dim = k.dimension() + 1;
    const std::string serial = homology_at_threads(k, 1, max_dim);
    const std::string parallel = homology_at_threads(k, 8, max_dim);
    EXPECT_EQ(serial, parallel) << k.to_string();
  }
}

TEST_F(ParallelTest, ConnectivityIdenticalAcrossThreadCounts) {
  const topology::SimplicialComplex sphere = fig1_binary_pseudosphere(4);
  util::set_thread_count(1);
  const int serial = topology::homological_connectivity(sphere, 3);
  util::set_thread_count(8);
  const int parallel = topology::homological_connectivity(sphere, 3);
  EXPECT_EQ(serial, parallel);
  // ψ(S^3; {0,1}) is the 3-sphere: 2-connected with H̃_3 ≠ 0.
  EXPECT_EQ(serial, 2);
}

}  // namespace
