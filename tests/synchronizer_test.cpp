// Tests for the α-synchronizer extension: synchronous FloodMin runs
// correctly over arbitrary delays without failures, its decision time
// tracks message delay (no C penalty), and a single crash stalls it —
// the fault-free assumption Awerbuch's translation needs.

#include <gtest/gtest.h>

#include "protocols/semisync_kset.h"
#include "protocols/synchronizer.h"
#include "sim/semisync_executor.h"
#include "util/random.h"

namespace psph::protocols {
namespace {

TEST(Synchronizer, DecidesMinWithoutFailures) {
  sim::SemiSyncConfig timing{.c1 = 1, .c2 = 3, .d = 7, .num_processes = 4};
  sim::ScriptedSemiSyncAdversary adversary(/*step=*/2, /*delay=*/7);
  const sim::SemiSyncResult result = sim::run_semisync(
      {9, 2, 5, 8}, timing, make_synchronized_floodmin({4, 2}), adversary);
  ASSERT_TRUE(result.all_alive_decided);
  for (const auto& [pid, decision] : result.decisions) {
    (void)pid;
    EXPECT_EQ(decision.value, 2);
  }
}

TEST(Synchronizer, CorrectUnderRandomTimings) {
  util::Rng rng(909);
  sim::SemiSyncConfig timing{.c1 = 1, .c2 = 5, .d = 9, .num_processes = 4};
  for (int trial = 0; trial < 50; ++trial) {
    sim::RandomSemiSyncAdversary adversary(util::Rng(rng.next()), timing,
                                           /*max_crashes=*/0, 0.0, 1);
    std::vector<std::int64_t> inputs;
    std::int64_t min_input = 1 << 20;
    for (int p = 0; p < 4; ++p) {
      inputs.push_back(rng.next_in(0, 100));
      min_input = std::min(min_input, inputs.back());
    }
    const sim::SemiSyncResult result = sim::run_semisync(
        inputs, timing, make_synchronized_floodmin({4, 3}), adversary);
    ASSERT_TRUE(result.all_alive_decided) << "trial " << trial;
    for (const auto& [pid, decision] : result.decisions) {
      (void)pid;
      EXPECT_EQ(decision.value, min_input) << "trial " << trial;
    }
  }
}

TEST(Synchronizer, DecisionTimeTracksDelayNotTimingRatio) {
  // With fast delivery the synchronizer beats the timeout emulation even
  // when C is large: its rounds end on message arrival, not on worst-case
  // schedules.
  sim::SemiSyncConfig timing{.c1 = 1, .c2 = 10, .d = 50, .num_processes = 3};
  sim::ScriptedSemiSyncAdversary fast(/*step=*/1, /*delay=*/1);

  const sim::SemiSyncResult sync_result = sim::run_semisync(
      {3, 1, 2}, timing, make_synchronized_floodmin({3, 2}), fast);
  ASSERT_TRUE(sync_result.all_alive_decided);
  sim::Time synchronizer_last = 0;
  for (const auto& [pid, d] : sync_result.decisions) {
    (void)pid;
    synchronizer_last = std::max(synchronizer_last, d.time);
  }

  SemiSyncKSetConfig timeout_config;
  timeout_config.timing = timing;
  timeout_config.max_failures = 1;
  timeout_config.k = 1;
  sim::ScriptedSemiSyncAdversary fast2(/*step=*/1, /*delay=*/1);
  const sim::SemiSyncResult timeout_result = sim::run_semisync(
      {3, 1, 2}, timing, make_semisync_kset(timeout_config), fast2);
  ASSERT_TRUE(timeout_result.all_alive_decided);
  sim::Time timeout_last = 0;
  for (const auto& [pid, d] : timeout_result.decisions) {
    (void)pid;
    timeout_last = std::max(timeout_last, d.time);
  }
  EXPECT_LT(synchronizer_last, timeout_last);
}

TEST(Synchronizer, OneCrashStallsEveryone) {
  sim::SemiSyncConfig timing{
      .c1 = 1, .c2 = 2, .d = 4, .num_processes = 3, .max_time = 2000};
  sim::ScriptedSemiSyncAdversary adversary(1, 4);
  adversary.set_crash(2, /*when=*/0);
  const sim::SemiSyncResult result = sim::run_semisync(
      {4, 5, 6}, timing, make_synchronized_floodmin({3, 2}), adversary);
  // The survivors wait forever for P2's round-1 message.
  EXPECT_FALSE(result.all_alive_decided);
  EXPECT_TRUE(result.decisions.empty());
}

}  // namespace
}  // namespace psph::protocols
