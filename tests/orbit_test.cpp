// Orbit-quotient construction (DESIGN §5.16): symmetry groups, canonical
// forms, and the differential guarantee — orbit-reduced facet counts,
// f-vectors, and homology must equal the unreduced pipeline's, value for
// value, for every model and every (n, r) the unreduced path can reach.
// Also covers frontier spill (results bit-identical at any budget, in RAM
// and through sealed on-disk chunks) and the mode-keyed ConstructionCache.

#include "core/orbit.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <numeric>
#include <vector>

#include "core/construction.h"
#include "core/pseudosphere.h"
#include "core/theorems.h"
#include "store/frontier.h"
#include "store/fs_ops.h"
#include "store/serialize.h"
#include "topology/homology.h"

namespace {

using namespace psph;

std::uint64_t factorial(int n) {
  std::uint64_t f = 1;
  for (int i = 2; i <= n; ++i) f *= static_cast<std::uint64_t>(i);
  return f;
}

// ------------------------------------------------------- symmetry groups --

TEST(SymmetryGroupTest, RainbowInputHasFullDiagonalSymmetricGroup) {
  for (int n = 2; n <= 4; ++n) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n, views, arena);
    const core::SymmetryGroup group =
        core::SymmetryGroup::for_input_facet(input, views, arena);
    EXPECT_EQ(group.size(), factorial(n)) << "n=" << n;
    EXPECT_TRUE(group.element(0).is_identity());
  }
}

TEST(SymmetryGroupTest, UniformInputAlsoHasFullSymmetricGroup) {
  // All processes share one input value: every pid permutation works with
  // sigma = id.
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::input_facet({7, 7, 7}, views, arena);
  const core::SymmetryGroup group =
      core::SymmetryGroup::for_input_facet(input, views, arena);
  EXPECT_EQ(group.size(), 6u);
}

TEST(SymmetryGroupTest, AsymmetricInputHasPartialGroup) {
  // Inputs {5, 5, 9}: only the swap of the two 5-processes survives.
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::input_facet({5, 5, 9}, views, arena);
  const core::SymmetryGroup group =
      core::SymmetryGroup::for_input_facet(input, views, arena);
  EXPECT_EQ(group.size(), 2u);
}

TEST(SymmetryGroupTest, InputComplexGroupActsByAutomorphisms) {
  // psi(3; {0,1}) is symmetric under all pid permutations and the value
  // swap: |G| = 3! * 2! = 12.
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::SimplicialComplex inputs =
      core::input_complex(3, {0, 1}, views, arena);
  const core::SymmetryGroup group =
      core::SymmetryGroup::for_input_complex(inputs, views, arena);
  EXPECT_EQ(group.size(), 12u);
  EXPECT_TRUE(group.element(0).is_identity());
}

TEST(SymmetryGroupTest, NonRoundZeroVertexThrows) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  core::ConstructionCache cache;
  const topology::SimplicialComplex one_round =
      core::async_protocol_complex(input, {3, 1, 1}, views, arena, cache);
  EXPECT_THROW(core::SymmetryGroup::for_input_facet(one_round.facets().front(),
                                                    views, arena),
               std::invalid_argument);
}

// --------------------------------------------------- canonicalization ----

TEST(OrbitContextTest, OrbitMembersShareOneCanonicalForm) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  core::ConstructionCache cache;
  const topology::SimplicialComplex complex =
      core::async_protocol_complex(input, {3, 1, 1}, views, arena, cache);

  core::OrbitContext ctx(
      core::SymmetryGroup::for_input_facet(input, views, arena), views, arena);
  for (const topology::Simplex& facet : complex.facets()) {
    const core::CanonicalFacet canon = ctx.canonicalize(facet);
    // Every group image of the facet canonicalizes to the same rep, and the
    // stabilizer divides the group order (orbit–stabilizer).
    EXPECT_EQ(ctx.group().size() % canon.stabilizer, 0u);
    for (std::size_t gi = 0; gi < ctx.group().size(); ++gi) {
      const topology::Simplex image = ctx.relabel_facet(gi, facet);
      EXPECT_EQ(ctx.canonicalize(image).rep, canon.rep);
    }
  }
}

TEST(OrbitContextTest, IdentityGroupFixesEverything) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  core::OrbitContext ctx(core::SymmetryGroup::identity(), views, arena);
  const core::CanonicalFacet canon = ctx.canonicalize(input);
  EXPECT_EQ(canon.rep, input);
  EXPECT_EQ(canon.stabilizer, 1u);
}

// --------------------------------------------- differential: 4 models ----

// Values reported by the orbit pipeline (full facet count, full f-vector,
// homology of the reconstituted complex) must equal the unreduced
// pipeline's, and the reconstituted complex must have the same facet count
// as the reduced orbit sum claims.
void expect_orbit_matches_full(const topology::SimplicialComplex& full,
                               const core::OrbitComplexResult& orbit,
                               core::ViewRegistry& views,
                               topology::VertexArena& arena,
                               const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(orbit.full_facet_count, full.facet_count());
  EXPECT_EQ(core::orbit_full_f_vector(orbit, views, arena), full.f_vector());

  const topology::SimplicialComplex rebuilt =
      core::reconstitute_full(orbit, views, arena);
  EXPECT_EQ(rebuilt.facet_count(), full.facet_count());
  EXPECT_EQ(rebuilt.f_vector(), full.f_vector());

  topology::HomologyOptions hopts;
  hopts.max_dim = full.dimension();
  hopts.exact = true;
  const topology::HomologyReport h_full = reduced_homology(full, hopts);
  const topology::HomologyReport h_orbit = reduced_homology(rebuilt, hopts);
  EXPECT_EQ(h_full.reduced_betti, h_orbit.reduced_betti);
  EXPECT_EQ(h_full.torsion, h_orbit.torsion);

  // The reduction is genuine whenever the group is nontrivial: at most one
  // representative per orbit.
  EXPECT_LE(orbit.reduced.facet_count(), full.facet_count());
}

TEST(OrbitDifferentialTest, AsyncMatchesFullPipeline) {
  struct Case {
    int n1, f, r;
  };
  const Case cases[] = {{3, 1, 1}, {3, 1, 2}, {3, 2, 1}, {4, 1, 1}, {4, 2, 1}};
  for (const Case& c : cases) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(c.n1, views, arena);
    core::ConstructionCache cache;
    const core::AsyncParams params{c.n1, c.f, c.r};
    const topology::SimplicialComplex full =
        core::async_protocol_complex(input, params, views, arena, cache);
    const core::OrbitComplexResult orbit = core::async_protocol_complex_orbit(
        input, params, views, arena, cache);
    expect_orbit_matches_full(full, orbit, views, arena,
                              "async n1=" + std::to_string(c.n1) +
                                  " f=" + std::to_string(c.f) +
                                  " r=" + std::to_string(c.r));
  }
}

TEST(OrbitDifferentialTest, SyncMatchesFullPipeline) {
  struct Case {
    int n1, f, k, r;
  };
  const Case cases[] = {{3, 1, 1, 1}, {3, 2, 1, 2}, {4, 2, 1, 2}, {4, 2, 2, 1}};
  for (const Case& c : cases) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(c.n1, views, arena);
    core::ConstructionCache cache;
    const core::SyncParams params{c.n1, c.f, c.k, c.r};
    const topology::SimplicialComplex full =
        core::sync_protocol_complex(input, params, views, arena, cache);
    const core::OrbitComplexResult orbit = core::sync_protocol_complex_orbit(
        input, params, views, arena, cache);
    expect_orbit_matches_full(full, orbit, views, arena,
                              "sync n1=" + std::to_string(c.n1) +
                                  " f=" + std::to_string(c.f) +
                                  " k=" + std::to_string(c.k) +
                                  " r=" + std::to_string(c.r));
  }
}

TEST(OrbitDifferentialTest, SemiSyncMatchesFullPipeline) {
  struct Case {
    int n1, f, k, mu, r;
  };
  const Case cases[] = {{3, 1, 1, 2, 1}, {3, 2, 1, 2, 2}, {3, 1, 1, 3, 1}};
  for (const Case& c : cases) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(c.n1, views, arena);
    core::ConstructionCache cache;
    const core::SemiSyncParams params{c.n1, c.f, c.k, c.mu, c.r};
    const topology::SimplicialComplex full =
        core::semisync_protocol_complex(input, params, views, arena, cache);
    const core::OrbitComplexResult orbit =
        core::semisync_protocol_complex_orbit(input, params, views, arena,
                                              cache);
    expect_orbit_matches_full(full, orbit, views, arena,
                              "semisync n1=" + std::to_string(c.n1) +
                                  " f=" + std::to_string(c.f) +
                                  " mu=" + std::to_string(c.mu) +
                                  " r=" + std::to_string(c.r));
  }
}

TEST(OrbitDifferentialTest, IisMatchesFullPipeline) {
  for (int r = 1; r <= 2; ++r) {
    core::ViewRegistry views;
    topology::VertexArena arena;
    const topology::Simplex input = core::rainbow_input(3, views, arena);
    core::ConstructionCache cache;
    const topology::SimplicialComplex full =
        core::iis_protocol_complex(input, r, views, arena, cache);
    const core::OrbitComplexResult orbit =
        core::iis_protocol_complex_orbit(input, r, views, arena, cache);
    expect_orbit_matches_full(full, orbit, views, arena,
                              "iis r=" + std::to_string(r));
  }
}

TEST(OrbitDifferentialTest, InputComplexOverloadMatchesFullPipeline) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::SimplicialComplex inputs =
      core::input_complex(3, {0, 1}, views, arena);
  core::ConstructionCache cache;
  const core::AsyncParams params{3, 1, 1};
  const topology::SimplicialComplex full = core::async_protocol_complex_over(
      inputs, params, views, arena, cache);
  const core::OrbitComplexResult orbit =
      core::async_protocol_complex_orbit_over(inputs, params, views, arena,
                                              cache);
  expect_orbit_matches_full(full, orbit, views, arena, "async over psi(3)");
}

TEST(OrbitDifferentialTest, AsymmetricInputDegeneratesGracefully) {
  // With a near-trivial group (|G| = 2) the orbit pipeline still reproduces
  // the full pipeline's values.
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::input_facet({5, 5, 9}, views, arena);
  core::ConstructionCache cache;
  const core::AsyncParams params{3, 1, 1};
  const topology::SimplicialComplex full =
      core::async_protocol_complex(input, params, views, arena, cache);
  const core::OrbitComplexResult orbit =
      core::async_protocol_complex_orbit(input, params, views, arena, cache);
  expect_orbit_matches_full(full, orbit, views, arena, "async {5,5,9}");
}

// ----------------------------------------------------- frontier spill ----

TEST(FrontierSpillTest, TinyBudgetIsBitIdenticalInFullMode) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  const core::AsyncParams params{3, 1, 2};

  core::ConstructionCache cache_a;
  const topology::SimplicialComplex in_ram =
      core::async_protocol_complex(input, params, views, arena, cache_a);

  // A 64-byte budget forces a flush roughly every other item; the in-memory
  // chunk store exercises the encode/chunk/drain path exactly.
  core::InMemoryFrontierStorage chunks;
  core::ConstructionOptions options;
  options.frontier_budget_bytes = 64;
  options.storage = &chunks;
  core::ConstructionCache cache_b;
  const topology::SimplicialComplex spilled = core::async_protocol_complex(
      input, params, views, arena, cache_b, options);

  EXPECT_EQ(in_ram, spilled);
  EXPECT_EQ(chunks.chunk_count(), 0u);  // every level fully drained
}

TEST(FrontierSpillTest, DiskSpoolIsBitIdenticalAcrossModels) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "psph_orbit_test_spool";
  store::FrontierSpool spool(store::FsOps::real(), dir);

  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);

  core::ConstructionOptions options;
  options.frontier_budget_bytes = 48;
  options.storage = &spool;

  {
    core::ConstructionCache plain_cache, spool_cache;
    const core::SyncParams params{3, 2, 1, 2};
    EXPECT_EQ(core::sync_protocol_complex(input, params, views, arena,
                                          plain_cache),
              core::sync_protocol_complex(input, params, views, arena,
                                          spool_cache, options));
  }
  {
    core::ConstructionCache plain_cache, spool_cache;
    const core::SemiSyncParams params{3, 1, 1, 2, 2};
    EXPECT_EQ(core::semisync_protocol_complex(input, params, views, arena,
                                              plain_cache),
              core::semisync_protocol_complex(input, params, views, arena,
                                              spool_cache, options));
  }
  EXPECT_GT(spool.stats().chunks_written, 0u);
  EXPECT_EQ(spool.stats().chunks_read, spool.stats().chunks_written);
  std::filesystem::remove_all(dir);
}

TEST(FrontierSpillTest, OrbitModeWithSpillMatchesOrbitModeInRam) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(4, views, arena);
  const core::AsyncParams params{4, 1, 2};

  core::ConstructionCache cache_a;
  const core::OrbitComplexResult in_ram = core::async_protocol_complex_orbit(
      input, params, views, arena, cache_a);

  core::ConstructionOptions options;
  options.frontier_budget_bytes = 128;
  core::ConstructionCache cache_b;
  const core::OrbitComplexResult spilled = core::async_protocol_complex_orbit(
      input, params, views, arena, cache_b, options);

  EXPECT_EQ(in_ram.reduced, spilled.reduced);
  EXPECT_EQ(in_ram.full_facet_count, spilled.full_facet_count);
  ASSERT_EQ(in_ram.orbits.size(), spilled.orbits.size());
  for (std::size_t i = 0; i < in_ram.orbits.size(); ++i) {
    EXPECT_EQ(in_ram.orbits[i].rep, spilled.orbits[i].rep);
    EXPECT_EQ(in_ram.orbits[i].stabilizer, spilled.orbits[i].stabilizer);
    EXPECT_EQ(in_ram.orbits[i].dominated, spilled.orbits[i].dominated);
  }
}

TEST(FrontierSpillTest, CorruptSpilledChunkFailsLoudly) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "psph_orbit_test_corrupt";
  store::FrontierSpool spool(store::FsOps::real(), dir);
  spool.append_chunk({1, 2, 3, 4});

  // Flip one payload byte on disk; the sealed envelope's checksum must
  // catch it on read.
  const std::filesystem::path chunk = dir / "chunk-000000.psph";
  auto fs = store::FsOps::real();
  std::vector<std::uint8_t> bytes = *fs->read_file(chunk);
  bytes[bytes.size() / 2] ^= 0x40;
  fs->write_file(chunk, bytes.data(), bytes.size());

  EXPECT_THROW(spool.read_chunk(0), store::SerializationError);
  std::filesystem::remove_all(dir);
}

// --------------------------------------------- mode-keyed memo cache -----

TEST(ConstructionCacheModeTest, MixedModeLookupsNeverCrossHit) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  const core::AsyncParams params{3, 1, 2};

  core::ConstructionCache cache;
  core::async_protocol_complex(input, params, views, arena, cache);
  const core::ConstructionStats full_before =
      cache.stats(core::ConstructionMode::kFull);
  EXPECT_GT(full_before.lookups, 0u);
  EXPECT_EQ(cache.stats(core::ConstructionMode::kOrbit).lookups, 0u);

  // First orbit run: the cache holds full-mode entries for these facets,
  // but the orbit pipeline must not hit them — its probes are keyed by
  // mode, so the run is all misses.
  core::async_protocol_complex_orbit(input, params, views, arena, cache);
  const core::ConstructionStats orbit_stats =
      cache.stats(core::ConstructionMode::kOrbit);
  EXPECT_GT(orbit_stats.lookups, 0u);
  EXPECT_EQ(orbit_stats.hits, 0u);
  EXPECT_EQ(orbit_stats.misses, orbit_stats.lookups);
  // ...and full-mode stats are untouched by the orbit run.
  const core::ConstructionStats full_after =
      cache.stats(core::ConstructionMode::kFull);
  EXPECT_EQ(full_after.lookups, full_before.lookups);
  EXPECT_EQ(full_after.hits, full_before.hits);

  // A second orbit run hits its own entries.
  core::async_protocol_complex_orbit(input, params, views, arena, cache);
  EXPECT_GT(cache.stats(core::ConstructionMode::kOrbit).hits, 0u);

  // The aggregate accessor sums both modes.
  const core::ConstructionStats total = cache.stats();
  EXPECT_EQ(total.lookups,
            cache.stats(core::ConstructionMode::kFull).lookups +
                cache.stats(core::ConstructionMode::kOrbit).lookups);
}

TEST(ConstructionCacheModeTest, FullEntryPointsRejectOrbitMode) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  core::ConstructionCache cache;
  core::ConstructionOptions options;
  options.mode = core::ConstructionMode::kOrbit;
  EXPECT_THROW(core::async_protocol_complex(input, {3, 1, 1}, views, arena,
                                            cache, options),
               std::invalid_argument);
}

}  // namespace
