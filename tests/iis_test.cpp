// Tests for the iterated immediate snapshot model [BG97]: facet counts
// (ordered Bell numbers / chromatic subdivision), contractibility,
// agreement thresholds, and — the paper's Section 6 remark made literal —
// the embedding of IIS^r into the wait-free asynchronous complex A^r(S).

#include <gtest/gtest.h>

#include "core/async_complex.h"
#include "core/decision_search.h"
#include "core/iis_complex.h"
#include "core/pseudosphere.h"
#include "core/theorems.h"
#include "topology/collapse.h"
#include "topology/homology.h"

namespace psph::core {
namespace {

struct Fixture {
  ViewRegistry views;
  topology::VertexArena arena;
};

TEST(OrderedBell, KnownValues) {
  EXPECT_EQ(ordered_bell(0), 1u);
  EXPECT_EQ(ordered_bell(1), 1u);
  EXPECT_EQ(ordered_bell(2), 3u);
  EXPECT_EQ(ordered_bell(3), 13u);
  EXPECT_EQ(ordered_bell(4), 75u);
  EXPECT_EQ(ordered_bell(5), 541u);
  EXPECT_THROW(ordered_bell(-1), std::invalid_argument);
}

TEST(IIS, OneRoundFacetCounts) {
  for (int m1 = 1; m1 <= 4; ++m1) {
    Fixture fx;
    const topology::Simplex input = rainbow_input(m1, fx.views, fx.arena);
    const topology::SimplicialComplex iis =
        iis_round_complex(input, fx.views, fx.arena);
    EXPECT_EQ(iis.facet_count(), ordered_bell(m1)) << "m+1=" << m1;
    EXPECT_TRUE(iis.is_pure());
    EXPECT_EQ(iis.dimension(), m1 - 1);
  }
}

TEST(IIS, OneRoundIsChromaticSubdivisionOfTriangle) {
  // 3 processes: 13 facets, 3 + 3*2 + ... vertices. The chromatic
  // subdivision of a triangle has 3 corner + 6 edge-interior + 4 central
  // vertices = 13 vertices... for the standard chromatic subdivision the
  // count is 3 (solo views) + 6 (pair views) + 3 (full views) + ... — we
  // pin the machine-derived count and the contractibility instead.
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const topology::SimplicialComplex iis =
      iis_round_complex(input, fx.views, fx.arena);
  // Vertices: per process, views are "saw exactly set T" for T containing
  // the process: 4 per process (|T| in {1,2,2,3} patterns) -> 3*4 = 12? A
  // process's possible snapshots: {p}, {p,q}, {p,r}, {p,q,r} = 4 each.
  EXPECT_EQ(iis.count_of_dim(0), 12u);
  EXPECT_TRUE(topology::collapses_to_point(iis));
}

TEST(IIS, ContractibleLikeASubdivision) {
  for (int m1 = 2; m1 <= 4; ++m1) {
    Fixture fx;
    const topology::Simplex input = rainbow_input(m1, fx.views, fx.arena);
    const topology::SimplicialComplex iis =
        iis_round_complex(input, fx.views, fx.arena);
    const topology::HomologyReport h =
        topology::reduced_homology(iis, {.max_dim = m1 - 1});
    for (long long betti : h.reduced_betti) {
      EXPECT_EQ(betti, 0) << "m+1=" << m1;
    }
  }
}

TEST(IIS, TwoRoundIterationCounts) {
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const topology::SimplicialComplex iis2 =
      iis_protocol_complex(input, 2, fx.views, fx.arena);
  EXPECT_EQ(iis2.facet_count(), 13u * 13u);
  const topology::HomologyReport h =
      topology::reduced_homology(iis2, {.max_dim = 2});
  for (long long betti : h.reduced_betti) EXPECT_EQ(betti, 0);
}

TEST(IIS, EmbedsInWaitFreeAsyncComplex) {
  // Section 6's remark, literally: with hash-consed views, every IIS
  // execution *is* an asynchronous execution (heard-sets are the nested
  // snapshot sets), so IIS^r(S) is a subcomplex of A^r(S) at f = n.
  for (int r : {1, 2}) {
    Fixture fx;
    const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
    const topology::SimplicialComplex iis =
        iis_protocol_complex(input, r, fx.views, fx.arena);
    const topology::SimplicialComplex async_wf =
        async_protocol_complex(input, {3, 2, r}, fx.views, fx.arena);
    EXPECT_TRUE(iis.is_subcomplex_of(async_wf)) << "r=" << r;
    EXPECT_LT(iis.facet_count(), async_wf.facet_count());
  }
}

TEST(IIS, DoesNotEmbedWhenResilienceBounds) {
  // With f < n the async heard-sets must have size >= n+1-f, but IIS solo
  // blocks give singleton snapshots — so the embedding needs wait-freedom.
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const topology::SimplicialComplex iis =
      iis_protocol_complex(input, 1, fx.views, fx.arena);
  const topology::SimplicialComplex async_1res =
      async_protocol_complex(input, {3, 1, 1}, fx.views, fx.arena);
  EXPECT_FALSE(iis.is_subcomplex_of(async_1res));
}

TEST(IIS, WaitFreeKSetAgreementThreshold) {
  // On IIS^1 the *single* rainbow input suffices for impossibility: the
  // complex is a genuine subdivision and validity confines each vertex to
  // its carrier's values, so "2-set agreement decision map" is exactly a
  // Sperner coloring without a panchromatic facet — which Sperner's lemma
  // forbids. 3-set agreement is solvable on the same complex.
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const topology::SimplicialComplex protocol =
      iis_protocol_complex(input, 1, fx.views, fx.arena);

  const SearchResult two =
      search_decision_map(protocol, 2, fx.views, fx.arena);
  EXPECT_TRUE(two.exhausted);
  EXPECT_FALSE(two.decidable);

  const SearchResult three =
      search_decision_map(protocol, 3, fx.views, fx.arena);
  EXPECT_TRUE(three.decidable);
}

TEST(IIS, ConsensusImpossibleTwoProcesses) {
  Fixture fx;
  const topology::SimplicialComplex inputs =
      input_complex(2, {0, 1}, fx.views, fx.arena);
  const topology::SimplicialComplex protocol =
      iis_protocol_complex_over(inputs, 1, fx.views, fx.arena);
  const SearchResult result =
      search_decision_map(protocol, 1, fx.views, fx.arena);
  EXPECT_TRUE(result.exhausted);
  EXPECT_FALSE(result.decidable);
}

TEST(IIS, RejectsZeroRounds) {
  Fixture fx;
  const topology::Simplex input = rainbow_input(2, fx.views, fx.arena);
  EXPECT_THROW(iis_protocol_complex(input, 0, fx.views, fx.arena),
               std::invalid_argument);
}

}  // namespace
}  // namespace psph::core
