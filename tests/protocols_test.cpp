// Tests for the matching-upper-bound protocols: FloodSet (sync, Theorem 18),
// asynchronous (f+1)-set agreement (Corollary 13's frontier), and the
// timeout-based semi-synchronous FloodMin (Corollary 22's shape).

#include <gtest/gtest.h>

#include <vector>

#include "protocols/async_kset.h"
#include "protocols/floodset.h"
#include "protocols/semisync_kset.h"
#include "sim/semisync_executor.h"
#include "util/random.h"

namespace psph::protocols {
namespace {

// ------------------------------------------------------------ floodset ----

TEST(FloodSet, RoundsFormula) {
  EXPECT_EQ(floodset_rounds({4, 1, 1}), 2);
  EXPECT_EQ(floodset_rounds({4, 2, 1}), 3);
  EXPECT_EQ(floodset_rounds({4, 2, 2}), 2);
  EXPECT_EQ(floodset_rounds({7, 5, 2}), 3);
}

TEST(FloodSet, FailureFreeDecidesGlobalMin) {
  core::ViewRegistry views;
  class NoFailure : public sim::SyncAdversary {
    sim::SyncRoundPlan plan_round(int,
                                  const std::vector<sim::ProcessId>&) override {
      return {};
    }
  } adversary;
  const FloodSetOutcome outcome =
      run_floodset({5, 3, 9}, {3, 1, 1}, adversary, views);
  ASSERT_EQ(outcome.decisions.size(), 3u);
  for (const auto& [pid, value] : outcome.decisions) {
    (void)pid;
    EXPECT_EQ(value, 3);
  }
  EXPECT_EQ(outcome.rounds_used, 2);
}

TEST(FloodSet, SoakConsensus) {
  // k = 1 (consensus) with f = 1 and f = 2.
  EXPECT_TRUE(soak_floodset({3, 1, 1}, 11, 300).ok());
  EXPECT_TRUE(soak_floodset({4, 2, 1}, 13, 300).ok());
}

TEST(FloodSet, SoakKSet) {
  EXPECT_TRUE(soak_floodset({4, 2, 2}, 17, 300).ok());
  EXPECT_TRUE(soak_floodset({5, 3, 2}, 19, 200).ok());
  EXPECT_TRUE(soak_floodset({5, 4, 2}, 23, 200).ok());
}

TEST(FloodSet, OneRoundTooFewCanViolateConsensus) {
  // With f = 1 and only 1 round (below the bound), a crafted partial
  // delivery splits the minimum: P2 holds the min and delivers only to P0.
  core::ViewRegistry views;
  class Split : public sim::SyncAdversary {
   public:
    sim::SyncRoundPlan plan_round(
        int round, const std::vector<sim::ProcessId>&) override {
      sim::SyncRoundPlan plan;
      if (round == 1) {
        plan.crash.push_back(2);
        plan.delivered_to[2] = {0};
      }
      return plan;
    }
  } adversary;
  // Run the *protocol machinery* with a forced single round by setting
  // f = 0 in the round formula but keeping the adversary's crash:
  sim::SyncRunConfig run{3, 1};
  const sim::Trace trace = sim::run_sync({5, 6, 1}, run, adversary, views);
  std::set<std::int64_t> decided;
  for (const auto& [pid, state] : trace.states.back()) {
    (void)pid;
    decided.insert(views.min_input_seen(state));
  }
  EXPECT_EQ(decided, (std::set<std::int64_t>{1, 5}));  // consensus broken
}

// ------------------------------------------------------------ async -------

TEST(AsyncKSet, SoakFPlusOne) {
  EXPECT_TRUE(soak_async_kset({3, 1, 1}, 29, 300).ok());
  EXPECT_TRUE(soak_async_kset({4, 2, 1}, 31, 300).ok());
  EXPECT_TRUE(soak_async_kset({5, 2, 1}, 37, 200).ok());
}

TEST(AsyncKSet, AdversaryCanForceExactlyFPlusOneValues) {
  // n+1 = 3, f = 2: chained heard-sets yield 3 distinct minima — showing
  // k = f + 1 is tight for this protocol.
  core::ViewRegistry views;
  class Chain : public sim::AsyncAdversary {
   public:
    sim::AsyncRoundPlan plan_round(int, const std::vector<sim::ProcessId>&,
                                   int) override {
      sim::AsyncRoundPlan plan;
      plan.heard[0] = {0};        // P0 hears only itself
      plan.heard[1] = {0, 1};     // P1 hears P0 too
      plan.heard[2] = {1, 2};     // P2 hears P1 (not P0)
      return plan;
    }
  } adversary;
  const AsyncKSetOutcome outcome =
      run_async_kset({2, 1, 0}, {3, 2, 1}, adversary, views);
  std::set<std::int64_t> decided;
  for (const auto& [pid, value] : outcome.decisions) {
    (void)pid;
    decided.insert(value);
  }
  EXPECT_EQ(decided.size(), 3u);  // = f + 1
  const AsyncAudit result = audit(outcome, {2, 1, 0}, 3);
  EXPECT_TRUE(result.ok());
}

// --------------------------------------------------------- semi-sync ------

TEST(SemiSyncKSet, ScheduleIsSound) {
  // N_j * c1 >= N_{j-1} * c2 + d for all j.
  SemiSyncKSetConfig config;
  config.timing = {.c1 = 2, .c2 = 5, .d = 11, .num_processes = 4};
  config.max_failures = 3;
  config.k = 1;
  const std::vector<sim::Time> schedule = round_step_schedule(config);
  ASSERT_EQ(schedule.size(), 4u);  // floor(3/1) + 1 rounds
  sim::Time prev = 0;
  for (sim::Time n : schedule) {
    EXPECT_GE(n * config.timing.c1, prev * config.timing.c2 + config.timing.d);
    prev = n;
  }
}

TEST(SemiSyncKSet, FailureFreeConsensusOnMin) {
  SemiSyncKSetConfig config;
  config.timing = {.c1 = 1, .c2 = 2, .d = 3, .num_processes = 3};
  config.max_failures = 1;
  config.k = 1;
  sim::ScriptedSemiSyncAdversary adversary(/*step=*/1, /*delay=*/3);
  const sim::SemiSyncResult result = sim::run_semisync(
      {9, 4, 6}, config.timing, make_semisync_kset(config), adversary);
  const SemiSyncAudit auditres = audit_semisync(result, {9, 4, 6}, 1);
  EXPECT_TRUE(auditres.ok()) << auditres.failure;
  for (const auto& [pid, decision] : result.decisions) {
    (void)pid;
    EXPECT_EQ(decision.value, 4);
  }
}

TEST(SemiSyncKSet, DecisionTimeRespectsLowerBoundShape) {
  // Corollary 22: any wait-free protocol needs >= floor(f/k) d + C d.
  // Check our protocol's decision time exceeds that bound for a spread of
  // (f, k, C) under the slowest-execution adversary.
  for (const auto& [f, k, c2] :
       std::vector<std::array<int, 3>>{{1, 1, 2}, {2, 1, 3}, {2, 2, 2},
                                       {3, 1, 2}}) {
    SemiSyncKSetConfig config;
    config.timing = {.c1 = 1,
                     .c2 = static_cast<sim::Time>(c2),
                     .d = 6,
                     .num_processes = f + 2};
    config.max_failures = f;
    config.k = k;
    sim::ScriptedSemiSyncAdversary slowest(/*step=*/config.timing.c2,
                                           /*delay=*/config.timing.d);
    std::vector<std::int64_t> inputs;
    for (int p = 0; p < config.timing.num_processes; ++p) inputs.push_back(p);
    const sim::SemiSyncResult result = sim::run_semisync(
        inputs, config.timing, make_semisync_kset(config), slowest);
    const SemiSyncAudit auditres = audit_semisync(result, inputs, k);
    ASSERT_TRUE(auditres.ok()) << auditres.failure;
    const double c_ratio = static_cast<double>(config.timing.c2) /
                           static_cast<double>(config.timing.c1);
    const double bound =
        (f / k) * static_cast<double>(config.timing.d) +
        c_ratio * static_cast<double>(config.timing.d);
    EXPECT_GE(static_cast<double>(auditres.last_decision_time), bound)
        << "f=" << f << " k=" << k << " C=" << c_ratio;
  }
}

TEST(SemiSyncKSet, SoakWithCrashes) {
  SemiSyncKSetConfig config;
  config.timing = {.c1 = 1, .c2 = 2, .d = 4, .num_processes = 4};
  config.max_failures = 2;
  config.k = 2;
  const SemiSyncAudit result = soak_semisync_kset(config, 41, 150);
  EXPECT_TRUE(result.ok()) << result.failure;
}

TEST(SemiSyncKSet, SoakConsensusManyConfigs) {
  for (const auto& [n1, f] :
       std::vector<std::array<int, 2>>{{3, 1}, {4, 1}, {4, 2}}) {
    SemiSyncKSetConfig config;
    config.timing = {.c1 = 1, .c2 = 3, .d = 5, .num_processes = n1};
    config.max_failures = f;
    config.k = 1;
    const SemiSyncAudit result =
        soak_semisync_kset(config, 1000 + n1 * 10 + f, 100);
    EXPECT_TRUE(result.ok()) << "n+1=" << n1 << " f=" << f << ": "
                             << result.failure;
  }
}

}  // namespace
}  // namespace psph::protocols
