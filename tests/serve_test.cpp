// Tests for the serving layer (src/serve): JSON strictness, wire framing
// under torn/oversized/garbage input, request validation, and the daemon
// core — bit-identical responses vs the batch compute path, coalescing of
// identical in-flight queries, bounded-queue admission control, and
// per-query deadlines (expired-in-queue and cancelled-while-running).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/queries.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "store/store.h"
#include "util/random.h"

namespace psph::serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("psph_serve_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// ---------------------------------------------------------------- json --

TEST(Json, RoundTripsTypesExactly) {
  const std::string text =
      "{\"a\":1,\"b\":-2.5,\"c\":\"x\\n\",\"d\":[true,false,null],"
      "\"e\":{\"nested\":9223372036854775807}}";
  const Json value = Json::parse(text);
  EXPECT_EQ(value.get("a")->as_int(), 1);
  EXPECT_TRUE(value.get("b")->is_double());
  EXPECT_EQ(value.get("c")->as_string(), "x\n");
  EXPECT_EQ(value.get("d")->items().size(), 3u);
  EXPECT_EQ(value.get("e")->get("nested")->as_int(),
            std::numeric_limits<std::int64_t>::max());
  // dump → parse → dump is a fixed point (deterministic rendering).
  const std::string once = value.dump();
  EXPECT_EQ(Json::parse(once).dump(), once);
}

TEST(Json, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",          "{",        "[1,",       "{\"a\":}",  "tru",
      "01",        "1.",       "\"\\q\"",   "\"\x01\"",  "{\"a\":1}x",
      "nan",       "[1]]",     "{\"a\" 1}", "--1",       "\"\\ud800\"",
  };
  for (const char* text : bad) {
    EXPECT_THROW(Json::parse(text), JsonError) << "input: " << text;
  }
}

TEST(Json, DepthLimitStopsAdversarialNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(Json::parse(deep), JsonError);
}

// ---------------------------------------------------------------- wire --

TEST(Wire, FramesRoundTripAndCleanCloseIsDistinct) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  write_frame(fds[0], "{\"x\":1}");
  write_frame(fds[0], "");
  std::string payload;
  EXPECT_EQ(read_frame(fds[1], &payload), FrameStatus::kFrame);
  EXPECT_EQ(payload, "{\"x\":1}");
  EXPECT_EQ(read_frame(fds[1], &payload), FrameStatus::kFrame);
  EXPECT_EQ(payload, "");
  ::close(fds[0]);
  EXPECT_EQ(read_frame(fds[1], &payload), FrameStatus::kClosed);
  ::close(fds[1]);
}

TEST(Wire, OversizedAnnouncementIsRejectedWithoutAllocation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint8_t header[4] = {0xFF, 0xFF, 0xFF, 0xFF};  // ~4 GiB claim
  ASSERT_EQ(::write(fds[0], header, 4), 4);
  std::string payload;
  EXPECT_THROW(read_frame(fds[1], &payload), WireError);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Wire, TornFramesThrowInsteadOfHanging) {
  // Torn header.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint8_t half_header[2] = {10, 0};
  ASSERT_EQ(::write(fds[0], half_header, 2), 2);
  ::close(fds[0]);
  std::string payload;
  EXPECT_THROW(read_frame(fds[1], &payload), WireError);
  ::close(fds[1]);

  // Torn payload: header promises 100 bytes, 3 arrive.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint8_t header[4] = {100, 0, 0, 0};
  ASSERT_EQ(::write(fds[0], header, 4), 4);
  ASSERT_EQ(::write(fds[0], "abc", 3), 3);
  ::close(fds[0]);
  EXPECT_THROW(read_frame(fds[1], &payload), WireError);
  ::close(fds[1]);
}

// ------------------------------------------------------------ protocol --

Json make_request(std::int64_t id, const std::string& kind,
                  const std::string& model) {
  Json request = Client::request(id, kind);
  request.set("model", Json::string(model));
  return request;
}

TEST(Protocol, ValidatesAndNormalizes) {
  Json request = make_request(1, "connectivity", "async");
  request.set("processes", Json::integer(4));
  request.set("f", Json::integer(1));
  request.set("k", Json::integer(3));   // irrelevant for async connectivity
  request.set("mu", Json::integer(5));  // irrelevant too
  const ParsedRequest a = parse_request(request);
  ASSERT_TRUE(a.query.has_value()) << a.error->message;
  request.set("k", Json::integer(1));
  request.set("mu", Json::integer(9));
  const ParsedRequest b = parse_request(request);
  ASSERT_TRUE(b.query.has_value());
  // Normalization zeroes unused fields, so the cache keys — and therefore
  // coalescing — agree.
  EXPECT_EQ(cache_key(*a.query).key().hex(), cache_key(*b.query).key().hex());

  const char* rejected[] = {
      "{\"kind\":\"connectivity\",\"model\":\"byzantine\"}",
      "{\"kind\":\"warp\"}",
      "{\"kind\":\"decide\",\"model\":\"pseudosphere\"}",
      "{\"kind\":\"connectivity\",\"processes\":99}",
      "{\"kind\":\"connectivity\",\"processes\":3,\"participants\":5}",
      "{\"kind\":\"connectivity\",\"f\":3,\"processes\":3}",
      "{\"kind\":\"connectivity\",\"model\":\"pseudosphere\"}",
      "{\"kind\":\"homology\",\"deadline_ms\":-5}",
      "{\"id\":\"seven\",\"kind\":\"ping\"}",
      "[1,2,3]",
  };
  for (const char* text : rejected) {
    const ParsedRequest parsed = parse_request(Json::parse(text));
    EXPECT_TRUE(parsed.error.has_value()) << text;
    EXPECT_EQ(parsed.error->code, "bad_request") << text;
  }
}

TEST(Protocol, ConstructionBackendIsValidatedAndScoped) {
  const ParsedRequest bad_value = parse_request(Json::parse(
      R"({"kind":"complex_stats","model":"async","construction":"fast"})"));
  ASSERT_TRUE(bad_value.error.has_value());
  EXPECT_EQ(bad_value.error->code, "bad_request");

  // Kinds that never consume the backend normalize it away, so a stray
  // construction field cannot split the cache key or defeat coalescing.
  const auto connectivity = [](const char* construction) {
    Json request = make_request(1, "connectivity", "async");
    request.set("processes", Json::integer(3)).set("f", Json::integer(1));
    if (construction != nullptr) {
      request.set("construction", Json::string(construction));
    }
    const ParsedRequest parsed = parse_request(request);
    EXPECT_TRUE(parsed.query.has_value());
    return cache_key(*parsed.query).key().hex();
  };
  EXPECT_EQ(connectivity(nullptr), connectivity("orbit"));

  // complex_stats does consume it: full and orbit must cache separately.
  const auto stats = [](const char* construction) {
    Json request = make_request(1, "complex_stats", "async");
    request.set("processes", Json::integer(3)).set("f", Json::integer(1));
    if (construction != nullptr) {
      request.set("construction", Json::string(construction));
    }
    const ParsedRequest parsed = parse_request(request);
    EXPECT_TRUE(parsed.query.has_value());
    return cache_key(*parsed.query).key().hex();
  };
  EXPECT_EQ(stats(nullptr), stats("full"));
  EXPECT_NE(stats("full"), stats("orbit"));

  // Pseudospheres have no round structure to quotient: orbit normalizes
  // back to full rather than erroring.
  Json request = make_request(1, "complex_stats", "pseudosphere");
  Json sizes = Json::array();
  sizes.push(Json::integer(2)).push(Json::integer(2));
  request.set("sizes", std::move(sizes));
  request.set("construction", Json::string("orbit"));
  const ParsedRequest parsed = parse_request(request);
  ASSERT_TRUE(parsed.query.has_value());
  EXPECT_EQ(parsed.query->construction, "full");
}

TEST(Queries, OrbitBackendMatchesFullBackendValueForValue) {
  for (const std::string model : {"async", "sync", "semisync"}) {
    Query full;
    full.kind = QueryKind::kComplexStats;
    full.model = model;
    full.processes = 3;
    full.participants = 3;
    full.f = 1;
    full.k = 1;
    full.mu = 2;
    full.rounds = 2;
    Query orbit = full;
    orbit.construction = "orbit";

    const Json a = execute_query(full, nullptr).body;
    const Json b = execute_query(orbit, nullptr).body;
    for (const char* field : {"facets", "vertices", "dimension", "euler"}) {
      ASSERT_TRUE(a.get(field) != nullptr && b.get(field) != nullptr) << field;
      EXPECT_EQ(a.get(field)->as_int(), b.get(field)->as_int())
          << model << " " << field;
    }
    EXPECT_EQ(a.get("f_vector")->dump(), b.get("f_vector")->dump()) << model;
    ASSERT_TRUE(b.get("orbit") != nullptr) << model;
    EXPECT_EQ(b.get("orbit")->get("group_order")->as_int(), 6) << model;
    EXPECT_GT(b.get("orbit")->get("orbit_reps")->as_int(), 0) << model;
    EXPECT_LE(b.get("orbit")->get("reduced_facets")->as_int(),
              a.get("facets")->as_int())
        << model;
    EXPECT_EQ(a.get("orbit"), nullptr) << model;

    Query hfull = full;
    hfull.kind = QueryKind::kHomology;
    hfull.max_dim = 2;
    hfull.exact = true;
    Query horbit = hfull;
    horbit.construction = "orbit";
    EXPECT_EQ(execute_query(hfull, nullptr).body.dump(),
              execute_query(horbit, nullptr).body.dump())
        << model;
  }
}

// -------------------------------------------------------------- server --

class ServeTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    options.socket_path = (dir_.path / "serve.sock").string();
    if (options.store_dir.empty()) {
      options.store_dir = (dir_.path / "store").string();
    }
    server_ = std::make_unique<Server>(std::move(options));
    server_->start();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->stop();
  }

  std::string socket_path() const { return (dir_.path / "serve.sock").string(); }

  /// Polls until the compute queue holds `depth` requests (staged tests
  /// pause the dispatcher first, so the depth can only grow).
  void WaitForQueueDepth(std::size_t depth) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server_->stats().queue_depth < depth) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "queue never reached depth " << depth;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  TempDir dir_;
  std::unique_ptr<Server> server_;
};

/// The seven query shapes the protocol serves, one per (kind, model) family.
std::vector<Json> canonical_queries() {
  std::vector<Json> queries;
  {
    Json q = make_request(0, "connectivity", "async");
    q.set("processes", Json::integer(3)).set("f", Json::integer(1));
    queries.push_back(q);
  }
  {
    Json q = make_request(0, "connectivity", "sync");
    q.set("processes", Json::integer(3)).set("k", Json::integer(1));
    queries.push_back(q);
  }
  {
    Json q = make_request(0, "connectivity", "semisync");
    q.set("processes", Json::integer(3))
        .set("k", Json::integer(1))
        .set("mu", Json::integer(2));
    queries.push_back(q);
  }
  {
    Json q = make_request(0, "connectivity", "pseudosphere");
    Json sizes = Json::array();
    sizes.push(Json::integer(2)).push(Json::integer(2)).push(Json::integer(2));
    q.set("sizes", std::move(sizes));
    queries.push_back(q);
  }
  {
    Json q = make_request(0, "homology", "async");
    q.set("processes", Json::integer(3))
        .set("f", Json::integer(1))
        .set("max_dim", Json::integer(2))
        .set("exact", Json::boolean(true));
    queries.push_back(q);
  }
  {
    Json q = make_request(0, "complex_stats", "sync");
    q.set("processes", Json::integer(3)).set("k", Json::integer(1));
    queries.push_back(q);
  }
  {
    Json q = make_request(0, "decide", "async");
    q.set("processes", Json::integer(3))
        .set("f", Json::integer(1))
        .set("k", Json::integer(1));
    queries.push_back(q);
  }
  return queries;
}

TEST_F(ServeTest, ResponsesAreBitIdenticalToTheBatchPath) {
  StartServer();
  Client client(socket_path());
  std::int64_t next_id = 1;
  for (Json& request : canonical_queries()) {
    const ParsedRequest parsed = parse_request(request);
    ASSERT_TRUE(parsed.query.has_value()) << request.dump();

    request.set("id", Json::integer(next_id));
    const Json first = client.call(request);
    ASSERT_TRUE(first.get("ok")->as_bool()) << first.dump();
    EXPECT_EQ(first.get("id")->as_int(), next_id);
    EXPECT_FALSE(first.get("cached")->as_bool());

    // The batch path: same check_*/reduced_homology calls, same encoders.
    const std::vector<std::uint8_t> batch_sealed = compute_sealed(*parsed.query);
    EXPECT_EQ(first.get("result")->dump(),
              render_result(*parsed.query, batch_sealed).dump())
        << request.dump();

    // The store holds exactly the batch bytes.
    store::ResultStore mirror(server_->options().store_dir);
    const auto stored = mirror.load(cache_key(*parsed.query));
    ASSERT_TRUE(stored.has_value());
    EXPECT_EQ(*stored, batch_sealed);

    // Second ask: served from the store, rendered identically.
    request.set("id", Json::integer(++next_id));
    const Json second = client.call(request);
    ASSERT_TRUE(second.get("ok")->as_bool());
    EXPECT_TRUE(second.get("cached")->as_bool());
    EXPECT_EQ(second.get("result")->dump(), first.get("result")->dump());
    ++next_id;
  }
}

TEST_F(ServeTest, IdenticalInFlightQueriesCoalesceIntoOneComputation) {
  StartServer();
  server_->pause_dispatch();

  constexpr int kClients = 6;
  std::vector<std::unique_ptr<Client>> clients;
  Json request = make_request(0, "connectivity", "async");
  request.set("processes", Json::integer(3)).set("f", Json::integer(1));
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<Client>(socket_path()));
    request.set("id", Json::integer(i + 1));
    clients.back()->send(request);
  }
  WaitForQueueDepth(kClients);
  server_->resume_dispatch();

  int coalesced_responses = 0;
  std::string body;
  for (int i = 0; i < kClients; ++i) {
    const Json response = clients[i]->recv();
    ASSERT_TRUE(response.get("ok")->as_bool()) << response.dump();
    EXPECT_EQ(response.get("id")->as_int(), i + 1);
    if (body.empty()) {
      body = response.get("result")->dump();
    } else {
      EXPECT_EQ(response.get("result")->dump(), body);
    }
    if (response.get("coalesced")->as_bool()) ++coalesced_responses;
  }
  EXPECT_EQ(coalesced_responses, kClients - 1);

  const ServeStats stats = server_->stats();
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(kClients - 1));
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST_F(ServeTest, FullQueueRejectsWithTypedOverloadedError) {
  ServerOptions options;
  options.queue_limit = 3;
  StartServer(std::move(options));
  server_->pause_dispatch();

  Client client(socket_path());
  for (int i = 1; i <= 5; ++i) {
    Json request = make_request(i, "connectivity", "pseudosphere");
    Json sizes = Json::array();
    // Distinct sizes per request: five different queries, no coalescing.
    sizes.push(Json::integer(1 + (i % 2))).push(Json::integer(i % 5 + 1));
    request.set("sizes", std::move(sizes));
    client.send(request);
  }

  // Requests 4 and 5 bounce immediately; 1..3 answer after the resume.
  std::vector<Json> responses;
  for (int i = 0; i < 2; ++i) responses.push_back(client.recv());
  server_->resume_dispatch();
  for (int i = 0; i < 3; ++i) responses.push_back(client.recv());

  int overloaded = 0, ok = 0;
  for (const Json& response : responses) {
    if (response.get("ok")->as_bool()) {
      ++ok;
    } else {
      EXPECT_EQ(response.get("error")->get("code")->as_string(), "overloaded");
      EXPECT_GE(response.get("id")->as_int(), 4);
      ++overloaded;
    }
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(overloaded, 2);
  EXPECT_EQ(server_->stats().overloaded, 2u);
}

TEST_F(ServeTest, DeadlineExpiredWhileQueuedIsRejectedBeforeComputing) {
  StartServer();
  server_->pause_dispatch();
  Client client(socket_path());
  Json request = make_request(7, "connectivity", "async");
  request.set("processes", Json::integer(3))
      .set("f", Json::integer(1))
      .set("deadline_ms", Json::integer(40));
  client.send(request);
  WaitForQueueDepth(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  server_->resume_dispatch();
  const Json response = client.recv();
  ASSERT_FALSE(response.get("ok")->as_bool());
  EXPECT_EQ(response.get("error")->get("code")->as_string(),
            "deadline_exceeded");
  EXPECT_EQ(server_->stats().computed, 0u);
}

TEST_F(ServeTest, RunningComputationIsCancelledCooperatively) {
  StartServer();
  Client client(socket_path());
  // Heavy enough that it cannot finish inside 1 ms; the engines' deadline
  // polls unwind it instead.
  Json request = make_request(8, "homology", "async");
  request.set("processes", Json::integer(5))
      .set("f", Json::integer(2))
      .set("rounds", Json::integer(2))
      .set("max_dim", Json::integer(3))
      .set("deadline_ms", Json::integer(1));
  const Json response = client.call(request);
  ASSERT_FALSE(response.get("ok")->as_bool()) << response.dump();
  EXPECT_EQ(response.get("error")->get("code")->as_string(),
            "deadline_exceeded");
}

TEST_F(ServeTest, DecideDeadlineFiresMidPropagationNotAsInternalError) {
  StartServer();
  Client client(socket_path());
  // The solvability engine's propagation loop polls the cooperative
  // deadline (the seed backtracker only polled every few thousand search
  // nodes), so a 1 ms budget on a heavy decide query must surface as
  // deadline_exceeded — never as an internal error, and never as a served
  // verdict.
  Json request = make_request(9, "decide", "async");
  request.set("processes", Json::integer(4))
      .set("f", Json::integer(2))
      .set("k", Json::integer(2))
      .set("deadline_ms", Json::integer(1));
  const Json response = client.call(request);
  ASSERT_FALSE(response.get("ok")->as_bool()) << response.dump();
  EXPECT_EQ(response.get("error")->get("code")->as_string(),
            "deadline_exceeded");
  // The abort left no cached verdict behind: the same query with no budget
  // computes the real answer (4 processes, f=2, k=2 is impossible by
  // Corollary 13 — k <= f — and the verdict must say so).
  request.set("id", Json::integer(10)).set("deadline_ms", Json::integer(0));
  const Json full = client.call(request);
  ASSERT_TRUE(full.get("ok")->as_bool()) << full.dump();
  EXPECT_TRUE(full.get("result")->get("impossible")->as_bool());
  EXPECT_TRUE(full.get("result")->get("search_exhausted")->as_bool());
}

TEST_F(ServeTest, AdminRequestsAnswerInline) {
  StartServer();
  Client client(socket_path());
  const Json pong = client.call(Client::request(1, "ping"));
  EXPECT_TRUE(pong.get("ok")->as_bool());

  Json request = make_request(2, "connectivity", "async");
  request.set("processes", Json::integer(3)).set("f", Json::integer(1));
  ASSERT_TRUE(client.call(request).get("ok")->as_bool());
  client.call(request.set("id", Json::integer(3)));

  const Json stats = client.call(Client::request(4, "stats"));
  ASSERT_TRUE(stats.get("ok")->as_bool());
  const Json* result = stats.get("result");
  EXPECT_EQ(result->get("computed")->as_int(), 1);
  EXPECT_EQ(result->get("store")->get("writes")->as_int(), 1);
  EXPECT_EQ(result->get("store")->get("hits")->as_int(), 1);
  EXPECT_GE(result->get("latency_us")->get("connectivity")->get("count")
                ->as_int(),
            2);

  const Json bye = client.call(Client::request(5, "shutdown"));
  EXPECT_TRUE(bye.get("ok")->as_bool());
  EXPECT_TRUE(server_->wait_for_shutdown(/*poll_ms=*/5000));
}

// ------------------------------------------------- malformed-input fuzz --

TEST_F(ServeTest, GarbagePayloadsGetTypedErrorsAndNeverWedgeTheConnection) {
  StartServer();
  Client client(socket_path());
  util::Rng rng(20260808);
  for (int i = 0; i < 50; ++i) {
    const std::size_t length = rng.next_below(200);
    std::string garbage(length, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.next_below(256));
    write_frame(client.fd(), garbage);
    const Json response = client.recv();  // one response per frame, always
    ASSERT_FALSE(response.get("ok")->as_bool());
    const std::string code = response.get("error")->get("code")->as_string();
    EXPECT_TRUE(code == "bad_frame" || code == "bad_request") << code;
  }
  // The connection still serves real queries afterwards.
  EXPECT_TRUE(client.call(Client::request(99, "ping")).get("ok")->as_bool());
  EXPECT_EQ(server_->stats().internal_errors, 0u);
}

TEST_F(ServeTest, UnknownKindsAndBadShapesAreBadRequests) {
  StartServer();
  Client client(socket_path());
  const char* bad[] = {
      "{\"id\":1,\"kind\":\"frobnicate\"}",
      "{\"id\":2,\"kind\":42}",
      "{\"id\":3}",
      "[]",
      "{\"id\":4,\"kind\":\"decide\",\"model\":\"pseudosphere\"}",
      "{\"id\":5,\"kind\":\"homology\",\"max_dim\":99}",
  };
  for (const char* text : bad) {
    write_frame(client.fd(), text);
    const Json response = client.recv();
    ASSERT_FALSE(response.get("ok")->as_bool()) << text;
    EXPECT_EQ(response.get("error")->get("code")->as_string(), "bad_request")
        << text;
  }
}

TEST_F(ServeTest, OversizedFrameClosesTheConnectionWithoutCrashing) {
  StartServer();
  Client client(socket_path());
  const std::uint8_t header[4] = {0, 0, 0, 0x7F};  // ~2 GiB announcement
  ASSERT_EQ(::write(client.fd(), header, 4), 4);
  // The server reports bad_frame and closes; the client sees the error
  // frame and then EOF — never a hang.
  const Json response = client.recv();
  EXPECT_EQ(response.get("error")->get("code")->as_string(), "bad_frame");
  std::string payload;
  EXPECT_EQ(read_frame(client.fd(), &payload), FrameStatus::kClosed);
  // The server survives and accepts fresh connections.
  Client again(socket_path());
  EXPECT_TRUE(again.call(Client::request(1, "ping")).get("ok")->as_bool());
}

TEST_F(ServeTest, TornFrameFromDyingClientLeavesServerHealthy) {
  StartServer();
  {
    Client dying(socket_path());
    const std::uint8_t header[4] = {100, 0, 0, 0};
    ASSERT_EQ(::write(dying.fd(), header, 4), 4);
    ASSERT_EQ(::write(dying.fd(), "abc", 3), 3);
    // Destructor closes mid-frame: the server's reader sees a torn frame.
  }
  Client client(socket_path());
  EXPECT_TRUE(client.call(Client::request(1, "ping")).get("ok")->as_bool());
}

TEST_F(ServeTest, StorelessServerStillServes) {
  ServerOptions options;  // store_dir left empty: no cache
  options.socket_path = (dir_.path / "serve.sock").string();
  server_ = std::make_unique<Server>(std::move(options));
  server_->start();
  Client client(socket_path());
  Json request = make_request(1, "connectivity", "async");
  request.set("processes", Json::integer(3)).set("f", Json::integer(1));
  const Json first = client.call(request);
  ASSERT_TRUE(first.get("ok")->as_bool());
  const Json second = client.call(request.set("id", Json::integer(2)));
  EXPECT_FALSE(second.get("cached")->as_bool());  // nothing to cache into
  EXPECT_EQ(first.get("result")->dump(), second.get("result")->dump());
}

}  // namespace
}  // namespace psph::serve
