// Tests for the three protocol-complex constructions and their paper
// properties: Lemma 11 (async round = one pseudosphere), Lemma 12 / Cor. 13
// (async connectivity & impossibility), Lemmas 14–16 and Figure 3 (sync),
// Theorem 18 (round bound, via search and the FloodSet rule), Lemmas 19–21
// (semi-sync), and the decision-map search itself.

#include <gtest/gtest.h>

#include <vector>

#include "core/agreement.h"
#include "core/async_complex.h"
#include "core/decision_search.h"
#include "core/pseudosphere.h"
#include "core/semisync_complex.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "core/view.h"
#include "topology/homology.h"
#include "topology/operations.h"

namespace psph::core {
namespace {

using topology::SimplicialComplex;
using topology::VertexArena;

struct Fixture {
  ViewRegistry views;
  VertexArena arena;
};

// ------------------------------------------------------------- async ------

TEST(AsyncLemma11, OneRoundIsOnePseudosphere) {
  // n+1 = 3, f = 1: each process hears itself plus ≥ 1 of the other two:
  // 3 choices each → 27 facets, 9 vertices, pure of dimension 2.
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const SimplicialComplex a1 =
      async_round_complex(input, {3, 1, 1}, fx.views, fx.arena);
  EXPECT_EQ(a1.facet_count(), 27u);
  EXPECT_EQ(a1.count_of_dim(0), 9u);
  EXPECT_TRUE(a1.is_pure());
  EXPECT_EQ(a1.dimension(), 2);
  EXPECT_EQ(async_round_facet_count(3, 3, 1), 27u);
}

TEST(AsyncLemma11, WaitFreeCounts) {
  // f = 2 (wait-free): heard-set of each process is any subset containing
  // itself: 4 choices each → 64 facets, 12 vertices.
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const SimplicialComplex a1 =
      async_round_complex(input, {3, 2, 1}, fx.views, fx.arena);
  EXPECT_EQ(a1.facet_count(), 64u);
  EXPECT_EQ(a1.count_of_dim(0), 12u);
  EXPECT_EQ(async_round_facet_count(3, 3, 2), 64u);
}

TEST(AsyncLemma11, TooFewParticipantsGivesEmpty) {
  // P(S^m) is empty for m < n - f: with n+1 = 4, f = 1, one participant
  // cannot gather n - f + 1 = 3 messages.
  Fixture fx;
  const topology::Simplex input = rainbow_input(1, fx.views, fx.arena);
  EXPECT_TRUE(
      async_round_complex(input, {4, 1, 1}, fx.views, fx.arena).empty());
}

TEST(AsyncLemma11, SelfIsAlwaysHeard) {
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const SimplicialComplex a1 =
      async_round_complex(input, {3, 1, 1}, fx.views, fx.arena);
  for (topology::VertexId v : a1.vertex_ids()) {
    const auto senders = fx.views.direct_senders(fx.arena.state(v));
    EXPECT_TRUE(senders.count(fx.arena.pid(v)) != 0);
  }
}

TEST(AsyncLemma12, ConnectivitySweep) {
  // A^r(S^m) is (m - (n - f) - 1)-connected.
  for (const auto& [n1, m1, f, r] :
       std::vector<std::array<int, 4>>{{3, 3, 1, 1},
                                       {3, 3, 1, 2},
                                       {3, 3, 2, 1},
                                       {3, 2, 1, 1},
                                       {4, 4, 1, 1},
                                       {4, 4, 2, 1},
                                       {4, 3, 2, 1}}) {
    const ConnectivityCheck check = check_async_connectivity(n1, m1, f, r);
    EXPECT_TRUE(check.satisfied)
        << "n+1=" << n1 << " m+1=" << m1 << " f=" << f << " r=" << r << " : "
        << check.to_string();
  }
}

TEST(AsyncCorollary13, ConsensusImpossibleTwoProcesses) {
  // n+1 = 2, f = 1, k = 1: the 1-round wait-free complex admits no
  // consensus map (exhaustive proof).
  const AgreementCheck check = check_async_agreement(2, 1, 1, 1);
  EXPECT_TRUE(check.search_exhausted);
  EXPECT_TRUE(check.impossible);
}

TEST(AsyncCorollary13, ConsensusImpossibleTwoRounds) {
  const AgreementCheck check = check_async_agreement(2, 1, 1, 2);
  EXPECT_TRUE(check.search_exhausted);
  EXPECT_TRUE(check.impossible);
}

TEST(AsyncCorollary13, OneResilientConsensusImpossibleThreeProcesses) {
  const AgreementCheck check = check_async_agreement(3, 1, 1, 1);
  EXPECT_TRUE(check.search_exhausted);
  EXPECT_TRUE(check.impossible);
}

TEST(AsyncCorollary13, WaitFreeTwoSetAgreementImpossible) {
  // The celebrated instance [BG93, HS93, SZ93]: 3 processes, wait-free
  // (f = 2), k = 2, one round — exhaustively refuted.
  const AgreementCheck check = check_async_agreement(3, 2, 2, 1);
  EXPECT_TRUE(check.search_exhausted);
  EXPECT_TRUE(check.impossible);
}

TEST(AsyncCorollary13, KGreaterThanFIsSolvable) {
  // k = f + 1 = 2 with 3 processes: min-of-seen works; the search must find
  // some map.
  const AgreementCheck check = check_async_agreement(3, 1, 2, 1);
  EXPECT_TRUE(check.possible);
}

TEST(AsyncCorollary13, MinRuleSolvesFPlusOneSetAgreement) {
  Fixture fx;
  const SimplicialComplex inputs =
      input_complex(3, {0, 1, 2}, fx.views, fx.arena);
  const SimplicialComplex protocol = async_protocol_complex_over(
      inputs, {3, 1, 1}, fx.views, fx.arena);
  const RuleCheckResult result = check_decision_rule(
      protocol, 2, min_seen_rule(fx.views), fx.views, fx.arena);
  EXPECT_TRUE(result.ok) << (result.violation ? result.violation->description
                                              : "");
}

// -------------------------------------------------------------- sync ------

TEST(SyncLemma14, SingleFailureSetIsPseudosphere) {
  // Figure 3 middle: K = {R}; P and Q independently hear R or not: 4 facets.
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const SimplicialComplex s_r = sync_round_complex_for_failset(
      input, {2}, fx.views, fx.arena);
  EXPECT_EQ(s_r.facet_count(), 4u);
  EXPECT_EQ(s_r.count_of_dim(0), 4u);
  EXPECT_EQ(s_r.dimension(), 1);
}

TEST(SyncLemma14, FailureFreeIsDegeneratePseudosphere) {
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const SimplicialComplex s0 =
      sync_round_complex_for_failset(input, {}, fx.views, fx.arena);
  EXPECT_EQ(s0.facet_count(), 1u);
  EXPECT_EQ(s0.dimension(), 2);
}

TEST(SyncLemma14, AllFailGivesEmpty) {
  Fixture fx;
  const topology::Simplex input = rainbow_input(2, fx.views, fx.arena);
  EXPECT_TRUE(sync_round_complex_for_failset(input, {0, 1}, fx.views,
                                             fx.arena)
                  .empty());
}

TEST(SyncFigure3, OneRoundThreeProcessesOneFailure) {
  // Union of the failure-free pseudosphere and three single-failure
  // pseudospheres: 1 triangle + 9 maximal edges, 9 vertices.
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const SimplicialComplex s1 = sync_round_complex(
      input, {3, 1, 1, 1}, fx.views, fx.arena);
  EXPECT_EQ(s1.count_of_dim(0), 9u);
  EXPECT_EQ(s1.facet_count(), 10u);
  std::size_t triangles = 0, edges = 0;
  s1.for_each_facet([&](const topology::Simplex& facet) {
    if (facet.dimension() == 2) ++triangles;
    if (facet.dimension() == 1) ++edges;
  });
  EXPECT_EQ(triangles, 1u);
  EXPECT_EQ(edges, 9u);
  // Lemma 16 at m = n = 2, k = 1: (m - (n-k) - 1) = 0-connected.
  EXPECT_GE(topology::homological_connectivity(s1, 0), 0);
}

TEST(SyncLemma15, IntersectionStructure) {
  // For each K_t in lexicographic order, the intersection of S¹_{K_t} with
  // the union of all earlier pseudospheres equals
  // ∪_{j∈K_t} ψ(S\K_t; 2^{K_t - {j}}).
  for (int participants : {3, 4}) {
    Fixture fx;
    const topology::Simplex input =
        rainbow_input(participants, fx.views, fx.arena);
    std::vector<ProcessId> pids;
    for (int p = 0; p < participants; ++p) pids.push_back(p);
    const auto fail_sets = lexicographic_fail_sets(pids, 2);
    SimplicialComplex earlier_union;
    for (const auto& fail_set : fail_sets) {
      const SimplicialComplex current = sync_round_complex_for_failset(
          input, fail_set, fx.views, fx.arena);
      const SimplicialComplex lhs =
          topology::intersection_of(earlier_union, current);
      const SimplicialComplex rhs =
          sync_lemma15_rhs(input, fail_set, fx.views, fx.arena);
      EXPECT_EQ(lhs, rhs) << "participants=" << participants << " |K|="
                          << fail_set.size();
      earlier_union.merge(current);
    }
  }
}

TEST(SyncLemma16And17, ConnectivitySweep) {
  // S^r(S^m) is (m - (n - k) - 1)-connected when n >= rk + k.
  // Entries respect the hypothesis n >= rk + k.
  for (const auto& [n1, m1, k, r] :
       std::vector<std::array<int, 4>>{{3, 3, 1, 1},
                                       {4, 4, 1, 1},
                                       {4, 4, 1, 2},
                                       {4, 3, 1, 1},
                                       {5, 5, 2, 1}}) {
    const ConnectivityCheck check = check_sync_connectivity(n1, m1, k, r);
    EXPECT_TRUE(check.satisfied)
        << "n+1=" << n1 << " m+1=" << m1 << " k=" << k << " r=" << r << " : "
        << check.to_string();
  }
}

TEST(SyncTheorem18, FloodMinSucceedsAtTheBound) {
  // floor(f/k) + 1 rounds suffice (min rule), for several (f, k).
  EXPECT_TRUE(floodmin_solves_sync(3, 1, 1, 2));   // f=1,k=1: 2 rounds
  EXPECT_TRUE(floodmin_solves_sync(4, 2, 2, 2));   // f=2,k=2: 2 rounds
  EXPECT_TRUE(floodmin_solves_sync(4, 1, 1, 2));
  EXPECT_TRUE(floodmin_solves_sync(3, 2, 2, 2));
}

TEST(SyncTheorem18, FloodMinFailsBelowTheBound) {
  // At floor(f/k) rounds the min rule must break k-agreement somewhere.
  EXPECT_FALSE(floodmin_solves_sync(3, 1, 1, 1));
  EXPECT_FALSE(floodmin_solves_sync(4, 2, 1, 1));
}

TEST(SyncTheorem18, ConsensusImpossibleInOneRoundWithOneFailure) {
  // n+1 = 3, f = 1, k = 1, r = 1 <= floor(f/k): exhaustive search refutes
  // every decision map, matching the r >= floor(f/k)+1 bound.
  const AgreementCheck check = check_sync_agreement(3, 1, 1, 1);
  EXPECT_TRUE(check.search_exhausted);
  EXPECT_TRUE(check.impossible);
}

TEST(SyncTheorem18, ConsensusPossibleAtTwoRounds) {
  const AgreementCheck check = check_sync_agreement(3, 1, 1, 2);
  EXPECT_TRUE(check.possible);
}

// ----------------------------------------------------------- semi-sync ----

TEST(SemiSyncLemma19, PatternComplexIsPseudosphere) {
  // K = {2} failing at microround 2 of μ = 3: each survivor independently
  // saw the last message at microround 1 or 2 → 2 views each, 4 facets.
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const FailurePattern pattern{{2}, {2}};
  const SimplicialComplex m1 = semisync_round_complex_for_pattern(
      input, pattern, 3, fx.views, fx.arena);
  EXPECT_EQ(m1.facet_count(), 4u);
  EXPECT_EQ(m1.count_of_dim(0), 4u);
  EXPECT_EQ(view_count(pattern), 2u);
}

TEST(SemiSyncLemma19, FailAtMicroroundOneCanEraseSender) {
  // F(P_2) = 1: the survivor's view either contains P_2 with μ_j = 1 or has
  // no entry for P_2 at all (μ_j = 0).
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const FailurePattern pattern{{2}, {1}};
  const SimplicialComplex m1 = semisync_round_complex_for_pattern(
      input, pattern, 3, fx.views, fx.arena);
  bool saw_with = false, saw_without = false;
  for (topology::VertexId v : m1.vertex_ids()) {
    const auto senders = fx.views.direct_senders(fx.arena.state(v));
    if (senders.count(2) != 0) saw_with = true;
    if (senders.count(2) == 0) saw_without = true;
  }
  EXPECT_TRUE(saw_with);
  EXPECT_TRUE(saw_without);
}

TEST(SemiSyncLemma19, FailureFreePatternIsOneFacet) {
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const SimplicialComplex m1 = semisync_round_complex_for_pattern(
      input, {{}, {}}, 2, fx.views, fx.arena);
  EXPECT_EQ(m1.facet_count(), 1u);
  EXPECT_EQ(m1.dimension(), 2);
}

TEST(SemiSyncLemma19, MicroroundOutOfRangeThrows) {
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  EXPECT_THROW(semisync_round_complex_for_pattern(input, {{2}, {5}}, 3,
                                                  fx.views, fx.arena),
               std::invalid_argument);
  EXPECT_THROW(semisync_round_complex_for_pattern(input, {{2}, {0}}, 3,
                                                  fx.views, fx.arena),
               std::invalid_argument);
}

TEST(SemiSyncPatterns, EnumerationOrderAndCount) {
  // For |K| <= 1, μ = 3 on 3 processes: 1 (empty) + 3 * 3 patterns.
  const auto patterns = enumerate_failure_patterns({0, 1, 2}, 1, 3);
  EXPECT_EQ(patterns.size(), 10u);
  EXPECT_TRUE(patterns[0].fail_set.empty());
  // Reverse-lex within each K: first pattern fails at μ, last at 1.
  EXPECT_EQ(patterns[1].fail_micro, (std::vector<int>{3}));
  EXPECT_EQ(patterns[3].fail_micro, (std::vector<int>{1}));
}

TEST(SemiSyncLemma20, IntersectionStructure) {
  // ∩ of each pseudosphere with the union of all earlier ones equals
  // ∪_{j∈K} ψ(S\K; [F ↑ j]).
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const auto patterns = enumerate_failure_patterns({0, 1, 2}, 1, 2);
  SimplicialComplex earlier;
  for (const FailurePattern& pattern : patterns) {
    const SimplicialComplex current = semisync_round_complex_for_pattern(
        input, pattern, 2, fx.views, fx.arena);
    const SimplicialComplex lhs = topology::intersection_of(earlier, current);
    const SimplicialComplex rhs =
        semisync_lemma20_rhs(input, pattern, 2, fx.views, fx.arena);
    EXPECT_EQ(lhs, rhs) << "|K|=" << pattern.fail_set.size();
    earlier.merge(current);
  }
}

TEST(SemiSyncLemma21, ConnectivitySweep) {
  // M^r(S^m) is (m - (n - k) - 1)-connected when n >= (r+1)k.
  // Entries respect the hypothesis n >= (r+1)k.
  for (const auto& [n1, m1, k, mu, r] :
       std::vector<std::array<int, 5>>{{3, 3, 1, 2, 1},
                                       {3, 3, 1, 3, 1},
                                       {4, 4, 1, 2, 2},
                                       {4, 4, 1, 2, 1},
                                       {4, 3, 1, 2, 1}}) {
    const ConnectivityCheck check =
        check_semisync_connectivity(n1, m1, k, mu, r);
    EXPECT_TRUE(check.satisfied)
        << "n+1=" << n1 << " m+1=" << m1 << " k=" << k << " mu=" << mu
        << " r=" << r << " : " << check.to_string();
  }
}

TEST(SemiSyncAgreement, ConsensusImpossibleOneRound) {
  // 3 processes, one failure per round, one round: n = 2 >= (r+1)k = 2, so
  // Lemma 21 applies and consensus has no decision map.
  const AgreementCheck check = check_semisync_agreement(3, 1, 1, 2, 1);
  EXPECT_TRUE(check.search_exhausted);
  EXPECT_TRUE(check.impossible);
}

TEST(SemiSyncAgreement, TwoProcessOneRoundIsDegenerate) {
  // With n+1 = 2 the hypothesis n >= (r+1)k fails, and indeed the one-round
  // complex leaves isolated survivor vertices (the other process's crash
  // removes its vertex entirely), so a decision map exists. The time lower
  // bound for two processes comes from the round-stretching argument of
  // Corollary 22, not from the one-round complex.
  const AgreementCheck check = check_semisync_agreement(2, 1, 1, 2, 1);
  EXPECT_TRUE(check.search_exhausted);
  EXPECT_TRUE(check.possible);
}

// --------------------------------------------------------- search engine --

TEST(DecisionSearch, FindsMapOnSingleFacet) {
  // A single input facet (no uncertainty): deciding anyone's value works.
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  SimplicialComplex protocol =
      sync_round_complex_for_failset(input, {}, fx.views, fx.arena);
  const SearchResult result =
      search_decision_map(protocol, 1, fx.views, fx.arena);
  EXPECT_TRUE(result.decidable);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.assignment.size(), 3u);
}

TEST(DecisionSearch, WitnessSatisfiesConstraints) {
  const Fixture* dummy = nullptr;
  (void)dummy;
  Fixture fx;
  const SimplicialComplex inputs =
      input_complex(3, {0, 1, 2}, fx.views, fx.arena);
  const SimplicialComplex protocol = async_protocol_complex_over(
      inputs, {3, 1, 1}, fx.views, fx.arena);
  const SearchResult result =
      search_decision_map(protocol, 2, fx.views, fx.arena);
  ASSERT_TRUE(result.decidable);
  // Re-check the witness through the independent rule checker.
  const DecisionRule witness_rule = [&](StateId state) {
    // Find the vertex carrying this state; assignment is per-vertex.
    for (const auto& [vertex, value] : result.assignment) {
      if (fx.arena.state(vertex) == state) return value;
    }
    throw std::logic_error("state not in witness");
  };
  const RuleCheckResult check = check_decision_rule(
      protocol, 2, witness_rule, fx.views, fx.arena);
  EXPECT_TRUE(check.ok);
}

TEST(DecisionSearch, NodeLimitAborts) {
  const AgreementCheck check =
      check_async_agreement(3, 2, 2, 1, SearchOptions{.node_limit = 3});
  EXPECT_FALSE(check.search_exhausted);
  EXPECT_FALSE(check.impossible);
  EXPECT_FALSE(check.possible);
}

}  // namespace
}  // namespace psph::core
