// CI smoke soak: 1000 recorded runs per protocol under seeded random
// adversaries, every run checked by the invariant monitors. Exits nonzero
// on the first violation, printing the offending schedule so the failure is
// replayable with `psph_soak --schedule-in` after saving it.
//
// Registered as a plain ctest target (like sweep_smoke): the gtest suites
// cover the machinery; this covers volume.

#include <cstdio>

#include "check/soak.h"

int main() {
  using namespace psph;

  constexpr std::size_t kRuns = 1000;
  bool ok = true;
  for (const check::ProtocolKind protocol :
       {check::ProtocolKind::kFloodSet, check::ProtocolKind::kEarlyStopping,
        check::ProtocolKind::kAsyncKSet, check::ProtocolKind::kSemiSyncKSet}) {
    check::RunSpec spec;
    spec.protocol = protocol;
    spec.n = 5;
    spec.f = 2;
    spec.k = 1;
    spec.seed = 20260101;
    spec.c2 = 2;
    spec.d = 5;
    const check::SoakReport report = check::soak(spec, kRuns);
    std::printf("%-14s %zu/%zu runs clean\n", check::protocol_name(protocol),
                report.runs - report.violations, report.runs);
    if (!report.ok()) {
      ok = false;
      std::printf("  FIRST VIOLATION in %s\n",
                  report.first_schedule.summary().c_str());
      for (const check::Violation& violation : report.first_violations) {
        std::printf("  %s: %s\n", violation.monitor.c_str(),
                    violation.detail.c_str());
      }
    }
  }
  return ok ? 0 : 1;
}
