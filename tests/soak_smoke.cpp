// CI smoke soak: 1000 recorded runs per protocol under seeded random
// adversaries, every run checked by the invariant monitors. Exits nonzero
// on the first violation, printing the offending schedule so the failure is
// replayable with `psph_soak --schedule-in` after saving it.
//
// Registered as a plain ctest target (like sweep_smoke): the gtest suites
// cover the machinery; this covers volume.

#include <cstdint>
#include <cstdio>

#include "check/soak.h"

namespace {

/// 1000 aba_byz runs at the N = 3T+1 resilience boundary: every run must
/// be monitor-clean AND replay bit-identically after a serialization
/// round-trip — the acceptance bar for the Byzantine schedule envelope.
bool soak_aba_byz_with_replay() {
  using namespace psph;
  check::RunSpec spec;
  spec.protocol = check::ProtocolKind::kAbaByz;
  spec.n = 4;
  spec.f = 1;
  spec.t = 1;
  std::size_t clean = 0;
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    spec.seed = seed;
    const check::RunOutcome recorded = check::run_recorded(spec);
    if (!recorded.ok()) {
      std::printf("aba_byz seed %llu VIOLATION in %s\n",
                  static_cast<unsigned long long>(seed),
                  recorded.schedule.summary().c_str());
      for (const check::Violation& violation : recorded.violations) {
        std::printf("  %s: %s\n", violation.monitor.c_str(),
                    violation.detail.c_str());
      }
      return false;
    }
    const check::Schedule loaded = check::deserialize_schedule(
        check::serialize_schedule(recorded.schedule));
    const check::RunOutcome replayed = check::replay_schedule(loaded);
    if (recorded.aba == nullptr || replayed.aba == nullptr ||
        !(recorded.aba->trace == replayed.aba->trace)) {
      std::printf("aba_byz seed %llu replay NOT bit-identical\n",
                  static_cast<unsigned long long>(seed));
      return false;
    }
    ++clean;
  }
  std::printf("%-14s %zu/1000 runs clean, replays bit-identical\n", "aba_byz",
              clean);
  return true;
}

}  // namespace

int main() {
  using namespace psph;

  constexpr std::size_t kRuns = 1000;
  bool ok = true;
  for (const check::ProtocolKind protocol :
       {check::ProtocolKind::kFloodSet, check::ProtocolKind::kEarlyStopping,
        check::ProtocolKind::kAsyncKSet, check::ProtocolKind::kSemiSyncKSet}) {
    check::RunSpec spec;
    spec.protocol = protocol;
    spec.n = 5;
    spec.f = 2;
    spec.k = 1;
    spec.seed = 20260101;
    spec.c2 = 2;
    spec.d = 5;
    const check::SoakReport report = check::soak(spec, kRuns);
    std::printf("%-14s %zu/%zu runs clean\n", check::protocol_name(protocol),
                report.runs - report.violations, report.runs);
    if (!report.ok()) {
      ok = false;
      std::printf("  FIRST VIOLATION in %s\n",
                  report.first_schedule.summary().c_str());
      for (const check::Violation& violation : report.first_violations) {
        std::printf("  %s: %s\n", violation.monitor.c_str(),
                    violation.detail.c_str());
      }
    }
  }

  ok = soak_aba_byz_with_replay() && ok;

  // NBAC over both failure-detector oracles: 500 runs each against the
  // obligation monitors (agreement is deliberately not among them).
  for (const int fd_kind : {0, 1}) {
    check::RunSpec spec;
    spec.protocol = check::ProtocolKind::kNbacFd;
    spec.n = 5;
    spec.f = 2;
    spec.fd_kind = fd_kind;
    spec.seed = 20260101;
    const check::SoakReport report = check::soak(spec, 500);
    std::printf("nbac_fd fd=%d   %zu/%zu runs clean\n", fd_kind,
                report.runs - report.violations, report.runs);
    if (!report.ok()) {
      ok = false;
      std::printf("  FIRST VIOLATION in %s\n",
                  report.first_schedule.summary().c_str());
      for (const check::Violation& violation : report.first_violations) {
        std::printf("  %s: %s\n", violation.monitor.c_str(),
                    violation.detail.c_str());
      }
    }
  }
  return ok ? 0 : 1;
}
