// Unit tests for the utility layer: PRNG determinism and distribution
// sanity, hash combinators, CLI parsing, timers.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "util/hash.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace psph::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextInCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_in(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NextInBadRangeThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.next_in(1, 0), std::invalid_argument);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(19);
  int heads = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) heads += rng.next_bool(0.5) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.03);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(items, shuffled);
}

TEST(Rng, SampleWithoutReplacementBasics) {
  Rng rng(29);
  const std::vector<int> sample = rng.sample_without_replacement(10, 4);
  ASSERT_EQ(sample.size(), 4u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
              sample.end());
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(Rng, SampleWithoutReplacementEdges) {
  Rng rng(31);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
  EXPECT_EQ(rng.sample_without_replacement(5, 5).size(), 5u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(37);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(41);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

// Golden values pin the exact xoshiro256++/splitmix64 streams. Recorded
// adversary schedules are only portable repros if these never drift — a
// standard-library change or a "harmless" Rng refactor must fail here,
// not silently invalidate every saved schedule's seed metadata.

TEST(Rng, GoldenNextStream) {
  Rng rng(12345);
  EXPECT_EQ(rng.next(), 10201931350592234856ull);
  EXPECT_EQ(rng.next(), 3780764549115216544ull);
  EXPECT_EQ(rng.next(), 1570246627180645737ull);
  EXPECT_EQ(rng.next(), 3237956550421933520ull);
}

TEST(Rng, GoldenNextBelow) {
  Rng rng(999);
  const std::vector<std::uint64_t> expected{343, 720, 603, 532, 340, 50};
  for (const std::uint64_t value : expected) {
    EXPECT_EQ(rng.next_below(1000), value);
  }
}

TEST(Rng, GoldenNextIn) {
  Rng rng(3);
  const std::vector<std::int64_t> expected{-1, 3, -5, 0, 4, 1};
  for (const std::int64_t value : expected) {
    EXPECT_EQ(rng.next_in(-5, 5), value);
  }
}

TEST(Rng, GoldenShuffle) {
  Rng rng(7);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(items);
  EXPECT_EQ(items, (std::vector<int>{7, 9, 3, 6, 0, 4, 5, 2, 8, 1}));
}

TEST(Rng, GoldenSplit) {
  Rng parent(42);
  Rng child = parent.split();
  EXPECT_EQ(parent.next(), 5881210131331364753ull);
  EXPECT_EQ(child.next(), 5745406364259058299ull);
}

TEST(Rng, SeedAccessorReturnsConstructionSeed) {
  EXPECT_EQ(Rng(42).seed(), 42ull);
  EXPECT_EQ(Rng(20260808).seed(), 20260808ull);
  Rng drained(42);
  for (int i = 0; i < 10; ++i) drained.next();
  EXPECT_EQ(drained.seed(), 42ull);
}

TEST(Rng, LabeledSplitSameLabelSameStream) {
  Rng parent(41);
  Rng a = parent.split("adversary");
  Rng b = parent.split("adversary");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, LabeledSplitDistinctLabelsDiverge) {
  Rng parent(41);
  Rng a = parent.split("adversary");
  Rng b = parent.split("oracle");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, LabeledSplitIndependentOfParentDrawPosition) {
  // The property the Byzantine adversary's per-component streams rely on:
  // however many values the parent (or a sibling stream) has produced, the
  // labeled sub-stream is identical — so adding draws to one component
  // never shifts another component's schedule.
  Rng fresh(42);
  Rng drained(42);
  for (int i = 0; i < 1000; ++i) drained.next();
  Rng a = fresh.split("net");
  Rng b = drained.split("net");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

// Pin the exact labeled sub-streams, like GoldenSplit above: recorded
// Byzantine schedules name only (seed, label) pairs, so any drift here
// silently detaches every saved quorum schedule from its seed metadata.

TEST(Rng, GoldenLabeledSplit) {
  Rng parent(42);
  Rng net = parent.split("net");
  EXPECT_EQ(net.next(), 11552001902302259109ull);
  EXPECT_EQ(net.next(), 1227428005018418537ull);
  EXPECT_EQ(net.next(), 9955318765519601925ull);
  Rng crash = parent.split("crash");
  EXPECT_EQ(crash.next(), 2861851109264108858ull);
  EXPECT_EQ(crash.next(), 5150915152732232862ull);
  EXPECT_EQ(crash.next(), 16531265491926979579ull);
  Rng byz = parent.split("byz/3");
  EXPECT_EQ(byz.next(), 8115133450442858300ull);
  EXPECT_EQ(byz.next(), 5989800560130029232ull);
  EXPECT_EQ(byz.next(), 15259304932942162159ull);
}

TEST(Rng, GoldenLabeledSplitSoakLabels) {
  Rng parent(20260808);
  Rng inputs = parent.split("inputs");
  EXPECT_EQ(inputs.next(), 5495999990669941859ull);
  EXPECT_EQ(inputs.next(), 10810785691411696024ull);
  EXPECT_EQ(inputs.next(), 5017956288540005255ull);
  Rng fd = parent.split("fd");
  EXPECT_EQ(fd.next(), 2112008911782284429ull);
  EXPECT_EQ(fd.next(), 14745862159166575594ull);
  EXPECT_EQ(fd.next(), 14204405154681287555ull);
}

TEST(Hash, CombineOrderSensitive) {
  const std::size_t a = hash_combine(hash_combine(0, 1), 2);
  const std::size_t b = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(Hash, RangeLengthSensitive) {
  const std::vector<int> one{1};
  const std::vector<int> two{1, 0};
  EXPECT_NE(hash_range(one), hash_range(two));
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::debug);
  EXPECT_EQ(parse_log_level("off"), LogLevel::off);
  EXPECT_THROW(parse_log_level("bogus"), std::invalid_argument);
}

TEST(Logging, FilteringIsCheap) {
  set_log_level(LogLevel::off);
  int evaluations = 0;
  const auto expensive = [&]() {
    ++evaluations;
    return std::string("x");
  };
  PSPH_LOG(debug) << expensive();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::info);
}

TEST(Timer, MonotoneNonNegative) {
  Timer timer;
  const double t1 = timer.seconds();
  const double t2 = timer.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_FALSE(timer.pretty().empty());
}

}  // namespace
}  // namespace psph::util
