// Unit and property tests for the exact-math layer: BigInt arithmetic,
// combinatorial enumeration, GF(p) arithmetic, sparse matrices and ranks,
// Smith normal form (including known homology matrices).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "math/bigint.h"
#include "math/combinatorics.h"
#include "math/matrix.h"
#include "math/modular.h"
#include "math/simd.h"
#include "math/smith.h"
#include "util/random.h"

namespace psph::math {
namespace {

// ---------------------------------------------------------------- BigInt --

TEST(BigInt, SmallRoundTrip) {
  for (std::int64_t v : {0LL, 1LL, -1LL, 42LL, -42LL, 1000000007LL}) {
    EXPECT_EQ(BigInt(v).to_int64(), v);
    EXPECT_EQ(BigInt(v).to_string(), std::to_string(v));
  }
}

TEST(BigInt, Int64Extremes) {
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(BigInt(min).to_int64(), min);
  EXPECT_EQ(BigInt(max).to_int64(), max);
  EXPECT_EQ(BigInt(min).to_string(), std::to_string(min));
}

TEST(BigInt, ParseDecimal) {
  EXPECT_EQ(BigInt("0").to_int64(), 0);
  EXPECT_EQ(BigInt("-123456789012345678").to_int64(), -123456789012345678LL);
  EXPECT_EQ(BigInt("+17").to_int64(), 17);
  EXPECT_THROW(BigInt(""), std::invalid_argument);
  EXPECT_THROW(BigInt("12a"), std::invalid_argument);
}

TEST(BigInt, LargeMultiplication) {
  // 2^128 computed by repeated squaring of 2^32.
  const BigInt two32(1LL << 32);
  const BigInt two64 = two32 * two32;
  const BigInt two128 = two64 * two64;
  EXPECT_EQ(two128.to_string(), "340282366920938463463374607431768211456");
  EXPECT_FALSE(two128.fits_int64());
  EXPECT_THROW(two128.to_int64(), std::overflow_error);
}

TEST(BigInt, AdditionAgainstInt64) {
  util::Rng rng(101);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t a = rng.next_in(-1000000000, 1000000000);
    const std::int64_t b = rng.next_in(-1000000000, 1000000000);
    EXPECT_EQ((BigInt(a) + BigInt(b)).to_int64(), a + b);
    EXPECT_EQ((BigInt(a) - BigInt(b)).to_int64(), a - b);
    EXPECT_EQ((BigInt(a) * BigInt(b)).to_int64(), a * b);
  }
}

TEST(BigInt, DivModMatchesCppSemantics) {
  util::Rng rng(103);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t a = rng.next_in(-100000, 100000);
    std::int64_t b = rng.next_in(-1000, 1000);
    if (b == 0) b = 7;
    EXPECT_EQ((BigInt(a) / BigInt(b)).to_int64(), a / b) << a << "/" << b;
    EXPECT_EQ((BigInt(a) % BigInt(b)).to_int64(), a % b) << a << "%" << b;
  }
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(5) / BigInt(0), std::domain_error);
  EXPECT_THROW(BigInt(5) % BigInt(0), std::domain_error);
}

TEST(BigInt, DivModIdentityOnLargeValues) {
  // dividend == quotient * divisor + remainder must hold for values far
  // beyond int64.
  const BigInt big("123456789012345678901234567890123456789");
  const BigInt div("98765432109876543210");
  BigInt q, r;
  BigInt::div_mod(big, div, &q, &r);
  EXPECT_EQ(q * div + r, big);
  EXPECT_TRUE(r.abs() < div.abs());
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt(2), BigInt(10));
  EXPECT_FALSE(BigInt(3) < BigInt(3));
  EXPECT_LE(BigInt(3), BigInt(3));
  EXPECT_GT(BigInt("100000000000000000000"), BigInt(1));
}

TEST(BigInt, GcdBasics) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_int64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)).to_int64(), 0);
}

TEST(BigInt, GcdAgainstInt64) {
  util::Rng rng(107);
  const auto gcd64 = [](std::int64_t a, std::int64_t b) {
    a = a < 0 ? -a : a;
    b = b < 0 ? -b : b;
    while (b != 0) {
      const std::int64_t r = a % b;
      a = b;
      b = r;
    }
    return a;
  };
  for (int i = 0; i < 300; ++i) {
    const std::int64_t a = rng.next_in(-100000, 100000);
    const std::int64_t b = rng.next_in(-100000, 100000);
    EXPECT_EQ(BigInt::gcd(BigInt(a), BigInt(b)).to_int64(), gcd64(a, b));
  }
}

TEST(BigInt, UnaryMinusAndAbs) {
  EXPECT_EQ((-BigInt(5)).to_int64(), -5);
  EXPECT_EQ((-BigInt(0)).to_int64(), 0);
  EXPECT_FALSE((-BigInt(0)).is_negative());
  EXPECT_EQ(BigInt(-9).abs().to_int64(), 9);
}

// -------------------------------------------------------- combinatorics --

TEST(Combinatorics, BinomialTable) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(3, 4), 0u);
  EXPECT_EQ(binomial(-1, 0), 0u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(Combinatorics, CombinationsCountAndOrder) {
  const auto combos = combinations(5, 3);
  EXPECT_EQ(combos.size(), binomial(5, 3));
  // Lexicographic order, first and last known.
  EXPECT_EQ(combos.front(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(combos.back(), (std::vector<int>{2, 3, 4}));
  for (std::size_t i = 1; i < combos.size(); ++i) {
    EXPECT_LT(combos[i - 1], combos[i]);
  }
}

TEST(Combinatorics, CombinationsEdges) {
  EXPECT_EQ(combinations(4, 0).size(), 1u);  // the empty combination
  EXPECT_TRUE(combinations(4, 0).front().empty());
  EXPECT_TRUE(combinations(3, 5).empty());
  EXPECT_EQ(combinations(0, 0).size(), 1u);
}

TEST(Combinatorics, AllSubsetsPowerSetSize) {
  const std::vector<int> items{1, 2, 3, 4};
  EXPECT_EQ(all_subsets(items).size(), 16u);
}

TEST(Combinatorics, SubsetsWithSizeBetween) {
  const std::vector<int> items{10, 20, 30, 40};
  const auto subsets = subsets_with_size_between(items, 2, 3);
  EXPECT_EQ(subsets.size(), binomial(4, 2) + binomial(4, 3));
  for (const auto& s : subsets) {
    EXPECT_GE(s.size(), 2u);
    EXPECT_LE(s.size(), 3u);
  }
}

TEST(Combinatorics, SubsetsClampedBounds) {
  const std::vector<int> items{1, 2};
  EXPECT_EQ(subsets_with_size_between(items, -3, 99).size(), 4u);
}

TEST(Combinatorics, ProductEnumeration) {
  std::vector<std::vector<std::size_t>> seen;
  for_each_product({2, 3}, [&](const std::vector<std::size_t>& odo) {
    seen.push_back(odo);
  });
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.front(), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(seen.back(), (std::vector<std::size_t>{1, 2}));
}

TEST(Combinatorics, ProductWithEmptyFactorVisitsNothing) {
  int visits = 0;
  for_each_product({2, 0, 3},
                   [&](const std::vector<std::size_t>&) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(Combinatorics, EmptyProductVisitsOnce) {
  int visits = 0;
  for_each_product({}, [&](const std::vector<std::size_t>&) { ++visits; });
  EXPECT_EQ(visits, 1);
}

// -------------------------------------------------------------- modular --

TEST(Modular, BasicOps) {
  const std::int64_t p = 97;
  EXPECT_EQ(mod_normalize(-1, p), 96);
  EXPECT_EQ(mod_add(96, 5, p), 4);
  EXPECT_EQ(mod_sub(3, 5, p), 95);
  EXPECT_EQ(mod_mul(10, 10, p), 3);
  EXPECT_EQ(mod_pow(2, 10, p), 1024 % 97);
}

TEST(Modular, InverseIsInverse) {
  const std::int64_t p = kDefaultPrime;
  util::Rng rng(109);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t v = rng.next_in(1, p - 1);
    EXPECT_EQ(mod_mul(v, mod_inverse(v, p), p), 1);
  }
  EXPECT_THROW(mod_inverse(0, p), std::domain_error);
}

TEST(Modular, FermatLittleTheorem) {
  const std::int64_t p = 101;
  for (std::int64_t v = 1; v < p; ++v) {
    EXPECT_EQ(mod_pow(v, p - 1, p), 1);
  }
}

// --------------------------------------------------------------- matrix --

TEST(SparseMatrix, SetGetAddEraseZero) {
  SparseMatrix m(3, 3);
  m.set(0, 0, 5);
  EXPECT_EQ(m.get(0, 0), 5);
  m.add(0, 0, -5);
  EXPECT_EQ(m.get(0, 0), 0);
  EXPECT_EQ(m.nonzeros(), 0u);
  m.set(1, 2, 7);
  m.set(1, 2, 0);
  EXPECT_EQ(m.nonzeros(), 0u);
  EXPECT_THROW(m.set(3, 0, 1), std::out_of_range);
  EXPECT_THROW(m.get(0, 3), std::out_of_range);
}

TEST(SparseMatrix, DenseRoundTrip) {
  SparseMatrix m(2, 3);
  m.set(0, 1, -1);
  m.set(1, 2, 4);
  const auto dense = m.to_dense();
  EXPECT_EQ(dense[0][1], -1);
  EXPECT_EQ(dense[1][2], 4);
  EXPECT_EQ(dense[0][0], 0);
}

TEST(SparseMatrix, RankIdentity) {
  SparseMatrix m(4, 4);
  for (std::size_t i = 0; i < 4; ++i) m.set(i, i, 1);
  EXPECT_EQ(m.rank_mod_p(kDefaultPrime), 4u);
}

TEST(SparseMatrix, RankDependentRows) {
  SparseMatrix m(3, 3);
  // Row2 = row0 + row1.
  m.set(0, 0, 1);
  m.set(0, 1, 2);
  m.set(1, 1, 3);
  m.set(1, 2, 4);
  m.set(2, 0, 1);
  m.set(2, 1, 5);
  m.set(2, 2, 4);
  EXPECT_EQ(m.rank_mod_p(kDefaultPrime), 2u);
}

TEST(SparseMatrix, RankZeroMatrix) {
  SparseMatrix m(5, 7);
  EXPECT_EQ(m.rank_mod_p(kDefaultPrime), 0u);
}

TEST(SparseMatrix, RankRandomProductBound) {
  // rank(A*B) <= min(rank A, rank B); build A (4x2) and B (2x5) explicitly,
  // so the 4x5 product has rank <= 2.
  util::Rng rng(113);
  std::int64_t a[4][2];
  std::int64_t b[2][5];
  for (auto& row : a) {
    for (auto& cell : row) cell = rng.next_in(-4, 4);
  }
  for (auto& row : b) {
    for (auto& cell : row) cell = rng.next_in(-4, 4);
  }
  SparseMatrix product(4, 5);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      std::int64_t sum = 0;
      for (std::size_t t = 0; t < 2; ++t) sum += a[i][t] * b[t][j];
      product.set(i, j, sum);
    }
  }
  EXPECT_LE(product.rank_mod_p(kDefaultPrime), 2u);
}

namespace {

// Dense GF(2) Gaussian elimination, the reference for the bitset fast path.
std::size_t dense_rank_mod_2(std::vector<std::vector<std::int64_t>> a) {
  std::size_t rank = 0;
  const std::size_t rows = a.size();
  const std::size_t cols = rows == 0 ? 0 : a[0].size();
  for (std::size_t c = 0; c < cols && rank < rows; ++c) {
    std::size_t pivot = rank;
    while (pivot < rows && (a[pivot][c] & 1) == 0) ++pivot;
    if (pivot == rows) continue;
    std::swap(a[rank], a[pivot]);
    for (std::size_t r = 0; r < rows; ++r) {
      if (r != rank && (a[r][c] & 1) != 0) {
        for (std::size_t j = c; j < cols; ++j) a[r][j] ^= a[rank][j];
      }
    }
    ++rank;
  }
  return rank;
}

}  // namespace

TEST(SparseMatrix, RankMod2BitsetMatchesDenseReference) {
  util::Rng rng(211);
  for (int trial = 0; trial < 50; ++trial) {
    // Mix shapes around the 64-bit word boundary to cover multi-word rows.
    const std::size_t rows = 1 + rng.next_below(8);
    const std::size_t cols = 1 + rng.next_below(trial % 2 == 0 ? 8 : 130);
    SparseMatrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        if (rng.next_bool(0.3)) m.set(i, j, rng.next_in(-3, 3));
      }
    }
    EXPECT_EQ(m.rank_mod_p(2), dense_rank_mod_2(m.to_dense()))
        << "trial " << trial;
  }
}

TEST(SparseMatrix, RankMod2AgreesWithOddPrimeOnTorsionFreeMatrix) {
  // A boundary-like ±1 incidence matrix of a path graph: torsion-free, so
  // the GF(2) rank equals the rank at the default (large) prime.
  SparseMatrix m(5, 4);
  for (std::size_t e = 0; e < 4; ++e) {
    m.set(e, e, -1);
    m.set(e + 1, e, 1);
  }
  EXPECT_EQ(m.rank_mod_p(2), m.rank_mod_p(kDefaultPrime));
  EXPECT_EQ(m.rank_mod_p(2), 4u);
}

TEST(SparseMatrix, SetOutOfIncreasingColumnOrder) {
  // The flat rows keep entries sorted even when columns arrive backwards.
  SparseMatrix m(1, 6);
  m.set(0, 5, 1);
  m.set(0, 1, 2);
  m.set(0, 3, 3);
  m.set(0, 1, 0);  // erase
  EXPECT_EQ(m.get(0, 1), 0);
  EXPECT_EQ(m.get(0, 3), 3);
  EXPECT_EQ(m.get(0, 5), 1);
  EXPECT_EQ(m.nonzeros(), 2u);
  const auto& row = m.row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_LT(row[0].first, row[1].first);
}

// ---------------------------------------------------------------- smith --

TEST(Smith, DiagonalMatrix) {
  SparseMatrix m(3, 3);
  m.set(0, 0, 2);
  m.set(1, 1, 6);
  m.set(2, 2, 12);
  const SmithResult snf = smith_normal_form(m);
  ASSERT_EQ(snf.rank(), 3u);
  // Invariant factors must divide in a chain; for diag(2,6,12) they are
  // (2, 6, 12) already.
  EXPECT_EQ(snf.invariants[0].to_int64(), 2);
  EXPECT_EQ(snf.invariants[1].to_int64(), 6);
  EXPECT_EQ(snf.invariants[2].to_int64(), 12);
}

TEST(Smith, DivisibilityChainEnforced) {
  // diag(4, 6) has SNF diag(2, 12).
  SparseMatrix m(2, 2);
  m.set(0, 0, 4);
  m.set(1, 1, 6);
  const SmithResult snf = smith_normal_form(m);
  ASSERT_EQ(snf.rank(), 2u);
  EXPECT_EQ(snf.invariants[0].to_int64(), 2);
  EXPECT_EQ(snf.invariants[1].to_int64(), 12);
}

TEST(Smith, ZeroMatrix) {
  SparseMatrix m(3, 4);
  const SmithResult snf = smith_normal_form(m);
  EXPECT_EQ(snf.rank(), 0u);
  EXPECT_TRUE(snf.torsion().empty());
}

TEST(Smith, TorsionOfProjectivePlaneBoundary) {
  // The classical minimal triangulation of RP^2 has H_1 = Z/2. Rather than
  // build the whole complex here (the topology tests do), check the SNF of
  // the matrix [[2]] directly and of a small matrix with known invariants.
  SparseMatrix m(1, 1);
  m.set(0, 0, 2);
  const SmithResult snf = smith_normal_form(m);
  ASSERT_EQ(snf.rank(), 1u);
  EXPECT_EQ(snf.invariants[0].to_int64(), 2);
  ASSERT_EQ(snf.torsion().size(), 1u);
  EXPECT_EQ(snf.torsion()[0].to_int64(), 2);
}

TEST(Smith, RankMatchesGfpOnRandomMatrices) {
  util::Rng rng(127);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t rows = 1 + rng.next_below(5);
    const std::size_t cols = 1 + rng.next_below(5);
    SparseMatrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        if (rng.next_bool(0.6)) m.set(i, j, rng.next_in(-3, 3));
      }
    }
    EXPECT_EQ(smith_normal_form(m).rank(), m.rank_mod_p(kDefaultPrime));
  }
}

TEST(Smith, NegativeEntriesGivePositiveInvariants) {
  SparseMatrix m(2, 2);
  m.set(0, 0, -3);
  m.set(1, 1, -5);
  const SmithResult snf = smith_normal_form(m);
  ASSERT_EQ(snf.rank(), 2u);
  EXPECT_GT(snf.invariants[0], BigInt(0));
  EXPECT_GT(snf.invariants[1], BigInt(0));
  EXPECT_EQ(snf.invariants[0] * snf.invariants[1], BigInt(15));
}

// ------------------------------------------------------- SIMD dispatch --

TEST(Simd, LevelNamesAndClamping) {
  EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx512), "avx512");
  const SimdLevel previous = simd_level();
  // Requests above hardware support clamp instead of faulting.
  const SimdLevel installed = set_simd_level(SimdLevel::kAvx512);
  EXPECT_LE(static_cast<int>(installed),
            static_cast<int>(max_supported_simd_level()));
  EXPECT_EQ(installed, simd_level());
  EXPECT_EQ(set_simd_level(SimdLevel::kScalar), SimdLevel::kScalar);
  set_simd_level(previous);
}

TEST(Simd, XorKernelsAgreeAcrossLevels) {
  // Every dispatch level must produce the same bits on the same
  // 64-byte-aligned, 8-word-multiple spans the GF(2) arena feeds them.
  util::Rng rng(0x584f52u);
  alignas(64) std::uint64_t base[64];
  alignas(64) std::uint64_t src[64];
  for (std::size_t i = 0; i < 64; ++i) {
    base[i] = rng.next();
    src[i] = rng.next();
  }
  const int max_level = static_cast<int>(max_supported_simd_level());
  for (const std::size_t n : {std::size_t{8}, std::size_t{32}, std::size_t{64}}) {
    alignas(64) std::uint64_t expected[64];
    std::copy(std::begin(base), std::end(base), std::begin(expected));
    xor_words(expected, src, n, SimdLevel::kScalar);
    for (int level = 1; level <= max_level; ++level) {
      alignas(64) std::uint64_t got[64];
      std::copy(std::begin(base), std::end(base), std::begin(got));
      xor_words(got, src, n, static_cast<SimdLevel>(level));
      for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_EQ(got[i], expected[i]) << "level=" << level << " n=" << n
                                       << " word=" << i;
      }
    }
  }
}

TEST(Simd, RankMod2AgreesAcrossLevelsAndWithOddPath) {
  // GF(2) rank through every kernel, cross-checked against the generic
  // sparse elimination with p = 2 semantics via a dense GF(3)-free matrix:
  // over {0,1} matrices with no 2s, rank mod 2 of the bitset path must
  // match the rank the generic path computes when fed the same matrix
  // mod 2 — here enforced by comparing all dispatch levels to each other
  // and scalar to a hand-computable case.
  const SimdLevel previous = simd_level();
  util::Rng rng(0x52414e4bu);
  const int max_level = static_cast<int>(max_supported_simd_level());
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t rows = 8 + rng.next_below(40);
    const std::size_t cols = 100 + rng.next_below(500);
    SparseMatrix matrix(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (rng.next_below(6) == 0) matrix.set(r, c, 1);
      }
    }
    std::vector<std::size_t> ranks;
    for (int level = 0; level <= max_level; ++level) {
      set_simd_level(static_cast<SimdLevel>(level));
      ranks.push_back(matrix.rank_mod_p(2));
    }
    for (std::size_t i = 1; i < ranks.size(); ++i) {
      EXPECT_EQ(ranks[0], ranks[i]) << "trial=" << trial << " level=" << i;
    }
  }
  // Identity-with-duplicates: rank known exactly, wide enough to cross a
  // cache-line stride boundary.
  SparseMatrix known(6, 130);
  for (std::size_t r = 0; r < 3; ++r) known.set(r, 40 * r + 7, 1);
  for (std::size_t r = 3; r < 6; ++r) known.set(r, 40 * (r - 3) + 7, 1);
  known.set(5, 129, 1);  // row 5 = row 2 + e_129: independent
  for (int level = 0; level <= max_level; ++level) {
    set_simd_level(static_cast<SimdLevel>(level));
    EXPECT_EQ(known.rank_mod_p(2), 4u) << "level=" << level;
  }
  set_simd_level(previous);
}

}  // namespace
}  // namespace psph::math
