// psph_obs unit tests: deterministic cross-thread aggregation, the
// PSPH_OBS=0 gate, reset semantics, the per-thread event cap, and a
// round-trip of the Chrome trace JSON through a minimal JSON parser.

#include "obs/obs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace psph;

// ------------------------------------------------- minimal JSON parser --
//
// Just enough JSON to validate trace_event output structurally: objects,
// arrays, strings (with escapes), numbers, booleans, null. Returns nullopt
// on any syntax error, so a malformed trace fails the test rather than
// sliding through a substring check.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse() {
    JsonValue value;
    skip_ws();
    if (!parse_value(&value)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return parse_literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return parse_literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return parse_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(const char* literal) {
    for (const char* c = literal; *c; ++c) {
      if (!consume(*c)) return false;
    }
    return true;
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // structural validation only; keep a placeholder
            c = '?';
            break;
          default:
            return false;
        }
      }
      out->push_back(c);
    }
    return consume('"');
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue element;
      skip_ws();
      if (!parse_value(&element)) return false;
      out->array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      skip_ws();
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------ fixtures --

const obs::SpanStat* find_span(const obs::Snapshot& snapshot,
                               const std::string& name) {
  for (const obs::SpanStat& span : snapshot.spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

const obs::CounterStat* find_counter(const obs::Snapshot& snapshot,
                                     const std::string& name) {
  for (const obs::CounterStat& counter : snapshot.counters) {
    if (counter.name == name) return &counter;
  }
  return nullptr;
}

const obs::GaugeStat* find_gauge(const obs::Snapshot& snapshot,
                                 const std::string& name) {
  for (const obs::GaugeStat& gauge : snapshot.gauges) {
    if (gauge.name == name) return &gauge;
  }
  return nullptr;
}

// Every test starts from a clean, enabled recorder and leaves it that way
// (the library state is process-global).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::set_event_capacity(std::size_t{1} << 20);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(true);
    obs::set_event_capacity(std::size_t{1} << 20);
    obs::reset();
  }
};

// --------------------------------------------------------------- tests --

TEST_F(ObsTest, CounterTotalsAreExactAcrossThreads) {
  obs::Counter counter("obs_test.cross_thread");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 1000;
  constexpr std::uint64_t kDelta = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add(kDelta);
    });
  }
  for (std::thread& t : threads) t.join();
  counter.add(1);  // main thread participates too

  const obs::Snapshot snapshot = obs::snapshot();
  const obs::CounterStat* stat = find_counter(snapshot, "obs_test.cross_thread");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->value,
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread * kDelta + 1);
}

TEST_F(ObsTest, SpanAggregatesMergeByNameAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::SpanTimer span("obs_test.worker_span");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const obs::Snapshot snapshot = obs::snapshot();
  const obs::SpanStat* stat = find_span(snapshot, "obs_test.worker_span");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count,
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_LE(stat->min_ns, stat->max_ns);
  EXPECT_GE(stat->total_ns, stat->max_ns);
}

TEST_F(ObsTest, GaugeMergesLastMinMaxAndMean) {
  obs::Gauge gauge("obs_test.gauge");
  std::thread first([&gauge] { gauge.set(10.0); });
  first.join();
  std::thread second([&gauge] { gauge.set(2.0); });
  second.join();
  gauge.set(4.0);  // globally most recent sample

  const obs::Snapshot snapshot = obs::snapshot();
  const obs::GaugeStat* stat = find_gauge(snapshot, "obs_test.gauge");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->samples, 3u);
  EXPECT_DOUBLE_EQ(stat->last, 4.0);
  EXPECT_DOUBLE_EQ(stat->min, 2.0);
  EXPECT_DOUBLE_EQ(stat->max, 10.0);
  EXPECT_DOUBLE_EQ(stat->sum, 16.0);
}

TEST_F(ObsTest, DisabledRecordsNothing) {
  obs::set_enabled(false);
  obs::Counter counter("obs_test.disabled_counter");
  obs::Gauge gauge("obs_test.disabled_gauge");
  {
    obs::SpanTimer span("obs_test.disabled_span", 7);
  }
  counter.add(5);
  gauge.set(1.0);
  obs::set_enabled(true);

  const obs::Snapshot snapshot = obs::snapshot();
  EXPECT_EQ(find_span(snapshot, "obs_test.disabled_span"), nullptr);
  EXPECT_EQ(find_counter(snapshot, "obs_test.disabled_counter"), nullptr);
  EXPECT_EQ(find_gauge(snapshot, "obs_test.disabled_gauge"), nullptr);
  EXPECT_TRUE(snapshot.events.empty());
}

TEST_F(ObsTest, ResetClearsValuesButKeepsRegistrations) {
  obs::Counter counter("obs_test.reset_counter");
  counter.add(9);
  {
    obs::SpanTimer span("obs_test.reset_span");
  }
  ASSERT_NE(find_counter(obs::snapshot(), "obs_test.reset_counter"), nullptr);

  obs::reset();
  const obs::Snapshot cleared = obs::snapshot();
  EXPECT_EQ(find_counter(cleared, "obs_test.reset_counter"), nullptr);
  EXPECT_EQ(find_span(cleared, "obs_test.reset_span"), nullptr);
  EXPECT_TRUE(cleared.events.empty());

  // The registration survives: the same object keeps recording.
  counter.add(2);
  const obs::Snapshot after = obs::snapshot();
  const obs::CounterStat* stat = find_counter(after, "obs_test.reset_counter");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->value, 2u);
}

TEST_F(ObsTest, EventCapDropsTimelineEventsButNotAggregates) {
  obs::set_event_capacity(8);
  constexpr int kSpans = 100;
  for (int i = 0; i < kSpans; ++i) {
    obs::SpanTimer span("obs_test.capped");
  }
  const obs::Snapshot snapshot = obs::snapshot();
  const obs::SpanStat* stat = find_span(snapshot, "obs_test.capped");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, static_cast<std::uint64_t>(kSpans));
  EXPECT_LE(snapshot.events.size(), 8u);
  EXPECT_EQ(snapshot.events_dropped,
            static_cast<std::uint64_t>(kSpans) - snapshot.events.size());
}

TEST_F(ObsTest, TraceJsonRoundTripsThroughParser) {
  {
    obs::SpanTimer span("obs_test.trace_span", 42);
  }
  {
    obs::SpanTimer plain("obs_test.plain_span");
  }
  std::thread worker([] { obs::SpanTimer span("obs_test.thread_span"); });
  worker.join();

  const obs::Snapshot snapshot = obs::snapshot();
  const std::string json = obs::trace_json();
  const std::optional<JsonValue> parsed = JsonParser(json).parse();
  ASSERT_TRUE(parsed.has_value()) << json;
  ASSERT_EQ(parsed->kind, JsonValue::Kind::kObject);

  const JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

  std::size_t complete_events = 0;
  std::size_t thread_names = 0;
  bool saw_arg = false;
  std::vector<std::string> names;
  for (const JsonValue& event : events->array) {
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    const JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(event.find("pid"), nullptr);
    ASSERT_NE(event.find("tid"), nullptr);
    const JsonValue* name = event.find("name");
    ASSERT_NE(name, nullptr);
    if (ph->string == "M") {
      if (name->string == "thread_name") ++thread_names;
      continue;
    }
    ASSERT_EQ(ph->string, "X");
    ++complete_events;
    names.push_back(name->string);
    const JsonValue* ts = event.find("ts");
    const JsonValue* dur = event.find("dur");
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(dur, nullptr);
    EXPECT_EQ(ts->kind, JsonValue::Kind::kNumber);
    EXPECT_EQ(dur->kind, JsonValue::Kind::kNumber);
    EXPECT_GE(dur->number, 0.0);
    if (name->string == "obs_test.trace_span") {
      const JsonValue* args = event.find("args");
      ASSERT_NE(args, nullptr);
      const JsonValue* v = args->find("v");
      ASSERT_NE(v, nullptr);
      EXPECT_DOUBLE_EQ(v->number, 42.0);
      saw_arg = true;
    }
  }

  // Every recorded timeline event appears exactly once, both recording
  // threads have name metadata, and the span arg survived the round trip.
  EXPECT_EQ(complete_events, snapshot.events.size());
  EXPECT_GE(thread_names, 2u);
  EXPECT_TRUE(saw_arg);
  EXPECT_NE(std::find(names.begin(), names.end(), "obs_test.plain_span"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "obs_test.thread_span"),
            names.end());
}

TEST_F(ObsTest, StatsTableListsRecordedInstruments) {
  obs::Counter counter("obs_test.table_counter");
  counter.add(3);
  {
    obs::SpanTimer span("obs_test.table_span");
  }
  const std::string table = obs::stats_table();
  EXPECT_NE(table.find("obs_test.table_counter"), std::string::npos);
  EXPECT_NE(table.find("obs_test.table_span"), std::string::npos);
}

TEST_F(ObsTest, WriteTraceCreatesParsableFile) {
  {
    obs::SpanTimer span("obs_test.file_span");
  }
  const std::string path =
      ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(obs::write_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(f);
  std::remove(path.c_str());
  const std::optional<JsonValue> parsed = JsonParser(contents).parse();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NE(parsed->find("traceEvents"), nullptr);
}

}  // namespace
