// Tests for the agreement-rule layer: allowed values, validity and
// agreement violations reported by the rule checker, the min rule, and the
// MRV ablation knob of the search.

#include <gtest/gtest.h>

#include "core/agreement.h"
#include "core/async_complex.h"
#include "core/decision_search.h"
#include "core/pseudosphere.h"
#include "core/sync_complex.h"
#include "core/theorems.h"

namespace psph::core {
namespace {

struct Fixture {
  ViewRegistry views;
  topology::VertexArena arena;
};

TEST(AllowedValues, MatchInputsSeen) {
  Fixture fx;
  const topology::Simplex input =
      input_facet({10, 20, 30}, fx.views, fx.arena);
  const topology::SimplicialComplex a1 =
      async_round_complex(input, {3, 1, 1}, fx.views, fx.arena);
  for (topology::VertexId v : a1.vertex_ids()) {
    const auto allowed = allowed_values(v, fx.views, fx.arena);
    EXPECT_FALSE(allowed.empty());
    for (std::int64_t value : allowed) {
      EXPECT_TRUE(value == 10 || value == 20 || value == 30);
    }
    // A process always sees its own input.
    const std::int64_t own = 10 * (fx.arena.pid(v) + 1);
    EXPECT_TRUE(std::find(allowed.begin(), allowed.end(), own) !=
                allowed.end());
  }
}

TEST(RuleChecker, ReportsValidityViolation) {
  Fixture fx;
  const topology::Simplex input = input_facet({1, 2, 3}, fx.views, fx.arena);
  const topology::SimplicialComplex complex =
      sync_round_complex_for_failset(input, {}, fx.views, fx.arena);
  // A rule deciding a constant never seen by anyone.
  const DecisionRule bogus = [](StateId) { return std::int64_t{99}; };
  const RuleCheckResult result =
      check_decision_rule(complex, 1, bogus, fx.views, fx.arena);
  EXPECT_FALSE(result.ok);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, RuleViolation::Kind::validity);
}

TEST(RuleChecker, ReportsAgreementViolation) {
  Fixture fx;
  const topology::Simplex input = input_facet({1, 2, 3}, fx.views, fx.arena);
  const topology::SimplicialComplex complex =
      sync_round_complex_for_failset(input, {}, fx.views, fx.arena);
  // Everyone decides their own input: valid, but 3 distinct values on the
  // facet breaks consensus.
  const DecisionRule own = [&](StateId state) {
    // With full information after one failure-free round, the minimum of
    // the singleton "own input" is recoverable from the pid.
    return static_cast<std::int64_t>(fx.views.pid(state)) + 1;
  };
  const RuleCheckResult result =
      check_decision_rule(complex, 1, own, fx.views, fx.arena);
  EXPECT_FALSE(result.ok);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, RuleViolation::Kind::agreement);
  // But it is fine for 3-set agreement.
  EXPECT_TRUE(
      check_decision_rule(complex, 3, own, fx.views, fx.arena).ok);
}

TEST(RuleChecker, MinRulePassesOnFailureFreeRound) {
  Fixture fx;
  const topology::Simplex input = input_facet({4, 7, 9}, fx.views, fx.arena);
  const topology::SimplicialComplex complex =
      sync_round_complex_for_failset(input, {}, fx.views, fx.arena);
  const RuleCheckResult result = check_decision_rule(
      complex, 1, min_seen_rule(fx.views), fx.views, fx.arena);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.facets_checked, 1u);
  EXPECT_EQ(result.vertices_checked, 3u);
}

TEST(SearchAblation, FixedOrderAgreesWithMrv) {
  // Both orderings are complete searches; verdicts must match wherever the
  // fixed-order run finishes.
  for (const auto& [n1, f, k] :
       std::vector<std::array<int, 3>>{{2, 1, 1}, {3, 1, 2}}) {
    SearchOptions mrv;
    SearchOptions fixed;
    fixed.use_mrv = false;
    const AgreementCheck a = check_async_agreement(n1, f, k, 1, mrv);
    const AgreementCheck b = check_async_agreement(n1, f, k, 1, fixed);
    ASSERT_TRUE(a.search_exhausted);
    ASSERT_TRUE(b.search_exhausted);
    EXPECT_EQ(a.impossible, b.impossible);
    EXPECT_EQ(a.possible, b.possible);
  }
}

TEST(SearchAblation, MrvExploresNoMoreNodesOnImpossibleInstance) {
  SearchOptions mrv;
  SearchOptions fixed;
  fixed.use_mrv = false;
  const AgreementCheck a = check_async_agreement(3, 1, 1, 1, mrv);
  const AgreementCheck b = check_async_agreement(3, 1, 1, 1, fixed);
  ASSERT_TRUE(a.impossible);
  ASSERT_TRUE(b.impossible);
  EXPECT_LE(a.nodes, b.nodes);
}

}  // namespace
}  // namespace psph::core
