// CI smoke for psph_serve: launches the real daemon binary (argv[1]), runs
// one query of every kind against it, asserts each response is bit-identical
// to the batch compute path (the same check_*/reduced_homology calls the
// batch binaries make, via serve::compute_sealed), asks it to shut down, and
// requires a clean zero exit. Exits nonzero on the first mismatch.

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/queries.h"
#include "serve/wire.h"
#include "store/store.h"

namespace fs = std::filesystem;
using namespace psph;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "serve_smoke FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

serve::Json base_request(const std::string& kind, const std::string& model) {
  serve::Json request = serve::Client::request(0, kind);
  request.set("model", serve::Json::string(model));
  request.set("processes", serve::Json::integer(3));
  return request;
}

std::vector<serve::Json> smoke_queries() {
  std::vector<serve::Json> queries;
  {
    serve::Json q = base_request("connectivity", "async");
    q.set("f", serve::Json::integer(1));
    queries.push_back(q);
  }
  {
    serve::Json q = base_request("homology", "sync");
    q.set("k", serve::Json::integer(1)).set("max_dim", serve::Json::integer(2));
    queries.push_back(q);
  }
  {
    serve::Json q = base_request("complex_stats", "semisync");
    q.set("k", serve::Json::integer(1)).set("mu", serve::Json::integer(2));
    queries.push_back(q);
  }
  {
    serve::Json q = base_request("decide", "async");
    q.set("f", serve::Json::integer(1)).set("k", serve::Json::integer(1));
    queries.push_back(q);
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: serve_smoke <path-to-psph_serve>\n");
    return 2;
  }
  const std::string daemon = argv[1];
  const fs::path dir =
      fs::temp_directory_path() /
      ("psph_serve_smoke_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string socket = (dir / "serve.sock").string();
  const std::string store_dir = (dir / "store").string();

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl(daemon.c_str(), daemon.c_str(), ("--socket=" + socket).c_str(),
            ("--store-dir=" + store_dir).c_str(), nullptr);
    std::perror("execl");
    _exit(127);
  }

  // Wait for the daemon to bind its socket.
  std::unique_ptr<serve::Client> client;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (client == nullptr) {
    try {
      client = std::make_unique<serve::Client>(socket);
    } catch (const serve::WireError&) {
      if (std::chrono::steady_clock::now() > give_up) {
        std::fprintf(stderr, "serve_smoke FAIL: daemon never came up\n");
        ::kill(pid, SIGKILL);
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  check(client->call(serve::Client::request(1, "ping")).get("ok")->as_bool(),
        "ping");

  std::int64_t id = 100;
  for (serve::Json& request : smoke_queries()) {
    const serve::ParsedRequest parsed = serve::parse_request(request);
    check(parsed.query.has_value(), "smoke query must validate");
    if (!parsed.query.has_value()) continue;

    request.set("id", serve::Json::integer(++id));
    const serve::Json response = client->call(request);
    const std::string label = parsed.kind + "/" + parsed.query->model;
    check(response.get("ok")->as_bool(), label + " responds ok");
    if (!response.get("ok")->as_bool()) continue;

    // Batch path, in this process: same engines, same encoders.
    const std::vector<std::uint8_t> batch =
        serve::compute_sealed(*parsed.query);
    check(response.get("result")->dump() ==
              serve::render_result(*parsed.query, batch).dump(),
          label + " response matches the batch rendering");

    // And the daemon's store entry holds exactly the batch bytes.
    store::ResultStore mirror(store_dir);
    const auto stored = mirror.load(serve::cache_key(*parsed.query));
    check(stored.has_value(), label + " entry published");
    if (stored.has_value()) {
      check(*stored == batch, label + " stored bytes are bit-identical");
    }
  }

  check(client->call(serve::Client::request(999, "shutdown"))
            .get("ok")
            ->as_bool(),
        "shutdown acknowledged");
  client.reset();

  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    std::fprintf(stderr, "serve_smoke FAIL: waitpid\n");
    return 1;
  }
  check(WIFEXITED(status) && WEXITSTATUS(status) == 0,
        "daemon exited cleanly (status " + std::to_string(status) + ")");

  std::error_code ec;
  fs::remove_all(dir, ec);
  if (g_failures == 0) {
    std::printf("serve_smoke OK: 4 kinds bit-identical, clean shutdown\n");
    return 0;
  }
  return 1;
}
