// Tests for the indistinguishability-chain engine: similarity graphs and
// degree histograms (Section 1's "higher degrees of similarity"), and the
// chain-witness consensus impossibility proof, cross-checked against the
// exhaustive search on the same complexes.

#include <gtest/gtest.h>

#include "core/async_complex.h"
#include "core/chains.h"
#include "core/decision_search.h"
#include "core/pseudosphere.h"
#include "core/sync_complex.h"
#include "core/theorems.h"

namespace psph::core {
namespace {

struct Fixture {
  ViewRegistry views;
  topology::VertexArena arena;
};

TEST(SimilarityGraph, CountsSharedVertices) {
  topology::SimplicialComplex k;
  k.add_facet(topology::Simplex{0, 1, 2});
  k.add_facet(topology::Simplex{2, 3, 4});  // shares 1 vertex with first
  k.add_facet(topology::Simplex{5, 6});     // isolated
  const SimilarityGraph graph = similarity_graph(k);
  ASSERT_EQ(graph.facets.size(), 3u);
  // One pair with exactly one shared vertex.
  ASSERT_GE(graph.degree_histogram.size(), 2u);
  EXPECT_EQ(graph.degree_histogram[1], 1u);
  EXPECT_EQ(max_similarity_degree(k), 1u);
}

TEST(SimilarityGraph, HigherDegrees) {
  topology::SimplicialComplex k;
  k.add_facet(topology::Simplex{0, 1, 2});
  k.add_facet(topology::Simplex{1, 2, 3});  // shares an edge (2 vertices)
  EXPECT_EQ(max_similarity_degree(k), 2u);
}

TEST(SimilarityGraph, AdjacencySymmetric) {
  Fixture fx;
  const topology::Simplex input = rainbow_input(3, fx.views, fx.arena);
  const topology::SimplicialComplex a1 =
      async_round_complex(input, {3, 1, 1}, fx.views, fx.arena);
  const SimilarityGraph graph = similarity_graph(a1);
  for (std::size_t i = 0; i < graph.adjacency.size(); ++i) {
    for (std::size_t j : graph.adjacency[i]) {
      const auto& back = graph.adjacency[j];
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), i));
    }
  }
}

TEST(ChainWitness, FoundOnAsyncConsensusComplex) {
  // The one-round 1-resilient complex over binary inputs: a chain from the
  // all-0 execution to the all-1 execution exists, proving consensus
  // impossible — matching the exhaustive search.
  Fixture fx;
  const topology::SimplicialComplex inputs =
      input_complex(3, {0, 1}, fx.views, fx.arena);
  const topology::SimplicialComplex protocol =
      async_protocol_complex_over(inputs, {3, 1, 1}, fx.views, fx.arena);

  const auto witness = consensus_chain_witness(protocol, fx.views, fx.arena);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->low_value, 0);
  EXPECT_EQ(witness->high_value, 1);
  EXPECT_GE(witness->chain.size(), 2u);

  // Validate the witness: consecutive facets share a vertex, endpoints are
  // forced to distinct values.
  const SimilarityGraph graph = similarity_graph(protocol);
  for (std::size_t i = 1; i < witness->chain.size(); ++i) {
    const topology::Simplex& a = graph.facets[witness->chain[i - 1]];
    const topology::Simplex& b = graph.facets[witness->chain[i]];
    EXPECT_FALSE(a.intersect(b).empty()) << "link " << i;
  }

  // Cross-check with the search.
  const SearchResult search =
      search_decision_map(protocol, 1, fx.views, fx.arena);
  EXPECT_TRUE(search.exhausted);
  EXPECT_FALSE(search.decidable);
}

TEST(ChainWitness, FoundOnSyncOneRound) {
  Fixture fx;
  const topology::SimplicialComplex inputs =
      input_complex(3, {0, 1}, fx.views, fx.arena);
  const topology::SimplicialComplex protocol =
      sync_protocol_complex_over(inputs, {3, 1, 1, 1}, fx.views, fx.arena);
  const auto witness = consensus_chain_witness(protocol, fx.views, fx.arena);
  ASSERT_TRUE(witness.has_value());
}

TEST(ChainWitness, AbsentWhenConsensusSolvable) {
  // Two synchronous rounds with f = 1: consensus is solvable, so no chain
  // witness can exist (forced-0 and forced-1 facets lie in regions a
  // decision map separates — here they are in different components of the
  // forced relation; the BFS must fail).
  Fixture fx;
  const topology::SimplicialComplex inputs =
      input_complex(3, {0, 1}, fx.views, fx.arena);
  const topology::SimplicialComplex protocol =
      sync_protocol_complex_over(inputs, {3, 1, 1, 2}, fx.views, fx.arena);
  const auto witness = consensus_chain_witness(protocol, fx.views, fx.arena);
  EXPECT_FALSE(witness.has_value());
  const SearchResult search =
      search_decision_map(protocol, 1, fx.views, fx.arena);
  EXPECT_TRUE(search.decidable);
}

TEST(ChainWitness, AbsentWithoutForcedEndpoints) {
  // A single-input complex has one forced value only: no witness.
  Fixture fx;
  const topology::Simplex input = input_facet({0, 0, 0}, fx.views, fx.arena);
  const topology::SimplicialComplex protocol =
      async_round_complex(input, {3, 1, 1}, fx.views, fx.arena);
  EXPECT_FALSE(
      consensus_chain_witness(protocol, fx.views, fx.arena).has_value());
}

}  // namespace
}  // namespace psph::core
