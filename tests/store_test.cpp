// Robustness tests for the psph_store serialization layer and the
// content-addressed result store: exact round-trips (including BigInt
// torsion), loud rejection of truncated / corrupted / version-skewed
// envelopes, key derivation, and concurrent writers sharing one cache dir.

#include <gtest/gtest.h>

#include <sys/select.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pseudosphere.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "core/view.h"
#include "store/serialize.h"
#include "store/store.h"
#include "topology/homology.h"
#include "util/hash.h"

namespace psph {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("psph_store_test." + std::to_string(::getpid()) + "." +
             std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

// The three figure complexes from the paper (Figures 1-3), rebuilt the way
// the fig* bench binaries build them.
topology::SimplicialComplex figure1() {
  topology::VertexArena arena;
  return core::pseudosphere_uniform({0, 1, 2}, {0, 1}, arena);
}

topology::SimplicialComplex figure2() {
  topology::VertexArena arena;
  return core::pseudosphere({0, 1}, {{0, 1, 2}, {5, 6}}, arena);
}

topology::SimplicialComplex figure3() {
  core::ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  return core::sync_round_complex(input, {3, 1, 1, 1}, views, arena);
}

TEST(Serialize, PrimitiveRoundTrip) {
  store::ByteWriter out;
  out.u8(0xab);
  out.u16(0xbeef);
  out.u32(0xdeadbeefu);
  out.u64(0x0123456789abcdefULL);
  out.i32(-42);
  out.i64(-1234567890123456789LL);
  out.str("hello");
  store::ByteReader in(out.bytes());
  EXPECT_EQ(in.u8(), 0xab);
  EXPECT_EQ(in.u16(), 0xbeef);
  EXPECT_EQ(in.u32(), 0xdeadbeefu);
  EXPECT_EQ(in.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(in.i32(), -42);
  EXPECT_EQ(in.i64(), -1234567890123456789LL);
  EXPECT_EQ(in.str(), "hello");
  EXPECT_TRUE(in.done());
}

TEST(Serialize, BigIntRoundTripIsExact) {
  const std::vector<std::string> decimals{
      "0", "1", "-1", "4294967295", "4294967296", "-4294967296",
      "9223372036854775807", "-9223372036854775808",
      "123456789012345678901234567890123456789012345678901234567890",
      "-99999999999999999999999999999999999999999999999999"};
  for (const std::string& decimal : decimals) {
    const math::BigInt value(decimal);
    store::ByteWriter out;
    store::encode_bigint(out, value);
    store::ByteReader in(out.bytes());
    const math::BigInt back = store::decode_bigint(in);
    EXPECT_TRUE(in.done());
    EXPECT_EQ(back, value) << decimal;
    EXPECT_EQ(back.to_string(), decimal);
  }
}

TEST(Serialize, SimplexRoundTrip) {
  const topology::Simplex s{3, 1, 4, 15, 9, 2, 6};
  const topology::Simplex back =
      store::deserialize_simplex(store::serialize_simplex(s));
  EXPECT_EQ(back, s);
  const topology::Simplex empty;
  EXPECT_EQ(store::deserialize_simplex(store::serialize_simplex(empty)),
            empty);
}

TEST(Serialize, FigureComplexesRoundTrip) {
  for (const topology::SimplicialComplex& k :
       {figure1(), figure2(), figure3()}) {
    const std::vector<std::uint8_t> bytes = store::serialize_complex(k);
    const topology::SimplicialComplex back = store::deserialize_complex(bytes);
    EXPECT_EQ(back, k);
    EXPECT_EQ(back.facet_count(), k.facet_count());
    EXPECT_EQ(back.dimension(), k.dimension());
    // Canonical: re-serializing the decoded complex is byte-identical.
    EXPECT_EQ(store::serialize_complex(back), bytes);
  }
}

TEST(Serialize, HomologyReportRoundTripIncludingBigTorsion) {
  // A measured report from a real complex...
  const topology::HomologyReport measured = topology::reduced_homology(
      figure1(), {.max_dim = 2, .exact = true});
  const topology::HomologyReport back = store::deserialize_homology_report(
      store::serialize_homology_report(measured));
  EXPECT_EQ(back.nonempty, measured.nonempty);
  EXPECT_EQ(back.exact, measured.exact);
  EXPECT_EQ(back.reduced_betti, measured.reduced_betti);
  EXPECT_EQ(back.torsion, measured.torsion);

  // ...and a synthetic one whose torsion coefficients exceed any fixed
  // width, exercising the BigInt limb encoding.
  topology::HomologyReport synthetic;
  synthetic.nonempty = true;
  synthetic.exact = true;
  synthetic.reduced_betti = {0, 3, -1};
  synthetic.torsion = {
      {}, {"2", "2", "6"},
      {"340282366920938463463374607431768211457",
       "123456789012345678901234567890123456789012345678901234567890"}};
  const topology::HomologyReport synthetic_back =
      store::deserialize_homology_report(
          store::serialize_homology_report(synthetic));
  EXPECT_EQ(synthetic_back.reduced_betti, synthetic.reduced_betti);
  EXPECT_EQ(synthetic_back.torsion, synthetic.torsion);
}

TEST(Serialize, VerdictRoundTrips) {
  core::ConnectivityCheck check;
  check.expected = -1;
  check.measured = 2;
  check.satisfied = true;
  check.facet_count = 123456;
  check.vertex_count = 789;
  check.dimension = 4;
  const core::ConnectivityCheck check_back =
      store::deserialize_connectivity_check(
          store::serialize_connectivity_check(check));
  EXPECT_EQ(check_back.expected, check.expected);
  EXPECT_EQ(check_back.measured, check.measured);
  EXPECT_EQ(check_back.satisfied, check.satisfied);
  EXPECT_EQ(check_back.facet_count, check.facet_count);
  EXPECT_EQ(check_back.vertex_count, check.vertex_count);
  EXPECT_EQ(check_back.dimension, check.dimension);

  core::AgreementCheck verdict;
  verdict.impossible = true;
  verdict.search_exhausted = true;
  verdict.nodes = 987654321098ULL;
  verdict.protocol_facets = 42;
  verdict.protocol_vertices = 7;
  const core::AgreementCheck verdict_back =
      store::deserialize_agreement_check(
          store::serialize_agreement_check(verdict));
  EXPECT_EQ(verdict_back.impossible, verdict.impossible);
  EXPECT_EQ(verdict_back.possible, verdict.possible);
  EXPECT_EQ(verdict_back.search_exhausted, verdict.search_exhausted);
  EXPECT_EQ(verdict_back.nodes, verdict.nodes);
  EXPECT_EQ(verdict_back.protocol_facets, verdict.protocol_facets);
  EXPECT_EQ(verdict_back.protocol_vertices, verdict.protocol_vertices);
}

TEST(Serialize, RejectsTruncatedEnvelope) {
  const std::vector<std::uint8_t> bytes = store::serialize_complex(figure1());
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{15}, bytes.size() / 2,
        bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + keep);
    EXPECT_THROW(store::deserialize_complex(cut), store::SerializationError)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
}

TEST(Serialize, RejectsEveryFlippedByte) {
  const std::vector<std::uint8_t> bytes = store::serialize_simplex(
      topology::Simplex{1, 2, 3});
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> tampered = bytes;
    tampered[i] ^= 0x40;
    EXPECT_THROW(store::deserialize_simplex(tampered),
                 store::SerializationError)
        << "flip at byte " << i << " went undetected";
  }
}

TEST(Serialize, RejectsWrongVersionLoudly) {
  // Build an envelope that is valid in every way except its version field,
  // by resealing with a patched version and a recomputed checksum.
  std::vector<std::uint8_t> bytes = store::serialize_simplex(
      topology::Simplex{1, 2});
  bytes[4] = 0x63;  // version 99 (LE)
  bytes[5] = 0x00;
  const std::uint64_t checksum =
      util::hash_bytes(bytes.data() + 4, bytes.size() - 4 - 8);
  for (int b = 0; b < 8; ++b) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(checksum >> (8 * b));
  }
  try {
    store::deserialize_simplex(bytes);
    FAIL() << "version 99 envelope was accepted";
  } catch (const store::SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Serialize, RejectsKindMismatch) {
  const std::vector<std::uint8_t> bytes =
      store::serialize_simplex(topology::Simplex{1, 2});
  try {
    store::deserialize_complex(bytes);
    FAIL() << "simplex envelope decoded as a complex";
  } catch (const store::SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("kind"), std::string::npos);
  }
}

TEST(CacheKey, DistinguishesKindParamsAndComplex) {
  store::CacheKeyBuilder a("lemma12");
  a.param(3).param(3).param(1).param(1);
  store::CacheKeyBuilder same("lemma12");
  same.param(3).param(3).param(1).param(1);
  EXPECT_EQ(a.key().hex(), same.key().hex());
  EXPECT_EQ(a.key().hex().size(), 32u);

  store::CacheKeyBuilder other_kind("lemma16");
  other_kind.param(3).param(3).param(1).param(1);
  EXPECT_NE(a.key().hex(), other_kind.key().hex());

  store::CacheKeyBuilder other_params("lemma12");
  other_params.param(3).param(3).param(1).param(2);
  EXPECT_NE(a.key().hex(), other_params.key().hex());

  store::CacheKeyBuilder with_fig1("conn");
  with_fig1.complex(figure1());
  store::CacheKeyBuilder with_fig2("conn");
  with_fig2.complex(figure2());
  store::CacheKeyBuilder with_fig1_again("conn");
  with_fig1_again.complex(figure1());
  EXPECT_EQ(with_fig1.key().hex(), with_fig1_again.key().hex());
  EXPECT_NE(with_fig1.key().hex(), with_fig2.key().hex());
}

TEST(ResultStore, SaveLoadRoundTrip) {
  TempDir dir;
  store::ResultStore cache(dir.path());
  store::CacheKeyBuilder key("test/roundtrip");
  key.param(7);
  EXPECT_FALSE(cache.load(key).has_value());

  const std::vector<std::uint8_t> result =
      store::serialize_complex(figure3());
  cache.save(key, result);
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, result);
  EXPECT_EQ(store::deserialize_complex(*loaded), figure3());

  const store::StoreStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_GT(stats.bytes_written, 0u);

  // Fan-out layout: objects/ab/cd/<32 hex>.psph.
  const fs::path entry = cache.entry_path(key.key());
  EXPECT_TRUE(fs::exists(entry));
  EXPECT_EQ(entry.parent_path().filename().string(),
            key.key().hex().substr(2, 2));
  EXPECT_EQ(entry.parent_path().parent_path().filename().string(),
            key.key().hex().substr(0, 2));
}

TEST(ResultStore, CorruptAndTruncatedEntriesDegradeToMisses) {
  TempDir dir;
  store::ResultStore cache(dir.path());
  store::CacheKeyBuilder key("test/corrupt");
  cache.save(key, store::serialize_simplex(topology::Simplex{1, 2, 3}));
  const fs::path entry = cache.entry_path(key.key());

  // Flip a payload byte in place.
  {
    std::fstream file(entry, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(20);
    char byte = 0;
    file.seekg(20);
    file.get(byte);
    file.seekp(20);
    byte = static_cast<char>(byte ^ 0x10);
    file.put(byte);
  }
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt_entries, 1u);

  // Truncate the entry.
  cache.save(key, store::serialize_simplex(topology::Simplex{1, 2, 3}));
  ASSERT_TRUE(cache.load(key).has_value());
  fs::resize_file(entry, 10);
  EXPECT_FALSE(cache.load(key).has_value());

  // Replace with garbage that is not even an envelope.
  {
    std::ofstream file(entry, std::ios::binary | std::ios::trunc);
    file << "not a psph blob";
  }
  EXPECT_FALSE(cache.load(key).has_value());
}

TEST(ResultStore, ConcurrentWritersToOneCacheDir) {
  TempDir dir;
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dir, t] {
      store::ResultStore cache(dir.path());
      for (int i = 0; i < kKeysPerThread; ++i) {
        // Half the keys are shared across all threads (same payload), half
        // are private — both must publish atomically.
        const int owner = i % 2 == 0 ? -1 : t;
        store::CacheKeyBuilder key("test/concurrent");
        key.param(owner).param(i);
        store::ByteWriter payload;
        payload.i64(owner);
        payload.i64(i);
        cache.save(key, store::seal(store::PayloadKind::kRawBytes,
                                    payload.bytes()));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  store::ResultStore cache(dir.path());
  for (int t = -1; t < kThreads; ++t) {
    for (int i = 0; i < kKeysPerThread; ++i) {
      const bool shared = i % 2 == 0;
      if ((shared && t != -1) || (!shared && t == -1)) continue;
      store::CacheKeyBuilder key("test/concurrent");
      key.param(t).param(i);
      const auto loaded = cache.load(key);
      ASSERT_TRUE(loaded.has_value()) << "owner " << t << " index " << i;
      const std::vector<std::uint8_t> payload =
          store::unseal(*loaded, store::PayloadKind::kRawBytes);
      store::ByteReader in(payload);
      EXPECT_EQ(in.i64(), t);
      EXPECT_EQ(in.i64(), i);
    }
  }
  // No temp-file droppings left behind.
  EXPECT_TRUE(fs::is_empty(dir.path() / "tmp"));
}

// The publish step takes an advisory flock on <root>/lock. With the lock
// held by this process, a forked child's save must block at publish; after
// release it completes and the entry is valid. The assertions are one-sided
// so scheduler jitter can never produce a false failure: a slow child
// passes the "not yet" window trivially, and the final reads are blocking.
TEST(ResultStore, CrossProcessPublishLockSerializes) {
  TempDir dir;
  store::ResultStore parent_store(dir.path());  // creates root layout
  const std::shared_ptr<store::FsOps> fs = store::FsOps::real();
  const int lock_handle = fs->lock_file(dir.path() / "lock");

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: no gtest, no exceptions escaping, _exit only.
    ::close(pipe_fds[0]);
    int code = 0;
    try {
      store::ResultStore child_store(dir.path());
      store::CacheKeyBuilder key("test/flock");
      key.param(1);
      const char entered = 'a';
      (void)!::write(pipe_fds[1], &entered, 1);
      child_store.save(
          key, store::seal(store::PayloadKind::kRawBytes, {0x42}));
      const char done = 'b';
      (void)!::write(pipe_fds[1], &done, 1);
    } catch (...) {
      code = 1;
    }
    ::close(pipe_fds[1]);
    ::_exit(code);
  }
  ::close(pipe_fds[1]);

  char byte = 0;
  ASSERT_EQ(::read(pipe_fds[0], &byte, 1), 1);  // child reached save()
  EXPECT_EQ(byte, 'a');
  // While we hold the lock, "save done" must not arrive. Poll briefly;
  // seeing nothing is the pass condition, so a slow child cannot flake.
  ::timeval window{0, 200 * 1000};
  fd_set readable;
  FD_ZERO(&readable);
  FD_SET(pipe_fds[0], &readable);
  const int ready = ::select(pipe_fds[0] + 1, &readable, nullptr, nullptr,
                             &window);
  EXPECT_EQ(ready, 0) << "child published while the flock was held";

  fs->unlock_file(lock_handle);
  ASSERT_EQ(::read(pipe_fds[0], &byte, 1), 1);  // blocks until child saves
  EXPECT_EQ(byte, 'b');
  ::close(pipe_fds[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  store::CacheKeyBuilder key("test/flock");
  key.param(1);
  const auto loaded = parent_store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(store::unseal(*loaded, store::PayloadKind::kRawBytes),
            std::vector<std::uint8_t>{0x42});
}

// Two writer *processes* hammering one root: every entry must come back
// valid and the tmp dir clean — the cross-process analogue of the threaded
// ConcurrentWriters test above.
TEST(ResultStore, TwoProcessContention) {
  TempDir dir;
  constexpr int kProcs = 2;
  constexpr int kKeysPerProc = 24;
  std::vector<pid_t> children;
  for (int p = 0; p < kProcs; ++p) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      int code = 0;
      try {
        store::ResultStore cache(dir.path());
        for (int i = 0; i < kKeysPerProc; ++i) {
          // Even indices collide across processes (same key, same bytes);
          // odd ones are per-process.
          const bool shared = i % 2 == 0;
          store::CacheKeyBuilder key("test/two-process");
          key.param(shared ? -1 : p).param(i);
          store::ByteWriter payload;
          payload.i64(shared ? -1 : p);
          payload.i64(i);
          cache.save(key, store::seal(store::PayloadKind::kRawBytes,
                                      payload.bytes()));
        }
      } catch (...) {
        code = 1;
      }
      ::_exit(code);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  store::ResultStore cache(dir.path());
  for (int p = -1; p < kProcs; ++p) {
    for (int i = 0; i < kKeysPerProc; ++i) {
      const bool shared = i % 2 == 0;
      if ((shared && p != -1) || (!shared && p == -1)) continue;
      store::CacheKeyBuilder key("test/two-process");
      key.param(p).param(i);
      const auto loaded = cache.load(key);
      ASSERT_TRUE(loaded.has_value()) << "proc " << p << " index " << i;
      const std::vector<std::uint8_t> payload =
          store::unseal(*loaded, store::PayloadKind::kRawBytes);
      store::ByteReader in(payload);
      EXPECT_EQ(in.i64(), p);
      EXPECT_EQ(in.i64(), i);
    }
  }
  EXPECT_TRUE(fs::is_empty(dir.path() / "tmp"));
}

}  // namespace
}  // namespace psph
