// Fault-injection tests: storage failures against the real ResultStore and
// sweep-engine logic. The property throughout: a fault during save degrades
// to a recompute on the next run, a fault during load degrades to a miss —
// the store never surfaces plausible-but-wrong bytes, and a faulted sweep
// still returns every result.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/fault_fs.h"
#include "store/serialize.h"
#include "store/store.h"
#include "sweep/sweep.h"

namespace psph {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("psph_fault_test." + std::to_string(::getpid()) + "." +
             std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

store::CacheKeyBuilder test_key(std::int64_t tag) {
  store::CacheKeyBuilder key("fault_test/entry");
  key.param(tag);
  return key;
}

std::vector<std::uint8_t> test_bytes(std::int64_t tag) {
  store::ByteWriter out;
  out.i64(tag * 1000 + 7);
  return store::seal(store::PayloadKind::kRawBytes, out.bytes());
}

// ------------------------------------------------- faults during save -----

TEST(StoreFaults, FailedWriteThrowsAndLeavesNoEntry) {
  TempDir dir;
  auto faulty =
      std::make_shared<check::FaultyFsOps>(check::FaultPlan{.fail_writes = {0}});
  store::ResultStore store(dir.str(), faulty);
  EXPECT_THROW(store.save(test_key(1), test_bytes(1)), std::runtime_error);
  EXPECT_EQ(faulty->faults_injected(), 1u);
  EXPECT_FALSE(store.load(test_key(1)).has_value());
  EXPECT_FALSE(fs::exists(store.entry_path(test_key(1).key())));
}

TEST(StoreFaults, FailedRenameThrowsAndLeavesNoEntry) {
  TempDir dir;
  auto faulty = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.fail_renames = {0}});
  store::ResultStore store(dir.str(), faulty);
  EXPECT_THROW(store.save(test_key(2), test_bytes(2)), std::runtime_error);
  // The temp file was written but never published.
  EXPECT_FALSE(fs::exists(store.entry_path(test_key(2).key())));
  EXPECT_FALSE(store.load(test_key(2)).has_value());
  // A later save of the same key succeeds and round-trips.
  store.save(test_key(2), test_bytes(2));
  EXPECT_EQ(store.load(test_key(2)), test_bytes(2));
}

TEST(StoreFaults, FailedDirSyncThrowsButNeverCorrupts) {
  TempDir dir;
  auto faulty = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.fail_dir_syncs = {0}});
  store::ResultStore store(dir.str(), faulty);
  // The entry was renamed into place before the durability barrier failed,
  // so the save reports failure while a *valid* entry may exist — the one
  // acceptable outcome. Wrong bytes are not.
  EXPECT_THROW(store.save(test_key(3), test_bytes(3)), std::runtime_error);
  const auto loaded = store.load(test_key(3));
  if (loaded.has_value()) EXPECT_EQ(*loaded, test_bytes(3));
}

TEST(StoreFaults, ShortWriteDegradesToMissNotWrongBytes) {
  TempDir dir;
  auto faulty = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.short_writes = {0}});
  store::ResultStore store(dir.str(), faulty);
  // The torn write reports success, so the save "succeeds" and publishes a
  // truncated entry — the worst honest-but-failing disk behavior.
  store.save(test_key(4), test_bytes(4));
  EXPECT_TRUE(fs::exists(store.entry_path(test_key(4).key())));
  EXPECT_FALSE(store.load(test_key(4)).has_value());
  EXPECT_EQ(store.stats().corrupt_entries, 1u);
  // A fresh store on the real filesystem sees the same torn file: miss.
  store::ResultStore clean(dir.str());
  EXPECT_FALSE(clean.load(test_key(4)).has_value());
  // Re-saving heals the entry.
  clean.save(test_key(4), test_bytes(4));
  EXPECT_EQ(clean.load(test_key(4)), test_bytes(4));
}

// ------------------------------------------------- faults during load -----

TEST(StoreFaults, BitRotReadDegradesToMiss) {
  TempDir dir;
  {
    store::ResultStore writer(dir.str());
    writer.save(test_key(5), test_bytes(5));
  }
  auto faulty = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.corrupt_reads = {0}});
  store::ResultStore store(dir.str(), faulty);
  EXPECT_FALSE(store.load(test_key(5)).has_value());
  EXPECT_EQ(store.stats().corrupt_entries, 1u);
  // The rot was transient (in the read path, not on disk): the next read is
  // clean and returns the original bytes.
  EXPECT_EQ(store.load(test_key(5)), test_bytes(5));
}

TEST(StoreFaults, TruncatedReadDegradesToMiss) {
  TempDir dir;
  {
    store::ResultStore writer(dir.str());
    writer.save(test_key(6), test_bytes(6));
  }
  auto faulty = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.truncate_reads = {0}});
  store::ResultStore store(dir.str(), faulty);
  EXPECT_FALSE(store.load(test_key(6)).has_value());
  EXPECT_EQ(store.load(test_key(6)), test_bytes(6));
}

TEST(StoreFaults, EveryReadFaultYieldsMissOrExactBytes) {
  TempDir dir;
  {
    store::ResultStore writer(dir.str());
    writer.save(test_key(7), test_bytes(7));
  }
  // Whatever single read fault fires, a load returns nullopt or the exact
  // saved bytes — never a third possibility.
  for (int mode = 0; mode < 2; ++mode) {
    check::FaultPlan plan;
    if (mode == 0) {
      plan.corrupt_reads = {0, 1, 2};
    } else {
      plan.truncate_reads = {0, 1, 2};
    }
    store::ResultStore store(dir.str(),
                             std::make_shared<check::FaultyFsOps>(plan));
    for (int attempt = 0; attempt < 4; ++attempt) {
      const auto loaded = store.load(test_key(7));
      if (loaded.has_value()) EXPECT_EQ(*loaded, test_bytes(7));
    }
  }
}

// ------------------------------------------------- faults during sweeps ---

std::vector<sweep::JobSpec> grid_jobs(int count) {
  std::vector<sweep::JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    jobs.push_back({"fault_test/square", {i}, {}});
  }
  return jobs;
}

std::vector<std::uint8_t> square_job(const sweep::JobSpec& spec,
                                     std::size_t /*index*/) {
  store::ByteWriter out;
  out.i64(spec.params[0] * spec.params[0]);
  return store::seal(store::PayloadKind::kRawBytes, out.bytes());
}

std::int64_t unseal_i64(const std::vector<std::uint8_t>& bytes) {
  const std::vector<std::uint8_t> payload =
      store::unseal(bytes, store::PayloadKind::kRawBytes);
  store::ByteReader in(payload);
  const std::int64_t value = in.i64();
  in.expect_done("fault_test payload");
  return value;
}

TEST(SweepFaults, FailedSavesAreCountedAndResultsStillReturned) {
  TempDir dir;
  const std::vector<sweep::JobSpec> jobs = grid_jobs(5);

  // Each save performs exactly one rename; failing renames 0 and 1 loses
  // exactly two entries, whichever jobs they belong to.
  sweep::SweepOptions options;
  options.cache_dir = dir.str();
  options.fs = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.fail_renames = {0, 1}});
  sweep::SweepEngine faulted(options);
  const auto results = faulted.run(jobs, square_job);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(unseal_i64(results[i]),
              static_cast<std::int64_t>(i) * static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(faulted.stats().computed, 5u);
  EXPECT_EQ(faulted.stats().cache_hits, 0u);
  EXPECT_EQ(faulted.stats().save_failures, 2u);

  // A clean re-run recomputes only the two lost jobs and returns
  // byte-identical results.
  sweep::SweepEngine resumed({.cache_dir = dir.str()});
  const auto again = resumed.run(jobs, square_job);
  EXPECT_EQ(again, results);
  EXPECT_EQ(resumed.stats().cache_hits, 3u);
  EXPECT_EQ(resumed.stats().computed, 2u);
  EXPECT_EQ(resumed.stats().save_failures, 0u);
}

TEST(SweepFaults, TornEntriesRecomputeInsteadOfPoisoningResults) {
  TempDir dir;
  const std::vector<sweep::JobSpec> jobs = grid_jobs(4);

  sweep::SweepOptions options;
  options.cache_dir = dir.str();
  options.fs = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.short_writes = {0}});
  sweep::SweepEngine torn(options);
  const auto results = torn.run(jobs, square_job);
  // The torn save *looked* successful, so the engine counts no failure —
  // the defense is on the load side.
  EXPECT_EQ(torn.stats().computed, 4u);

  std::atomic<int> recomputed{0};
  sweep::SweepEngine rerun({.cache_dir = dir.str()});
  const auto again =
      rerun.run(jobs, [&recomputed](const sweep::JobSpec& spec, std::size_t i) {
        ++recomputed;
        return square_job(spec, i);
      });
  EXPECT_EQ(again, results);
  // Exactly the torn entry misses (degraded, not served wrong) and is
  // recomputed; the other three hit.
  EXPECT_EQ(recomputed.load(), 1);
  EXPECT_EQ(rerun.stats().cache_hits, 3u);
  EXPECT_EQ(rerun.stats().computed, 1u);
}

}  // namespace
}  // namespace psph
