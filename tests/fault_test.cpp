// Fault-injection tests: storage failures against the real ResultStore and
// sweep-engine logic. The property throughout: a fault during save degrades
// to a recompute on the next run, a fault during load degrades to a miss —
// the store never surfaces plausible-but-wrong bytes, and a faulted sweep
// still returns every result.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/fault_fs.h"
#include "solve/decide.h"
#include "store/serialize.h"
#include "store/store.h"
#include "sweep/sweep.h"

namespace psph {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("psph_fault_test." + std::to_string(::getpid()) + "." +
             std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

store::CacheKeyBuilder test_key(std::int64_t tag) {
  store::CacheKeyBuilder key("fault_test/entry");
  key.param(tag);
  return key;
}

std::vector<std::uint8_t> test_bytes(std::int64_t tag) {
  store::ByteWriter out;
  out.i64(tag * 1000 + 7);
  return store::seal(store::PayloadKind::kRawBytes, out.bytes());
}

// ------------------------------------------------- faults during save -----

TEST(StoreFaults, FailedWriteThrowsAndLeavesNoEntry) {
  TempDir dir;
  auto faulty =
      std::make_shared<check::FaultyFsOps>(check::FaultPlan{.fail_writes = {0}});
  store::ResultStore store(dir.str(), faulty);
  EXPECT_THROW(store.save(test_key(1), test_bytes(1)), std::runtime_error);
  EXPECT_EQ(faulty->faults_injected(), 1u);
  EXPECT_FALSE(store.load(test_key(1)).has_value());
  EXPECT_FALSE(fs::exists(store.entry_path(test_key(1).key())));
}

TEST(StoreFaults, FailedRenameThrowsAndLeavesNoEntry) {
  TempDir dir;
  auto faulty = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.fail_renames = {0}});
  store::ResultStore store(dir.str(), faulty);
  EXPECT_THROW(store.save(test_key(2), test_bytes(2)), std::runtime_error);
  // The temp file was written but never published.
  EXPECT_FALSE(fs::exists(store.entry_path(test_key(2).key())));
  EXPECT_FALSE(store.load(test_key(2)).has_value());
  // A later save of the same key succeeds and round-trips.
  store.save(test_key(2), test_bytes(2));
  EXPECT_EQ(store.load(test_key(2)), test_bytes(2));
}

TEST(StoreFaults, FailedDirSyncThrowsButNeverCorrupts) {
  TempDir dir;
  auto faulty = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.fail_dir_syncs = {0}});
  store::ResultStore store(dir.str(), faulty);
  // The entry was renamed into place before the durability barrier failed,
  // so the save reports failure while a *valid* entry may exist — the one
  // acceptable outcome. Wrong bytes are not.
  EXPECT_THROW(store.save(test_key(3), test_bytes(3)), std::runtime_error);
  const auto loaded = store.load(test_key(3));
  if (loaded.has_value()) EXPECT_EQ(*loaded, test_bytes(3));
}

TEST(StoreFaults, ShortWriteDegradesToMissNotWrongBytes) {
  TempDir dir;
  auto faulty = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.short_writes = {0}});
  store::ResultStore store(dir.str(), faulty);
  // The torn write reports success, so the save "succeeds" and publishes a
  // truncated entry — the worst honest-but-failing disk behavior.
  store.save(test_key(4), test_bytes(4));
  EXPECT_TRUE(fs::exists(store.entry_path(test_key(4).key())));
  EXPECT_FALSE(store.load(test_key(4)).has_value());
  EXPECT_EQ(store.stats().corrupt_entries, 1u);
  // A fresh store on the real filesystem sees the same torn file: miss.
  store::ResultStore clean(dir.str());
  EXPECT_FALSE(clean.load(test_key(4)).has_value());
  // Re-saving heals the entry.
  clean.save(test_key(4), test_bytes(4));
  EXPECT_EQ(clean.load(test_key(4)), test_bytes(4));
}

// ------------------------------------------------- faults during load -----

TEST(StoreFaults, BitRotReadDegradesToMiss) {
  TempDir dir;
  {
    store::ResultStore writer(dir.str());
    writer.save(test_key(5), test_bytes(5));
  }
  auto faulty = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.corrupt_reads = {0}});
  store::ResultStore store(dir.str(), faulty);
  EXPECT_FALSE(store.load(test_key(5)).has_value());
  EXPECT_EQ(store.stats().corrupt_entries, 1u);
  // The rot was transient (in the read path, not on disk): the next read is
  // clean and returns the original bytes.
  EXPECT_EQ(store.load(test_key(5)), test_bytes(5));
}

TEST(StoreFaults, TruncatedReadDegradesToMiss) {
  TempDir dir;
  {
    store::ResultStore writer(dir.str());
    writer.save(test_key(6), test_bytes(6));
  }
  auto faulty = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.truncate_reads = {0}});
  store::ResultStore store(dir.str(), faulty);
  EXPECT_FALSE(store.load(test_key(6)).has_value());
  EXPECT_EQ(store.load(test_key(6)), test_bytes(6));
}

TEST(StoreFaults, EveryReadFaultYieldsMissOrExactBytes) {
  TempDir dir;
  {
    store::ResultStore writer(dir.str());
    writer.save(test_key(7), test_bytes(7));
  }
  // Whatever single read fault fires, a load returns nullopt or the exact
  // saved bytes — never a third possibility.
  for (int mode = 0; mode < 2; ++mode) {
    check::FaultPlan plan;
    if (mode == 0) {
      plan.corrupt_reads = {0, 1, 2};
    } else {
      plan.truncate_reads = {0, 1, 2};
    }
    store::ResultStore store(dir.str(),
                             std::make_shared<check::FaultyFsOps>(plan));
    for (int attempt = 0; attempt < 4; ++attempt) {
      const auto loaded = store.load(test_key(7));
      if (loaded.has_value()) EXPECT_EQ(*loaded, test_bytes(7));
    }
  }
}

// ------------------------------------------------- faults during sweeps ---

std::vector<sweep::JobSpec> grid_jobs(int count) {
  std::vector<sweep::JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    jobs.push_back({"fault_test/square", {i}, {}});
  }
  return jobs;
}

std::vector<std::uint8_t> square_job(const sweep::JobSpec& spec,
                                     std::size_t /*index*/) {
  store::ByteWriter out;
  out.i64(spec.params[0] * spec.params[0]);
  return store::seal(store::PayloadKind::kRawBytes, out.bytes());
}

std::int64_t unseal_i64(const std::vector<std::uint8_t>& bytes) {
  const std::vector<std::uint8_t> payload =
      store::unseal(bytes, store::PayloadKind::kRawBytes);
  store::ByteReader in(payload);
  const std::int64_t value = in.i64();
  in.expect_done("fault_test payload");
  return value;
}

TEST(SweepFaults, FailedSavesAreCountedAndResultsStillReturned) {
  TempDir dir;
  const std::vector<sweep::JobSpec> jobs = grid_jobs(5);

  // Each save performs exactly one rename; failing renames 0 and 1 loses
  // exactly two entries, whichever jobs they belong to.
  sweep::SweepOptions options;
  options.cache_dir = dir.str();
  options.fs = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.fail_renames = {0, 1}});
  sweep::SweepEngine faulted(options);
  const auto results = faulted.run(jobs, square_job);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(unseal_i64(results[i]),
              static_cast<std::int64_t>(i) * static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(faulted.stats().computed, 5u);
  EXPECT_EQ(faulted.stats().cache_hits, 0u);
  EXPECT_EQ(faulted.stats().save_failures, 2u);

  // A clean re-run recomputes only the two lost jobs and returns
  // byte-identical results.
  sweep::SweepEngine resumed({.cache_dir = dir.str()});
  const auto again = resumed.run(jobs, square_job);
  EXPECT_EQ(again, results);
  EXPECT_EQ(resumed.stats().cache_hits, 3u);
  EXPECT_EQ(resumed.stats().computed, 2u);
  EXPECT_EQ(resumed.stats().save_failures, 0u);
}

TEST(SweepFaults, TornEntriesRecomputeInsteadOfPoisoningResults) {
  TempDir dir;
  const std::vector<sweep::JobSpec> jobs = grid_jobs(4);

  sweep::SweepOptions options;
  options.cache_dir = dir.str();
  options.fs = std::make_shared<check::FaultyFsOps>(
      check::FaultPlan{.short_writes = {0}});
  sweep::SweepEngine torn(options);
  const auto results = torn.run(jobs, square_job);
  // The torn save *looked* successful, so the engine counts no failure —
  // the defense is on the load side.
  EXPECT_EQ(torn.stats().computed, 4u);

  std::atomic<int> recomputed{0};
  sweep::SweepEngine rerun({.cache_dir = dir.str()});
  const auto again =
      rerun.run(jobs, [&recomputed](const sweep::JobSpec& spec, std::size_t i) {
        ++recomputed;
        return square_job(spec, i);
      });
  EXPECT_EQ(again, results);
  // Exactly the torn entry misses (degraded, not served wrong) and is
  // recomputed; the other three hit.
  EXPECT_EQ(recomputed.load(), 1);
  EXPECT_EQ(rerun.stats().cache_hits, 3u);
  EXPECT_EQ(rerun.stats().computed, 1u);
}

// --------------------------------------------- decision-record faults -----
//
// The solvability engine memoizes decided verdicts as sealed kDecision
// entries (src/solve/decide). The store-level property specializes here to:
// a damaged or aliased cached verdict degrades to a miss plus recompute —
// a decide() with a store NEVER returns a different answer than one
// without.

store::DecisionRecord sample_decision() {
  store::DecisionRecord record;
  record.model = "async";
  record.processes = 3;
  record.f = 1;
  record.k = 2;
  record.mu = 0;
  record.rounds = 1;
  record.solvable = true;
  record.exhausted = true;
  record.protocol_facets = 12;
  record.protocol_vertices = 9;
  record.witness = {{4, 0}, {7, 1}, {9, 2}};
  return record;
}

TEST(DecisionFaults, SealedRecordRoundTripsExactly) {
  const store::DecisionRecord record = sample_decision();
  const std::vector<std::uint8_t> bytes = store::serialize_decision(record);
  EXPECT_EQ(store::deserialize_decision(bytes), record);
  // Unsolvable records carry no witness and round-trip too.
  store::DecisionRecord unsat = sample_decision();
  unsat.solvable = false;
  unsat.witness.clear();
  EXPECT_EQ(store::deserialize_decision(store::serialize_decision(unsat)),
            unsat);
}

TEST(DecisionFaults, EveryTruncationIsRejectedNeverMisread) {
  const std::vector<std::uint8_t> bytes =
      store::serialize_decision(sample_decision());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(len));
    EXPECT_THROW(store::deserialize_decision(cut), store::SerializationError)
        << "truncation to " << len << " bytes decoded";
  }
}

TEST(DecisionFaults, EverySingleByteFlipIsRejectedOrHarmless) {
  // The sealed envelope checksums its payload, so any one-byte flip either
  // fails to decode (the expected outcome) or — if it lands in framing that
  // re-validates, which does not happen today — decodes to the original.
  const store::DecisionRecord record = sample_decision();
  const std::vector<std::uint8_t> bytes = store::serialize_decision(record);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> evil = bytes;
    evil[i] ^= 0x40;
    try {
      EXPECT_EQ(store::deserialize_decision(evil), record)
          << "flip at byte " << i << " decoded to a DIFFERENT record";
    } catch (const store::SerializationError&) {
      // Rejected: the safe outcome.
    }
  }
}

TEST(DecisionFaults, TamperedCacheEntryRecomputesNeverLies) {
  TempDir dir;
  store::ResultStore store(dir.str());
  const solve::DecideRequest request{solve::Model::kAsync, 3, 1, 2, 0, 1};

  const solve::DecideResult first = solve::decide(request, {}, &store);
  ASSERT_FALSE(first.cache_hit);
  ASSERT_TRUE(first.record.exhausted);

  // Corrupt the published entry on disk (flip one payload byte).
  const std::string path =
      store.entry_path(solve::decide_cache_key(solve::normalize(request)).key());
  ASSERT_TRUE(fs::exists(path));
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    ASSERT_GT(size, 16);
    file.seekp(size / 2);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }

  // The tampered entry degrades to a miss; the recomputed verdict matches
  // the original and re-heals the cache.
  const solve::DecideResult second = solve::decide(request, {}, &store);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(second.record, first.record);
  const solve::DecideResult third = solve::decide(request, {}, &store);
  EXPECT_TRUE(third.cache_hit);
  EXPECT_EQ(third.record, first.record);
}

TEST(DecisionFaults, AliasedEntryWithWrongParametersIsIgnored) {
  // A decodable record for DIFFERENT parameters planted under this query's
  // key (a key collision, or a buggy writer) must not satisfy the query:
  // decide() re-validates the loaded record against the request.
  TempDir dir;
  store::ResultStore store(dir.str());
  const solve::DecideRequest request{solve::Model::kAsync, 3, 1, 2, 0, 1};

  store::DecisionRecord alien = sample_decision();
  alien.k = 1;           // claims to answer a different question
  alien.solvable = false;
  alien.witness.clear();
  store.save(solve::decide_cache_key(solve::normalize(request)),
             store::serialize_decision(alien));

  const solve::DecideResult result = solve::decide(request, {}, &store);
  EXPECT_FALSE(result.cache_hit);
  EXPECT_TRUE(result.record.exhausted);
  // (3 processes, f=1, k=2, 1 round) is solvable — the planted "unsolvable"
  // answer for k=1 must not leak through.
  EXPECT_TRUE(result.record.solvable);
}

}  // namespace
}  // namespace psph
