// Cross-module property tests: invariants that tie independent engines
// together (collapse vs homology, components vs Betti, homology GF(p) vs
// exact SNF, boundary-squared-is-zero, complex algebra laws) over
// randomized inputs.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "math/smith.h"
#include "solve/decide.h"
#include "solve/engine.h"
#include "store/serialize.h"
#include "topology/collapse.h"
#include "topology/components.h"
#include "topology/complex.h"
#include "topology/homology.h"
#include "topology/operations.h"
#include "util/random.h"

namespace psph::topology {
namespace {

/// Seed for the randomized sweeps: PSPH_TEST_SEED overrides the per-test
/// fallback, so CI can re-run the whole property suite on a second stream
/// without a rebuild. Failures print the seed that produced them.
std::uint64_t test_seed(std::uint64_t fallback) {
  const char* raw = std::getenv("PSPH_TEST_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return parsed;
}

std::vector<Simplex> random_facets(util::Rng& rng, int vertices, int facets,
                                   int max_dim) {
  std::vector<Simplex> out;
  for (int i = 0; i < facets; ++i) {
    const int size = 1 + static_cast<int>(rng.next_below(
                             static_cast<std::uint64_t>(max_dim + 1)));
    const auto ids = rng.sample_without_replacement(vertices, size);
    std::vector<VertexId> vs;
    for (int id : ids) vs.push_back(static_cast<VertexId>(id));
    out.emplace_back(std::move(vs));
  }
  return out;
}

SimplicialComplex random_complex(util::Rng& rng, int vertices, int facets,
                                 int max_dim) {
  SimplicialComplex k;
  for (Simplex& s : random_facets(rng, vertices, facets, max_dim)) {
    k.add_facet(std::move(s));
  }
  return k;
}

TEST(Property, CollapsibleImpliesAcyclic) {
  // Greedy collapse to a point certifies contractibility, which implies
  // vanishing reduced homology — the two engines must agree.
  util::Rng rng(7001);
  int collapsed = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const SimplicialComplex k = random_complex(rng, 7, 6, 3);
    if (k.empty()) continue;
    if (!collapses_to_point(k)) continue;
    ++collapsed;
    const HomologyReport h = reduced_homology(k, {.max_dim = 3});
    for (long long betti : h.reduced_betti) {
      EXPECT_EQ(betti, 0) << "trial " << trial;
    }
  }
  EXPECT_GT(collapsed, 5);  // the sweep must actually exercise the claim
}

TEST(Property, BoundaryComposedWithBoundaryIsZero) {
  // ∂_{d} ∘ ∂_{d+1} = 0, the defining identity of a chain complex.
  util::Rng rng(7003);
  for (int trial = 0; trial < 15; ++trial) {
    const SimplicialComplex k = random_complex(rng, 8, 8, 3);
    if (k.dimension() < 1) continue;
    for (int d = 1; d <= k.dimension(); ++d) {
      const math::SparseMatrix lower = boundary_matrix(k, d - 1);
      const math::SparseMatrix upper = boundary_matrix(k, d);
      // Multiply lower * upper entry-wise (small matrices) and confirm the
      // product vanishes.
      for (std::size_t c = 0; c < upper.cols(); ++c) {
        for (std::size_t r = 0; r < lower.rows(); ++r) {
          std::int64_t sum = 0;
          for (std::size_t mid = 0; mid < upper.rows(); ++mid) {
            sum += lower.get(r, mid) * upper.get(mid, c);
          }
          EXPECT_EQ(sum, 0) << "d=" << d;
        }
      }
    }
  }
}

TEST(Property, GfpAndExactHomologyAgreeWithoutTorsion) {
  util::Rng rng(7005);
  for (int trial = 0; trial < 15; ++trial) {
    const SimplicialComplex k = random_complex(rng, 6, 6, 2);
    if (k.empty()) continue;
    const HomologyReport fast = reduced_homology(k, {.max_dim = 2});
    const HomologyReport exact =
        reduced_homology(k, {.max_dim = 2, .exact = true});
    EXPECT_EQ(fast.reduced_betti, exact.reduced_betti) << "trial " << trial;
  }
}

TEST(Property, UnionIsAssociativeAndCommutative) {
  util::Rng rng(7007);
  for (int trial = 0; trial < 20; ++trial) {
    const SimplicialComplex a = random_complex(rng, 6, 4, 2);
    const SimplicialComplex b = random_complex(rng, 6, 4, 2);
    const SimplicialComplex c = random_complex(rng, 6, 4, 2);
    EXPECT_EQ(union_of(a, b), union_of(b, a));
    EXPECT_EQ(union_of(union_of(a, b), c), union_of(a, union_of(b, c)));
  }
}

TEST(Property, IntersectionDistributesOverSubcomplexes) {
  util::Rng rng(7011);
  for (int trial = 0; trial < 20; ++trial) {
    const SimplicialComplex a = random_complex(rng, 6, 5, 2);
    const SimplicialComplex b = random_complex(rng, 6, 5, 2);
    // (A ∩ B) ⊆ A, and A ∩ A = A.
    EXPECT_TRUE(intersection_of(a, b).is_subcomplex_of(a));
    EXPECT_EQ(intersection_of(a, a), a);
    // Monotonicity: A ∩ B ⊆ A ∪ B.
    EXPECT_TRUE(intersection_of(a, b).is_subcomplex_of(union_of(a, b)));
  }
}

TEST(Property, SkeletonIdempotentAndMonotone) {
  util::Rng rng(7013);
  for (int trial = 0; trial < 20; ++trial) {
    const SimplicialComplex k = random_complex(rng, 7, 6, 3);
    for (int d = 0; d <= 3; ++d) {
      const SimplicialComplex skel = skeleton(k, d);
      EXPECT_LE(skel.dimension(), d);
      EXPECT_EQ(skeleton(skel, d), skel);
      EXPECT_TRUE(skel.is_subcomplex_of(k));
    }
  }
}

// ---- Differential homology suite ----
//
// One generator, three independent oracles per case:
//   1. bulk add_facets == incremental add_facet (two insertion paths, one
//      complex),
//   2. χ from the f-vector == 1 + Σ (-1)^d β̃_d over GF(2) and GF(3) (the
//      alternating-sum identity holds over every field, torsion or not),
//   3. universal coefficients: β̃_d(GF(q)) = β̃_d(Z) + t_q(d) + t_q(d-1),
//      where t_q(d) counts torsion coefficients of H̃_d divisible by q —
//      ties the GF(p) elimination engine to the exact SNF engine including
//      torsion, not just in torsion-free cases.
//
// 200 seed-reproducible cases; override the stream with PSPH_TEST_SEED.

/// True if the decimal string is divisible by q ∈ {2, 3} (torsion
/// coefficients are reported as decimal strings of arbitrary size).
bool decimal_divisible_by(const std::string& decimal, int q) {
  if (q == 2) {
    return ((decimal.back() - '0') % 2) == 0;
  }
  int digit_sum = 0;
  for (char c : decimal) digit_sum += c - '0';
  return digit_sum % 3 == 0;
}

TEST(PropertyDifferential, HomologyAgreesAcrossEnginesAndFields) {
  const std::uint64_t seed = test_seed(20260805);
  util::Rng rng(seed);
  constexpr int kCases = 200;
  int nonempty_cases = 0;
  for (int trial = 0; trial < kCases; ++trial) {
    const int vertices = 4 + static_cast<int>(rng.next_below(5));
    const int facets = 1 + static_cast<int>(rng.next_below(10));
    const int max_dim = 1 + static_cast<int>(rng.next_below(3));
    const std::vector<Simplex> facet_list =
        random_facets(rng, vertices, facets, max_dim);

    // (1) Two insertion paths must produce the same complex.
    SimplicialComplex incremental;
    for (const Simplex& s : facet_list) incremental.add_facet(s);
    SimplicialComplex bulk;
    bulk.add_facets(facet_list);
    ASSERT_EQ(incremental, bulk)
        << "add_facets != add_facet; seed=" << seed << " trial=" << trial;

    const SimplicialComplex& k = incremental;
    if (k.empty()) continue;
    ++nonempty_cases;
    const int top = k.dimension();

    const HomologyReport exact =
        reduced_homology(k, {.max_dim = top, .exact = true});
    const HomologyReport gf2 = reduced_homology(k, {.max_dim = top, .prime = 2});
    const HomologyReport gf3 = reduced_homology(k, {.max_dim = top, .prime = 3});

    // (2) χ = 1 + Σ (-1)^d β̃_d, for the Betti numbers over each field and
    // for the exact free ranks (torsion never moves χ).
    const long long chi = k.euler_characteristic();
    for (const HomologyReport* report : {&gf2, &gf3, &exact}) {
      long long alternating = 0;
      for (int d = 0; d <= top; ++d) {
        const long long betti =
            report->reduced_betti[static_cast<std::size_t>(d)];
        alternating += (d % 2 == 0) ? betti : -betti;
      }
      EXPECT_EQ(chi, 1 + alternating)
          << "Euler identity; seed=" << seed << " trial=" << trial
          << " report=" << report->to_string();
    }

    // (3) Universal coefficients, dimension by dimension.
    const std::pair<int, const HomologyReport*> fields[] = {{2, &gf2},
                                                            {3, &gf3}};
    for (int d = 0; d <= top; ++d) {
      const std::size_t slot = static_cast<std::size_t>(d);
      for (const auto& [q, report] : fields) {
        long long torsion_lift = 0;
        for (const std::string& t : exact.torsion[slot]) {
          if (decimal_divisible_by(t, q)) ++torsion_lift;
        }
        if (d > 0) {
          for (const std::string& t : exact.torsion[slot - 1]) {
            if (decimal_divisible_by(t, q)) ++torsion_lift;
          }
        }
        EXPECT_EQ(report->reduced_betti[slot],
                  exact.reduced_betti[slot] + torsion_lift)
            << "universal coefficients at d=" << d << " q=" << q
            << "; seed=" << seed << " trial=" << trial
            << " exact=" << exact.to_string();
      }
    }
  }
  // The sweep must actually exercise the claims (a degenerate generator
  // that only produced empty complexes would vacuously pass).
  EXPECT_GT(nonempty_cases, kCases / 2)
      << "generator degenerated; seed=" << seed;
}

// ---- Morse preprocessor differential suite ----
//
// The coreduction/free-face cascade must be invisible in the output:
// Betti numbers over every field AND exact torsion identical with the
// preprocessor on and off, on seed-reproducible random complexes.

TEST(PropertyDifferential, MorseReducedHomologyMatchesUnreduced) {
  const std::uint64_t seed = test_seed(20260808);
  util::Rng rng(seed);
  constexpr int kCases = 120;
  int nonempty_cases = 0;
  for (int trial = 0; trial < kCases; ++trial) {
    const int vertices = 4 + static_cast<int>(rng.next_below(5));
    const int facets = 1 + static_cast<int>(rng.next_below(10));
    const int max_dim = 1 + static_cast<int>(rng.next_below(3));
    const SimplicialComplex k =
        random_complex(rng, vertices, facets, max_dim);
    if (k.empty()) continue;
    ++nonempty_cases;
    const int top = k.dimension();
    for (const std::int64_t prime : {std::int64_t{2}, std::int64_t{3}}) {
      const HomologyReport with_morse = reduced_homology(
          k, {.max_dim = top, .prime = prime, .exact = true, .morse = true});
      const HomologyReport without_morse = reduced_homology(
          k, {.max_dim = top, .prime = prime, .exact = true, .morse = false});
      EXPECT_EQ(with_morse.reduced_betti, without_morse.reduced_betti)
          << "betti mod " << prime << "; seed=" << seed
          << " trial=" << trial;
      EXPECT_EQ(with_morse.torsion, without_morse.torsion)
          << "torsion mod " << prime << "; seed=" << seed
          << " trial=" << trial;
    }
  }
  EXPECT_GT(nonempty_cases, kCases / 2)
      << "generator degenerated; seed=" << seed;
}

TEST(PropertyDifferential, MorseCriticalCellsKeepEulerCharacteristic) {
  // Every reduction pair removes two cells of adjacent dimension, so the
  // alternating sum over critical cells (augmentation included) equals the
  // alternating sum over all cells — for every truncation depth.
  const std::uint64_t seed = test_seed(20260809);
  util::Rng rng(seed);
  for (int trial = 0; trial < 60; ++trial) {
    const SimplicialComplex k = random_complex(rng, 8, 8, 3);
    if (k.empty()) continue;
    for (int top = 1; top <= k.dimension() + 1; ++top) {
      const MorseComplex mc = morse_reduce(k, top);
      long long cells = -1;  // the augmentation cell, dimension -1
      long long critical =
          -static_cast<long long>(mc.boundary[0].rows());  // aug if alive
      for (int d = 0; d <= std::min(top, k.dimension()); ++d) {
        const long long sign = (d % 2 == 0) ? 1 : -1;
        cells += sign * static_cast<long long>(k.count_of_dim(d));
        critical +=
            sign * static_cast<long long>(mc.critical[static_cast<std::size_t>(d)]);
      }
      EXPECT_EQ(cells, critical)
          << "top=" << top << "; seed=" << seed << " trial=" << trial;
      EXPECT_EQ(mc.cells_before - mc.cells_after, 2 * mc.pairs)
          << "top=" << top << "; seed=" << seed << " trial=" << trial;
    }
  }
}

TEST(PropertyDifferential, MorsePreservesProjectivePlaneTorsion) {
  // The 6-vertex triangulation of RP²: H̃_0 = 0, H̃_1 = Z/2, H̃_2 = 0.
  // Torsion is the sharp test — a preprocessor that only preserved field
  // Betti numbers could still corrupt it.
  // The minimal triangulation RP²_6 (antipodal icosahedron quotient):
  // 6 vertices, 15 edges (each pair), 10 triangles, every edge in exactly
  // two triangles, χ = 1.
  SimplicialComplex rp2;
  for (const auto& f :
       {Simplex{0, 1, 2}, Simplex{0, 2, 3}, Simplex{0, 3, 4}, Simplex{0, 4, 5},
        Simplex{0, 1, 5}, Simplex{1, 2, 4}, Simplex{2, 4, 5}, Simplex{2, 3, 5},
        Simplex{1, 3, 5}, Simplex{1, 3, 4}}) {
    rp2.add_facet(f);
  }
  for (const bool morse : {true, false}) {
    const HomologyReport report = reduced_homology(
        rp2, {.max_dim = 2, .prime = 3, .exact = true, .morse = morse});
    ASSERT_EQ(report.reduced_betti.size(), 3u);
    EXPECT_EQ(report.reduced_betti[0], 0) << "morse=" << morse;
    EXPECT_EQ(report.reduced_betti[1], 0) << "morse=" << morse;
    EXPECT_EQ(report.reduced_betti[2], 0) << "morse=" << morse;
    ASSERT_EQ(report.torsion.size(), 3u);
    EXPECT_TRUE(report.torsion[0].empty()) << "morse=" << morse;
    ASSERT_EQ(report.torsion[1].size(), 1u) << "morse=" << morse;
    EXPECT_EQ(report.torsion[1][0], "2") << "morse=" << morse;
    EXPECT_TRUE(report.torsion[2].empty()) << "morse=" << morse;
  }
}

TEST(Property, EulerMatchesComponentsOnGraphs) {
  // For a 1-dimensional complex, χ = #components - #independent cycles;
  // in particular χ <= #components.
  util::Rng rng(7017);
  for (int trial = 0; trial < 30; ++trial) {
    const SimplicialComplex k = random_complex(rng, 8, 7, 1);
    if (k.empty()) continue;
    EXPECT_LE(k.euler_characteristic(),
              static_cast<long long>(connected_component_count(k)));
  }
}

}  // namespace
}  // namespace psph::topology

// ---------------------------------------------------------------------------
// Solvability-engine properties (src/solve): structural laws a correct
// decision procedure must satisfy, checked without reference to the oracle.
// ---------------------------------------------------------------------------

namespace psph::solve {
namespace {

std::uint64_t solve_seed(std::uint64_t fallback) {
  const char* raw = std::getenv("PSPH_TEST_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return parsed;
}

store::DecisionRecord engine_decide(DecideRequest request,
                                    std::uint64_t seed) {
  EngineOptions options;
  options.seed = seed;
  return decide(request, options).record;
}

TEST(PropertySolve, MoreRoundsNeverHurt) {
  // A protocol solvable in r rounds is solvable in r+1: extra rounds only
  // refine views, and a decision map factors through the refinement. An
  // engine verdict flipping from solvable to unsolvable as rounds grow is
  // therefore always a bug.
  const std::uint64_t seed = solve_seed(555001);
  const std::vector<DecideRequest> bases = {
      {Model::kAsync, 3, 1, 2, 0, 1}, {Model::kAsync, 2, 1, 1, 0, 1},
      {Model::kSync, 3, 1, 1, 0, 1},  {Model::kSync, 2, 1, 1, 0, 1},
      {Model::kIis, 2, 0, 1, 0, 1},   {Model::kIis, 3, 0, 1, 0, 1},
  };
  for (DecideRequest base : bases) {
    const store::DecisionRecord at_r = engine_decide(base, seed);
    DecideRequest next = base;
    next.rounds = base.rounds + 1;
    const store::DecisionRecord at_r1 = engine_decide(next, seed);
    ASSERT_TRUE(at_r.exhausted && at_r1.exhausted);
    if (at_r.solvable) {
      EXPECT_TRUE(at_r1.solvable)
          << model_name(base.model) << " solvable at r=" << base.rounds
          << " but not at r=" << next.rounds;
    }
  }
}

TEST(PropertySolve, HarderAgreementNeverGetsEasier) {
  // (k-1)-set agreement is strictly more constraining than k-set: any
  // (k-1)-witness is a k-witness. Unsolvable at k must imply unsolvable at
  // k-1 on the same protocol.
  const std::uint64_t seed = solve_seed(555002);
  const std::vector<DecideRequest> bases = {
      {Model::kAsync, 3, 1, 2, 0, 1}, {Model::kAsync, 3, 2, 2, 0, 1},
      {Model::kAsync, 2, 1, 2, 0, 1}, {Model::kSync, 3, 2, 2, 0, 1},
      {Model::kSync, 3, 1, 2, 0, 2},  {Model::kSemiSync, 3, 1, 2, 1, 1},
  };
  for (DecideRequest base : bases) {
    const store::DecisionRecord at_k = engine_decide(base, seed);
    DecideRequest harder = base;
    harder.k = base.k - 1;
    const store::DecisionRecord at_k1 = engine_decide(harder, seed);
    ASSERT_TRUE(at_k.exhausted && at_k1.exhausted);
    if (!at_k.solvable) {
      EXPECT_FALSE(at_k1.solvable)
          << model_name(base.model) << " unsolvable at k=" << base.k
          << " but solvable at k=" << harder.k;
    }
  }
}

TEST(PropertySolve, LearnedNogoodsAreRefutableWithoutLearning) {
  // Every learned nogood claims its assignments are jointly unextendable.
  // Replaying the nogood as assumptions into a propagate-only *complete*
  // search (no learning, no inherited database) must reproduce the
  // refutation from first principles — a nogood that a plain search can
  // satisfy would prune a live branch and could flip verdicts.
  const std::vector<DecideRequest> picks = {
      {Model::kAsync, 3, 1, 2, 0, 1},
      {Model::kAsync, 3, 2, 1, 0, 1},
      {Model::kSync, 3, 2, 2, 0, 1},
  };
  for (const DecideRequest& request : picks) {
    SCOPED_TRACE(model_name(request.model));
    const std::unique_ptr<Instance> instance = build_instance(request);
    EngineOptions learn;
    learn.stage = EngineStage::kLearn;
    learn.collect_nogoods = true;
    learn.canonical_witness = false;
    const SolveOutcome outcome = solve(instance->problem, learn);
    ASSERT_TRUE(outcome.exhausted);

    EngineOptions replay;
    replay.stage = EngineStage::kPropagate;
    replay.root_probing = false;
    std::size_t checked = 0;
    for (const std::vector<Lit>& nogood : outcome.learned) {
      if (nogood.empty() || checked >= 25) break;  // bound test cost
      ++checked;
      const SolveOutcome refute =
          solve_under(instance->problem, nogood, replay);
      ASSERT_TRUE(refute.exhausted);
      EXPECT_FALSE(refute.solvable)
          << "learned nogood of size " << nogood.size()
          << " is satisfiable — it would prune a live branch";
    }
  }
}

}  // namespace
}  // namespace psph::solve
