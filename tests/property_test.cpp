// Cross-module property tests: invariants that tie independent engines
// together (collapse vs homology, components vs Betti, homology GF(p) vs
// exact SNF, boundary-squared-is-zero, complex algebra laws) over
// randomized inputs.

#include <gtest/gtest.h>

#include "math/smith.h"
#include "topology/collapse.h"
#include "topology/components.h"
#include "topology/complex.h"
#include "topology/homology.h"
#include "topology/operations.h"
#include "util/random.h"

namespace psph::topology {
namespace {

SimplicialComplex random_complex(util::Rng& rng, int vertices, int facets,
                                 int max_dim) {
  SimplicialComplex k;
  for (int i = 0; i < facets; ++i) {
    const int size = 1 + static_cast<int>(rng.next_below(
                             static_cast<std::uint64_t>(max_dim + 1)));
    const auto ids = rng.sample_without_replacement(vertices, size);
    std::vector<VertexId> vs;
    for (int id : ids) vs.push_back(static_cast<VertexId>(id));
    k.add_facet(Simplex(std::move(vs)));
  }
  return k;
}

TEST(Property, CollapsibleImpliesAcyclic) {
  // Greedy collapse to a point certifies contractibility, which implies
  // vanishing reduced homology — the two engines must agree.
  util::Rng rng(7001);
  int collapsed = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const SimplicialComplex k = random_complex(rng, 7, 6, 3);
    if (k.empty()) continue;
    if (!collapses_to_point(k)) continue;
    ++collapsed;
    const HomologyReport h = reduced_homology(k, {.max_dim = 3});
    for (long long betti : h.reduced_betti) {
      EXPECT_EQ(betti, 0) << "trial " << trial;
    }
  }
  EXPECT_GT(collapsed, 5);  // the sweep must actually exercise the claim
}

TEST(Property, BoundaryComposedWithBoundaryIsZero) {
  // ∂_{d} ∘ ∂_{d+1} = 0, the defining identity of a chain complex.
  util::Rng rng(7003);
  for (int trial = 0; trial < 15; ++trial) {
    const SimplicialComplex k = random_complex(rng, 8, 8, 3);
    if (k.dimension() < 1) continue;
    for (int d = 1; d <= k.dimension(); ++d) {
      const math::SparseMatrix lower = boundary_matrix(k, d - 1);
      const math::SparseMatrix upper = boundary_matrix(k, d);
      // Multiply lower * upper entry-wise (small matrices) and confirm the
      // product vanishes.
      for (std::size_t c = 0; c < upper.cols(); ++c) {
        for (std::size_t r = 0; r < lower.rows(); ++r) {
          std::int64_t sum = 0;
          for (std::size_t mid = 0; mid < upper.rows(); ++mid) {
            sum += lower.get(r, mid) * upper.get(mid, c);
          }
          EXPECT_EQ(sum, 0) << "d=" << d;
        }
      }
    }
  }
}

TEST(Property, GfpAndExactHomologyAgreeWithoutTorsion) {
  util::Rng rng(7005);
  for (int trial = 0; trial < 15; ++trial) {
    const SimplicialComplex k = random_complex(rng, 6, 6, 2);
    if (k.empty()) continue;
    const HomologyReport fast = reduced_homology(k, {.max_dim = 2});
    const HomologyReport exact =
        reduced_homology(k, {.max_dim = 2, .exact = true});
    EXPECT_EQ(fast.reduced_betti, exact.reduced_betti) << "trial " << trial;
  }
}

TEST(Property, UnionIsAssociativeAndCommutative) {
  util::Rng rng(7007);
  for (int trial = 0; trial < 20; ++trial) {
    const SimplicialComplex a = random_complex(rng, 6, 4, 2);
    const SimplicialComplex b = random_complex(rng, 6, 4, 2);
    const SimplicialComplex c = random_complex(rng, 6, 4, 2);
    EXPECT_EQ(union_of(a, b), union_of(b, a));
    EXPECT_EQ(union_of(union_of(a, b), c), union_of(a, union_of(b, c)));
  }
}

TEST(Property, IntersectionDistributesOverSubcomplexes) {
  util::Rng rng(7011);
  for (int trial = 0; trial < 20; ++trial) {
    const SimplicialComplex a = random_complex(rng, 6, 5, 2);
    const SimplicialComplex b = random_complex(rng, 6, 5, 2);
    // (A ∩ B) ⊆ A, and A ∩ A = A.
    EXPECT_TRUE(intersection_of(a, b).is_subcomplex_of(a));
    EXPECT_EQ(intersection_of(a, a), a);
    // Monotonicity: A ∩ B ⊆ A ∪ B.
    EXPECT_TRUE(intersection_of(a, b).is_subcomplex_of(union_of(a, b)));
  }
}

TEST(Property, SkeletonIdempotentAndMonotone) {
  util::Rng rng(7013);
  for (int trial = 0; trial < 20; ++trial) {
    const SimplicialComplex k = random_complex(rng, 7, 6, 3);
    for (int d = 0; d <= 3; ++d) {
      const SimplicialComplex skel = skeleton(k, d);
      EXPECT_LE(skel.dimension(), d);
      EXPECT_EQ(skeleton(skel, d), skel);
      EXPECT_TRUE(skel.is_subcomplex_of(k));
    }
  }
}

TEST(Property, EulerMatchesComponentsOnGraphs) {
  // For a 1-dimensional complex, χ = #components - #independent cycles;
  // in particular χ <= #components.
  util::Rng rng(7017);
  for (int trial = 0; trial < 30; ++trial) {
    const SimplicialComplex k = random_complex(rng, 8, 7, 1);
    if (k.empty()) continue;
    EXPECT_LE(k.euler_characteristic(),
              static_cast<long long>(connected_component_count(k)));
  }
}

}  // namespace
}  // namespace psph::topology
