// Tests for the Theorem 2 (Mayer-Vietoris) checker: hand-built instances
// where the hypothesis holds or fails, randomized pseudosphere
// decompositions, and the prefix unions of the synchronous one-round
// complex (the exact shape the paper's Lemma 16 proof glues together).

#include <gtest/gtest.h>

#include "core/pseudosphere.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "topology/homology.h"
#include "topology/mayer_vietoris.h"
#include "topology/operations.h"
#include "util/random.h"

namespace psph::topology {
namespace {

TEST(Theorem2, TwoTrianglesSharingAnEdge) {
  SimplicialComplex a, b;
  a.add_facet(Simplex{0, 1, 2});
  b.add_facet(Simplex{1, 2, 3});
  const Theorem2Instance instance = check_theorem2(a, b, 1);
  EXPECT_TRUE(instance.hypothesis);
  EXPECT_TRUE(instance.conclusion);
}

TEST(Theorem2, DisconnectedIntersectionBreaksHypothesisAndConclusion) {
  // Two "wedges" meeting in two separate vertices: the union is a circle,
  // not 1-connected — and indeed the hypothesis fails at the intersection.
  SimplicialComplex a, b;
  a.add_facet(Simplex{0, 1});
  a.add_facet(Simplex{1, 2});
  b.add_facet(Simplex{2, 3});
  b.add_facet(Simplex{3, 0});
  const Theorem2Instance instance = check_theorem2(a, b, 1);
  EXPECT_FALSE(instance.hypothesis);
  EXPECT_FALSE(instance.conclusion);
  EXPECT_EQ(instance.connectivity_intersection, -1);  // two points
}

TEST(Theorem2, EmptyIntersectionFailsHypothesisAtKZero) {
  SimplicialComplex a, b;
  a.add_facet(Simplex{0, 1});
  b.add_facet(Simplex{2, 3});
  const Theorem2Instance instance = check_theorem2(a, b, 0);
  EXPECT_FALSE(instance.hypothesis);
  EXPECT_FALSE(instance.conclusion);
}

TEST(Theorem2, HoldsOnRandomPseudospherePairs) {
  // Pseudospheres over the same pids with overlapping value sets: both are
  // (m-1)-connected (Cor. 6) and the intersection is a pseudosphere too
  // (Lemma 4), so whenever the hypothesis holds the union must obey the
  // conclusion.
  util::Rng rng(3141);
  int hypothesis_held = 0;
  for (int trial = 0; trial < 30; ++trial) {
    VertexArena arena;
    const int m1 = 2 + static_cast<int>(rng.next_below(3));
    std::vector<core::ProcessId> pids;
    for (int i = 0; i < m1; ++i) pids.push_back(i);
    const auto draw = [&]() {
      std::vector<core::StateId> values;
      for (core::StateId v = 0; v < 4; ++v) {
        if (rng.next_bool(0.6)) values.push_back(v);
      }
      if (values.empty()) values.push_back(0);
      return values;
    };
    const SimplicialComplex a =
        core::pseudosphere_uniform(pids, draw(), arena);
    const SimplicialComplex b =
        core::pseudosphere_uniform(pids, draw(), arena);
    const Theorem2Instance instance = check_theorem2(a, b, m1 - 2);
    if (instance.hypothesis) {
      ++hypothesis_held;
      EXPECT_TRUE(instance.conclusion) << "trial " << trial;
    }
  }
  EXPECT_GT(hypothesis_held, 0);  // the sweep must exercise the implication
}

TEST(Theorem2, PrefixUnionsOfSyncOneRound) {
  // Replays the paper's Lemma 16 gluing: fold the pseudospheres S¹_K into
  // a growing union in lexicographic order, checking Theorem 2 at k = 0
  // for each step (n = 2, k_fail = 1, so the one-round complex must stay
  // connected throughout).
  core::ViewRegistry views;
  VertexArena arena;
  const Simplex input = core::rainbow_input(3, views, arena);
  std::vector<core::ProcessId> pids{0, 1, 2};
  SimplicialComplex accumulated;
  bool first = true;
  for (const auto& fail_set : core::lexicographic_fail_sets(pids, 1)) {
    const SimplicialComplex piece =
        core::sync_round_complex_for_failset(input, fail_set, views, arena);
    if (first) {
      accumulated = piece;
      first = false;
      continue;
    }
    const Theorem2Instance instance = check_theorem2(accumulated, piece, 0);
    EXPECT_TRUE(instance.hypothesis) << "|K|=" << fail_set.size();
    EXPECT_TRUE(instance.conclusion);
    accumulated = union_of(accumulated, piece);
  }
  EXPECT_GE(homological_connectivity(accumulated, 0), 0);
}

}  // namespace
}  // namespace psph::topology
