// Tests for the executors, adversaries, the trace→complex bridge (the
// cross-validation that exhaustively simulated executions regenerate the
// theoretical protocol complexes exactly), and the semi-synchronous
// discrete-event engine.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/async_complex.h"
#include "core/sync_complex.h"
#include "core/theorems.h"
#include "core/view.h"
#include "sim/adversary.h"
#include "sim/async_executor.h"
#include "sim/bridge.h"
#include "sim/semisync_executor.h"
#include "sim/semisync_round_enum.h"
#include "sim/sync_executor.h"
#include "util/random.h"

namespace psph::sim {
namespace {

using core::ViewRegistry;
using topology::VertexArena;

// ----------------------------------------------------------- sync runs ----

class NoFailureSyncAdversary : public SyncAdversary {
 public:
  SyncRoundPlan plan_round(int, const std::vector<ProcessId>&) override {
    return {};
  }
};

// Crashes one scripted process in one scripted round with scripted
// deliveries.
class OneCrashSyncAdversary : public SyncAdversary {
 public:
  OneCrashSyncAdversary(ProcessId victim, int round,
                        std::set<ProcessId> delivered_to)
      : victim_(victim), round_(round), delivered_(std::move(delivered_to)) {}

  SyncRoundPlan plan_round(int round,
                           const std::vector<ProcessId>& alive) override {
    SyncRoundPlan plan;
    if (round == round_ &&
        std::find(alive.begin(), alive.end(), victim_) != alive.end()) {
      plan.crash.push_back(victim_);
      plan.delivered_to[victim_] = delivered_;
    }
    return plan;
  }

 private:
  ProcessId victim_;
  int round_;
  std::set<ProcessId> delivered_;
};

TEST(SyncExecutor, FailureFreeEveryoneHearsEveryone) {
  ViewRegistry views;
  NoFailureSyncAdversary adversary;
  const Trace trace = run_sync({10, 20, 30}, {3, 2}, adversary, views);
  EXPECT_EQ(trace.rounds(), 2);
  ASSERT_EQ(trace.states.back().size(), 3u);
  for (const auto& [pid, state] : trace.states.back()) {
    EXPECT_EQ(views.inputs_seen(state),
              (std::set<std::int64_t>{10, 20, 30}))
        << "P" << pid;
    EXPECT_EQ(views.round(state), 2);
  }
}

TEST(SyncExecutor, CrashedProcessHasNoFinalState) {
  ViewRegistry views;
  OneCrashSyncAdversary adversary(/*victim=*/2, /*round=*/1,
                                  /*delivered_to=*/{0});
  const Trace trace = run_sync({10, 20, 30}, {3, 1}, adversary, views);
  EXPECT_EQ(trace.states.back().size(), 2u);
  EXPECT_FALSE(trace.final_state(2).has_value());
  // P0 received the crasher's message, P1 did not.
  EXPECT_EQ(views.inputs_seen(*trace.final_state(0)),
            (std::set<std::int64_t>{10, 20, 30}));
  EXPECT_EQ(views.inputs_seen(*trace.final_state(1)),
            (std::set<std::int64_t>{10, 20}));
  EXPECT_EQ(trace.crashed_in[1], (std::vector<ProcessId>{2}));
}

TEST(SyncExecutor, RandomAdversaryRespectsBudget) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    ViewRegistry views;
    RandomSyncAdversary adversary(rng.split(), /*max_total_failures=*/2,
                                  /*crash_probability=*/0.5);
    const Trace trace = run_sync({1, 2, 3, 4}, {4, 3}, adversary, views);
    std::size_t total_crashed = 0;
    for (const auto& crashed : trace.crashed_in) {
      total_crashed += crashed.size();
    }
    EXPECT_LE(total_crashed, 2u);
    EXPECT_GE(trace.states.back().size(), 2u);
  }
}

// -------------------------------------------- plan validation: sync -------

// Emits a scripted plan in round 1, then runs failure-free.
class ScriptedPlanSyncAdversary : public SyncAdversary {
 public:
  explicit ScriptedPlanSyncAdversary(SyncRoundPlan first) : first_(first) {}
  SyncRoundPlan plan_round(int round,
                           const std::vector<ProcessId>&) override {
    return round == 1 ? first_ : SyncRoundPlan{};
  }

 private:
  SyncRoundPlan first_;
};

TEST(SyncExecutor, RejectsCrashOfDeadProcess) {
  // P0 crashes in round 1; a second crash of P0 in round 2 names a dead pid.
  class CrashTwice : public SyncAdversary {
   public:
    SyncRoundPlan plan_round(int round,
                             const std::vector<ProcessId>&) override {
      SyncRoundPlan plan;
      if (round <= 2) plan.crash = {0};
      return plan;
    }
  } adversary;
  ViewRegistry views;
  EXPECT_THROW(run_sync({0, 1, 2}, {3, 2}, adversary, views),
               std::logic_error);
}

TEST(SyncExecutor, RejectsDuplicateCrashInOnePlan) {
  SyncRoundPlan plan;
  plan.crash = {1, 1};
  ScriptedPlanSyncAdversary adversary(plan);
  ViewRegistry views;
  EXPECT_THROW(run_sync({0, 1, 2}, {3, 1}, adversary, views),
               std::logic_error);
}

TEST(SyncExecutor, RejectsDeliveryPlanForNonCrasher) {
  SyncRoundPlan plan;
  plan.crash = {0};
  plan.delivered_to[1] = {2};  // P1 is not crashing this round
  ScriptedPlanSyncAdversary adversary(plan);
  ViewRegistry views;
  EXPECT_THROW(run_sync({0, 1, 2}, {3, 1}, adversary, views),
               std::logic_error);
}

TEST(SyncExecutor, RejectsDeliveryToNonSurvivor) {
  // A crasher's message delivered to a process crashing the same round.
  SyncRoundPlan plan;
  plan.crash = {0, 1};
  plan.delivered_to[0] = {1};
  ScriptedPlanSyncAdversary adversary(plan);
  ViewRegistry views;
  EXPECT_THROW(run_sync({0, 1, 2, 3}, {4, 1}, adversary, views),
               std::logic_error);
}

TEST(SyncExecutor, AcceptsLegalCrashPlan) {
  SyncRoundPlan plan;
  plan.crash = {0};
  plan.delivered_to[0] = {1};
  ScriptedPlanSyncAdversary adversary(plan);
  ViewRegistry views;
  const Trace trace = run_sync({0, 1, 2}, {3, 2}, adversary, views);
  EXPECT_EQ(trace.states.back().size(), 2u);
}

// ------------------------------------------------------ bridge: sync ------

TEST(Bridge, SyncOneRoundMatchesTheory) {
  // Exhaustive one-round executions with <= 1 crash == S¹(S), literally.
  ViewRegistry views;
  VertexArena arena;
  const topology::Simplex input =
      core::rainbow_input(3, views, arena);
  const topology::SimplicialComplex theory = core::sync_round_complex(
      input, {3, 1, 1, 1}, views, arena);

  TraceComplexBuilder builder(arena);
  enumerate_sync_executions({0, 1, 2}, /*rounds=*/1, /*total_failures=*/1,
                            /*failures_per_round=*/1, views,
                            [&](const Trace& trace) { builder.add(trace); });
  EXPECT_EQ(builder.complex(), theory);
}

TEST(Bridge, SyncTwoRoundsMatchesTheory) {
  ViewRegistry views;
  VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  const topology::SimplicialComplex theory = core::sync_protocol_complex(
      input, {3, 2, 1, 2}, views, arena);

  TraceComplexBuilder builder(arena);
  enumerate_sync_executions({0, 1, 2}, /*rounds=*/2, /*total_failures=*/2,
                            /*failures_per_round=*/1, views,
                            [&](const Trace& trace) { builder.add(trace); });
  EXPECT_EQ(builder.complex(), theory);
}

TEST(Bridge, SyncTwoFailuresPerRoundMatchesTheory) {
  ViewRegistry views;
  VertexArena arena;
  const topology::Simplex input = core::rainbow_input(4, views, arena);
  const topology::SimplicialComplex theory = core::sync_round_complex(
      input, {4, 2, 2, 1}, views, arena);

  TraceComplexBuilder builder(arena);
  enumerate_sync_executions({0, 1, 2, 3}, /*rounds=*/1, /*total_failures=*/2,
                            /*failures_per_round=*/2, views,
                            [&](const Trace& trace) { builder.add(trace); });
  EXPECT_EQ(builder.complex(), theory);
}

// ----------------------------------------------------- bridge: async ------

TEST(Bridge, AsyncOneRoundMatchesTheory) {
  ViewRegistry views;
  VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  const topology::SimplicialComplex theory =
      core::async_round_complex(input, {3, 1, 1}, views, arena);

  TraceComplexBuilder builder(arena);
  AsyncRunConfig config{3, 1, 1, {}};
  enumerate_async_executions({0, 1, 2}, config, views,
                             [&](const Trace& trace) { builder.add(trace); });
  EXPECT_EQ(builder.complex(), theory);
  EXPECT_EQ(builder.traces_added(), 27u);
}

TEST(Bridge, AsyncTwoRoundsMatchesTheory) {
  ViewRegistry views;
  VertexArena arena;
  const topology::Simplex input = core::rainbow_input(3, views, arena);
  const topology::SimplicialComplex theory =
      core::async_protocol_complex(input, {3, 1, 2}, views, arena);

  TraceComplexBuilder builder(arena);
  AsyncRunConfig config{3, 1, 2, {}};
  enumerate_async_executions({0, 1, 2}, config, views,
                             [&](const Trace& trace) { builder.add(trace); });
  EXPECT_EQ(builder.complex(), theory);
}

TEST(Bridge, AsyncParticipantSubsetIsSubcomplex) {
  // Executions in which only {0, 1} participate must land inside the full
  // complex's A¹(face) subcomplex.
  ViewRegistry views;
  VertexArena arena;
  AsyncRunConfig small{3, 2, 1, {0, 1}};
  TraceComplexBuilder builder(arena);
  enumerate_async_executions({0, 1, 2}, small, views,
                             [&](const Trace& trace) { builder.add(trace); });

  const topology::Simplex full_input = core::rainbow_input(3, views, arena);
  const topology::SimplicialComplex full =
      core::async_round_complex(full_input, {3, 2, 1}, views, arena);
  EXPECT_TRUE(builder.complex().is_subcomplex_of(full));
  EXPECT_FALSE(builder.complex().empty());
}

TEST(AsyncExecutor, RejectsTooFewParticipants) {
  ViewRegistry views;
  RandomAsyncAdversary adversary{util::Rng(7)};
  AsyncRunConfig config{4, 1, 1, {0}};
  EXPECT_THROW(run_async({0, 1, 2, 3}, config, adversary, views),
               std::invalid_argument);
}

TEST(AsyncExecutor, RandomRunsSatisfyHeardBounds) {
  util::Rng rng(555);
  for (int trial = 0; trial < 30; ++trial) {
    ViewRegistry views;
    RandomAsyncAdversary adversary{util::Rng(rng.next())};
    const Trace trace =
        run_async({4, 5, 6}, {3, 1, 2, {}}, adversary, views);
    for (const auto& [pid, state] : trace.states.back()) {
      // Every round view heard from >= n+1-f = 2 processes incl. self.
      const auto senders = views.direct_senders(state);
      EXPECT_GE(senders.size(), 2u);
      EXPECT_TRUE(senders.count(pid) != 0);
    }
  }
}

// ------------------------------------------- plan validation: async -------

// Starts from a legal everyone-hears-everyone plan, then applies a
// test-supplied mutation before handing it to the executor.
class MutatedAsyncAdversary : public AsyncAdversary {
 public:
  using Mutate = std::function<void(AsyncRoundPlan&)>;
  explicit MutatedAsyncAdversary(Mutate mutate) : mutate_(std::move(mutate)) {}

  AsyncRoundPlan plan_round(int, const std::vector<ProcessId>& participants,
                            int) override {
    AsyncRoundPlan plan;
    const std::set<ProcessId> all(participants.begin(), participants.end());
    for (ProcessId p : participants) plan.heard[p] = all;
    mutate_(plan);
    return plan;
  }

 private:
  Mutate mutate_;
};

TEST(AsyncExecutor, RejectsMissingParticipantEntry) {
  MutatedAsyncAdversary adversary(
      [](AsyncRoundPlan& plan) { plan.heard.erase(1); });
  ViewRegistry views;
  EXPECT_THROW(run_async({0, 1, 2}, {3, 1, 1, {}}, adversary, views),
               std::logic_error);
}

TEST(AsyncExecutor, RejectsUndersizedHeardSet) {
  MutatedAsyncAdversary adversary(
      [](AsyncRoundPlan& plan) { plan.heard[1] = {1}; });  // |heard| < n+1-f
  ViewRegistry views;
  EXPECT_THROW(run_async({0, 1, 2}, {3, 1, 1, {}}, adversary, views),
               std::logic_error);
}

TEST(AsyncExecutor, RejectsMissingSelfDelivery) {
  MutatedAsyncAdversary adversary(
      [](AsyncRoundPlan& plan) { plan.heard[1] = {0, 2}; });
  ViewRegistry views;
  EXPECT_THROW(run_async({0, 1, 2}, {3, 1, 1, {}}, adversary, views),
               std::logic_error);
}

TEST(AsyncExecutor, RejectsNonParticipantSender) {
  MutatedAsyncAdversary adversary(
      [](AsyncRoundPlan& plan) { plan.heard[0].insert(2); });
  ViewRegistry views;
  // Only {0, 1} participate; hearing from P2 is hearing from a ghost.
  EXPECT_THROW(run_async({0, 1, 2}, {3, 1, 1, {0, 1}}, adversary, views),
               std::logic_error);
}

// -------------------------------------------------- bridge: semi-sync -----

TEST(Bridge, SemiSyncOneRoundMatchesTheory) {
  // Microround-level message simulation regenerates M¹(S) exactly.
  for (const auto& [n1, k, mu] : std::vector<std::array<int, 3>>{
           {3, 1, 2}, {3, 1, 3}, {3, 2, 2}, {4, 1, 2}}) {
    ViewRegistry views;
    VertexArena arena;
    const topology::Simplex input = core::rainbow_input(n1, views, arena);
    const topology::SimplicialComplex theory = core::semisync_round_complex(
        input, {n1, k, k, mu, 1}, views, arena);

    TraceComplexBuilder builder(arena);
    std::vector<std::int64_t> inputs;
    for (int p = 0; p < n1; ++p) inputs.push_back(p);
    enumerate_semisync_round_executions(
        inputs, k, mu, views,
        [&](const Trace& trace) { builder.add(trace); });
    EXPECT_EQ(builder.complex(), theory)
        << "n+1=" << n1 << " k=" << k << " mu=" << mu;
  }
}

// ------------------------------------------------------- semi-sync --------

// A protocol that decides its input at its first step.
class DecideOwnInput final : public SemiSyncProtocol {
 public:
  void on_start(ProcessApi&) override {}
  void on_message(ProcessApi&, const SemiSyncMessage&) override {}
  void on_step(ProcessApi& api) override { api.decide(api.input()); }
};

// Broadcasts once, then decides the smallest value seen after `wait_steps`.
class GossipMin final : public SemiSyncProtocol {
 public:
  explicit GossipMin(int wait_steps) : wait_steps_(wait_steps) {}

  void on_start(ProcessApi& api) override {
    known_[api.self()] = api.input();
    api.broadcast(known_, 0);
  }
  void on_message(ProcessApi&, const SemiSyncMessage& msg) override {
    for (const auto& [pid, value] : msg.values) known_[pid] = value;
  }
  void on_step(ProcessApi& api) override {
    if (++steps_ < wait_steps_ || api.has_decided()) return;
    std::int64_t best = known_.begin()->second;
    for (const auto& [pid, value] : known_) {
      (void)pid;
      best = std::min(best, value);
    }
    api.decide(best);
  }

 private:
  int wait_steps_;
  int steps_ = 0;
  std::map<ProcessId, std::int64_t> known_;
};

TEST(SemiSyncExecutor, ImmediateDecisionHappensAtFirstStep) {
  SemiSyncConfig config{.c1 = 2, .c2 = 3, .d = 5, .num_processes = 3};
  ScriptedSemiSyncAdversary adversary(/*step=*/2, /*delay=*/5);
  const SemiSyncResult result = run_semisync(
      {7, 8, 9}, config, [] { return std::make_unique<DecideOwnInput>(); },
      adversary);
  EXPECT_TRUE(result.all_alive_decided);
  ASSERT_EQ(result.decisions.size(), 3u);
  for (const auto& [pid, decision] : result.decisions) {
    EXPECT_EQ(decision.value, 7 + pid);
    EXPECT_EQ(decision.time, 2);  // first step at t = c1-scripted spacing
  }
}

TEST(SemiSyncExecutor, MessagesArriveWithinD) {
  // With delay d and step spacing c1, a GossipMin that waits long enough
  // must see every input.
  SemiSyncConfig config{.c1 = 1, .c2 = 2, .d = 4, .num_processes = 3};
  ScriptedSemiSyncAdversary adversary(/*step=*/1, /*delay=*/4);
  const SemiSyncResult result = run_semisync(
      {30, 10, 20}, config, [] { return std::make_unique<GossipMin>(6); },
      adversary);
  EXPECT_TRUE(result.all_alive_decided);
  for (const auto& [pid, decision] : result.decisions) {
    (void)pid;
    EXPECT_EQ(decision.value, 10);
  }
}

TEST(SemiSyncExecutor, CrashedProcessNeverDecides) {
  SemiSyncConfig config{.c1 = 1, .c2 = 2, .d = 3, .num_processes = 3};
  ScriptedSemiSyncAdversary adversary(1, 3);
  adversary.set_crash(1, /*when=*/0);
  const SemiSyncResult result = run_semisync(
      {5, 6, 7}, config, [] { return std::make_unique<GossipMin>(8); },
      adversary);
  EXPECT_TRUE(result.all_alive_decided);
  EXPECT_EQ(result.decisions.count(1), 0u);
  EXPECT_EQ(result.crashes.count(1), 1u);
  // P1 crashed before sending anything: survivors decide min(5, 7) = 5.
  EXPECT_EQ(result.decisions.at(0).value, 5);
  EXPECT_EQ(result.decisions.at(2).value, 5);
}

TEST(SemiSyncExecutor, SlowProcessDelaysItsOwnDecision) {
  SemiSyncConfig config{.c1 = 1, .c2 = 4, .d = 2, .num_processes = 2};
  ScriptedSemiSyncAdversary adversary(/*step=*/1, /*delay=*/2);
  adversary.set_step_spacing(1, 4);  // P1 runs at c2 = 4
  const SemiSyncResult result = run_semisync(
      {1, 2}, config, [] { return std::make_unique<GossipMin>(3); },
      adversary);
  ASSERT_TRUE(result.all_alive_decided);
  EXPECT_LT(result.decisions.at(0).time, result.decisions.at(1).time);
  EXPECT_EQ(result.decisions.at(1).time, 12);  // 3 steps * 4 ticks
}

TEST(SemiSyncExecutor, ValidatesTimingConstants) {
  SemiSyncConfig bad{.c1 = 3, .c2 = 2, .d = 1, .num_processes = 2};
  ScriptedSemiSyncAdversary adversary(1, 1);
  EXPECT_THROW(run_semisync({0, 1}, bad,
                            [] { return std::make_unique<DecideOwnInput>(); },
                            adversary),
               std::invalid_argument);
}

TEST(SemiSyncExecutor, RandomAdversaryStaysInBounds) {
  util::Rng rng(4242);
  SemiSyncConfig config{.c1 = 2, .c2 = 5, .d = 7, .num_processes = 4};
  for (int trial = 0; trial < 20; ++trial) {
    RandomSemiSyncAdversary adversary(util::Rng(rng.next()), config,
                                      /*max_crashes=*/1, 0.3, 50);
    const SemiSyncResult result = run_semisync(
        {3, 1, 4, 1}, config, [] { return std::make_unique<GossipMin>(10); },
        adversary);
    EXPECT_TRUE(result.all_alive_decided);
    EXPECT_LE(result.crashes.size(), 1u);
  }
}

}  // namespace
}  // namespace psph::sim
