// Differential and behavioral tests for the solvability engine (src/solve).
//
// The engine (propagating, learning, portfolio-parallel) must agree with
// the seed backtracker — search_decision_map_seq, kept verbatim as the
// oracle — on every oracle-tractable instance: same verdict, and any
// witness valid vertex-by-vertex (validity) and facet-by-facet (agreement)
// against the original protocol complex. Witnesses are NOT compared
// byte-for-byte against the oracle's (the engine canonicalizes to the
// lex-min decision map; the oracle reports its first find), but they ARE
// compared across engine stages, seeds, and thread counts, where the
// canonicalization makes them bit-identical.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "solve/csp.h"
#include "solve/decide.h"
#include "solve/engine.h"
#include "store/store.h"
#include "util/cancel.h"
#include "util/parallel.h"
#include "util/random.h"

namespace psph::solve {
namespace {

/// Seed for the engine's portfolio diversification: PSPH_TEST_SEED
/// overrides the fallback, so CI's second-seed pass exercises different
/// value orders and tie-breaks without a rebuild.
std::uint64_t test_seed(std::uint64_t fallback) {
  const char* raw = std::getenv("PSPH_TEST_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return parsed;
}

std::string request_name(const DecideRequest& r) {
  return std::string(model_name(r.model)) + " n1=" +
         std::to_string(r.processes) + " f=" + std::to_string(r.f) +
         " k=" + std::to_string(r.k) + " mu=" + std::to_string(r.mu) +
         " r=" + std::to_string(r.rounds);
}

/// The oracle-tractable instance grid the differential suite sweeps: all
/// four models, both verdicts, multiple rounds. Sized so that grid ×
/// three engine stages lands around 200 differential cases.
std::vector<DecideRequest> differential_grid() {
  std::vector<DecideRequest> grid;
  // Asynchronous wait-free (Corollary 13 territory).
  for (int p : {2, 3}) {
    for (int f = 0; f < p; ++f) {
      for (int k : {1, 2}) {
        for (int r : {1, 2}) {
          grid.push_back({Model::kAsync, p, f, k, 0, r});
        }
      }
    }
  }
  for (int f : {1, 2, 3}) {
    for (int k : {1, 2}) {
      grid.push_back({Model::kAsync, 4, f, k, 0, 1});
    }
  }
  // Synchronous message-passing (Corollary 18 territory).
  for (int p : {2, 3}) {
    for (int f = 0; f < p; ++f) {
      for (int k : {1, 2}) {
        for (int r : {1, 2}) {
          grid.push_back({Model::kSync, p, f, k, 0, r});
        }
      }
    }
  }
  for (int f : {0, 1, 2}) {
    grid.push_back({Model::kSync, 4, f, 1, 0, 1});
    grid.push_back({Model::kSync, 4, f, 2, 0, 1});
  }
  // Semi-synchronous (Corollary 22 territory).
  for (int p : {2, 3}) {
    for (int f : {0, 1}) {
      for (int k : {1, 2}) {
        for (int mu : {1, 2}) {
          grid.push_back({Model::kSemiSync, p, f, k, mu, 1});
        }
      }
    }
  }
  // Iterated immediate snapshot. (3, k=2) is excluded: the oracle burns
  // its full node budget without exhausting — that separation is the point
  // of SolveHardInstance below, not a differential case.
  for (int p : {2, 3}) {
    for (int k : {1, 2}) {
      if (p == 3 && k == 2) continue;
      for (int r : {1, 2}) {
        grid.push_back({Model::kIis, p, 0, k, 0, r});
      }
    }
  }
  return grid;
}

EngineOptions stage_options(EngineStage stage, std::uint64_t seed) {
  EngineOptions options;
  options.stage = stage;
  options.seed = seed;
  return options;
}

TEST(SolveDifferential, EveryStageMatchesSeqOracleAcrossAllModels) {
  const std::uint64_t seed = test_seed(424242);
  core::SearchOptions oracle_options;
  oracle_options.node_limit = 2'000'000;  // tractability cut, not a verdict

  int cases = 0;
  int oracle_skipped = 0;
  for (const DecideRequest& request : differential_grid()) {
    SCOPED_TRACE(request_name(request));
    const store::DecisionRecord oracle = decide_seq(request, oracle_options);
    if (!oracle.exhausted) {
      ++oracle_skipped;
      continue;
    }
    const std::unique_ptr<Instance> instance = build_instance(request);
    for (const EngineStage stage :
         {EngineStage::kPropagate, EngineStage::kLearn,
          EngineStage::kPortfolio}) {
      SCOPED_TRACE(stage_name(stage));
      const SolveOutcome outcome =
          solve(instance->problem, stage_options(stage, seed));
      ++cases;
      ASSERT_TRUE(outcome.exhausted);
      EXPECT_EQ(outcome.solvable, oracle.solvable);
      if (outcome.solvable) {
        const WitnessCheck check =
            verify_witness(instance->problem, outcome.witness);
        EXPECT_TRUE(check.ok) << check.reason;
      }
    }
    // The oracle's own witness must satisfy the same checker (it is
    // engine-independent — a broken checker would vacuously pass both).
    if (oracle.solvable) {
      std::map<topology::VertexId, std::int64_t> by_vertex(
          oracle.witness.begin(), oracle.witness.end());
      std::vector<int> dense(instance->problem.vertex_ids.size(), -1);
      for (std::size_t i = 0; i < instance->problem.vertex_ids.size(); ++i) {
        const std::int64_t value =
            by_vertex.at(instance->problem.vertex_ids[i]);
        for (int d = 0; d < instance->problem.num_values; ++d) {
          if (instance->problem.value_of[static_cast<std::size_t>(d)] ==
              value) {
            dense[i] = d;
          }
        }
      }
      EXPECT_TRUE(verify_witness(instance->problem, dense).ok);
    }
  }
  // ~200 differential cases; the grid is fixed, so a shrink is a bug.
  EXPECT_GE(cases, 190) << "grid shrank: " << cases << " cases, "
                        << oracle_skipped << " oracle-intractable";
  EXPECT_EQ(oracle_skipped, 0)
      << "grid contains instances the oracle cannot decide — move them to "
         "SolveHardInstance";
}

TEST(SolveDifferential, StagesAgreeOnTheCanonicalWitnessBytes) {
  // Verdict AND witness are canonical, so the sealed decide record must be
  // bit-identical across stages regardless of search order.
  const std::uint64_t seed = test_seed(99991);
  const std::vector<DecideRequest> picks = {
      {Model::kAsync, 3, 1, 2, 0, 1},   // solvable with a real witness
      {Model::kAsync, 3, 1, 1, 0, 1},   // impossible
      {Model::kSync, 3, 2, 1, 0, 2},    // sync, multi-round
      {Model::kIis, 3, 0, 2, 0, 1},     // iis
  };
  for (const DecideRequest& request : picks) {
    SCOPED_TRACE(request_name(request));
    std::vector<std::vector<std::uint8_t>> sealed;
    for (const EngineStage stage :
         {EngineStage::kPropagate, EngineStage::kLearn,
          EngineStage::kPortfolio}) {
      sealed.push_back(
          decide_sealed(request, stage_options(stage, seed)));
    }
    EXPECT_EQ(sealed[0], sealed[1]);
    EXPECT_EQ(sealed[1], sealed[2]);
    // And across a different diversification seed.
    EXPECT_EQ(sealed[0],
              decide_sealed(request, stage_options(EngineStage::kPortfolio,
                                                   seed ^ 0xDEADBEEF)));
  }
}

TEST(SolvePortfolio, VerdictAndWitnessBitIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = test_seed(31337);
  const std::vector<DecideRequest> picks = {
      {Model::kAsync, 3, 1, 2, 0, 1},
      {Model::kAsync, 3, 2, 2, 0, 1},
      {Model::kSync, 3, 1, 1, 0, 1},
      {Model::kSemiSync, 3, 1, 2, 1, 1},
  };
  const int original = util::thread_count();
  std::vector<std::vector<std::uint8_t>> baseline;
  for (const int threads : {1, 2, 8}) {
    util::set_thread_count(threads);
    std::size_t i = 0;
    for (const DecideRequest& request : picks) {
      SCOPED_TRACE(request_name(request) + " threads=" +
                   std::to_string(threads));
      std::vector<std::uint8_t> sealed =
          decide_sealed(request, stage_options(EngineStage::kPortfolio, seed));
      if (threads == 1) {
        baseline.push_back(std::move(sealed));
      } else {
        EXPECT_EQ(sealed, baseline[i]);
      }
      ++i;
    }
  }
  util::set_thread_count(original);
}

TEST(SolveEngine, DeadlineFiresMidPropagationNotJustPerNode) {
  // A deadline installed *after* construction (so it cannot fire during
  // complex building) and already expired when solve() starts: the engine's
  // propagation/probing machinery must notice it and unwind — the seed
  // backtracker only polled every few thousand search nodes, so an instance
  // decided below that threshold would have sailed past its budget. The
  // instance is solvable with a non-trivial search, so the root propagation
  // alone cannot finish it before the first poll.
  const std::unique_ptr<Instance> instance =
      build_instance({Model::kAsync, 3, 1, 2, 0, 1});
  util::DeadlineScope deadline(std::chrono::steady_clock::now());
  EXPECT_THROW(solve(instance->problem), util::DeadlineExceeded);
  // The deadline outranks the portfolio's internal cancellation: no stage
  // may swallow it and report a verdict.
  for (const EngineStage stage :
       {EngineStage::kPropagate, EngineStage::kLearn}) {
    EXPECT_THROW(solve(instance->problem, stage_options(stage, 1)),
                 util::DeadlineExceeded);
  }
}

TEST(SolveEngine, NodeLimitReportsUnexhaustedNeverWrong) {
  const std::unique_ptr<Instance> instance =
      build_instance({Model::kAsync, 3, 2, 2, 0, 1});
  EngineOptions options;
  options.stage = EngineStage::kLearn;
  options.node_limit = 1;
  options.root_probing = false;  // probing alone could decide it
  const SolveOutcome outcome = solve(instance->problem, options);
  if (!outcome.exhausted) {
    EXPECT_FALSE(outcome.solvable);
  }
}

TEST(SolveMemo, WarmCacheRedecideIsAPureStoreHit) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("psph_solve_memo_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  store::ResultStore store(root);

  const DecideRequest request{Model::kAsync, 3, 1, 2, 0, 1};
  const DecideResult first = decide(request, {}, &store);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(first.record.exhausted);
  EXPECT_GT(store.stats().writes, 0u);

  const std::uint64_t writes_before = store.stats().writes;
  const DecideResult second = decide(request, {}, &store);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.record, first.record);
  // A pure hit: nothing recomputed (zero engine stats), nothing rewritten.
  EXPECT_EQ(second.stats.nodes, 0u);
  EXPECT_EQ(second.stats.propagations, 0u);
  EXPECT_EQ(store.stats().writes, writes_before);

  // Normalized aliases share the entry: async ignores mu.
  DecideRequest alias = request;
  alias.mu = 7;
  EXPECT_TRUE(decide(alias, {}, &store).cache_hit);

  std::filesystem::remove_all(root);
}

TEST(SolveMemo, UnexhaustedVerdictsAreNeverCached) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("psph_solve_nocache_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  store::ResultStore store(root);

  const DecideRequest request{Model::kAsync, 3, 2, 2, 0, 1};
  EngineOptions options;
  options.stage = EngineStage::kLearn;
  options.node_limit = 1;
  options.root_probing = false;
  const DecideResult aborted = decide(request, options, &store);
  if (!aborted.record.exhausted) {
    EXPECT_EQ(store.stats().writes, 0u);
    // A later complete run computes (no stale abort hit) and caches.
    const DecideResult full = decide(request, {}, &store);
    EXPECT_FALSE(full.cache_hit);
    EXPECT_TRUE(full.record.exhausted);
    EXPECT_GT(store.stats().writes, 0u);
  }
  std::filesystem::remove_all(root);
}

TEST(SolveEngine, LearnedNogoodsAreNeverSubsetsOfOracleWitnesses) {
  // Refutation soundness, differential form: a learned nogood claims its
  // assignments are jointly unextendable, so no oracle witness may satisfy
  // all of them at once.
  const std::vector<DecideRequest> picks = {
      {Model::kAsync, 3, 1, 2, 0, 1},
      {Model::kSync, 3, 2, 2, 0, 1},
      {Model::kAsync, 4, 1, 2, 0, 1},
  };
  core::SearchOptions oracle_options;
  oracle_options.node_limit = 2'000'000;
  for (const DecideRequest& request : picks) {
    SCOPED_TRACE(request_name(request));
    const store::DecisionRecord oracle = decide_seq(request, oracle_options);
    if (!oracle.exhausted || !oracle.solvable) continue;
    const std::unique_ptr<Instance> instance = build_instance(request);
    EngineOptions options;
    options.stage = EngineStage::kLearn;
    options.collect_nogoods = true;
    options.canonical_witness = false;
    const SolveOutcome outcome = solve(instance->problem, options);
    ASSERT_TRUE(outcome.exhausted);

    std::map<topology::VertexId, std::int64_t> witness(
        oracle.witness.begin(), oracle.witness.end());
    for (const std::vector<Lit>& nogood : outcome.learned) {
      bool all_match = !nogood.empty();
      for (const Lit& lit : nogood) {
        const topology::VertexId vertex =
            instance->problem.vertex_ids[static_cast<std::size_t>(
                lit.vertex)];
        const std::int64_t value =
            instance->problem.value_of[static_cast<std::size_t>(lit.value)];
        if (witness.at(vertex) != value) {
          all_match = false;
          break;
        }
      }
      EXPECT_FALSE(all_match)
          << "learned nogood is satisfied by the oracle witness";
    }
  }
}

TEST(SolveHardInstance, EngineDecidesWhereTheOracleDrowns) {
  // 2-set agreement over 3 IIS processes is unsolvable (more processes
  // than k), but the seed backtracker must enumerate an enormous branch
  // space to prove it: it returns undecided at a 200k-node budget here,
  // and at the 2M-node budget the differential suite uses it burns minutes
  // without exhausting. The engine's propagation plus symmetric learning
  // refutes the instance outright — this is the separation the engine
  // exists for. The verdict asserted is the known impossibility, so a
  // compilation bug that dropped constraints (making the instance
  // spuriously solvable) fails here even without an oracle to compare to.
  const DecideRequest request{Model::kIis, 3, 0, 2, 0, 1};
  core::SearchOptions oracle_options;
  oracle_options.node_limit = 200'000;
  const store::DecisionRecord oracle = decide_seq(request, oracle_options);
  EXPECT_FALSE(oracle.exhausted);

  const std::unique_ptr<Instance> instance = build_instance(request);
  for (const EngineStage stage :
       {EngineStage::kLearn, EngineStage::kPortfolio}) {
    SCOPED_TRACE(stage_name(stage));
    const SolveOutcome outcome =
        solve(instance->problem, stage_options(stage, test_seed(7)));
    EXPECT_TRUE(outcome.exhausted);
    EXPECT_FALSE(outcome.solvable);
  }
}

TEST(SolveDecide, RejectsNonsenseParameters) {
  EXPECT_THROW(decide({Model::kAsync, 0, 0, 1, 0, 1}), std::invalid_argument);
  EXPECT_THROW(decide({Model::kAsync, 3, 1, 0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(decide({Model::kAsync, 3, 1, 1, 0, 0}), std::invalid_argument);
  EXPECT_THROW(decide({Model::kAsync, 3, -1, 1, 0, 1}),
               std::invalid_argument);
}

TEST(SolveDecide, ModelNamesRoundTrip) {
  for (const Model model :
       {Model::kAsync, Model::kSync, Model::kSemiSync, Model::kIis}) {
    EXPECT_EQ(parse_model(model_name(model)), model);
  }
  EXPECT_FALSE(parse_model("pseudosphere").has_value());
}

}  // namespace
}  // namespace psph::solve
