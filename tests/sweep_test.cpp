// Tests for the resumable sweep engine: cold/warm cache behaviour, manifest
// contents, kill-resume (a compute exception aborts the run; rerunning the
// same sweep resumes past everything already persisted), and byte-identical
// results between cold and warm passes.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "store/serialize.h"
#include "sweep/sweep.h"
#include "util/parallel.h"

namespace psph {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("psph_sweep_test." + std::to_string(::getpid()) + "." +
             std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::vector<sweep::JobSpec> grid_jobs(int count) {
  std::vector<sweep::JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    jobs.push_back({"test/square", {i, i + 1}, {}});
  }
  return jobs;
}

// Seals i64(params[0] * params[0]) — cheap, deterministic, verifiable.
std::vector<std::uint8_t> square_job(const sweep::JobSpec& spec,
                                     std::size_t /*index*/) {
  store::ByteWriter out;
  out.i64(spec.params[0] * spec.params[0]);
  return store::seal(store::PayloadKind::kRawBytes, out.bytes());
}

std::int64_t unseal_i64(const std::vector<std::uint8_t>& bytes) {
  // ByteReader aliases the payload, so it must outlive the reader.
  const std::vector<std::uint8_t> payload =
      store::unseal(bytes, store::PayloadKind::kRawBytes);
  store::ByteReader in(payload);
  const std::int64_t value = in.i64();
  in.expect_done("sweep_test payload");
  return value;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

TEST(JobSpec, KeyAndJsonRendering) {
  const sweep::JobSpec a{"test/kind", {3, -1, 12}, {}};
  EXPECT_EQ(a.params_json(), "[3,-1,12]");
  EXPECT_EQ(sweep::JobSpec{}.params_json(), "[]");
  const sweep::JobSpec same{"test/kind", {3, -1, 12}, {}};
  EXPECT_EQ(a.key_builder().key().hex(), same.key_builder().key().hex());
  const sweep::JobSpec extra{"test/kind", {3, -1, 12}, {0xaa}};
  EXPECT_NE(a.key_builder().key().hex(), extra.key_builder().key().hex());
}

TEST(Sweep, UncachedEngineComputesEverythingInOrder) {
  sweep::SweepEngine engine({});
  EXPECT_FALSE(engine.caching());
  std::atomic<int> calls{0};
  const std::vector<sweep::JobSpec> jobs = grid_jobs(5);
  const auto results =
      engine.run(jobs, [&calls](const sweep::JobSpec& spec, std::size_t i) {
        calls.fetch_add(1);
        return square_job(spec, i);
      });
  EXPECT_EQ(calls.load(), 5);
  ASSERT_EQ(results.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(unseal_i64(results[static_cast<std::size_t>(i)]), i * i);
  }
  EXPECT_EQ(engine.stats().jobs, 5u);
  EXPECT_EQ(engine.stats().computed, 5u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

TEST(Sweep, WarmRunIsAllHitsAndByteIdentical) {
  TempDir dir;
  const std::vector<sweep::JobSpec> jobs = grid_jobs(6);
  std::atomic<int> calls{0};
  const auto compute = [&calls](const sweep::JobSpec& spec, std::size_t i) {
    calls.fetch_add(1);
    return square_job(spec, i);
  };

  sweep::SweepEngine cold({.cache_dir = dir.str()});
  const auto cold_results = cold.run(jobs, compute);
  EXPECT_EQ(calls.load(), 6);
  EXPECT_EQ(cold.stats().computed, 6u);
  EXPECT_EQ(cold.stats().resumed, 0u);

  sweep::SweepEngine warm({.cache_dir = dir.str()});
  const auto warm_results = warm.run(jobs, compute);
  EXPECT_EQ(calls.load(), 6) << "warm run must not recompute";
  EXPECT_EQ(warm.stats().cache_hits, 6u);
  EXPECT_EQ(warm.stats().computed, 0u);
  EXPECT_EQ(warm.stats().resumed, 6u);
  EXPECT_EQ(warm_results, cold_results);
}

TEST(Sweep, ManifestHasOneFlushedLinePerJob) {
  TempDir dir;
  const std::vector<sweep::JobSpec> jobs = grid_jobs(4);
  sweep::SweepEngine engine({.cache_dir = dir.str()});
  engine.run(jobs, square_job);
  EXPECT_EQ(engine.manifest_path(),
            (dir.path() / "manifest.jsonl").string());

  const std::string manifest = slurp(engine.manifest_path());
  std::size_t lines = 0;
  std::istringstream stream(manifest);
  std::string line;
  while (std::getline(stream, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"kind\":\"test/square\""), std::string::npos);
    EXPECT_NE(line.find("\"cached\":false"), std::string::npos);
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(manifest.find("\"params\":[2,3]"), std::string::npos);

  // A warm pass does not duplicate lines for already-logged jobs.
  sweep::SweepEngine warm({.cache_dir = dir.str()});
  warm.run(jobs, square_job);
  std::size_t warm_lines = 0;
  std::istringstream warm_stream(slurp(engine.manifest_path()));
  while (std::getline(warm_stream, line)) ++warm_lines;
  EXPECT_EQ(warm_lines, 4u);
}

TEST(Sweep, KillResumeLosesOnlyInFlightJobs) {
  TempDir dir;
  util::set_thread_count(1);  // sequential: deterministic abort point
  const std::vector<sweep::JobSpec> jobs = grid_jobs(5);

  // First invocation "dies" after persisting jobs 0 and 1.
  sweep::SweepEngine dying({.cache_dir = dir.str()});
  std::atomic<int> first_calls{0};
  EXPECT_THROW(
      dying.run(jobs,
                [&first_calls](const sweep::JobSpec& spec, std::size_t i) {
                  if (i >= 2) throw std::runtime_error("killed");
                  first_calls.fetch_add(1);
                  return square_job(spec, i);
                }),
      std::runtime_error);
  EXPECT_EQ(first_calls.load(), 2);

  // Rerunning the same command resumes: only jobs 2..4 recompute.
  sweep::SweepEngine resumed({.cache_dir = dir.str()});
  std::atomic<int> second_calls{0};
  const auto results = resumed.run(
      jobs, [&second_calls](const sweep::JobSpec& spec, std::size_t i) {
        second_calls.fetch_add(1);
        return square_job(spec, i);
      });
  EXPECT_EQ(second_calls.load(), 3);
  EXPECT_EQ(resumed.stats().cache_hits, 2u);
  EXPECT_EQ(resumed.stats().computed, 3u);
  EXPECT_EQ(resumed.stats().resumed, 2u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(unseal_i64(results[static_cast<std::size_t>(i)]), i * i);
  }
  util::set_thread_count(0);
}

TEST(Sweep, TornManifestLineIsIgnoredOnResume) {
  TempDir dir;
  const std::vector<sweep::JobSpec> jobs = grid_jobs(3);
  {
    sweep::SweepEngine engine({.cache_dir = dir.str()});
    engine.run(jobs, square_job);
  }
  // Simulate a kill mid-append: a torn, newline-less fragment at the end.
  {
    std::ofstream manifest(dir.path() / "manifest.jsonl",
                           std::ios::binary | std::ios::app);
    manifest << "{\"key\":\"0123";
  }
  sweep::SweepEngine engine({.cache_dir = dir.str()});
  const auto results = engine.run(jobs, square_job);
  EXPECT_EQ(engine.stats().cache_hits, 3u);
  EXPECT_EQ(results.size(), 3u);
}

TEST(Sweep, ManifestLinesCarrySchemaVersion) {
  TempDir dir;
  sweep::SweepEngine engine({.cache_dir = dir.str()});
  engine.run(grid_jobs(3), square_job);
  std::istringstream stream(slurp(engine.manifest_path()));
  std::string line;
  std::size_t lines = 0;
  while (std::getline(stream, line)) {
    ++lines;
    EXPECT_EQ(line.rfind("{\"v\":1,\"key\":\"", 0), 0u) << line;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(Sweep, CorruptManifestLinesAreSkippedAndCounted) {
  TempDir dir;
  const std::vector<sweep::JobSpec> jobs = grid_jobs(3);
  {
    sweep::SweepEngine engine({.cache_dir = dir.str()});
    engine.run(jobs, square_job);
  }
  // Damage the manifest: plain garbage, a v1 line with a malformed key, a
  // torn legacy fragment, and a blank line (blank is tolerated silently).
  {
    std::ofstream manifest(dir.path() / "manifest.jsonl",
                           std::ios::binary | std::ios::app);
    manifest << "complete nonsense, not even JSON\n";
    manifest << "{\"v\":1,\"key\":\"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz\","
                "\"kind\":\"x\"}\n";
    manifest << "{\"key\":\"0123\n";
    manifest << "\n";
  }
  sweep::SweepEngine engine({.cache_dir = dir.str()});
  EXPECT_EQ(engine.stats().manifest_rejected, 3u);
  const auto results = engine.run(jobs, square_job);
  EXPECT_EQ(results.size(), 3u);
  EXPECT_EQ(engine.stats().cache_hits, 3u);
  EXPECT_EQ(engine.stats().resumed, 3u);
  EXPECT_NE(engine.stats().to_string().find("3 manifest lines rejected"),
            std::string::npos);
}

TEST(Sweep, LegacyManifestLinesStillAccepted) {
  TempDir dir;
  const std::vector<sweep::JobSpec> jobs = grid_jobs(3);
  std::string manifest_path;
  {
    sweep::SweepEngine engine({.cache_dir = dir.str()});
    engine.run(jobs, square_job);
    manifest_path = engine.manifest_path();
  }
  // Rewrite the manifest in the pre-versioning format (no "v" field), as a
  // sweep from an older build would have left it.
  std::string legacy;
  {
    std::istringstream stream(slurp(manifest_path));
    std::string line;
    const std::string v1_prefix = "{\"v\":1,";
    while (std::getline(stream, line)) {
      ASSERT_EQ(line.rfind(v1_prefix, 0), 0u);
      legacy += "{" + line.substr(v1_prefix.size()) + "\n";
    }
  }
  {
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    out << legacy;
  }
  sweep::SweepEngine engine({.cache_dir = dir.str()});
  EXPECT_EQ(engine.stats().manifest_rejected, 0u);
  engine.run(jobs, square_job);
  EXPECT_EQ(engine.stats().cache_hits, 3u);
  EXPECT_EQ(engine.stats().resumed, 3u);
}

TEST(Sweep, TypedRunSweepRoundTrips) {
  TempDir dir;
  std::vector<sweep::JobSpec> jobs;
  for (int i = 1; i <= 4; ++i) jobs.push_back({"test/cube", {i}, {}});
  const auto compute = [](const sweep::JobSpec& spec, std::size_t) {
    return spec.params[0] * spec.params[0] * spec.params[0];
  };
  const auto serialize = [](std::int64_t value) {
    store::ByteWriter out;
    out.i64(value);
    return store::seal(store::PayloadKind::kRawBytes, out.bytes());
  };
  const auto deserialize = [](const std::vector<std::uint8_t>& bytes) {
    return unseal_i64(bytes);
  };

  sweep::SweepEngine cold({.cache_dir = dir.str()});
  const std::vector<std::int64_t> cold_values = sweep::run_sweep<std::int64_t>(
      cold, jobs, compute, serialize, deserialize);
  sweep::SweepEngine warm({.cache_dir = dir.str()});
  const std::vector<std::int64_t> warm_values = sweep::run_sweep<std::int64_t>(
      warm, jobs, compute, serialize, deserialize);
  const std::vector<std::int64_t> expected{1, 8, 27, 64};
  EXPECT_EQ(cold_values, expected);
  EXPECT_EQ(warm_values, expected);
  EXPECT_EQ(warm.stats().cache_hits, 4u);
}

TEST(Sweep, StatsToStringMentionsTheCounters) {
  TempDir dir;
  sweep::SweepEngine engine({.cache_dir = dir.str()});
  engine.run(grid_jobs(2), square_job);
  const std::string text = engine.stats().to_string();
  EXPECT_NE(text.find("2 jobs"), std::string::npos);
  EXPECT_NE(text.find("2 computed"), std::string::npos);
  EXPECT_NE(text.find("0 cache hits"), std::string::npos);
}

}  // namespace
}  // namespace psph
