// Smoke test for the cached-sweep pipeline, registered directly with ctest
// (no gtest): runs a tiny real connectivity sweep twice against a fresh
// cache directory and asserts the second pass is 100% cache hits with
// byte-identical results. Exercises the same store/sweep path the bench
// binaries use under --cache-dir.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/theorems.h"
#include "store/serialize.h"
#include "sweep/sweep.h"

namespace fs = std::filesystem;

int main() {
  using psph::core::ConnectivityCheck;
  namespace store = psph::store;
  namespace sweep = psph::sweep;

  const fs::path dir = fs::temp_directory_path() /
                       ("psph_sweep_smoke." + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  // A tiny corner of the Lemma 12 grid (n, participants, f, r) — small
  // enough to finish in well under a second, real enough to run the
  // homology engine.
  std::vector<sweep::JobSpec> jobs;
  for (const int n : {2, 3}) {
    for (const int r : {1, 2}) {
      jobs.push_back({"smoke/async-connectivity", {n, n, 1, r}, {}});
    }
  }
  const auto compute = [](const sweep::JobSpec& spec, std::size_t) {
    return psph::core::check_async_connectivity(
        static_cast<int>(spec.params[0]), static_cast<int>(spec.params[1]),
        static_cast<int>(spec.params[2]), static_cast<int>(spec.params[3]));
  };

  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "FAIL: %s\n", what);
    }
  };

  sweep::SweepEngine cold({.cache_dir = dir.string()});
  const std::vector<ConnectivityCheck> cold_rows =
      sweep::run_sweep<ConnectivityCheck>(
          cold, jobs, compute, store::serialize_connectivity_check,
          store::deserialize_connectivity_check);
  check(cold.stats().computed == jobs.size(), "cold pass computes every job");
  check(cold.stats().cache_hits == 0, "cold pass has no hits");

  sweep::SweepEngine warm({.cache_dir = dir.string()});
  const std::vector<ConnectivityCheck> warm_rows =
      sweep::run_sweep<ConnectivityCheck>(
          warm, jobs, compute, store::serialize_connectivity_check,
          store::deserialize_connectivity_check);
  check(warm.stats().cache_hits == jobs.size(),
        "warm pass is 100% cache hits");
  check(warm.stats().computed == 0, "warm pass computes nothing");

  check(warm_rows.size() == cold_rows.size(), "row counts match");
  for (std::size_t i = 0; i < cold_rows.size() && i < warm_rows.size(); ++i) {
    const ConnectivityCheck& a = cold_rows[i];
    const ConnectivityCheck& b = warm_rows[i];
    check(a.measured == b.measured && a.expected == b.expected &&
              a.satisfied == b.satisfied && a.facet_count == b.facet_count &&
              a.vertex_count == b.vertex_count && a.dimension == b.dimension,
          "warm row identical to cold row");
    check(a.satisfied, "connectivity bound holds on smoke grid");
  }

  fs::remove_all(dir);
  std::printf("sweep_smoke: %s (%d jobs, warm hits %zu)\n",
              failures == 0 ? "PASS" : "FAIL", static_cast<int>(jobs.size()),
              warm.stats().cache_hits);
  return failures == 0 ? 0 : 1;
}
