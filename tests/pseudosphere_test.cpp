// Tests for Definition 3 and Lemma 4: pseudosphere construction, its
// combinatorial identities, sphere topology (Figures 1 and 2), Corollaries
// 6 and 8 (connectivity), plus the interned view registry they build on.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/pseudosphere.h"
#include "core/view.h"
#include "topology/homology.h"
#include "topology/isomorphism.h"
#include "topology/operations.h"
#include "util/random.h"

namespace psph::core {
namespace {

using topology::HomologyReport;
using topology::SimplicialComplex;
using topology::VertexArena;

std::vector<StateId> states(std::initializer_list<StateId> values) {
  return std::vector<StateId>(values);
}

// ------------------------------------------------------------------ views --

TEST(ViewRegistry, InternInputIdempotent) {
  ViewRegistry views;
  const StateId a = views.intern_input(0, 7);
  const StateId b = views.intern_input(0, 7);
  const StateId c = views.intern_input(1, 7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(views.round(a), 0);
  EXPECT_EQ(views.pid(c), 1);
}

TEST(ViewRegistry, InternRoundNormalizesOrder) {
  ViewRegistry views;
  const StateId s0 = views.intern_input(0, 1);
  const StateId s1 = views.intern_input(1, 2);
  const StateId a = views.intern_round(0, 1, {{0, s0, kNoMicro}, {1, s1, kNoMicro}});
  const StateId b = views.intern_round(0, 1, {{1, s1, kNoMicro}, {0, s0, kNoMicro}});
  EXPECT_EQ(a, b);
}

TEST(ViewRegistry, InternRoundRejectsBadInput) {
  ViewRegistry views;
  const StateId s0 = views.intern_input(0, 1);
  EXPECT_THROW(views.intern_round(0, 0, {{0, s0, kNoMicro}}),
               std::invalid_argument);
  EXPECT_THROW(
      views.intern_round(0, 1, {{0, s0, kNoMicro}, {0, s0, kNoMicro}}),
      std::invalid_argument);
}

TEST(ViewRegistry, InputsSeenTransitive) {
  ViewRegistry views;
  const StateId s0 = views.intern_input(0, 10);
  const StateId s1 = views.intern_input(1, 20);
  const StateId s2 = views.intern_input(2, 30);
  // Round 1: P0 heard P0, P1. Round 2: P2 heard its own round-1 state and
  // P0's round-1 state.
  const StateId r1 =
      views.intern_round(0, 1, {{0, s0, kNoMicro}, {1, s1, kNoMicro}});
  const StateId r1self = views.intern_round(2, 1, {{2, s2, kNoMicro}});
  const StateId r2 =
      views.intern_round(2, 2, {{2, r1self, kNoMicro}, {0, r1, kNoMicro}});
  const std::set<std::int64_t> expect{10, 20, 30};
  EXPECT_EQ(views.inputs_seen(r2), expect);
  EXPECT_EQ(views.min_input_seen(r2), 10);
}

TEST(ViewRegistry, DirectSenders) {
  ViewRegistry views;
  const StateId s0 = views.intern_input(0, 1);
  const StateId s1 = views.intern_input(1, 2);
  const StateId r1 =
      views.intern_round(0, 1, {{0, s0, kNoMicro}, {1, s1, kNoMicro}});
  EXPECT_EQ(views.direct_senders(r1), (std::set<ProcessId>{0, 1}));
  EXPECT_EQ(views.direct_senders(s0), (std::set<ProcessId>{0}));
}

TEST(ViewRegistry, ToStringIsReadable) {
  ViewRegistry views;
  const StateId s0 = views.intern_input(0, 5);
  EXPECT_EQ(views.to_string(s0), "P0@r0=5");
  const StateId r1 = views.intern_round(1, 1, {{0, s0, 3}});
  EXPECT_EQ(views.to_string(r1), "P1@r1<P0u3:P0@r0=5>");
}

// ----------------------------------------------------------- construction --

TEST(Pseudosphere, Figure1BinaryThreeProcesses) {
  // ψ(Δ²; {0,1}): 6 vertices, 8 facets, topologically S².
  VertexArena arena;
  const SimplicialComplex psi =
      pseudosphere_uniform({0, 1, 2}, states({0, 1}), arena);
  EXPECT_EQ(psi.facet_count(), 8u);
  EXPECT_EQ(psi.count_of_dim(0), 6u);
  EXPECT_TRUE(psi.is_pure());
  const HomologyReport h = topology::reduced_homology(psi, {.max_dim = 2});
  EXPECT_EQ(h.reduced_betti[0], 0);
  EXPECT_EQ(h.reduced_betti[1], 0);
  EXPECT_EQ(h.reduced_betti[2], 1);
}

TEST(Pseudosphere, BinarySpheresUpToDim4) {
  // ψ(Δ^n; {0,1}) ≅ S^n for n = 1..4 (checked homologically).
  for (int n = 1; n <= 4; ++n) {
    VertexArena arena;
    std::vector<ProcessId> pids;
    for (int i = 0; i <= n; ++i) pids.push_back(i);
    const SimplicialComplex psi =
        pseudosphere_uniform(pids, states({0, 1}), arena);
    EXPECT_EQ(psi.facet_count(), 1u << (n + 1));
    const topology::HomologyReport h =
        topology::reduced_homology(psi, {.max_dim = n});
    for (int d = 0; d < n; ++d) {
      EXPECT_EQ(h.reduced_betti[static_cast<std::size_t>(d)], 0)
          << "n=" << n << " d=" << d;
    }
    EXPECT_EQ(h.reduced_betti[static_cast<std::size_t>(n)], 1) << "n=" << n;
  }
}

TEST(Pseudosphere, Figure2TwoProcesses) {
  // ψ(S¹; {0,1}) is a 4-cycle (the 1-sphere); ψ(S¹; {0,1,2}) is K_{3,3}
  // with β̃₁ = 4.
  VertexArena arena;
  const SimplicialComplex a =
      pseudosphere_uniform({0, 1}, states({0, 1}), arena);
  EXPECT_EQ(a.facet_count(), 4u);
  EXPECT_EQ(a.count_of_dim(0), 4u);
  const HomologyReport ha = topology::reduced_homology(a, {.max_dim = 1});
  EXPECT_EQ(ha.reduced_betti[0], 0);
  EXPECT_EQ(ha.reduced_betti[1], 1);

  const SimplicialComplex b =
      pseudosphere_uniform({0, 1}, states({0, 1, 2}), arena);
  EXPECT_EQ(b.facet_count(), 9u);
  EXPECT_EQ(b.count_of_dim(0), 6u);
  const HomologyReport hb = topology::reduced_homology(b, {.max_dim = 1});
  EXPECT_EQ(hb.reduced_betti[0], 0);
  EXPECT_EQ(hb.reduced_betti[1], 4);
}

TEST(Pseudosphere, FacetCountFormula) {
  VertexArena arena;
  const std::vector<std::vector<StateId>> sets{
      {1, 2, 3}, {4, 5}, {6, 7, 8, 9}};
  const SimplicialComplex psi = pseudosphere({0, 1, 2}, sets, arena);
  EXPECT_EQ(psi.facet_count(), 24u);
  EXPECT_EQ(pseudosphere_facet_count(sets), 24u);
}

TEST(Pseudosphere, RejectsBadArguments) {
  VertexArena arena;
  EXPECT_THROW(pseudosphere({0, 0}, {{1}, {2}}, arena),
               std::invalid_argument);
  EXPECT_THROW(pseudosphere({0}, {{1}, {2}}, arena), std::invalid_argument);
}

// ------------------------------------------------------------- Lemma 4 ----

TEST(Lemma4, SingletonSetsGiveTheSimplex) {
  // Property 1: if every U_i is a singleton, ψ(S; U) ≅ S.
  VertexArena arena;
  const SimplicialComplex psi =
      pseudosphere({0, 1, 2}, {{7}, {8}, {9}}, arena);
  EXPECT_EQ(psi.facet_count(), 1u);
  EXPECT_EQ(psi.dimension(), 2);
}

TEST(Lemma4, EmptyValueSetDeletesPosition) {
  // Property 2: U_i = ∅ gives ψ of the face omitting position i.
  VertexArena arena;
  const SimplicialComplex with_empty =
      pseudosphere({0, 1, 2}, {{1, 2}, {}, {3, 4}}, arena);
  const SimplicialComplex without_position =
      pseudosphere({0, 2}, {{1, 2}, {3, 4}}, arena);
  EXPECT_EQ(with_empty, without_position);
}

TEST(Lemma4, AllEmptyGivesEmptyComplex) {
  VertexArena arena;
  const SimplicialComplex psi = pseudosphere({0, 1}, {{}, {}}, arena);
  EXPECT_TRUE(psi.empty());
}

TEST(Lemma4, IntersectionIsPositionwise) {
  // Property 3: ψ(S⁰; U₀..) ∩ ψ(S¹; U₀..) ≅ ψ(S⁰∩S¹; U₀∩V₀, ...).
  // With one shared arena the isomorphism is literal equality.
  VertexArena arena;
  // S⁰ on pids {0,1,2}, S¹ on pids {1,2,3}; value sets overlap partially.
  const SimplicialComplex psi0 =
      pseudosphere({0, 1, 2}, {{1, 2}, {1, 2, 3}, {5}}, arena);
  const SimplicialComplex psi1 =
      pseudosphere({1, 2, 3}, {{2, 3}, {5, 6}, {7}}, arena);
  // Common pids {1, 2}; per-pid value-set meets: {1,2,3}∩{2,3} = {2,3} and
  // {5}∩{5,6} = {5}.
  const SimplicialComplex expected =
      pseudosphere({1, 2}, {{2, 3}, {5}}, arena);
  EXPECT_EQ(topology::intersection_of(psi0, psi1), expected);
}

TEST(Lemma4, IntersectionEmptyWhenValueSetsDisjoint) {
  VertexArena arena;
  const SimplicialComplex psi0 =
      pseudosphere({0, 1}, {{1}, {2}}, arena);
  const SimplicialComplex psi1 =
      pseudosphere({0, 1}, {{3}, {4}}, arena);
  EXPECT_TRUE(topology::intersection_of(psi0, psi1).empty());
}

TEST(Lemma4, RandomizedIntersectionProperty) {
  util::Rng rng(997);
  for (int trial = 0; trial < 25; ++trial) {
    VertexArena arena;
    // Two pid sets drawn from {0..4} with nonempty overlap.
    const std::vector<int> pids_a = rng.sample_without_replacement(5, 3);
    const std::vector<int> pids_b = rng.sample_without_replacement(5, 3);
    // Per-pid value sets over a small universe so overlaps are common.
    const auto draw_values = [&](int count) {
      std::vector<StateId> vals;
      for (StateId v = 0; v < 5; ++v) {
        if (static_cast<int>(vals.size()) < count && rng.next_bool(0.6)) {
          vals.push_back(v);
        }
      }
      if (vals.empty()) vals.push_back(rng.next_below(5));
      return vals;
    };
    std::vector<ProcessId> pa(pids_a.begin(), pids_a.end());
    std::vector<ProcessId> pb(pids_b.begin(), pids_b.end());
    // Value sets are chosen per *pid* so shared pids have coherent universes.
    std::vector<std::vector<StateId>> va, vb;
    std::vector<std::vector<StateId>> per_pid(5);
    for (auto& v : per_pid) v = draw_values(4);
    std::vector<std::vector<StateId>> per_pid_b(5);
    for (auto& v : per_pid_b) v = draw_values(4);
    for (ProcessId p : pa) va.push_back(per_pid[static_cast<std::size_t>(p)]);
    for (ProcessId p : pb) vb.push_back(per_pid_b[static_cast<std::size_t>(p)]);

    VertexArena shared;
    const SimplicialComplex psi_a = pseudosphere(pa, va, shared);
    const SimplicialComplex psi_b = pseudosphere(pb, vb, shared);

    // Expected: pseudosphere on common pids with intersected value sets.
    std::vector<ProcessId> common;
    std::vector<std::vector<StateId>> common_vals;
    for (ProcessId p : pa) {
      if (std::find(pb.begin(), pb.end(), p) == pb.end()) continue;
      common.push_back(p);
      std::vector<StateId> meet;
      for (StateId v : per_pid[static_cast<std::size_t>(p)]) {
        const auto& other = per_pid_b[static_cast<std::size_t>(p)];
        if (std::find(other.begin(), other.end(), v) != other.end()) {
          meet.push_back(v);
        }
      }
      common_vals.push_back(std::move(meet));
    }
    const SimplicialComplex expected =
        pseudosphere(common, common_vals, shared);
    EXPECT_EQ(topology::intersection_of(psi_a, psi_b), expected)
        << "trial " << trial;
  }
}

TEST(Pseudosphere, WedgeOfSpheresHomology) {
  // ψ(S^m; U_0..U_m) is homotopy equivalent to a wedge of m-spheres: all
  // reduced homology vanishes except the top dimension, where
  // β̃_m = Π(|U_i| - 1). (Figure 1 is the case Π = 1; Figure 2's |V| = 3
  // instance is Π = 4.) Verified over a randomized sweep.
  util::Rng rng(515);
  for (int trial = 0; trial < 15; ++trial) {
    VertexArena arena;
    const int m1 = 2 + static_cast<int>(rng.next_below(3));
    std::vector<ProcessId> pids;
    std::vector<std::vector<StateId>> sets;
    long long expected_top = 1;
    for (int i = 0; i < m1; ++i) {
      pids.push_back(i);
      const int size = 1 + static_cast<int>(rng.next_below(3));
      std::vector<StateId> values;
      for (int v = 0; v < size; ++v) {
        values.push_back(static_cast<StateId>(10 * i + v));
      }
      expected_top *= size - 1;
      sets.push_back(std::move(values));
    }
    const SimplicialComplex psi = pseudosphere(pids, sets, arena);
    const HomologyReport h =
        topology::reduced_homology(psi, {.max_dim = m1 - 1});
    for (int d = 0; d < m1 - 1; ++d) {
      EXPECT_EQ(h.reduced_betti[static_cast<std::size_t>(d)], 0)
          << "trial " << trial << " d=" << d;
    }
    EXPECT_EQ(h.reduced_betti[static_cast<std::size_t>(m1 - 1)],
              expected_top)
        << "trial " << trial;
  }
}

// ------------------------------------------------- Corollaries 6 and 8 ----

TEST(Corollary6, PseudospheresAreHighlyConnected) {
  // ψ(S^m; U₀..U_m) is (m-1)-connected for nonempty U_i.
  util::Rng rng(1009);
  for (int m = 0; m <= 3; ++m) {
    VertexArena arena;
    std::vector<ProcessId> pids;
    std::vector<std::vector<StateId>> sets;
    for (int i = 0; i <= m; ++i) {
      pids.push_back(i);
      std::vector<StateId> values;
      const int size = 1 + static_cast<int>(rng.next_below(3));
      for (int v = 0; v < size; ++v) {
        values.push_back(static_cast<StateId>(10 * i + v));
      }
      sets.push_back(std::move(values));
    }
    const SimplicialComplex psi = pseudosphere(pids, sets, arena);
    EXPECT_GE(topology::homological_connectivity(psi, m - 1), m - 1)
        << "m=" << m;
  }
}

TEST(Corollary8, UnionWithCommonValueIsConnected) {
  // ∪_i ψ(S^m; A_i) is (m-1)-connected when ∩ A_i ≠ ∅.
  VertexArena arena;
  const std::vector<ProcessId> pids{0, 1, 2};
  const std::vector<std::vector<StateId>> families{
      {0, 1}, {0, 2}, {0, 3}};  // common value 0
  SimplicialComplex u;
  for (const auto& family : families) {
    u.merge(pseudosphere_uniform(pids, family, arena));
  }
  EXPECT_GE(topology::homological_connectivity(u, 1), 1);
}

TEST(Corollary8, UnionWithoutCommonValueCanDisconnect) {
  // Sanity check of the hypothesis: two pseudospheres with disjoint value
  // sets do not even share a vertex.
  VertexArena arena;
  const std::vector<ProcessId> pids{0, 1};
  SimplicialComplex u = pseudosphere_uniform(pids, {0}, arena);
  u.merge(pseudosphere_uniform(pids, {1}, arena));
  EXPECT_EQ(topology::homological_connectivity(u, 0), -1);  // disconnected
}

// -------------------------------------------------------- input complexes --

TEST(InputComplex, IsPseudosphereOverValues) {
  ViewRegistry views;
  VertexArena arena;
  const SimplicialComplex inputs = input_complex(3, {0, 1, 2}, views, arena);
  EXPECT_EQ(inputs.facet_count(), 27u);
  EXPECT_EQ(inputs.count_of_dim(0), 9u);
  // (n-1)-connected by Corollary 6 (n = 2 here, so 1-connected).
  EXPECT_GE(topology::homological_connectivity(inputs, 1), 1);
}

TEST(InputComplex, RejectsBadArguments) {
  ViewRegistry views;
  VertexArena arena;
  EXPECT_THROW(input_complex(0, {0}, views, arena), std::invalid_argument);
  EXPECT_THROW(input_complex(2, {}, views, arena), std::invalid_argument);
}

TEST(InputFacet, LabelsMatch) {
  ViewRegistry views;
  VertexArena arena;
  const topology::Simplex facet = input_facet({5, 6, 7}, views, arena);
  ASSERT_EQ(facet.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& label = arena.label(facet[i]);
    EXPECT_EQ(label.pid, static_cast<ProcessId>(i));
    EXPECT_EQ(views.view(label.state).input, 5 + static_cast<int>(i));
  }
}

}  // namespace
}  // namespace psph::core
