// Tests for the CLI flag parser (happy paths; the exit-on-error paths are
// exercised manually by the example binaries) and the trace renderer.

#include <gtest/gtest.h>

#include <vector>

#include "core/view.h"
#include "sim/trace.h"
#include "util/cli.h"

namespace psph {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  for (std::string& arg : args) argv.push_back(arg.data());
  return argv;
}

TEST(Cli, ParsesAllTypes) {
  util::Cli cli("test", "test");
  int i = 1;
  std::int64_t big = 2;
  double d = 3.0;
  bool flag = false;
  std::string s = "default";
  cli.flag("i", &i, "int");
  cli.flag("big", &big, "int64");
  cli.flag("d", &d, "double");
  cli.flag("flag", &flag, "bool");
  cli.flag("s", &s, "string");

  std::vector<std::string> args{"prog",         "--i=42",   "--big",
                                "123456789012", "--d=2.5",  "--flag",
                                "--s",          "hello",    "positional"};
  std::vector<char*> argv = argv_of(args);
  const std::vector<std::string> positional =
      cli.parse(static_cast<int>(argv.size()), argv.data());

  EXPECT_EQ(i, 42);
  EXPECT_EQ(big, 123456789012LL);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(flag);
  EXPECT_EQ(s, "hello");
  ASSERT_EQ(positional.size(), 1u);
  EXPECT_EQ(positional[0], "positional");
}

TEST(Cli, BoolAcceptsExplicitValues) {
  util::Cli cli("test", "test");
  bool a = true, b = false;
  cli.flag("a", &a, "bool a");
  cli.flag("b", &b, "bool b");
  std::vector<std::string> args{"prog", "--a=false", "--b=yes"};
  std::vector<char*> argv = argv_of(args);
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
}

TEST(Cli, UsageListsFlagsAndDefaults) {
  util::Cli cli("myprog", "does things");
  int n = 7;
  cli.flag("n", &n, "the n value");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("myprog"), std::string::npos);
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("default: 7"), std::string::npos);
  EXPECT_NE(usage.find("the n value"), std::string::npos);
}

TEST(Trace, RenderingMentionsStatesAndDecisions) {
  core::ViewRegistry views;
  sim::Trace trace;
  trace.states.push_back({{0, views.intern_input(0, 5)}});
  trace.crashed_in.push_back({});
  trace.states.push_back({});
  trace.crashed_in.push_back({0});
  sim::DecisionEvent d;
  d.pid = 0;
  d.value = 5;
  d.round = 1;
  trace.decisions.push_back(d);
  const std::string text = trace.to_string(views);
  EXPECT_NE(text.find("P0@r0=5"), std::string::npos);
  EXPECT_NE(text.find("crashed{P0}"), std::string::npos);
  EXPECT_NE(text.find("P0 decides 5"), std::string::npos);
  EXPECT_EQ(trace.rounds(), 1);
  EXPECT_FALSE(trace.final_state(0).has_value());
}

}  // namespace
}  // namespace psph
