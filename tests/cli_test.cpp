// Tests for the CLI flag parser — happy paths via parse(), error paths via
// the non-exiting try_parse() — and the trace renderer.

#include <gtest/gtest.h>

#include <vector>

#include "core/view.h"
#include "sim/trace.h"
#include "util/cli.h"

namespace psph {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  for (std::string& arg : args) argv.push_back(arg.data());
  return argv;
}

TEST(Cli, ParsesAllTypes) {
  util::Cli cli("test", "test");
  int i = 1;
  std::int64_t big = 2;
  double d = 3.0;
  bool flag = false;
  std::string s = "default";
  cli.flag("i", &i, "int");
  cli.flag("big", &big, "int64");
  cli.flag("d", &d, "double");
  cli.flag("flag", &flag, "bool");
  cli.flag("s", &s, "string");

  std::vector<std::string> args{"prog",         "--i=42",   "--big",
                                "123456789012", "--d=2.5",  "--flag",
                                "--s",          "hello",    "positional"};
  std::vector<char*> argv = argv_of(args);
  const std::vector<std::string> positional =
      cli.parse(static_cast<int>(argv.size()), argv.data());

  EXPECT_EQ(i, 42);
  EXPECT_EQ(big, 123456789012LL);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(flag);
  EXPECT_EQ(s, "hello");
  ASSERT_EQ(positional.size(), 1u);
  EXPECT_EQ(positional[0], "positional");
}

TEST(Cli, BoolAcceptsExplicitValues) {
  util::Cli cli("test", "test");
  bool a = true, b = false;
  cli.flag("a", &a, "bool a");
  cli.flag("b", &b, "bool b");
  std::vector<std::string> args{"prog", "--a=false", "--b=yes"};
  std::vector<char*> argv = argv_of(args);
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
}

TEST(Cli, UsageListsFlagsAndDefaults) {
  util::Cli cli("myprog", "does things");
  int n = 7;
  cli.flag("n", &n, "the n value");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("myprog"), std::string::npos);
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("default: 7"), std::string::npos);
  EXPECT_NE(usage.find("the n value"), std::string::npos);
}

TEST(Cli, TryParseSucceedsOnWellFormedInput) {
  util::Cli cli("test", "test");
  int n = 1;
  cli.flag("n", &n, "int");
  std::vector<std::string> args{"prog", "--n", "9", "rest"};
  std::vector<char*> argv = argv_of(args);
  const util::Cli::ParseResult result =
      cli.try_parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(result.error.has_value());
  EXPECT_FALSE(result.help);
  EXPECT_EQ(n, 9);
  ASSERT_EQ(result.positional.size(), 1u);
  EXPECT_EQ(result.positional[0], "rest");
}

TEST(Cli, TryParseRejectsValueFlagLastOnCommandLine) {
  util::Cli cli("test", "test");
  std::string dir;
  cli.flag("cache-dir", &dir, "store root");
  std::vector<std::string> args{"prog", "--cache-dir"};
  std::vector<char*> argv = argv_of(args);
  const util::Cli::ParseResult result =
      cli.try_parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(result.error.has_value());
  EXPECT_NE(result.error->find("--cache-dir"), std::string::npos);
  EXPECT_NE(result.error->find("last on the command line"),
            std::string::npos);
  EXPECT_EQ(dir, "");  // no silent fallback
}

TEST(Cli, TryParseRejectsMalformedIntegers) {
  util::Cli cli("test", "test");
  int n = 7;
  cli.flag("n", &n, "int");
  for (const std::string bad : {"abc", "12x", "", "1.5", "0x10"}) {
    std::vector<std::string> args{"prog", "--n=" + bad};
    std::vector<char*> argv = argv_of(args);
    const util::Cli::ParseResult result =
        cli.try_parse(static_cast<int>(argv.size()), argv.data());
    ASSERT_TRUE(result.error.has_value()) << "input: '" << bad << "'";
    EXPECT_NE(result.error->find("bad value for --n"), std::string::npos);
    EXPECT_EQ(n, 7) << "target must be untouched on error";
  }
}

TEST(Cli, TryParseRejectsIntOverflowInsteadOfTruncating) {
  util::Cli cli("test", "test");
  int n = 7;
  cli.flag("n", &n, "int");
  std::vector<std::string> args{"prog", "--n=99999999999"};  // > INT_MAX
  std::vector<char*> argv = argv_of(args);
  const util::Cli::ParseResult result =
      cli.try_parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(n, 7);
}

TEST(Cli, TryParseRejectsUnknownFlagAndBadTypedValues) {
  util::Cli cli("test", "test");
  double d = 1.0;
  bool b = false;
  cli.flag("d", &d, "double");
  cli.flag("b", &b, "bool");

  std::vector<std::string> unknown{"prog", "--nope=1"};
  std::vector<char*> argv = argv_of(unknown);
  util::Cli::ParseResult result =
      cli.try_parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(result.error.has_value());
  EXPECT_NE(result.error->find("unknown flag --nope"), std::string::npos);

  std::vector<std::string> bad_double{"prog", "--d=fast"};
  argv = argv_of(bad_double);
  result = cli.try_parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(result.error.has_value());
  EXPECT_DOUBLE_EQ(d, 1.0);

  std::vector<std::string> bad_bool{"prog", "--b=maybe"};
  argv = argv_of(bad_bool);
  result = cli.try_parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(result.error.has_value());
  EXPECT_FALSE(b);
}

TEST(Cli, TryParseReportsHelpWithoutExiting) {
  util::Cli cli("test", "test");
  std::vector<std::string> args{"prog", "-h"};
  std::vector<char*> argv = argv_of(args);
  const util::Cli::ParseResult result =
      cli.try_parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(result.help);
  EXPECT_FALSE(result.error.has_value());
}

TEST(Cli, ChoiceFlagAcceptsListedValuesOnly) {
  util::Cli cli("test", "test");
  std::string model = "async";
  cli.flag_choice("model", &model, {"async", "sync", "semisync"}, "model");

  std::vector<std::string> good{"prog", "--model=sync"};
  std::vector<char*> argv = argv_of(good);
  util::Cli::ParseResult result =
      cli.try_parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(result.error.has_value());
  EXPECT_EQ(model, "sync");

  std::vector<std::string> bad{"prog", "--model=byzantine"};
  argv = argv_of(bad);
  result = cli.try_parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(result.error.has_value());
  // The error must name the accepted choices, and the rejected value must
  // not leak into the target.
  EXPECT_NE(result.error->find("semisync"), std::string::npos);
  EXPECT_EQ(model, "sync");
}

TEST(Cli, UsageListsEveryFlagWithChoicesAndDefaults) {
  util::Cli cli("test", "test");
  int n = 3;
  std::string model = "async";
  bool verbose = false;
  cli.flag("n", &n, "process count");
  cli.flag_choice("model", &model, {"async", "sync"}, "timing model");
  cli.flag("verbose", &verbose, "chatty output");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--n=<value>"), std::string::npos);
  EXPECT_NE(usage.find("--model=<async|sync>"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("(default: 3)"), std::string::npos);
  EXPECT_NE(usage.find("(default: async)"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(Cli, DoubleDashEndsFlagParsing) {
  util::Cli cli("test", "test");
  int n = 1;
  cli.flag("n", &n, "int");
  std::vector<std::string> args{"prog", "--n=5", "--", "--n=9", "-x", "bare"};
  std::vector<char*> argv = argv_of(args);
  const util::Cli::ParseResult result =
      cli.try_parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(result.error.has_value());
  EXPECT_EQ(n, 5);
  ASSERT_EQ(result.positional.size(), 3u);
  EXPECT_EQ(result.positional[0], "--n=9");
  EXPECT_EQ(result.positional[1], "-x");
  EXPECT_EQ(result.positional[2], "bare");
}

TEST(Cli, UnknownFlagSuggestsNearestName) {
  util::Cli cli("test", "test");
  int threads = 1;
  cli.flag("threads", &threads, "int");
  std::vector<std::string> args{"prog", "--thread", "4"};
  std::vector<char*> argv = argv_of(args);
  const util::Cli::ParseResult result =
      cli.try_parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(result.error.has_value());
  EXPECT_NE(result.error->find("did you mean --threads"), std::string::npos);

  // Far-away names get no suggestion.
  std::vector<std::string> far{"prog", "--zzzzzz", "4"};
  argv = argv_of(far);
  const util::Cli::ParseResult no_hint =
      cli.try_parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(no_hint.error.has_value());
  EXPECT_EQ(no_hint.error->find("did you mean"), std::string::npos);
}

TEST(Trace, RenderingMentionsStatesAndDecisions) {
  core::ViewRegistry views;
  sim::Trace trace;
  trace.states.push_back({{0, views.intern_input(0, 5)}});
  trace.crashed_in.push_back({});
  trace.states.push_back({});
  trace.crashed_in.push_back({0});
  sim::DecisionEvent d;
  d.pid = 0;
  d.value = 5;
  d.round = 1;
  trace.decisions.push_back(d);
  const std::string text = trace.to_string(views);
  EXPECT_NE(text.find("P0@r0=5"), std::string::npos);
  EXPECT_NE(text.find("crashed{P0}"), std::string::npos);
  EXPECT_NE(text.find("P0 decides 5"), std::string::npos);
  EXPECT_EQ(trace.rounds(), 1);
  EXPECT_FALSE(trace.final_state(0).has_value());
}

}  // namespace
}  // namespace psph
