// Tests for the theorem-checker layer itself: Theorems 5 and 7
// (connectivity transfer from faces to pseudospheres and their unions),
// and the ConnectivityCheck plumbing used by every bench.

#include <gtest/gtest.h>

#include <vector>

#include "core/theorems.h"

namespace psph::core {
namespace {

TEST(Theorem5, HypothesisHoldsForAsyncRound) {
  // Lemma 12 at r = 1 is exactly the hypothesis with c = n - f.
  const Theorem5Check check =
      check_theorem5_async(3, 1, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_TRUE(check.hypothesis_holds);
  EXPECT_EQ(check.c, 1);
}

TEST(Theorem5, ConclusionOnBinaryInputs) {
  // n = 2, f = 1, c = 1: P(ψ(P²; {0,1})) must be (n - c - 1) = 0-connected.
  const Theorem5Check check =
      check_theorem5_async(3, 1, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_TRUE(check.conclusion.satisfied) << check.conclusion.to_string();
}

TEST(Theorem5, ConclusionWithMixedValueSets) {
  // Value sets of different sizes per process (the theorem allows any
  // nonempty U_i).
  const Theorem5Check check =
      check_theorem5_async(3, 1, {{0}, {0, 1, 2}, {5, 7}});
  EXPECT_TRUE(check.hypothesis_holds);
  EXPECT_TRUE(check.conclusion.satisfied) << check.conclusion.to_string();
}

TEST(Theorem5, WaitFreeGivesHigherConnectivity) {
  // f = 2 (c = 0): conclusion is (n - 1) = 1-connectivity.
  const Theorem5Check check =
      check_theorem5_async(3, 2, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_TRUE(check.hypothesis_holds);
  EXPECT_EQ(check.conclusion.expected, 1);
  EXPECT_TRUE(check.conclusion.satisfied) << check.conclusion.to_string();
}

TEST(Theorem7, UnionWithCommonValue) {
  // Families {0,1}, {0,2}, {0,3} share value 0: the union's protocol
  // complex must still be (n - c - 1)-connected.
  const Theorem5Check check =
      check_theorem7_async(3, 1, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_TRUE(check.hypothesis_holds);
  EXPECT_TRUE(check.conclusion.satisfied) << check.conclusion.to_string();
}

TEST(Theorem7, SingleFamilyReducesToTheorem5) {
  const Theorem5Check seven = check_theorem7_async(3, 1, {{0, 1}});
  const Theorem5Check five =
      check_theorem5_async(3, 1, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(seven.conclusion.facet_count, five.conclusion.facet_count);
  EXPECT_EQ(seven.conclusion.measured, five.conclusion.measured);
}

TEST(Theorem7, DisjointFamiliesBreakTheHypothesisCondition) {
  // ∩ A_i = ∅ is outside the theorem; the union disconnects, confirming
  // the intersection condition is necessary.
  const Theorem5Check check = check_theorem7_async(3, 1, {{0}, {1}});
  EXPECT_FALSE(check.conclusion.satisfied);
}

TEST(Corollary10, HypothesisImpliesSearchImpossibility) {
  // Async consensus, f = 1, r = 1: connectivity holds at every
  // participation level, and indeed the search refutes every decision map.
  const Corollary10Check check = check_corollary10_async(3, 1, 1, 1);
  EXPECT_TRUE(check.hypothesis_holds);
  ASSERT_EQ(check.levels.size(), 2u);  // m+1 in {2, 3}
  EXPECT_TRUE(check.search_exhausted);
  EXPECT_TRUE(check.search_impossible);
}

TEST(Corollary10, WaitFreeInstance) {
  const Corollary10Check check = check_corollary10_async(3, 2, 2, 1);
  EXPECT_TRUE(check.hypothesis_holds);
  ASSERT_EQ(check.levels.size(), 3u);  // m+1 in {1, 2, 3}
  EXPECT_TRUE(check.search_impossible);
}

TEST(Corollary10, SolvableInstanceBreaksHypothesis) {
  // k = f + 1 = 2: the required connectivity at the top level is k-1 = 1,
  // which the f = 1 complex does not reach — consistent with solvability.
  const Corollary10Check check = check_corollary10_async(3, 1, 2, 1);
  EXPECT_FALSE(check.hypothesis_holds);
  EXPECT_FALSE(check.search_impossible);
}

TEST(ConnectivityCheck, ToStringMentionsVerdict) {
  const ConnectivityCheck check = check_async_connectivity(3, 3, 1, 1);
  EXPECT_NE(check.to_string().find("OK"), std::string::npos);
}

TEST(RainbowInput, HasDistinctValues) {
  ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = rainbow_input(4, views, arena);
  std::set<std::int64_t> values;
  for (topology::VertexId v : input.vertices()) {
    values.insert(views.view(arena.state(v)).input);
  }
  EXPECT_EQ(values.size(), 4u);
}

}  // namespace
}  // namespace psph::core
