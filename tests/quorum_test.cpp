// Byzantine/failure-detector layer tests: quorum executor semantics
// (authenticated channels, forged-sender drops, plan validation), the
// failure-detector oracles, aba_byz across its N = 3T+1 resilience
// boundary, nbac_fd obligations (and Guerraoui's commit/abort divergence),
// the Byzantine-aware monitors, and schedule record/replay/shrink for the
// quorum model.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "check/monitors.h"
#include "check/shrink.h"
#include "check/soak.h"
#include "protocols/aba_byz.h"
#include "protocols/nbac_fd.h"
#include "sim/byzantine.h"
#include "sim/failure_detector.h"
#include "sim/quorum_executor.h"
#include "util/random.h"

namespace psph {
namespace {

using sim::ByzRoundPlan;
using sim::ProcessId;

/// Deterministic adversary for unit tests: a fixed corrupt set and a map
/// of round -> plan (missing rounds are failure-free).
class ScriptedAdversary : public sim::ByzantineAdversary {
 public:
  std::vector<ProcessId> corrupt_set;
  std::map<int, ByzRoundPlan> plans;

  std::vector<ProcessId> corrupt(int, int) override { return corrupt_set; }

  ByzRoundPlan plan_round(int round, const std::vector<sim::PendingMessage>&,
                          const std::vector<ProcessId>&, int) override {
    const auto it = plans.find(round);
    return it == plans.end() ? ByzRoundPlan{} : it->second;
  }
};

check::RunSpec aba_spec(int n, int t, std::uint64_t seed) {
  check::RunSpec spec;
  spec.protocol = check::ProtocolKind::kAbaByz;
  spec.n = n;
  spec.f = t;
  spec.t = t;
  spec.seed = seed;
  return spec;
}

check::RunSpec nbac_spec(int n, int f, std::uint64_t seed, int fd_kind = 0) {
  check::RunSpec spec;
  spec.protocol = check::ProtocolKind::kNbacFd;
  spec.n = n;
  spec.f = f;
  spec.fd_kind = fd_kind;
  spec.seed = seed;
  return spec;
}

// ---- failure-detector oracles ----

TEST(FailureDetector, SomeFailIsStronglyAccurate) {
  sim::SomeFailDetector fd(util::Rng(7), /*max_lag=*/2);
  for (int round = 1; round < 20; ++round) {
    for (ProcessId observer = 0; observer < 4; ++observer) {
      // Nothing has crashed: nobody may be suspected, ever.
      EXPECT_TRUE(fd.suspects(observer, round, {}).empty());
    }
  }
}

TEST(FailureDetector, SomeFailIsEventuallyComplete) {
  sim::SomeFailDetector fd(util::Rng(7), /*max_lag=*/2);
  const std::vector<ProcessId> crashed{2};
  // First sight at round 3; by round 3 + max_lag every observer suspects.
  for (ProcessId observer = 0; observer < 4; ++observer) {
    fd.suspects(observer, 3, crashed);
  }
  for (ProcessId observer = 0; observer < 4; ++observer) {
    const auto suspects = fd.suspects(observer, 5, crashed);
    EXPECT_EQ(suspects, crashed) << "observer " << observer;
  }
}

TEST(FailureDetector, EventuallyStrongStabilizes) {
  sim::EventuallyStrongDetector fd(util::Rng(11), /*num_processes=*/5);
  const int stable = fd.stabilization_round();
  const std::vector<ProcessId> crashed{1};
  for (int round = stable; round < stable + 10; ++round) {
    for (ProcessId observer = 0; observer < 5; ++observer) {
      EXPECT_EQ(fd.suspects(observer, round, crashed), crashed);
    }
  }
}

TEST(FailureDetector, EventuallyStrongFalselySuspectsBeforeStabilization) {
  // Across seeds, some pre-stabilization query must name a live process.
  bool saw_false_suspicion = false;
  for (std::uint64_t seed = 0; seed < 32 && !saw_false_suspicion; ++seed) {
    sim::EventuallyStrongDetector fd(util::Rng(seed), 5,
                                     /*max_unstable_rounds=*/6);
    for (int round = 0; round < fd.stabilization_round(); ++round) {
      for (ProcessId observer = 0; observer < 5; ++observer) {
        if (!fd.suspects(observer, round, {}).empty()) {
          saw_false_suspicion = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_false_suspicion);
}

// ---- quorum executor ----

TEST(QuorumExecutor, ForgedSenderInjectionsAreDroppedAndCounted) {
  ScriptedAdversary adversary;
  adversary.corrupt_set = {3};
  ByzRoundPlan plan;
  // A forged READY claiming to come from correct P0.
  plan.inject.push_back({/*byz=*/3, /*claimed_from=*/0, /*to=*/1,
                         protocols::kAbaReady, 1});
  adversary.plans[1] = plan;

  const protocols::AbaByzConfig config{4, 1, 8};
  const protocols::AbaByzOutcome outcome =
      protocols::run_aba_byz({0, 0, 0, 0}, config, adversary);
  EXPECT_EQ(outcome.trace.forged_dropped, 1);
  // The forged message reached nobody: P1 was never delivered a READY.
  EXPECT_EQ(outcome.trace.delivered[1].count({0, protocols::kAbaReady, 1}),
            0u);
  EXPECT_TRUE(outcome.trace.decisions.empty());
}

TEST(QuorumExecutor, ValidInjectionIsDeliveredAsTheCorruptSender) {
  ScriptedAdversary adversary;
  adversary.corrupt_set = {3};
  ByzRoundPlan plan;
  plan.inject.push_back({3, 3, 0, protocols::kAbaEcho, 1});
  adversary.plans[1] = plan;

  const protocols::AbaByzConfig config{4, 1, 8};
  const protocols::AbaByzOutcome outcome =
      protocols::run_aba_byz({0, 0, 0, 0}, config, adversary);
  EXPECT_EQ(outcome.trace.forged_dropped, 0);
  EXPECT_EQ(outcome.trace.delivered[0].count({3, protocols::kAbaEcho, 1}),
            1u);
}

TEST(QuorumExecutor, EquivocationReachesOnlyTheNamedReceiver) {
  // The corrupt process tells P0 "ECHO" and tells P1 nothing.
  ScriptedAdversary adversary;
  adversary.corrupt_set = {3};
  ByzRoundPlan plan;
  plan.inject.push_back({3, 3, 0, protocols::kAbaEcho, 1});
  adversary.plans[1] = plan;

  const protocols::AbaByzConfig config{4, 1, 8};
  const protocols::AbaByzOutcome outcome =
      protocols::run_aba_byz({0, 0, 0, 0}, config, adversary);
  EXPECT_EQ(outcome.trace.delivered[0].count({3, protocols::kAbaEcho, 1}),
            1u);
  EXPECT_EQ(outcome.trace.delivered[1].count({3, protocols::kAbaEcho, 1}),
            0u);
}

TEST(QuorumExecutor, MalformedCorruptSetThrows) {
  ScriptedAdversary adversary;
  adversary.corrupt_set = {0, 1};  // budget is 1
  const protocols::AbaByzConfig config{4, 1, 8};
  EXPECT_THROW(protocols::run_aba_byz({0, 0, 0, 0}, config, adversary),
               std::logic_error);
}

TEST(QuorumExecutor, DroppingALiveSendersMessageThrows) {
  ScriptedAdversary adversary;
  ByzRoundPlan plan;
  plan.drop = {0};  // P0's first message, but P0 never crashes
  adversary.plans[1] = plan;
  const protocols::AbaByzConfig config{4, 1, 8};
  EXPECT_THROW(protocols::run_aba_byz({1, 1, 1, 1}, config, adversary),
               std::logic_error);
}

TEST(QuorumExecutor, CrashingACorruptProcessThrows) {
  ScriptedAdversary adversary;
  adversary.corrupt_set = {3};
  ByzRoundPlan plan;
  plan.crash = {3};
  adversary.plans[1] = plan;
  const protocols::AbaByzConfig config{4, 1, 8};
  EXPECT_THROW(protocols::run_aba_byz({0, 0, 0, 0}, config, adversary),
               std::logic_error);
}

// ---- aba_byz protocol ----

TEST(AbaByz, AllOnesFailureFreeEveryoneDecides) {
  ScriptedAdversary adversary;  // nobody corrupt, no interference
  const protocols::AbaByzConfig config{4, 1, 8};
  const protocols::AbaByzOutcome outcome =
      protocols::run_aba_byz({1, 1, 1, 1}, config, adversary);
  EXPECT_TRUE(outcome.trace.quiescent);
  EXPECT_EQ(outcome.trace.decisions.size(), 4u);
  for (const auto& d : outcome.trace.decisions) EXPECT_EQ(d.value, 1);
  EXPECT_EQ(outcome.certificates.size(), 4u);
}

TEST(AbaByz, AllZerosNobodyDecides) {
  ScriptedAdversary adversary;
  const protocols::AbaByzConfig config{4, 1, 8};
  const protocols::AbaByzOutcome outcome =
      protocols::run_aba_byz({0, 0, 0, 0}, config, adversary);
  EXPECT_TRUE(outcome.trace.quiescent);
  EXPECT_TRUE(outcome.trace.decisions.empty());
}

TEST(AbaByz, SilentByzantineAtBoundaryCannotBlockDecision) {
  // N = 3T+1 = 4: even a fully silent corrupt process leaves an N-T = 3
  // quorum of correct echoes, enough for everyone to decide.
  ScriptedAdversary adversary;
  adversary.corrupt_set = {3};
  const protocols::AbaByzConfig config{4, 1, 8};
  const protocols::AbaByzOutcome outcome =
      protocols::run_aba_byz({1, 1, 1, 0}, config, adversary);
  EXPECT_TRUE(outcome.trace.quiescent);
  EXPECT_EQ(outcome.trace.decisions.size(), 3u);
}

TEST(AbaByz, SilentByzantineBelowBoundaryBlocksDecision) {
  // N = 3T = 3: two correct echoes < guard_echo = 3, so a silent corrupt
  // process starves the quorum — the violation the monitors must catch.
  ScriptedAdversary adversary;
  adversary.corrupt_set = {2};
  const protocols::AbaByzConfig config{3, 1, 8};
  const protocols::AbaByzOutcome outcome =
      protocols::run_aba_byz({1, 1, 0}, config, adversary);
  EXPECT_TRUE(outcome.trace.quiescent);
  EXPECT_TRUE(outcome.trace.decisions.empty());
}

// ---- nbac_fd protocol ----

TEST(NbacFd, AllYesNoFailuresEveryoneCommits) {
  ScriptedAdversary adversary;
  sim::SomeFailDetector detector(util::Rng(5));
  const protocols::NbacFdConfig config{5, 2, 8};
  const protocols::NbacFdOutcome outcome =
      protocols::run_nbac_fd({1, 1, 1, 1, 1}, config, adversary, detector);
  EXPECT_TRUE(outcome.trace.quiescent);
  ASSERT_EQ(outcome.justifications.size(), 5u);
  for (const auto& j : outcome.justifications) {
    EXPECT_EQ(j.decided, protocols::kNbacCommit);
    EXPECT_EQ(j.yes_votes, 5);
  }
}

TEST(NbacFd, SingleNoVoteAbortsEveryone) {
  ScriptedAdversary adversary;
  sim::SomeFailDetector detector(util::Rng(5));
  const protocols::NbacFdConfig config{5, 2, 8};
  const protocols::NbacFdOutcome outcome =
      protocols::run_nbac_fd({1, 1, 0, 1, 1}, config, adversary, detector);
  ASSERT_EQ(outcome.justifications.size(), 5u);
  for (const auto& j : outcome.justifications) {
    EXPECT_EQ(j.decided, protocols::kNbacAbort);
    EXPECT_TRUE(j.saw_no);
  }
}

TEST(NbacFd, CrashedVoterForcesJustifiedAborts) {
  // P0 crashes in round 1 and all its votes are dropped; survivors abort
  // on the (accurate) suspicion once the detector reports it.
  ScriptedAdversary adversary;
  ByzRoundPlan plan;
  plan.crash = {0};
  plan.drop = {0, 1, 2, 3, 4};  // P0's five vote messages
  adversary.plans[1] = plan;
  sim::SomeFailDetector detector(util::Rng(5), /*max_lag=*/1);
  const protocols::NbacFdConfig config{5, 2, 16};
  const protocols::NbacFdOutcome outcome =
      protocols::run_nbac_fd({1, 1, 1, 1, 1}, config, adversary, detector);
  EXPECT_TRUE(outcome.trace.quiescent);
  ASSERT_EQ(outcome.justifications.size(), 4u);
  for (const auto& j : outcome.justifications) {
    EXPECT_EQ(j.decided, protocols::kNbacAbort);
    EXPECT_TRUE(j.saw_suspicion);
    EXPECT_FALSE(j.saw_no);
  }
}

TEST(NbacFd, CommitAbortDivergenceIsReachable) {
  // Guerraoui's hardness result, staged deterministically: P2 receives all
  // three YES votes and commits; P1 misses crashed P0's vote and aborts on
  // a perfectly accurate suspicion. Weak NBAC does not have agreement.
  ScriptedAdversary adversary;
  ByzRoundPlan plan;
  plan.crash = {0};
  plan.drop = {1};  // only P0's vote to P1 is lost
  adversary.plans[1] = plan;
  sim::SomeFailDetector detector(util::Rng(5), /*max_lag=*/0);
  const protocols::NbacFdConfig config{3, 1, 16};
  const protocols::NbacFdOutcome outcome =
      protocols::run_nbac_fd({1, 1, 1}, config, adversary, detector);
  std::map<ProcessId, std::int64_t> decided;
  for (const auto& j : outcome.justifications) decided[j.pid] = j.decided;
  EXPECT_EQ(decided[1], protocols::kNbacAbort);
  EXPECT_EQ(decided[2], protocols::kNbacCommit);
}

// ---- Byzantine-aware monitors ----

check::RunRecord aba_record(const protocols::AbaByzOutcome& outcome, int n,
                            int t, std::vector<std::int64_t> inputs) {
  check::RunRecord record;
  record.model = check::Model::kQuorum;
  record.n = n;
  record.byz_t = t;
  record.k = 1;
  record.inputs = std::move(inputs);
  record.decisions = outcome.trace.decisions;
  record.quorum = &outcome.trace;
  record.aba_certificates = &outcome.certificates;
  record.aba_final_counts = &outcome.final_counts;
  for (ProcessId pid = 0; pid < n; ++pid) {
    if (!std::binary_search(outcome.trace.corrupt.begin(),
                            outcome.trace.corrupt.end(), pid)) {
      record.correct.push_back(pid);
    }
  }
  return record;
}

TEST(QuorumMonitors, CleanRunPassesAllMonitors) {
  ScriptedAdversary adversary;
  const protocols::AbaByzConfig config{4, 1, 8};
  const protocols::AbaByzOutcome outcome =
      protocols::run_aba_byz({1, 1, 1, 1}, config, adversary);
  const check::RunRecord record = aba_record(outcome, 4, 1, {1, 1, 1, 1});
  EXPECT_TRUE(check::check_all(check::standard_monitors(check::Model::kQuorum),
                               record)
                  .empty());
}

TEST(QuorumMonitors, CertificateMonitorCatchesPhantomSender) {
  ScriptedAdversary adversary;
  const protocols::AbaByzConfig config{4, 1, 8};
  protocols::AbaByzOutcome outcome =
      protocols::run_aba_byz({1, 1, 1, 1}, config, adversary);
  // Forge a certificate that counts a sender nobody was delivered.
  ASSERT_FALSE(outcome.certificates.empty());
  outcome.certificates[0].ready_senders = {0, 1, 2, 3};
  outcome.trace.delivered[outcome.certificates[0].pid].erase(
      {3, protocols::kAbaReady, 1});
  const check::RunRecord record = aba_record(outcome, 4, 1, {1, 1, 1, 1});
  const check::QuorumCertificateMonitor monitor;
  const auto failure = monitor.check(record);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("phantom"), std::string::npos);
}

TEST(QuorumMonitors, CertificateMonitorCatchesThinReadyQuorum) {
  ScriptedAdversary adversary;
  const protocols::AbaByzConfig config{4, 1, 8};
  protocols::AbaByzOutcome outcome =
      protocols::run_aba_byz({1, 1, 1, 1}, config, adversary);
  ASSERT_FALSE(outcome.certificates.empty());
  outcome.certificates[0].ready_senders = {0};  // < 2T+1 = 3
  const check::RunRecord record = aba_record(outcome, 4, 1, {1, 1, 1, 1});
  const check::QuorumCertificateMonitor monitor;
  const auto failure = monitor.check(record);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("2T+1"), std::string::npos);
}

TEST(QuorumMonitors, LivenessMonitorCatchesStarvedQuorum) {
  ScriptedAdversary adversary;
  adversary.corrupt_set = {2};
  const protocols::AbaByzConfig config{3, 1, 8};
  const protocols::AbaByzOutcome outcome =
      protocols::run_aba_byz({1, 1, 0}, config, adversary);
  const check::RunRecord record = aba_record(outcome, 3, 1, {1, 1, 0});
  const check::QuorumLivenessMonitor monitor;
  const auto failure = monitor.check(record);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("correctness"), std::string::npos);
}

// ---- correct-set regression: crash-only monitors unchanged ----

TEST(QuorumMonitors, EmptyCorrectSetMeansEveryoneCounts) {
  // The crash-only call sites leave `correct` empty; agreement and
  // validity must behave exactly as before the correct-set extension.
  check::RunRecord record;
  record.model = check::Model::kSync;
  record.n = 3;
  record.k = 1;
  record.inputs = {7, 8, 9};
  record.decisions = {{0, 7, 1, 0}, {1, 8, 1, 0}};
  const check::AgreementMonitor agreement;
  EXPECT_TRUE(agreement.check(record).has_value());  // 2 values > k=1
  record.decisions = {{0, 7, 1, 0}, {1, 7, 1, 0}};
  EXPECT_FALSE(agreement.check(record).has_value());
  record.decisions = {{0, 5, 1, 0}};  // 5 is nobody's input
  const check::ValidityMonitor validity;
  EXPECT_TRUE(validity.check(record).has_value());
}

TEST(QuorumMonitors, CorruptDecidersAreIgnoredByAgreement) {
  check::RunRecord record;
  record.model = check::Model::kQuorum;
  record.n = 4;
  record.k = 1;
  record.inputs = {1, 1, 1, 0};
  record.correct = {0, 1, 2};
  // The corrupt process "decides" garbage; correct ones agree on 1.
  record.decisions = {{0, 1, 2, 0}, {1, 1, 2, 0}, {3, 99, 2, 0}};
  const check::AgreementMonitor agreement;
  EXPECT_FALSE(agreement.check(record).has_value());
  const check::ValidityMonitor validity;
  EXPECT_FALSE(validity.check(record).has_value());
}

TEST(QuorumMonitors, ValidityRequiresACorrectProcessInput) {
  check::RunRecord record;
  record.model = check::Model::kQuorum;
  record.n = 3;
  record.k = 1;
  record.inputs = {0, 0, 1};  // only the corrupt process "has" input 1
  record.correct = {0, 1};
  record.decisions = {{0, 1, 2, 0}};
  const check::ValidityMonitor validity;
  const auto failure = validity.check(record);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("no correct process's input"), std::string::npos);
}

// ---- soak, record/replay, shrink ----

TEST(QuorumSoak, AbaByzCleanAtResilienceBoundary) {
  // 500 seeds at N = 3T+1: every monitor (agreement quantified over the
  // correct set, certificates, liveness) must stay silent.
  const check::SoakReport report = check::soak(aba_spec(4, 1, 1), 500);
  EXPECT_EQ(report.violations, 0u) << report.first_schedule.summary();
  EXPECT_EQ(report.runs, 500u);
}

TEST(QuorumSoak, NbacObligationsHoldAcross500Seeds) {
  const check::SoakReport somefail =
      check::soak(nbac_spec(5, 2, 1, /*fd_kind=*/0), 500);
  EXPECT_EQ(somefail.violations, 0u) << somefail.first_schedule.summary();
  const check::SoakReport evstrong =
      check::soak(nbac_spec(5, 2, 1, /*fd_kind=*/1), 500);
  EXPECT_EQ(evstrong.violations, 0u) << evstrong.first_schedule.summary();
}

TEST(QuorumSoak, ReplayIsBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const check::RunOutcome recorded = check::run_recorded(aba_spec(4, 1, seed));
    ASSERT_NE(recorded.aba, nullptr);
    const check::RunOutcome replayed =
        check::replay_schedule(recorded.schedule);
    ASSERT_NE(replayed.aba, nullptr);
    EXPECT_EQ(recorded.aba->trace, replayed.aba->trace) << "seed " << seed;
  }
  for (const int fd_kind : {0, 1}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const check::RunOutcome recorded =
          check::run_recorded(nbac_spec(5, 2, seed, fd_kind));
      ASSERT_NE(recorded.nbac, nullptr);
      const check::RunOutcome replayed =
          check::replay_schedule(recorded.schedule);
      ASSERT_NE(replayed.nbac, nullptr);
      EXPECT_EQ(recorded.nbac->trace, replayed.nbac->trace)
          << "seed " << seed << " fd " << fd_kind;
    }
  }
}

TEST(QuorumSoak, ReplaySurvivesSerializationRoundTrip) {
  const check::RunOutcome recorded = check::run_recorded(aba_spec(4, 1, 17));
  const std::vector<std::uint8_t> bytes =
      check::serialize_schedule(recorded.schedule);
  const check::Schedule loaded = check::deserialize_schedule(bytes);
  EXPECT_EQ(loaded, recorded.schedule);
  const check::RunOutcome replayed = check::replay_schedule(loaded);
  ASSERT_NE(replayed.aba, nullptr);
  EXPECT_EQ(recorded.aba->trace, replayed.aba->trace);
}

TEST(QuorumSoak, PlantedBoundaryViolationIsCaughtAndShrinks) {
  // N = 3T: soak until the monitors catch the quorum starvation, then
  // delta-debug. Every accepted shrink edit strictly decreases
  // choice_count() (the shrinker's acceptance rule), and the minimized
  // schedule must still reproduce a violation on replay.
  const check::SoakReport report = check::soak(aba_spec(3, 1, 1), 500);
  ASSERT_GE(report.violations, 1u);
  ASSERT_FALSE(report.first_violations.empty());

  const std::size_t original = report.first_schedule.choice_count();
  ASSERT_GT(original, 0u);
  std::size_t last_seen = original;
  const check::ShrinkResult shrunk = check::shrink(
      report.first_schedule, [&](const check::Schedule& candidate) {
        // The oracle sees exactly the candidates the shrinker proposes:
        // each must already be strictly smaller than the current best.
        EXPECT_LT(candidate.choice_count(), last_seen);
        const bool fails = !check::replay_schedule(candidate).ok();
        if (fails) last_seen = candidate.choice_count();
        return fails;
      });
  EXPECT_GT(shrunk.accepted, 0u);
  EXPECT_LT(shrunk.schedule.choice_count(), original);
  EXPECT_FALSE(check::replay_schedule(shrunk.schedule).ok());
}

TEST(QuorumSoak, PinnedAgreementExposesNbacHardness) {
  // Monitoring k = 1 turns Guerraoui's reachable commit/abort divergence
  // into a caught violation — the planted demonstration that weak NBAC
  // over a realistic detector cannot guarantee agreement.
  check::RunSpec spec = nbac_spec(5, 2, 1, /*fd_kind=*/1);
  spec.monitor_k = 1;
  const check::SoakReport report = check::soak(spec, 2000);
  ASSERT_GE(report.violations, 1u);
  EXPECT_EQ(report.first_violations.front().monitor, "agreement");
}

}  // namespace
}  // namespace psph
