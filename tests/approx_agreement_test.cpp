// Tests for approximate agreement: the wait-free-solvable counterpoint to
// the consensus impossibilities — convergence, range containment, the
// majority-intersection requirement, and adversarial worst cases.

#include <gtest/gtest.h>

#include "protocols/approx_agreement.h"
#include "util/random.h"

namespace psph::protocols {
namespace {

class HearEveryone : public sim::AsyncAdversary {
 public:
  sim::AsyncRoundPlan plan_round(
      int, const std::vector<sim::ProcessId>& participants, int) override {
    sim::AsyncRoundPlan plan;
    for (sim::ProcessId p : participants) {
      plan.heard[p] = std::set<sim::ProcessId>(participants.begin(),
                                               participants.end());
    }
    return plan;
  }
};

TEST(ApproxAgreement, FullCommunicationConvergesFast) {
  HearEveryone adversary;
  const ApproxOutcome outcome =
      run_approx_agreement({0.0, 4.0, 8.0}, {3, 1, 0.5, 64}, adversary);
  const ApproxAudit audit = audit_approx(outcome, {0.0, 4.0, 8.0}, 0.5);
  EXPECT_TRUE(audit.ok()) << audit.failure;
  // With everyone hearing everyone, one round lands on the exact midpoint.
  EXPECT_LE(outcome.rounds_used, 2);
  for (const auto& [pid, value] : outcome.decisions) {
    (void)pid;
    EXPECT_NEAR(value, 4.0, 0.51);
  }
}

TEST(ApproxAgreement, RoundsNeededFormula) {
  EXPECT_EQ(approx_rounds_needed(1.0, 1.0), 1);
  EXPECT_EQ(approx_rounds_needed(8.0, 1.0), 4);
  EXPECT_THROW(approx_rounds_needed(1.0, 0.0), std::invalid_argument);
}

TEST(ApproxAgreement, RejectsTooManyFailures) {
  HearEveryone adversary;
  // f >= (n+1)/2 loses majority intersection; the protocol refuses.
  EXPECT_THROW(run_approx_agreement({0, 1}, {2, 1, 0.5, 8}, adversary),
               std::invalid_argument);
  EXPECT_THROW(run_approx_agreement({0, 1, 2, 3}, {4, 2, 0.5, 8}, adversary),
               std::invalid_argument);
}

TEST(ApproxAgreement, AdversarialHeardSetsStillConverge) {
  // An adversary that always gives each process the minimum heard-set,
  // biased to keep extremes apart.
  class Stingy : public sim::AsyncAdversary {
   public:
    sim::AsyncRoundPlan plan_round(
        int, const std::vector<sim::ProcessId>& participants,
        int min_heard) override {
      sim::AsyncRoundPlan plan;
      const int total = static_cast<int>(participants.size());
      for (int i = 0; i < total; ++i) {
        std::set<sim::ProcessId> heard{participants[static_cast<std::size_t>(i)]};
        // Fill with cyclically-next processes up to the minimum size.
        for (int step = 1; static_cast<int>(heard.size()) < min_heard;
             ++step) {
          heard.insert(
              participants[static_cast<std::size_t>((i + step) % total)]);
        }
        plan.heard[participants[static_cast<std::size_t>(i)]] =
            std::move(heard);
      }
      return plan;
    }
  } adversary;
  const ApproxOutcome outcome =
      run_approx_agreement({0.0, 10.0, 5.0}, {3, 1, 0.25, 64}, adversary);
  const ApproxAudit audit = audit_approx(outcome, {0.0, 10.0, 5.0}, 0.25);
  EXPECT_TRUE(audit.ok()) << audit.failure;
  EXPECT_LT(outcome.rounds_used, 64);
}

TEST(ApproxAgreement, SoakRandomAdversaries) {
  EXPECT_TRUE(soak_approx_agreement({3, 1, 0.1, 64}, 81, 200).ok());
  EXPECT_TRUE(soak_approx_agreement({5, 2, 0.1, 64}, 83, 200).ok());
  EXPECT_TRUE(soak_approx_agreement({7, 3, 0.5, 64}, 87, 100).ok());
}

TEST(ApproxAgreement, TightEpsilonStillWithinRange) {
  util::Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> inputs;
    for (int p = 0; p < 5; ++p) inputs.push_back(rng.next_double());
    sim::RandomAsyncAdversary adversary{util::Rng(rng.next())};
    const ApproxOutcome outcome =
        run_approx_agreement(inputs, {5, 1, 1e-6, 64}, adversary);
    const ApproxAudit audit = audit_approx(outcome, inputs, 1e-6);
    EXPECT_TRUE(audit.ok()) << audit.failure;
  }
}

}  // namespace
}  // namespace psph::protocols
