// Tests for the psph_check subsystem: schedule recording/serialization,
// bit-identical replay across all three executor models, invariant
// monitors, and counterexample shrinking.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "check/monitors.h"
#include "check/schedule.h"
#include "check/shrink.h"
#include "check/soak.h"
#include "store/serialize.h"

namespace psph::check {
namespace {

// ------------------------------------------------------- schedules --------

Schedule sample_schedule() {
  Schedule s;
  s.model = Model::kSync;
  s.meta["protocol"] = 0;
  s.meta["n"] = 4;
  s.meta["f"] = 2;
  s.meta["seed"] = 99;
  s.inputs = {0, 1, 2, 3};
  sim::SyncRoundPlan round1;
  round1.crash = {0};
  round1.delivered_to[0] = {1, 2};
  s.sync_rounds.push_back(round1);
  s.sync_rounds.push_back({});
  return s;
}

TEST(Schedule, SerializationRoundTrip) {
  const Schedule original = sample_schedule();
  const std::vector<std::uint8_t> bytes = serialize_schedule(original);
  EXPECT_EQ(deserialize_schedule(bytes), original);
}

TEST(Schedule, SemiSyncSerializationRoundTrip) {
  Schedule s;
  s.model = Model::kSemiSync;
  s.meta["c1"] = 1;
  s.meta["c2"] = 3;
  s.inputs = {5, 6, 7};
  s.crash_times = {std::nullopt, 17, std::nullopt};
  s.spacings = {{0, 1}, {1, 3}, {0, 2}};
  s.delays = {1, 4, 2, 1};
  EXPECT_EQ(deserialize_schedule(serialize_schedule(s)), s);
}

TEST(Schedule, AsyncSerializationRoundTrip) {
  Schedule s;
  s.model = Model::kAsync;
  s.meta["n"] = 3;
  s.inputs = {2, 2, 2};
  sim::AsyncRoundPlan plan;
  plan.heard[0] = {0, 1};
  plan.heard[1] = {0, 1, 2};
  plan.heard[2] = {1, 2};
  s.async_rounds.push_back(plan);
  EXPECT_EQ(deserialize_schedule(serialize_schedule(s)), s);
}

TEST(Schedule, QuorumSerializationRoundTrip) {
  // Every v2-only section populated, including a forged-sender injection
  // and a false suspicion — the fields the quorum shrinker edits.
  Schedule s;
  s.model = Model::kQuorum;
  s.meta["protocol"] = 4;
  s.meta["n"] = 4;
  s.meta["t"] = 1;
  s.meta["fd_settle"] = 3;
  s.inputs = {1, 0, 1, 1};
  s.corrupt = {3};
  sim::ByzRoundPlan plan;
  plan.defer = {2, 5};
  plan.drop = {7};
  plan.crash = {1};
  plan.inject.push_back({3, 3, 0, 1, 1});
  plan.inject.push_back({3, 0, 2, 2, 1});  // forged claimed_from
  s.quorum_rounds.push_back(plan);
  s.quorum_rounds.push_back({});
  s.fd_samples.push_back({0, 1, {1, 2}});
  s.fd_samples.push_back({2, 1, {}});
  EXPECT_EQ(deserialize_schedule(serialize_schedule(s)), s);
}

TEST(Schedule, V1EnvelopeStillLoads) {
  // A schedule file written before the quorum model existed (payload starts
  // with the model tag, no v2 marker byte) must keep loading and replaying.
  const Schedule loaded = load_schedule(std::string(PSPH_SOURCE_DIR) +
                                        "/tests/data/schedule_v1.psph");
  EXPECT_EQ(loaded.model, Model::kSync);
  EXPECT_TRUE(loaded.corrupt.empty());
  EXPECT_TRUE(loaded.quorum_rounds.empty());
  EXPECT_TRUE(loaded.fd_samples.empty());
  EXPECT_GT(loaded.choice_count(), 0u);
  EXPECT_TRUE(replay_schedule(loaded).ok());
}

TEST(Schedule, CorruptEnvelopeThrows) {
  std::vector<std::uint8_t> bytes = serialize_schedule(sample_schedule());
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW(deserialize_schedule(bytes), store::SerializationError);
}

TEST(Schedule, TruncatedEnvelopeThrows) {
  std::vector<std::uint8_t> bytes = serialize_schedule(sample_schedule());
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(deserialize_schedule(bytes), store::SerializationError);
}

TEST(Schedule, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "psph_sched_test.psph")
          .string();
  const Schedule original = sample_schedule();
  save_schedule(path, original);
  EXPECT_EQ(load_schedule(path), original);
  std::remove(path.c_str());
}

TEST(Schedule, LoadMissingFileThrows) {
  EXPECT_THROW(load_schedule("/nonexistent/psph/schedule.psph"),
               std::runtime_error);
}

TEST(Schedule, ChoiceCountSync) {
  // Round 1: 1 crash + (3 survivors - 2 delivered) withheld = 2.
  EXPECT_EQ(sample_schedule().choice_count(), 2u);
}

// --------------------------------------------- bit-identical replay -------

void expect_identical_traces(const RunOutcome& a, const RunOutcome& b) {
  ASSERT_NE(a.trace, nullptr);
  ASSERT_NE(b.trace, nullptr);
  // Fresh registries intern views in the same deterministic order, so even
  // the raw StateIds must agree.
  EXPECT_EQ(a.trace->states, b.trace->states);
  EXPECT_EQ(a.trace->crashed_in, b.trace->crashed_in);
  ASSERT_EQ(a.record.decisions.size(), b.record.decisions.size());
  for (std::size_t i = 0; i < a.record.decisions.size(); ++i) {
    EXPECT_EQ(a.record.decisions[i].pid, b.record.decisions[i].pid);
    EXPECT_EQ(a.record.decisions[i].value, b.record.decisions[i].value);
    EXPECT_EQ(a.record.decisions[i].round, b.record.decisions[i].round);
  }
}

TEST(Replay, SyncBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RunSpec spec;
    spec.protocol = ProtocolKind::kFloodSet;
    spec.n = 5;
    spec.f = 2;
    spec.k = 2;
    spec.seed = seed;
    const RunOutcome recorded = run_recorded(spec);
    const RunOutcome replayed = replay_schedule(recorded.schedule);
    expect_identical_traces(recorded, replayed);
    EXPECT_EQ(recorded.schedule, replayed.schedule);
    EXPECT_TRUE(recorded.ok());
    EXPECT_TRUE(replayed.ok());
  }
}

TEST(Replay, EarlyStoppingBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RunSpec spec;
    spec.protocol = ProtocolKind::kEarlyStopping;
    spec.n = 5;
    spec.f = 2;
    spec.seed = seed;
    const RunOutcome recorded = run_recorded(spec);
    const RunOutcome replayed = replay_schedule(recorded.schedule);
    expect_identical_traces(recorded, replayed);
    EXPECT_TRUE(recorded.ok());
    EXPECT_TRUE(replayed.ok());
  }
}

TEST(Replay, AsyncBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RunSpec spec;
    spec.protocol = ProtocolKind::kAsyncKSet;
    spec.n = 4;
    spec.f = 2;
    spec.seed = seed;
    const RunOutcome recorded = run_recorded(spec);
    const RunOutcome replayed = replay_schedule(recorded.schedule);
    expect_identical_traces(recorded, replayed);
    EXPECT_TRUE(recorded.ok());
    EXPECT_TRUE(replayed.ok());
  }
}

TEST(Replay, SemiSyncBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RunSpec spec;
    spec.protocol = ProtocolKind::kSemiSyncKSet;
    spec.n = 4;
    spec.f = 2;
    spec.k = 1;
    spec.c1 = 1;
    spec.c2 = 2;
    spec.d = 5;
    spec.seed = seed;
    const RunOutcome recorded = run_recorded(spec);
    const RunOutcome replayed = replay_schedule(recorded.schedule);
    ASSERT_NE(recorded.semisync, nullptr);
    ASSERT_NE(replayed.semisync, nullptr);
    const sim::SemiSyncResult& a = *recorded.semisync;
    const sim::SemiSyncResult& b = *replayed.semisync;
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.finished_at, b.finished_at);
    EXPECT_EQ(a.all_alive_decided, b.all_alive_decided);
    EXPECT_EQ(a.messages_delivered, b.messages_delivered);
    EXPECT_EQ(a.steps_taken, b.steps_taken);
    ASSERT_EQ(a.decisions.size(), b.decisions.size());
    for (const auto& [pid, event] : a.decisions) {
      const auto it = b.decisions.find(pid);
      ASSERT_NE(it, b.decisions.end());
      EXPECT_EQ(event.value, it->second.value);
      EXPECT_EQ(event.time, it->second.time);
    }
    EXPECT_TRUE(recorded.ok());
    EXPECT_TRUE(replayed.ok());
  }
}

TEST(Replay, SurvivesSerializationRoundTrip) {
  RunSpec spec;
  spec.protocol = ProtocolKind::kFloodSet;
  spec.n = 4;
  spec.f = 2;
  spec.seed = 7;
  const RunOutcome recorded = run_recorded(spec);
  const Schedule decoded =
      deserialize_schedule(serialize_schedule(recorded.schedule));
  const RunOutcome replayed = replay_schedule(decoded);
  expect_identical_traces(recorded, replayed);
}

TEST(Replay, TruncatedSemiSyncStreamsStayTotal) {
  // A shrunk/edited schedule may exhaust its recorded streams mid-run;
  // replay must pad with least-adversarial answers, not crash.
  RunSpec spec;
  spec.protocol = ProtocolKind::kSemiSyncKSet;
  spec.n = 3;
  spec.f = 1;
  spec.seed = 5;
  Schedule schedule = run_recorded(spec).schedule;
  schedule.delays.resize(schedule.delays.size() / 2);
  schedule.spacings.resize(schedule.spacings.size() / 2);
  RunOutcome outcome;
  ASSERT_NO_THROW(outcome = replay_schedule(schedule));
  EXPECT_TRUE(outcome.ok());
}

// -------------------------------------------------------- monitors --------

RunRecord basic_record() {
  RunRecord record;
  record.model = Model::kSync;
  record.n = 3;
  record.f = 1;
  record.k = 1;
  record.inputs = {0, 1, 2};
  sim::DecisionEvent d;
  d.pid = 0;
  d.value = 0;
  d.round = 2;
  record.decisions.push_back(d);
  return record;
}

TEST(Monitors, CleanRecordPasses) {
  const RunRecord record = basic_record();
  EXPECT_TRUE(check_all(standard_monitors(record.model), record).empty());
}

TEST(Monitors, AgreementFiresOnTooManyValues) {
  RunRecord record = basic_record();
  sim::DecisionEvent d;
  d.pid = 1;
  d.value = 1;
  d.round = 2;
  record.decisions.push_back(d);
  const AgreementMonitor monitor;
  EXPECT_TRUE(monitor.check(record).has_value());
}

TEST(Monitors, ValidityFiresOnForeignValue) {
  RunRecord record = basic_record();
  record.decisions[0].value = 42;  // nobody's input
  const ValidityMonitor monitor;
  EXPECT_TRUE(monitor.check(record).has_value());
  const AgreementMonitor agreement;
  EXPECT_FALSE(agreement.check(record).has_value());
}

TEST(Monitors, DecisionBoundFiresOnLateRound) {
  RunRecord record = basic_record();
  record.round_bound = 2;
  const DecisionBoundMonitor monitor;
  EXPECT_FALSE(monitor.check(record).has_value());
  record.decisions[0].round = 3;
  EXPECT_TRUE(monitor.check(record).has_value());
}

TEST(Monitors, DecisionBoundFiresOnLateTime) {
  RunRecord record = basic_record();
  record.decisions[0].round = 0;
  record.decisions[0].time = 500;
  record.time_bound = 400;
  const DecisionBoundMonitor monitor;
  EXPECT_TRUE(monitor.check(record).has_value());
}

TEST(Monitors, DecisionBoundFiresOnUndecidedSurvivor) {
  RunRecord record = basic_record();
  record.require_all_alive_decided = true;
  record.all_alive_decided = false;
  const DecisionBoundMonitor monitor;
  EXPECT_TRUE(monitor.check(record).has_value());
}

TEST(Monitors, NoZombieSendPassesOnRealRuns) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunSpec spec;
    spec.protocol = ProtocolKind::kFloodSet;
    spec.n = 5;
    spec.f = 3;
    spec.k = 2;
    spec.seed = seed;
    const RunOutcome outcome = run_recorded(spec);
    const NoZombieSendMonitor monitor;
    EXPECT_FALSE(monitor.check(outcome.record).has_value());
  }
}

TEST(Monitors, RequireOkThrowsWithSchedule) {
  RunSpec spec;
  spec.protocol = ProtocolKind::kFloodSet;
  spec.n = 4;
  spec.f = 1;
  spec.k = 1;
  spec.monitor_k = 0;  // impossible to satisfy: any decision violates
  spec.seed = 3;
  const RunOutcome outcome = run_recorded(spec);
  ASSERT_FALSE(outcome.ok());
  try {
    require_ok(outcome);
    FAIL() << "require_ok did not throw";
  } catch (const InvariantViolation& violation) {
    EXPECT_EQ(violation.violation().monitor, "agreement");
    // The exception carries a complete repro: replaying it fails again.
    EXPECT_FALSE(replay_schedule(violation.schedule()).ok());
  }
}

// -------------------------------------------------------- shrinking -------

/// A hand-planted agreement violation with deliberate slack. FloodSet at
/// n=5, protocol k=2 (so 2 rounds), monitored at k=1. A crash chain
/// P0 -> P1 smuggles input 0 to P2 only, so P2 decides 0 while P3 decides
/// 1. The round-1 crash of P4 (delivering nothing) is pure noise — the
/// shrinker must strip it (and P4's withheld deliveries) while keeping the
/// violation alive.
Schedule planted_violation() {
  Schedule s;
  s.model = Model::kSync;
  s.meta["protocol"] = static_cast<std::int64_t>(ProtocolKind::kFloodSet);
  s.meta["n"] = 5;
  s.meta["f"] = 2;
  s.meta["k"] = 2;
  s.meta["monitor_k"] = 1;
  s.meta["seed"] = 0;
  s.inputs = {0, 1, 2, 3, 4};
  sim::SyncRoundPlan round1;
  round1.crash = {0, 4};
  round1.delivered_to[0] = {1};
  round1.delivered_to[4] = {};
  sim::SyncRoundPlan round2;
  round2.crash = {1};
  round2.delivered_to[1] = {2};
  s.sync_rounds.push_back(round1);
  s.sync_rounds.push_back(round2);
  return s;
}

TEST(Shrink, PlantedViolationReplaysAsFailure) {
  const RunOutcome outcome = replay_schedule(planted_violation());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.violations.front().monitor, "agreement");
}

TEST(Shrink, ReducesPlantedViolationToFewerChoices) {
  const Schedule planted = planted_violation();
  const ShrinkOracle oracle = [](const Schedule& candidate) {
    return !replay_schedule(candidate).ok();
  };
  const ShrinkResult result = shrink(planted, oracle);
  EXPECT_GE(result.accepted, 1u);
  EXPECT_LT(result.schedule.choice_count(), planted.choice_count());
  // The minimized schedule is still a genuine counterexample.
  EXPECT_FALSE(replay_schedule(result.schedule).ok());
  // The noise crash of P4 is gone.
  for (const auto& plan : result.schedule.sync_rounds) {
    for (const sim::ProcessId pid : plan.crash) EXPECT_NE(pid, 4);
  }
}

TEST(Shrink, CandidatesStrictlyReduceOrAreFiltered) {
  const Schedule planted = planted_violation();
  const std::size_t count = planted.choice_count();
  // The shrinker only ever accepts candidates below the current count; the
  // generator itself may propose non-reducing edits, which must be filtered.
  std::size_t reducing = 0;
  for (const Schedule& candidate : shrink_candidates(planted)) {
    if (candidate.choice_count() < count) ++reducing;
  }
  EXPECT_GE(reducing, 1u);
}

TEST(Shrink, MinimalScheduleIsFixedPoint) {
  // A failure-free schedule has nothing to shrink.
  RunSpec spec;
  spec.protocol = ProtocolKind::kFloodSet;
  spec.n = 3;
  spec.f = 1;
  spec.seed = 2;
  Schedule schedule = run_recorded(spec).schedule;
  schedule.sync_rounds.clear();  // zero adversary choices
  const ShrinkResult result =
      shrink(schedule, [](const Schedule&) { return true; });
  EXPECT_EQ(result.accepted, 0u);
  EXPECT_EQ(result.schedule, schedule);
}

TEST(Shrink, SemiSyncCandidatesRelaxTiming) {
  RunSpec spec;
  spec.protocol = ProtocolKind::kSemiSyncKSet;
  spec.n = 3;
  spec.f = 1;
  spec.c1 = 1;
  spec.c2 = 3;
  spec.d = 5;
  spec.seed = 11;
  const Schedule schedule = run_recorded(spec).schedule;
  const std::size_t count = schedule.choice_count();
  for (const Schedule& candidate : shrink_candidates(schedule)) {
    EXPECT_LT(candidate.choice_count(), count);
    // Every semi-sync candidate must still replay (totality).
    EXPECT_NO_THROW(replay_schedule(candidate));
  }
}

// ------------------------------------------------------------ soak --------

TEST(Soak, AllProtocolsCleanOnSmallBudget) {
  for (const ProtocolKind kind :
       {ProtocolKind::kFloodSet, ProtocolKind::kEarlyStopping,
        ProtocolKind::kAsyncKSet, ProtocolKind::kSemiSyncKSet}) {
    RunSpec spec;
    spec.protocol = kind;
    spec.n = 4;
    spec.f = 2;
    spec.k = 1;
    spec.seed = 1000;
    const SoakReport report = soak(spec, 50);
    EXPECT_TRUE(report.ok()) << protocol_name(kind);
    EXPECT_EQ(report.runs, 50u);
  }
}

TEST(Soak, ReportsFirstViolationWithSchedule) {
  RunSpec spec;
  spec.protocol = ProtocolKind::kFloodSet;
  spec.n = 4;
  spec.f = 2;
  spec.monitor_k = 0;  // every run violates
  spec.seed = 5;
  const SoakReport report = soak(spec, 10);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_EQ(report.runs, 1u);  // stops at the first failure
  EXPECT_FALSE(replay_schedule(report.first_schedule).ok());
}

}  // namespace
}  // namespace psph::check
