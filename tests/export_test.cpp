// Tests for the export/import module: DOT, OFF, and the facet-listing
// round trip.

#include <gtest/gtest.h>

#include "topology/export.h"
#include "topology/homology.h"
#include "topology/operations.h"
#include "util/random.h"

namespace psph::topology {
namespace {

TEST(Export, DotContainsVerticesAndEdges) {
  SimplicialComplex k;
  k.add_facet(Simplex{1, 2, 3});
  const std::string dot = to_dot(k);
  EXPECT_NE(dot.find("graph complex"), std::string::npos);
  EXPECT_NE(dot.find("v1 -- v2"), std::string::npos);
  EXPECT_NE(dot.find("v2 -- v3"), std::string::npos);
  EXPECT_NE(dot.find("v1;"), std::string::npos);
}

TEST(Export, DotUsesLabelCallback) {
  SimplicialComplex k;
  k.add_facet(Simplex{0, 1});
  const std::string dot = to_dot(k, [](VertexId v) {
    return "P" + std::to_string(v);
  });
  EXPECT_NE(dot.find("label=\"P0\""), std::string::npos);
}

TEST(Export, OffHeaderAndCounts) {
  const SimplicialComplex sphere = boundary_complex(Simplex{0, 1, 2, 3});
  const std::string off = to_off(sphere);
  EXPECT_EQ(off.rfind("OFF\n", 0), 0u);
  EXPECT_NE(off.find("4 4 0"), std::string::npos);  // 4 vertices, 4 faces
}

TEST(Export, FacetListingRoundTrip) {
  SimplicialComplex k;
  k.add_facet(Simplex{5, 2, 9});
  k.add_facet(Simplex{1});
  k.add_facet(Simplex{2, 3});
  const SimplicialComplex parsed = from_facet_listing(to_facet_listing(k));
  EXPECT_EQ(parsed, k);
}

TEST(Export, ListingIgnoresCommentsAndBlanks) {
  const SimplicialComplex k = from_facet_listing(
      "# a triangle\n\n0 1 2\n# and an edge\n2 3  # trailing comment\n");
  EXPECT_TRUE(k.contains(Simplex{0, 1, 2}));
  EXPECT_TRUE(k.contains(Simplex{2, 3}));
  EXPECT_EQ(k.facet_count(), 2u);
}

TEST(Export, ListingRejectsGarbage) {
  EXPECT_THROW(from_facet_listing("1 2 x\n"), std::invalid_argument);
  EXPECT_THROW(from_facet_listing("-3 1\n"), std::invalid_argument);
}

TEST(Export, RoundTripPreservesHomologyOnRandomComplexes) {
  util::Rng rng(112233);
  for (int trial = 0; trial < 10; ++trial) {
    SimplicialComplex k;
    for (int i = 0; i < 8; ++i) {
      const auto tri = rng.sample_without_replacement(7, 3);
      k.add_facet(Simplex{static_cast<VertexId>(tri[0]),
                          static_cast<VertexId>(tri[1]),
                          static_cast<VertexId>(tri[2])});
    }
    const SimplicialComplex back = from_facet_listing(to_facet_listing(k));
    EXPECT_EQ(back, k);
    EXPECT_EQ(reduced_homology(back, {.max_dim = 2}).reduced_betti,
              reduced_homology(k, {.max_dim = 2}).reduced_betti);
  }
}

}  // namespace
}  // namespace psph::topology
