#pragma once

// The r-round semi-synchronous protocol complex M^r(S) of Section 8.
//
// The model has process step times in [c1, c2] and message delay at most d.
// The paper's round structure: each round lasts exactly time d, processes
// step in lockstep every c1, giving μ = ⌈d/c1⌉ microrounds per round, and
// all messages sent in a round are delivered at its end. A surviving
// process's view of a failure pattern F (mapping each failing process P_j
// to the microround F(P_j) ∈ [1, μ] in which it fails) records, per
// process, the microround of the last message received:
//   μ_j = μ for survivors;  μ_j ∈ {F(P_j) - 1, F(P_j)} for P_j ∈ K.
// By Lemma 19,  M¹_{K,F}(S) ≅ ψ(S\K; [F]): every survivor independently
// draws a view from [F]. The one-round complex is the union over all (K, F)
// pairs, lexicographically ordered (by K, then by F in reverse-lex order);
// Lemma 20 identifies the successive intersections as unions of the
// restricted pseudospheres ψ(S\K_t; [F_t ↑ j]).
//
// Microround encoding in views: HeardEntry.last_micro = μ_j for every heard
// process; a failing process with μ_j = 0 contributes no entry at all (no
// message was ever received from it).

#include <vector>

#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"
#include "topology/simplex.h"

namespace psph::core {

struct SemiSyncParams {
  int num_processes = 3;       // n + 1
  int total_failures = 1;      // f — budget across rounds
  int failures_per_round = 1;  // k — cap per round
  int micro_rounds = 2;        // μ = ⌈d/c1⌉
  int rounds = 1;              // r
};

/// A failure pattern F for a failing set K: fail_micro[i] ∈ [1, μ] is the
/// microround in which fail_set[i] crashes. fail_set is kept sorted.
struct FailurePattern {
  std::vector<ProcessId> fail_set;
  std::vector<int> fail_micro;
};

/// All (K, F) pairs for the given participants, |K| ≤ max_failures,
/// microrounds in [1, μ], in the paper's order: K lexicographic (by size
/// then lex), then F in reverse lexicographic order (all-fail-at-μ first).
std::vector<FailurePattern> enumerate_failure_patterns(
    const std::vector<ProcessId>& participants, int max_failures, int mu);

/// M¹_{K,F}(S) = ψ(S\K; [F]) — Lemma 19.
topology::SimplicialComplex semisync_round_complex_for_pattern(
    const topology::Simplex& input, const FailurePattern& pattern, int mu,
    ViewRegistry& views, topology::VertexArena& arena);

/// Lemma 20's right-hand side: ∪_{j ∈ K} ψ(S\K; [F ↑ j]), where [F ↑ j]
/// fixes μ_j = F(P_j) (the last message from P_j *was* delivered).
topology::SimplicialComplex semisync_lemma20_rhs(
    const topology::Simplex& input, const FailurePattern& pattern, int mu,
    ViewRegistry& views, topology::VertexArena& arena);

/// M¹(S): union over all (K, F).
topology::SimplicialComplex semisync_round_complex(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena);

/// M^r(S): the inductive r-round construction (fresh (K, F) per round,
/// budget decreasing). Runs the parallel, memoized pipeline of
/// construction.h (with a private cache); output is bit-identical to the
/// sequential reference at any thread count.
topology::SimplicialComplex semisync_protocol_complex(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena);

/// Sequential depth-first reference construction of M^r(S). Kept as the
/// correctness oracle for the pipeline (tests) and as the benchmark
/// baseline; always single-threaded, never memoized.
topology::SimplicialComplex semisync_protocol_complex_seq(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena);

/// Union of M^r over every facet of an input complex.
topology::SimplicialComplex semisync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena);

/// |[F]| = 2^|K| distinct views per survivor.
std::uint64_t view_count(const FailurePattern& pattern);

}  // namespace psph::core
