#pragma once

// The r-round synchronous protocol complex S^r(S) of Section 7.
//
// One round with failing set K ⊆ ids(S): every surviving process hears from
// every surviving process (including itself) and from an independently
// chosen subset of K (a process that crashes mid-round delivers to an
// arbitrary subset of receivers). By Lemma 14,
//   S¹_K(S) ≅ ψ(S\K; 2^K),
// and the one-round complex S¹(S) with at most k failures is the union of
// these pseudospheres over |K| ≤ k (Figure 3 is the 3-process instance).
//
// The r-round complex recursively fails a fresh K_i per round (at most k per
// round, within the remaining total budget f) and recurses on each facet of
// the K_i round with budget f - |K_i|.

#include <vector>

#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"
#include "topology/simplex.h"

namespace psph::core {

struct SyncParams {
  int num_processes = 3;      // n + 1
  int total_failures = 1;     // f — budget across all rounds
  int failures_per_round = 1; // k — cap per round
  int rounds = 1;             // r
};

/// S¹_K(S): the pseudosphere of one-round executions in which exactly the
/// processes in `fail_set` fail (Lemma 14). Empty if K covers all
/// participants.
topology::SimplicialComplex sync_round_complex_for_failset(
    const topology::Simplex& input, const std::vector<ProcessId>& fail_set,
    ViewRegistry& views, topology::VertexArena& arena);

/// S¹(S): union over all K with |K| ≤ min(failures_per_round,
/// total_failures).
topology::SimplicialComplex sync_round_complex(const topology::Simplex& input,
                                               const SyncParams& params,
                                               ViewRegistry& views,
                                               topology::VertexArena& arena);

/// S^r(S): the inductive r-round construction. Runs the parallel, memoized
/// pipeline of construction.h (with a private cache); output is
/// bit-identical to the sequential reference at any thread count.
topology::SimplicialComplex sync_protocol_complex(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena);

/// Sequential depth-first reference construction of S^r(S). Kept as the
/// correctness oracle for the pipeline (tests) and as the benchmark
/// baseline; always single-threaded, never memoized.
topology::SimplicialComplex sync_protocol_complex_seq(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena);

/// Union of S^r over every facet of an input complex.
topology::SimplicialComplex sync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena);

/// Lemma 15's right-hand side: the intersection of S¹_{K_t}(S) with the
/// union of all lexicographically earlier S¹_{K_i}(S) equals
///   ∪_{P ∈ K_t} ψ(S\K_t; 2^{K_t - {P}}).
/// This helper builds that union so tests/benches can compare it with the
/// directly computed intersection.
topology::SimplicialComplex sync_lemma15_rhs(
    const topology::Simplex& input, const std::vector<ProcessId>& fail_set,
    ViewRegistry& views, topology::VertexArena& arena);

/// All failure sets K ⊆ participants with |K| ≤ max_size, in the paper's
/// lexicographic order (by size, then lexicographically).
std::vector<std::vector<ProcessId>> lexicographic_fail_sets(
    const std::vector<ProcessId>& participants, int max_size);

}  // namespace psph::core
