#pragma once

// The iterated immediate snapshot (IIS) model of Borowsky and Gafni [BG97].
//
// Section 6 remarks that the paper's asynchronous round structure "looks
// something like a message-passing analog of the executions arising in the
// iterated immediate snapshot model". This module makes the remark
// checkable: it builds the IIS protocol complex so it can be compared,
// side by side, with A^r(S).
//
// One IIS round from an input simplex S: the participants are split into an
// *ordered partition* (B_1, ..., B_t); a process in block B_j snapshots the
// states of everyone in B_1 ∪ ... ∪ B_j. Each ordered partition contributes
// one facet, so the one-round complex is the chromatic (standard
// chromatic) subdivision of S — e.g. 13 facets for three processes. The
// r-round complex iterates the construction facet-wise.
//
// Known facts exercised by tests and the bench:
//   * facet count = ordered Bell number of the participant count
//     (1, 1, 3, 13, 75, 541, ...);
//   * the complex is a subdivision of S, hence contractible — homologically
//     trivial in every dimension;
//   * wait-free k-set agreement is impossible on IIS^r for k <= n (same
//     threshold the paper derives for its message-passing rounds).

#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"
#include "topology/simplex.h"

namespace psph::core {

/// One-round IIS complex from an input facet (the chromatic subdivision).
topology::SimplicialComplex iis_round_complex(const topology::Simplex& input,
                                              ViewRegistry& views,
                                              topology::VertexArena& arena);

/// r-round iterated complex. Runs the parallel, memoized pipeline of
/// construction.h (with a private cache); output is bit-identical to the
/// sequential reference at any thread count.
topology::SimplicialComplex iis_protocol_complex(
    const topology::Simplex& input, int rounds, ViewRegistry& views,
    topology::VertexArena& arena);

/// Sequential depth-first reference construction of IIS^r. Kept as the
/// correctness oracle for the pipeline (tests) and as the benchmark
/// baseline; always single-threaded, never memoized.
topology::SimplicialComplex iis_protocol_complex_seq(
    const topology::Simplex& input, int rounds, ViewRegistry& views,
    topology::VertexArena& arena);

/// Union of IIS^r over every facet of an input complex.
topology::SimplicialComplex iis_protocol_complex_over(
    const topology::SimplicialComplex& inputs, int rounds,
    ViewRegistry& views, topology::VertexArena& arena);

/// Ordered Bell number (Fubini number): the number of ordered set
/// partitions of m elements — the facet count of a one-round IIS complex
/// with m participants. Throws on overflow.
std::uint64_t ordered_bell(int m);

}  // namespace psph::core
