#pragma once

// Exhaustive search for a k-set-agreement decision map on an explicitly
// constructed protocol complex — the *sequential reference* backtracker.
//
// Theorem 9 / Corollary 10 prove nonexistence from connectivity; for a
// *finite* complex the statement "no decision map exists" is decidable by
// search, and this module decides it. A completed search with no solution
// is therefore a proof of impossibility for that instance; a witness
// assignment is a proof of possibility. Constraint propagation (most-
// constrained vertex first, domains filtered through saturated facets)
// makes the small instances of Corollaries 13/18/22 tractable.
//
// Production solvability queries go through the engine in src/solve
// (compiled CSP, incremental propagation, conflict-driven orbit-aware
// learning, portfolio parallelism); this backtracker is kept verbatim as
// the oracle its differential suite (tests/solve_test.cpp) compares every
// engine stage against. Prefer search_decision_map_seq in new call sites —
// the name records which side of that comparison you are on.

#include <cstdint>
#include <unordered_map>

#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"

namespace psph::core {

struct SearchOptions {
  /// Abort after exploring this many search nodes (0 = unlimited).
  std::uint64_t node_limit = 200'000'000;
  /// Most-constrained-vertex ordering with saturated-facet domain
  /// filtering. Disable to measure the heuristic's effect (the ablation
  /// bench does); plain fixed-order search explores far more nodes.
  bool use_mrv = true;
};

struct SearchResult {
  /// True if a valid decision map was found.
  bool decidable = false;
  /// True if the search ran to completion (decidable or proven impossible);
  /// false only when the node limit aborted it, in which case `decidable`
  /// is meaningless.
  bool exhausted = false;
  /// Witness assignment when decidable.
  std::unordered_map<topology::VertexId, std::int64_t> assignment;
  std::uint64_t nodes_explored = 0;
};

/// Searches for a decision map for k-set agreement on `protocol` (validity
/// from full-information views; agreement on every facet).
SearchResult search_decision_map(const topology::SimplicialComplex& protocol,
                                 int k, const ViewRegistry& views,
                                 const topology::VertexArena& arena,
                                 const SearchOptions& options = {});

/// Canonical name for the sequential oracle (see the header comment).
inline SearchResult search_decision_map_seq(
    const topology::SimplicialComplex& protocol, int k,
    const ViewRegistry& views, const topology::VertexArena& arena,
    const SearchOptions& options = {}) {
  return search_decision_map(protocol, k, views, arena, options);
}

}  // namespace psph::core
