#include "core/sync_complex.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "core/pseudosphere.h"
#include "math/combinatorics.h"
#include "topology/operations.h"

namespace psph::core {

namespace {

struct DecodedInput {
  std::vector<ProcessId> pids;
  std::unordered_map<ProcessId, StateId> state_of;
};

DecodedInput decode(const topology::Simplex& input,
                    const topology::VertexArena& arena) {
  DecodedInput decoded;
  for (topology::VertexId v : input.vertices()) {
    decoded.pids.push_back(arena.pid(v));
    decoded.state_of[arena.pid(v)] = arena.state(v);
  }
  std::sort(decoded.pids.begin(), decoded.pids.end());
  return decoded;
}

// Builds ψ(S\K; ...) where each survivor independently hears all survivors
// plus a subset J ⊆ K of the failing processes, with `required` ⊆ J forced.
// Lemma 14 uses required = ∅ (the value sets are all of 2^K, read as the
// set K - J of *missed* senders); Lemma 15's right-hand side pins one
// failing process j as heard, i.e. the missed set ranges over 2^{K - {j}}.
topology::SimplicialComplex failset_pseudosphere(
    const DecodedInput& input, const std::vector<ProcessId>& fail_set,
    const std::vector<ProcessId>& required, ViewRegistry& views,
    topology::VertexArena& arena) {
  topology::SimplicialComplex empty;
  std::vector<ProcessId> survivors;
  for (ProcessId p : input.pids) {
    if (!std::binary_search(fail_set.begin(), fail_set.end(), p)) {
      survivors.push_back(p);
    }
  }
  if (survivors.empty()) return empty;

  const int round = views.round(input.state_of.at(survivors[0])) + 1;

  // The optional part of each delivered set J: failing processes that are
  // neither forbidden nor forced.
  std::vector<ProcessId> optional;
  for (ProcessId p : fail_set) {
    if (!std::binary_search(required.begin(), required.end(), p)) {
      optional.push_back(p);
    }
  }

  std::vector<std::vector<StateId>> choices;
  choices.reserve(survivors.size());
  for (ProcessId receiver : survivors) {
    std::vector<StateId> receiver_choices;
    for (const std::vector<ProcessId>& extra : math::all_subsets(optional)) {
      std::vector<HeardEntry> heard;
      heard.reserve(survivors.size() + required.size() + extra.size());
      for (ProcessId sender : survivors) {
        heard.push_back({sender, input.state_of.at(sender), kNoMicro});
      }
      for (ProcessId sender : required) {
        heard.push_back({sender, input.state_of.at(sender), kNoMicro});
      }
      for (ProcessId sender : extra) {
        heard.push_back({sender, input.state_of.at(sender), kNoMicro});
      }
      receiver_choices.push_back(
          views.intern_round(receiver, round, std::move(heard)));
    }
    choices.push_back(std::move(receiver_choices));
  }
  return pseudosphere(survivors, choices, arena);
}

}  // namespace

std::vector<std::vector<ProcessId>> lexicographic_fail_sets(
    const std::vector<ProcessId>& participants, int max_size) {
  return math::subsets_with_size_between(participants, 0, max_size);
}

topology::SimplicialComplex sync_round_complex_for_failset(
    const topology::Simplex& input, const std::vector<ProcessId>& fail_set,
    ViewRegistry& views, topology::VertexArena& arena) {
  std::vector<ProcessId> sorted_k = fail_set;
  std::sort(sorted_k.begin(), sorted_k.end());
  const DecodedInput decoded = decode(input, arena);
  return failset_pseudosphere(decoded, sorted_k, {}, views, arena);
}

topology::SimplicialComplex sync_lemma15_rhs(
    const topology::Simplex& input, const std::vector<ProcessId>& fail_set,
    ViewRegistry& views, topology::VertexArena& arena) {
  std::vector<ProcessId> sorted_k = fail_set;
  std::sort(sorted_k.begin(), sorted_k.end());
  const DecodedInput decoded = decode(input, arena);
  topology::SimplicialComplex result;
  for (ProcessId heard_for_sure : sorted_k) {
    // ψ(S\K; 2^{K - {j}}): the views in which j's round message *was*
    // delivered, i.e. the missed set avoids j.
    result.merge(failset_pseudosphere(decoded, sorted_k, {heard_for_sure},
                                      views, arena));
  }
  return result;
}

topology::SimplicialComplex sync_round_complex(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  const DecodedInput decoded = decode(input, arena);
  const int cap = std::min(params.failures_per_round, params.total_failures);
  topology::SimplicialComplex result;
  for (const std::vector<ProcessId>& fail_set :
       lexicographic_fail_sets(decoded.pids, cap)) {
    result.merge(failset_pseudosphere(decoded, fail_set, {}, views, arena));
  }
  return result;
}

topology::SimplicialComplex sync_protocol_complex(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  if (params.rounds < 1) {
    throw std::invalid_argument("sync_protocol_complex: rounds < 1");
  }
  const DecodedInput decoded = decode(input, arena);
  const int cap = std::min(params.failures_per_round, params.total_failures);
  topology::SimplicialComplex result;
  for (const std::vector<ProcessId>& fail_set :
       lexicographic_fail_sets(decoded.pids, cap)) {
    const topology::SimplicialComplex round_complex =
        failset_pseudosphere(decoded, fail_set, {}, views, arena);
    if (params.rounds == 1) {
      result.merge(round_complex);
      continue;
    }
    SyncParams next = params;
    next.rounds = params.rounds - 1;
    next.total_failures =
        params.total_failures - static_cast<int>(fail_set.size());
    for (const topology::Simplex& facet : round_complex.facets()) {
      result.merge(sync_protocol_complex(facet, next, views, arena));
    }
  }
  return result;
}

topology::SimplicialComplex sync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  topology::SimplicialComplex result;
  for (const topology::Simplex& facet : inputs.facets()) {
    result.merge(sync_protocol_complex(facet, params, views, arena));
  }
  return result;
}

}  // namespace psph::core
