#include "core/sync_complex.h"

#include <algorithm>
#include <stdexcept>

#include "core/construction.h"
#include "core/round_ops.h"
#include "math/combinatorics.h"

namespace psph::core {

std::vector<std::vector<ProcessId>> lexicographic_fail_sets(
    const std::vector<ProcessId>& participants, int max_size) {
  return math::subsets_with_size_between(participants, 0, max_size);
}

topology::SimplicialComplex sync_round_complex_for_failset(
    const topology::Simplex& input, const std::vector<ProcessId>& fail_set,
    ViewRegistry& views, topology::VertexArena& arena) {
  std::vector<ProcessId> sorted_k = fail_set;
  std::sort(sorted_k.begin(), sorted_k.end());
  const detail::SortedFacet decoded = detail::decode_sorted(input, arena);
  std::vector<topology::Simplex> facets;
  detail::sync_failset_facets(decoded, sorted_k, {}, views, arena, &facets);
  topology::SimplicialComplex result;
  result.add_facets(std::move(facets));
  return result;
}

topology::SimplicialComplex sync_lemma15_rhs(
    const topology::Simplex& input, const std::vector<ProcessId>& fail_set,
    ViewRegistry& views, topology::VertexArena& arena) {
  std::vector<ProcessId> sorted_k = fail_set;
  std::sort(sorted_k.begin(), sorted_k.end());
  const detail::SortedFacet decoded = detail::decode_sorted(input, arena);
  topology::SimplicialComplex result;
  for (ProcessId heard_for_sure : sorted_k) {
    // ψ(S\K; 2^{K - {j}}): the views in which j's round message *was*
    // delivered, i.e. the missed set avoids j.
    std::vector<topology::Simplex> facets;
    detail::sync_failset_facets(decoded, sorted_k, {heard_for_sure}, views,
                                arena, &facets);
    result.add_facets(std::move(facets));
  }
  return result;
}

topology::SimplicialComplex sync_round_complex(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  std::vector<detail::RoundGroup> groups;
  detail::expand_sync_round(input, params, views, arena, &groups);
  topology::SimplicialComplex result;
  for (detail::RoundGroup& group : groups) {
    result.add_facets(std::move(group.facets));
  }
  return result;
}

topology::SimplicialComplex sync_protocol_complex(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  ConstructionCache cache;
  return sync_protocol_complex(input, params, views, arena, cache);
}

topology::SimplicialComplex sync_protocol_complex_seq(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  if (params.rounds < 1) {
    throw std::invalid_argument("sync_protocol_complex: rounds < 1");
  }
  const detail::SortedFacet decoded = detail::decode_sorted(input, arena);
  const int cap = std::min(params.failures_per_round, params.total_failures);
  topology::SimplicialComplex result;
  for (const std::vector<ProcessId>& fail_set :
       lexicographic_fail_sets(decoded.pids, cap)) {
    std::vector<topology::Simplex> facets;
    detail::sync_failset_facets(decoded, fail_set, {}, views, arena, &facets);
    topology::SimplicialComplex round_complex;
    round_complex.add_facets(std::move(facets));
    if (params.rounds == 1) {
      result.merge(round_complex);
      continue;
    }
    SyncParams next = params;
    next.rounds = params.rounds - 1;
    next.total_failures =
        params.total_failures - static_cast<int>(fail_set.size());
    for (const topology::Simplex& facet : round_complex.facets()) {
      result.merge(sync_protocol_complex_seq(facet, next, views, arena));
    }
  }
  return result;
}

topology::SimplicialComplex sync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  ConstructionCache cache;
  return sync_protocol_complex_over(inputs, params, views, arena, cache);
}

}  // namespace psph::core
