#pragma once

// Pseudospheres (Definition 3) — the paper's central construct.
//
// Given a base simplex whose vertices carry process ids, and one finite
// value set per position, the pseudosphere ψ(S; U_0, ..., U_m) has a vertex
// (P_i, u) for every u ∈ U_i, and a simplex for every choice of at most one
// value per process. Its facets are exactly the |U_0| × ... × |U_m| tuples
// of independent choices.
//
// Properties verified by tests and the Lemma-4 bench:
//   * singleton value sets give back the simplex (Lemma 4, property 1);
//   * an empty U_i simply deletes position i (property 2);
//   * pseudospheres intersect position-wise (property 3);
//   * ψ(S^n; {0,1}) is homeomorphic to the n-sphere (checked homologically).
//
// Values are opaque StateIds; for input complexes they are interned round-0
// views (see input_complex below).

#include <cstdint>
#include <vector>

#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"

namespace psph::core {

using topology::SimplicialComplex;
using topology::VertexArena;

/// ψ(S; U_0, ..., U_m) with per-position value sets. `pids` and
/// `value_sets` must have equal length; positions with empty value sets are
/// dropped (Lemma 4, property 2). Distinct pids are required.
SimplicialComplex pseudosphere(const std::vector<ProcessId>& pids,
                               const std::vector<std::vector<StateId>>& value_sets,
                               VertexArena& arena);

/// ψ(S; U) with the same value set at every position.
SimplicialComplex pseudosphere_uniform(const std::vector<ProcessId>& pids,
                                       const std::vector<StateId>& values,
                                       VertexArena& arena);

/// The number of facets ψ(S; U_0..U_m) must have: Π over nonempty positions
/// of |U_i| (0 if all positions are empty).
std::uint64_t pseudosphere_facet_count(
    const std::vector<std::vector<StateId>>& value_sets);

/// The k-set-agreement input complex ψ(P^n; V) (Section 5): every process
/// independently starts with any value in V. Vertices are labeled with
/// interned round-0 views.
SimplicialComplex input_complex(int num_processes,
                                const std::vector<std::int64_t>& values,
                                ViewRegistry& views, VertexArena& arena);

/// The general input pseudosphere ψ(Pⁿ; U_0, ..., U_n): process i draws its
/// input independently from per_process_values[i] (Theorems 5 and 7 quantify
/// over exactly these). Positions with empty value sets are dropped.
SimplicialComplex input_pseudosphere(
    const std::vector<std::vector<std::int64_t>>& per_process_values,
    ViewRegistry& views, VertexArena& arena);

/// The single input facet where process i starts with values[i]
/// (values.size() == num_processes). Useful for fixing one initial
/// configuration, e.g. the "rainbow" simplex with all-distinct inputs.
topology::Simplex input_facet(const std::vector<std::int64_t>& values,
                              ViewRegistry& views, VertexArena& arena);

}  // namespace psph::core
