#include "core/pseudosphere.h"

#include <limits>
#include <set>
#include <stdexcept>

#include "core/round_ops.h"
#include "math/combinatorics.h"
#include "topology/simplex.h"

namespace psph::core {

SimplicialComplex pseudosphere(
    const std::vector<ProcessId>& pids,
    const std::vector<std::vector<StateId>>& value_sets, VertexArena& arena) {
  if (pids.size() != value_sets.size()) {
    throw std::invalid_argument("pseudosphere: pids/value_sets size mismatch");
  }
  if (std::set<ProcessId>(pids.begin(), pids.end()).size() != pids.size()) {
    throw std::invalid_argument("pseudosphere: duplicate process id");
  }

  // Drop positions with empty value sets (Lemma 4, property 2).
  std::vector<ProcessId> live_pids;
  std::vector<std::vector<StateId>> live_sets;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    if (!value_sets[i].empty()) {
      live_pids.push_back(pids[i]);
      live_sets.push_back(value_sets[i]);
    }
  }

  SimplicialComplex result;
  if (live_pids.empty()) return result;

  // All facets of one pseudosphere are distinct and share one dimension, so
  // the bulk insert takes SimplicialComplex::add_facets's pure fast lane.
  std::vector<topology::Simplex> facets;
  detail::product_facets(live_pids, live_sets, arena, &facets);
  result.add_facets(std::move(facets));
  return result;
}

SimplicialComplex pseudosphere_uniform(const std::vector<ProcessId>& pids,
                                       const std::vector<StateId>& values,
                                       VertexArena& arena) {
  return pseudosphere(
      pids, std::vector<std::vector<StateId>>(pids.size(), values), arena);
}

std::uint64_t pseudosphere_facet_count(
    const std::vector<std::vector<StateId>>& value_sets) {
  std::uint64_t count = 0;
  bool any = false;
  for (const auto& set : value_sets) {
    if (set.empty()) continue;
    if (!any) {
      count = 1;
      any = true;
    }
    if (count > std::numeric_limits<std::uint64_t>::max() / set.size()) {
      throw std::overflow_error("pseudosphere_facet_count: overflow");
    }
    count *= set.size();
  }
  return count;
}

SimplicialComplex input_complex(int num_processes,
                                const std::vector<std::int64_t>& values,
                                ViewRegistry& views, VertexArena& arena) {
  if (num_processes < 1) {
    throw std::invalid_argument("input_complex: need at least one process");
  }
  if (values.empty()) {
    throw std::invalid_argument("input_complex: empty value set");
  }
  std::vector<ProcessId> pids;
  std::vector<std::vector<StateId>> value_sets;
  for (ProcessId p = 0; p < num_processes; ++p) {
    pids.push_back(p);
    std::vector<StateId> states;
    states.reserve(values.size());
    for (std::int64_t v : values) states.push_back(views.intern_input(p, v));
    value_sets.push_back(std::move(states));
  }
  return pseudosphere(pids, value_sets, arena);
}

SimplicialComplex input_pseudosphere(
    const std::vector<std::vector<std::int64_t>>& per_process_values,
    ViewRegistry& views, VertexArena& arena) {
  std::vector<ProcessId> pids;
  std::vector<std::vector<StateId>> value_sets;
  for (std::size_t i = 0; i < per_process_values.size(); ++i) {
    const ProcessId pid = static_cast<ProcessId>(i);
    pids.push_back(pid);
    std::vector<StateId> states;
    states.reserve(per_process_values[i].size());
    for (std::int64_t v : per_process_values[i]) {
      states.push_back(views.intern_input(pid, v));
    }
    value_sets.push_back(std::move(states));
  }
  return pseudosphere(pids, value_sets, arena);
}

topology::Simplex input_facet(const std::vector<std::int64_t>& values,
                              ViewRegistry& views, VertexArena& arena) {
  std::vector<topology::VertexId> vertices;
  vertices.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const ProcessId pid = static_cast<ProcessId>(i);
    vertices.push_back(arena.intern(pid, views.intern_input(pid, values[i])));
  }
  return topology::Simplex(std::move(vertices));
}

}  // namespace psph::core
