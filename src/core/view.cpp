#include "core/view.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace psph::core {

View make_round_view(ProcessId pid, int round, std::vector<HeardEntry> heard) {
  if (round < 1) throw std::invalid_argument("intern_round: round < 1");
  std::sort(heard.begin(), heard.end());
  for (std::size_t i = 1; i < heard.size(); ++i) {
    if (heard[i].from == heard[i - 1].from) {
      throw std::invalid_argument("intern_round: duplicate sender");
    }
  }
  View v;
  v.pid = pid;
  v.round = round;
  v.input = 0;
  v.heard = std::move(heard);
  return v;
}

StateId ViewRegistry::intern(View v) {
  const auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  const StateId id = static_cast<StateId>(views_.size());
  index_.emplace(v, id);
  views_.push_back(std::move(v));
  return id;
}

StateId ViewRegistry::intern_input(ProcessId pid, std::int64_t input) {
  View v;
  v.pid = pid;
  v.round = 0;
  v.input = input;
  return intern(std::move(v));
}

StateId ViewRegistry::intern_round(ProcessId pid, int round,
                                   std::vector<HeardEntry> heard) {
  return intern(make_round_view(pid, round, std::move(heard)));
}

const View& ViewRegistry::view(StateId id) const {
  if (id >= views_.size()) throw std::out_of_range("ViewRegistry::view");
  return views_[static_cast<std::size_t>(id)];
}

std::optional<StateId> ViewRegistry::find(const View& v) const {
  const auto it = index_.find(v);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::set<std::int64_t>& ViewRegistry::inputs_seen(StateId id) const {
  const auto cached = inputs_cache_.find(id);
  if (cached != inputs_cache_.end()) return cached->second;
  const View& v = view(id);
  std::set<std::int64_t> result;
  if (v.round == 0) {
    result.insert(v.input);
  } else {
    for (const HeardEntry& e : v.heard) {
      const std::set<std::int64_t>& sub = inputs_seen(e.state);
      result.insert(sub.begin(), sub.end());
    }
  }
  return inputs_cache_.emplace(id, std::move(result)).first->second;
}

std::int64_t ViewRegistry::min_input_seen(StateId id) const {
  const std::set<std::int64_t>& seen = inputs_seen(id);
  if (seen.empty()) {
    throw std::logic_error("min_input_seen: view has no visible inputs");
  }
  return *seen.begin();
}

std::set<ProcessId> ViewRegistry::direct_senders(StateId id) const {
  const View& v = view(id);
  std::set<ProcessId> result;
  if (v.round == 0) {
    result.insert(v.pid);
  } else {
    for (const HeardEntry& e : v.heard) result.insert(e.from);
  }
  return result;
}

const std::string& ViewRegistry::to_string(StateId id) const {
  const auto cached = string_cache_.find(id);
  if (cached != string_cache_.end()) return cached->second;
  const View& v = view(id);
  std::ostringstream out;
  out << "P" << v.pid << "@r" << v.round;
  if (v.round == 0) {
    out << "=" << v.input;
    return string_cache_.emplace(id, out.str()).first->second;
  }
  out << "<";
  for (std::size_t i = 0; i < v.heard.size(); ++i) {
    if (i > 0) out << ",";
    out << "P" << v.heard[i].from;
    if (v.heard[i].last_micro != kNoMicro) {
      out << "u" << v.heard[i].last_micro;
    }
    // Sub-views are strictly earlier rounds, so the recursion terminates;
    // each renders once and is thereafter a cache hit.
    out << ":" << to_string(v.heard[i].state);
  }
  out << ">";
  return string_cache_.emplace(id, out.str()).first->second;
}

}  // namespace psph::core
