#pragma once

// Indistinguishability chains — Section 1's similarity structure, made
// executable.
//
// Two global states (facets) are similar when some process has the same
// local state in both, i.e. the facets share a vertex. The facet-adjacency
// graph under this relation is the classical engine of consensus lower
// bounds: a decision map for consensus must be constant along any chain of
// similar facets (each shared vertex forces the shared process's decision
// on both sides), so a chain connecting a facet forced to decide 0 to a
// facet forced to decide 1 is a *witness of impossibility* — independent of
// both the homological argument (Theorem 9) and the exhaustive search.
//
// This module builds the similarity graph, measures degrees of similarity
// (the number of shared vertices, Section 1's "higher degrees"), and
// extracts explicit witness chains for consensus on any protocol complex.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"

namespace psph::core {

struct SimilarityGraph {
  std::vector<topology::Simplex> facets;
  /// adjacency[i] = facets sharing at least one vertex with facets[i].
  std::vector<std::vector<std::size_t>> adjacency;
  /// degree_histogram[s] = number of unordered facet pairs sharing exactly
  /// s vertices (s >= 1).
  std::vector<std::size_t> degree_histogram;
};

/// Builds the similarity graph of a complex's facets.
SimilarityGraph similarity_graph(const topology::SimplicialComplex& k);

struct ChainWitness {
  /// Indices (into SimilarityGraph::facets) of a chain whose first facet is
  /// forced to decide `low_value` and whose last is forced to `high_value`;
  /// consecutive facets share a vertex.
  std::vector<std::size_t> chain;
  std::int64_t low_value = 0;
  std::int64_t high_value = 0;
};

/// Consensus impossibility by chain argument: finds a facet every one of
/// whose vertices can only decide `v` (all views saw only v) for two
/// distinct values, connected by a similarity chain. Returns the witness if
/// found. A witness proves binary consensus unsolvable on this complex:
/// along the chain every facet must carry the same single decision, but
/// the endpoints force different ones.
std::optional<ChainWitness> consensus_chain_witness(
    const topology::SimplicialComplex& protocol, const ViewRegistry& views,
    const topology::VertexArena& arena);

/// Largest number of vertices shared by any two distinct facets (0 when
/// fewer than two facets) — the maximum degree of similarity realized.
std::size_t max_similarity_degree(const topology::SimplicialComplex& k);

}  // namespace psph::core
