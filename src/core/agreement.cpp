#include "core/agreement.h"

#include <set>
#include <sstream>

namespace psph::core {

DecisionRule min_seen_rule(const ViewRegistry& views) {
  return [&views](StateId state) { return views.min_input_seen(state); };
}

std::vector<std::int64_t> allowed_values(topology::VertexId vertex,
                                         const ViewRegistry& views,
                                         const topology::VertexArena& arena) {
  const std::set<std::int64_t>& seen =
      views.inputs_seen(arena.state(vertex));
  return std::vector<std::int64_t>(seen.begin(), seen.end());
}

RuleCheckResult check_decision_rule(
    const topology::SimplicialComplex& protocol, int k,
    const DecisionRule& rule, const ViewRegistry& views,
    const topology::VertexArena& arena) {
  RuleCheckResult result;

  // Validity per vertex.
  for (topology::VertexId v : protocol.vertex_ids()) {
    ++result.vertices_checked;
    const std::int64_t decision = rule(arena.state(v));
    const std::set<std::int64_t>& seen = views.inputs_seen(arena.state(v));
    if (seen.count(decision) == 0) {
      std::ostringstream why;
      why << "vertex P" << arena.pid(v) << " decides " << decision
          << " which it never saw";
      result.ok = false;
      result.violation = RuleViolation{RuleViolation::Kind::validity,
                                       topology::Simplex{v}, why.str()};
      return result;
    }
  }

  // Agreement per facet.
  bool ok = true;
  std::optional<RuleViolation> violation;
  std::size_t facets = 0;
  protocol.for_each_facet([&](const topology::Simplex& facet) {
    if (!ok) return;
    ++facets;
    std::set<std::int64_t> decisions;
    for (topology::VertexId v : facet.vertices()) {
      decisions.insert(rule(arena.state(v)));
    }
    if (static_cast<int>(decisions.size()) > k) {
      std::ostringstream why;
      why << "facet carries " << decisions.size() << " distinct decisions (> "
          << k << ")";
      ok = false;
      violation =
          RuleViolation{RuleViolation::Kind::agreement, facet, why.str()};
    }
  });
  result.facets_checked = facets;
  if (!ok) {
    result.ok = false;
    result.violation = std::move(violation);
  }
  return result;
}

}  // namespace psph::core
