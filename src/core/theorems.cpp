#include "core/theorems.h"

#include <sstream>

#include "core/agreement.h"
#include "core/pseudosphere.h"
#include "topology/homology.h"

namespace psph::core {

namespace {

ConnectivityCheck measure(const topology::SimplicialComplex& complex,
                          int expected) {
  ConnectivityCheck check;
  check.expected = expected;
  check.facet_count = complex.facet_count();
  check.vertex_count = complex.vertex_ids().size();
  check.dimension = complex.dimension();
  const int up_to = std::max(expected, 0);
  check.measured = topology::homological_connectivity(complex, up_to);
  if (expected <= -2) {
    check.satisfied = true;
  } else if (expected == -1) {
    check.satisfied = !complex.empty();
  } else {
    check.satisfied = check.measured >= expected;
  }
  return check;
}

std::vector<std::int64_t> value_range(int count) {
  std::vector<std::int64_t> values;
  for (int v = 0; v < count; ++v) values.push_back(v);
  return values;
}

AgreementCheck run_search(const topology::SimplicialComplex& protocol, int k,
                          const ViewRegistry& views,
                          const topology::VertexArena& arena,
                          const SearchOptions& options) {
  AgreementCheck check;
  check.protocol_facets = protocol.facet_count();
  check.protocol_vertices = protocol.vertex_ids().size();
  const SearchResult result =
      search_decision_map(protocol, k, views, arena, options);
  check.search_exhausted = result.exhausted;
  check.nodes = result.nodes_explored;
  check.possible = result.decidable;
  check.impossible = result.exhausted && !result.decidable;
  return check;
}

}  // namespace

std::string ConnectivityCheck::to_string() const {
  std::ostringstream out;
  out << "expected>=" << expected << " measured=" << measured
      << (satisfied ? " OK" : " VIOLATION") << " facets=" << facet_count
      << " vertices=" << vertex_count << " dim=" << dimension;
  return out.str();
}

topology::Simplex rainbow_input(int participants, ViewRegistry& views,
                                topology::VertexArena& arena) {
  return input_facet(value_range(participants), views, arena);
}

ConnectivityCheck check_pseudosphere_connectivity(
    const std::vector<int>& value_set_sizes) {
  topology::VertexArena arena;
  std::vector<ProcessId> pids;
  std::vector<std::vector<StateId>> value_sets;
  StateId next_value = 0;
  for (std::size_t i = 0; i < value_set_sizes.size(); ++i) {
    pids.push_back(static_cast<ProcessId>(i));
    std::vector<StateId> values;
    for (int v = 0; v < value_set_sizes[i]; ++v) values.push_back(next_value++);
    value_sets.push_back(std::move(values));
  }
  const topology::SimplicialComplex psi =
      pseudosphere(pids, value_sets, arena);
  const int m = static_cast<int>(value_set_sizes.size()) - 1;
  return measure(psi, m - 1);
}

ConnectivityCheck check_async_connectivity(int num_processes,
                                           int participants, int f, int r,
                                           const ConstructionOptions& options) {
  ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = rainbow_input(participants, views, arena);
  AsyncParams params{num_processes, f, r};
  const int m = participants - 1;
  const int n = num_processes - 1;
  if (options.mode == ConstructionMode::kOrbit) {
    ConstructionCache cache;
    const OrbitComplexResult orbit = async_protocol_complex_orbit(
        input, params, views, arena, cache, options);
    return measure(reconstitute_full(orbit, views, arena), m - (n - f) - 1);
  }
  const topology::SimplicialComplex complex =
      async_protocol_complex(input, params, views, arena);
  return measure(complex, m - (n - f) - 1);
}

ConnectivityCheck check_sync_connectivity(int num_processes, int participants,
                                          int k, int r,
                                          const ConstructionOptions& options) {
  ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = rainbow_input(participants, views, arena);
  SyncParams params{num_processes, /*total_failures=*/r * k,
                    /*failures_per_round=*/k, r};
  const int m = participants - 1;
  const int n = num_processes - 1;
  if (options.mode == ConstructionMode::kOrbit) {
    ConstructionCache cache;
    const OrbitComplexResult orbit =
        sync_protocol_complex_orbit(input, params, views, arena, cache,
                                    options);
    return measure(reconstitute_full(orbit, views, arena), m - (n - k) - 1);
  }
  const topology::SimplicialComplex complex =
      sync_protocol_complex(input, params, views, arena);
  return measure(complex, m - (n - k) - 1);
}

ConnectivityCheck check_semisync_connectivity(int num_processes,
                                              int participants, int k, int mu,
                                              int r,
                                              const ConstructionOptions&
                                                  options) {
  ViewRegistry views;
  topology::VertexArena arena;
  const topology::Simplex input = rainbow_input(participants, views, arena);
  SemiSyncParams params{num_processes, /*total_failures=*/r * k,
                        /*failures_per_round=*/k, mu, r};
  const int m = participants - 1;
  const int n = num_processes - 1;
  if (options.mode == ConstructionMode::kOrbit) {
    ConstructionCache cache;
    const OrbitComplexResult orbit = semisync_protocol_complex_orbit(
        input, params, views, arena, cache, options);
    return measure(reconstitute_full(orbit, views, arena), m - (n - k) - 1);
  }
  const topology::SimplicialComplex complex =
      semisync_protocol_complex(input, params, views, arena);
  return measure(complex, m - (n - k) - 1);
}

AgreementCheck check_async_agreement(int num_processes, int f, int k, int r,
                                     const SearchOptions& options) {
  ViewRegistry views;
  topology::VertexArena arena;
  const topology::SimplicialComplex inputs =
      input_complex(num_processes, value_range(k + 1), views, arena);
  AsyncParams params{num_processes, f, r};
  const topology::SimplicialComplex protocol =
      async_protocol_complex_over(inputs, params, views, arena);
  return run_search(protocol, k, views, arena, options);
}

AgreementCheck check_sync_agreement(int num_processes, int f, int k, int r,
                                    const SearchOptions& options) {
  ViewRegistry views;
  topology::VertexArena arena;
  const topology::SimplicialComplex inputs =
      input_complex(num_processes, value_range(k + 1), views, arena);
  SyncParams params{num_processes, f, k, r};
  const topology::SimplicialComplex protocol =
      sync_protocol_complex_over(inputs, params, views, arena);
  return run_search(protocol, k, views, arena, options);
}

AgreementCheck check_semisync_agreement(int num_processes, int f, int k,
                                        int mu, int r,
                                        const SearchOptions& options) {
  ViewRegistry views;
  topology::VertexArena arena;
  const topology::SimplicialComplex inputs =
      input_complex(num_processes, value_range(k + 1), views, arena);
  SemiSyncParams params{num_processes, f, k, mu, r};
  const topology::SimplicialComplex protocol =
      semisync_protocol_complex_over(inputs, params, views, arena);
  return run_search(protocol, k, views, arena, options);
}

Corollary10Check check_corollary10_async(int num_processes, int f, int k,
                                         int r,
                                         const SearchOptions& options) {
  Corollary10Check check;
  const int n = num_processes - 1;
  bool all_ok = true;
  for (int m1 = num_processes - f; m1 <= num_processes; ++m1) {
    const int m = m1 - 1;
    Corollary10Check::Level level;
    level.participants = m1;
    level.required = m - (n - k) - 1;
    const ConnectivityCheck conn =
        check_async_connectivity(num_processes, m1, f, r);
    level.measured = conn.measured;
    level.satisfied = level.required <= -2 ||
                      (level.required == -1 && conn.facet_count > 0) ||
                      (level.required >= 0 && conn.measured >= level.required);
    all_ok = all_ok && level.satisfied;
    check.levels.push_back(level);
  }
  check.hypothesis_holds = all_ok;

  const AgreementCheck agreement =
      check_async_agreement(num_processes, f, k, r, options);
  check.search_impossible = agreement.impossible;
  check.search_exhausted = agreement.search_exhausted;
  return check;
}

namespace {

// Verifies Theorem 5's hypothesis for the one-round asynchronous protocol:
// A¹(S^ℓ) is (ℓ - c - 1)-connected for every face dimension ℓ (with
// c = n - f, this is Lemma 12 at r = 1; we measure it rather than assume
// it). The connectivity of A¹(S^ℓ) depends only on ℓ, so one face per
// dimension suffices.
bool async_hypothesis_holds(int num_processes, int f) {
  const int c = (num_processes - 1) - f;
  for (int l1 = 1; l1 <= num_processes; ++l1) {
    const int l = l1 - 1;
    const ConnectivityCheck face_check =
        check_async_connectivity(num_processes, l1, f, 1);
    const int needed = l - c - 1;
    if (needed <= -2) continue;
    if (needed == -1 && face_check.facet_count == 0) return false;
    if (needed >= 0 && face_check.measured < needed) return false;
  }
  return true;
}

}  // namespace

Theorem5Check check_theorem5_async(
    int num_processes, int f,
    const std::vector<std::vector<std::int64_t>>& per_process_values) {
  Theorem5Check check;
  check.c = (num_processes - 1) - f;
  check.hypothesis_holds = async_hypothesis_holds(num_processes, f);

  ViewRegistry views;
  topology::VertexArena arena;
  const topology::SimplicialComplex inputs =
      input_pseudosphere(per_process_values, views, arena);
  const topology::SimplicialComplex protocol = async_protocol_complex_over(
      inputs, {num_processes, f, 1}, views, arena);
  const int n = num_processes - 1;
  check.conclusion = measure(protocol, n - check.c - 1);
  return check;
}

Theorem5Check check_theorem7_async(
    int num_processes, int f,
    const std::vector<std::vector<std::int64_t>>& families) {
  Theorem5Check check;
  check.c = (num_processes - 1) - f;
  check.hypothesis_holds = async_hypothesis_holds(num_processes, f);

  ViewRegistry views;
  topology::VertexArena arena;
  topology::SimplicialComplex inputs;
  for (const std::vector<std::int64_t>& family : families) {
    inputs.merge(input_complex(num_processes, family, views, arena));
  }
  const topology::SimplicialComplex protocol = async_protocol_complex_over(
      inputs, {num_processes, f, 1}, views, arena);
  const int n = num_processes - 1;
  check.conclusion = measure(protocol, n - check.c - 1);
  return check;
}

bool floodmin_solves_sync(int num_processes, int f, int k, int r) {
  ViewRegistry views;
  topology::VertexArena arena;
  const topology::SimplicialComplex inputs =
      input_complex(num_processes, value_range(k + 1), views, arena);
  SyncParams params{num_processes, f, k, r};
  const topology::SimplicialComplex protocol =
      sync_protocol_complex_over(inputs, params, views, arena);
  const RuleCheckResult result = check_decision_rule(
      protocol, k, min_seen_rule(views), views, arena);
  return result.ok;
}

}  // namespace psph::core
