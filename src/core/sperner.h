#pragma once

// Sperner's lemma machinery (the engine behind Theorem 9, via
// [Lef49, Lemma 5.5]).
//
// Take the solid simplex Δ^n, subdivide it barycentrically `rounds` times,
// and color every subdivision vertex with one of the original n+1 corners —
// subject to the Sperner condition that a vertex's color must lie in its
// *carrier* (the smallest face of Δ^n containing it). Sperner's lemma says
// the number of panchromatic facets (all n+1 colors) is odd — in particular
// nonzero. This is the combinatorial fact that turns "the protocol complex
// is (k-1)-connected" into "no decision map exists".

#include <cstddef>
#include <vector>

#include "topology/complex.h"
#include "util/random.h"

namespace psph::core {

struct SpernerInstance {
  /// The subdivided complex.
  topology::SimplicialComplex complex;
  /// carrier[v]: sorted original corner ids that span v's carrier face.
  std::vector<std::vector<topology::VertexId>> carriers;
  /// coloring[v] ∈ carrier[v].
  std::vector<topology::VertexId> coloring;
  int dim = 0;
};

/// Builds the `rounds`-fold barycentric subdivision of Δ^dim with carriers
/// composed back to the original corners; the coloring is left empty.
SpernerInstance make_subdivided_simplex(int dim, int rounds);

/// Colors every vertex with a uniformly random element of its carrier
/// (always a legal Sperner coloring).
void color_randomly(SpernerInstance& instance, util::Rng& rng);

/// Colors every vertex with the *minimum* corner of its carrier (a
/// canonical deterministic Sperner coloring).
void color_min_carrier(SpernerInstance& instance);

/// True if the coloring satisfies the Sperner condition.
bool is_sperner_coloring(const SpernerInstance& instance);

/// Number of facets whose vertices carry all dim+1 colors. Sperner's lemma:
/// odd for every Sperner coloring.
std::size_t count_panchromatic(const SpernerInstance& instance);

}  // namespace psph::core
