#pragma once

// Machine checks for the paper's numbered results. Each function builds the
// relevant construction, runs the homological-connectivity engine and/or
// decision-map search, and returns a structured verdict that tests assert
// on and bench binaries print.

#include <cstdint>
#include <string>
#include <vector>

#include "core/async_complex.h"
#include "core/construction.h"
#include "core/decision_search.h"
#include "core/semisync_complex.h"
#include "core/sync_complex.h"
#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"

namespace psph::core {

struct ConnectivityCheck {
  /// The bound the paper asserts (e.g. m - (n - f) - 1 for Lemma 12).
  int expected = 0;
  /// Homological connectivity measured up to `expected` (>= expected means
  /// the paper's claim holds on this instance).
  int measured = -2;
  bool satisfied = false;
  std::size_t facet_count = 0;
  std::size_t vertex_count = 0;
  int dimension = -1;

  std::string to_string() const;
};

/// Builds the input facet on processes 0..participants-1 with all-distinct
/// inputs 0..participants-1.
topology::Simplex rainbow_input(int participants, ViewRegistry& views,
                                topology::VertexArena& arena);

/// Corollary 6: ψ(S^m; U_0..U_m) is (m-1)-connected for nonempty U_i.
/// `value_set_sizes` gives |U_i| per position.
ConnectivityCheck check_pseudosphere_connectivity(
    const std::vector<int>& value_set_sizes);

/// Lemma 12: A^r(S^m) is (m - (n - f) - 1)-connected. `participants` = m+1,
/// `num_processes` = n+1. With options.mode == kOrbit the complex is built
/// through the symmetry-reduced pipeline (DESIGN §5.16) and reconstituted
/// before measuring — the verdict is value-identical either way.
ConnectivityCheck check_async_connectivity(int num_processes,
                                           int participants, int f, int r,
                                           const ConstructionOptions& options =
                                               {});

/// Lemmas 16 (r = 1) and 17: S^r(S^m) is (m - (n - k) - 1)-connected when
/// n >= rk + k. `participants` = m+1.
ConnectivityCheck check_sync_connectivity(int num_processes, int participants,
                                          int k, int r,
                                          const ConstructionOptions& options =
                                              {});

/// Lemma 21: M^r(S^m) is (m - (n - k) - 1)-connected when n >= (r+1)k.
ConnectivityCheck check_semisync_connectivity(
    int num_processes, int participants, int k, int mu, int r,
    const ConstructionOptions& options = {});

struct AgreementCheck {
  bool impossible = false;     // search proved no decision map exists
  bool possible = false;       // search found a witness
  bool search_exhausted = false;
  std::uint64_t nodes = 0;
  std::size_t protocol_facets = 0;
  std::size_t protocol_vertices = 0;
};

/// Corollary 13 instance: k-set agreement over inputs {0..k} on the
/// f-resilient r-round asynchronous complex with n+1 processes. The paper:
/// impossible whenever k <= f.
AgreementCheck check_async_agreement(int num_processes, int f, int k, int r,
                                     const SearchOptions& options = {});

/// Theorem 18 instance: k-set agreement on the r-round synchronous complex
/// (per-round failure cap k, budget f). Impossible while r <= floor(f/k)
/// (for n > f + k); the FloodSet rule succeeds at floor(f/k) + 1.
AgreementCheck check_sync_agreement(int num_processes, int f, int k, int r,
                                    const SearchOptions& options = {});

/// Corollary 22's round-structure core: k-set agreement on the r-round
/// semi-synchronous complex with per-round cap k.
AgreementCheck check_semisync_agreement(int num_processes, int f, int k,
                                        int mu, int r,
                                        const SearchOptions& options = {});

/// The FloodSet/min-seen rule on the r-round synchronous complex: returns
/// true if it solves k-set agreement on every facet (inputs {0..k}).
bool floodmin_solves_sync(int num_processes, int f, int k, int r);

struct Corollary10Check {
  /// Per participant count m+1 in [n+1-f, n+1]: the measured connectivity
  /// of P(S^m) and the required (m - (n - k) - 1).
  struct Level {
    int participants = 0;
    int required = 0;
    int measured = -2;
    bool satisfied = false;
  };
  std::vector<Level> levels;
  /// All levels satisfied: Corollary 10's hypothesis holds, so k-set
  /// agreement must be impossible with f failures.
  bool hypothesis_holds = false;
  /// The search's verdict on the same instance (full input complex).
  bool search_impossible = false;
  bool search_exhausted = false;
};

/// Corollary 10 instantiated for the asynchronous model: measures
/// P(S^m)-connectivity for every m with n-f <= m <= n, and cross-checks the
/// implied impossibility against the exhaustive search.
Corollary10Check check_corollary10_async(int num_processes, int f, int k,
                                         int r,
                                         const SearchOptions& options = {});

struct Theorem5Check {
  int c = 0;  // the constant in the theorem (n - f for the async protocol)
  /// Hypothesis: P(S^ℓ) is (ℓ - c - 1)-connected for every face of S^n.
  bool hypothesis_holds = false;
  /// Conclusion: P(ψ(Pⁿ; U_0..U_n)) is (n - c - 1)-connected.
  ConnectivityCheck conclusion;
};

/// Theorem 5 instantiated with the one-round asynchronous protocol
/// (c = n - f): verifies the per-face hypothesis, builds P over the input
/// pseudosphere with the given per-process value sets, and measures the
/// conclusion's connectivity.
Theorem5Check check_theorem5_async(int num_processes, int f,
                                   const std::vector<std::vector<std::int64_t>>&
                                       per_process_values);

/// Theorem 7: the same conclusion for a *union* of input pseudospheres
/// ψ(Pⁿ; A_0), ..., ψ(Pⁿ; A_t) with ∩ A_i nonempty. `families` lists the
/// uniform value sets A_i.
Theorem5Check check_theorem7_async(
    int num_processes, int f,
    const std::vector<std::vector<std::int64_t>>& families);

}  // namespace psph::core
