#include "core/async_complex.h"

#include <stdexcept>

#include "core/pseudosphere.h"
#include "math/combinatorics.h"

namespace psph::core {

namespace {

// Decodes an input facet into aligned (pid, state) vectors via the arena.
void decode_input(const topology::Simplex& input,
                  const topology::VertexArena& arena,
                  std::vector<ProcessId>* pids, std::vector<StateId>* states) {
  for (topology::VertexId v : input.vertices()) {
    pids->push_back(arena.pid(v));
    states->push_back(arena.state(v));
  }
}

}  // namespace

std::uint64_t async_round_facet_count(int participants, int num_processes,
                                      int max_failures) {
  const int m = participants - 1;          // others per process
  const int need = num_processes - 1 - max_failures;  // n - f others required
  if (participants < num_processes - max_failures) return 0;
  std::uint64_t per_process = 0;
  for (int j = std::max(need, 0); j <= m; ++j) {
    per_process += math::binomial(m, j);
  }
  std::uint64_t total = 1;
  for (int i = 0; i < participants; ++i) total *= per_process;
  return total;
}

topology::SimplicialComplex async_round_complex(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  topology::SimplicialComplex result;
  std::vector<ProcessId> pids;
  std::vector<StateId> states;
  decode_input(input, arena, &pids, &states);
  const int participants = static_cast<int>(pids.size());
  // Each process must hear from at least n + 1 - f processes (including
  // itself); with fewer participants there is no such execution and the
  // subcomplex is empty (Section 4: P(S^m) is empty for m < n - f).
  if (participants < params.num_processes - params.max_failures) {
    return result;
  }
  if (participants == 0) return result;

  const int round = views.round(states[0]) + 1;
  const int min_others = params.num_processes - 1 - params.max_failures;

  // Per-process choice lists: the new interned views, one per admissible
  // heard-set. The pseudosphere structure of Lemma 11 is exactly this
  // independent product.
  std::vector<std::vector<StateId>> choices(
      static_cast<std::size_t>(participants));
  for (int i = 0; i < participants; ++i) {
    std::vector<int> others;
    for (int j = 0; j < participants; ++j) {
      if (j != i) others.push_back(j);
    }
    for (const std::vector<int>& subset : math::subsets_with_size_between(
             others, min_others, participants - 1)) {
      std::vector<HeardEntry> heard;
      heard.reserve(subset.size() + 1);
      heard.push_back({pids[static_cast<std::size_t>(i)],
                       states[static_cast<std::size_t>(i)], kNoMicro});
      for (int j : subset) {
        heard.push_back({pids[static_cast<std::size_t>(j)],
                         states[static_cast<std::size_t>(j)], kNoMicro});
      }
      choices[static_cast<std::size_t>(i)].push_back(views.intern_round(
          pids[static_cast<std::size_t>(i)], round, std::move(heard)));
    }
  }
  return pseudosphere(pids, choices, arena);
}

topology::SimplicialComplex async_protocol_complex(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  if (params.rounds < 1) {
    throw std::invalid_argument("async_protocol_complex: rounds < 1");
  }
  topology::SimplicialComplex one_round =
      async_round_complex(input, params, views, arena);
  if (params.rounds == 1) return one_round;

  AsyncParams next = params;
  next.rounds = params.rounds - 1;
  topology::SimplicialComplex result;
  for (const topology::Simplex& facet : one_round.facets()) {
    result.merge(async_protocol_complex(facet, next, views, arena));
  }
  return result;
}

topology::SimplicialComplex async_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  topology::SimplicialComplex result;
  for (const topology::Simplex& facet : inputs.facets()) {
    result.merge(async_protocol_complex(facet, params, views, arena));
  }
  return result;
}

}  // namespace psph::core
