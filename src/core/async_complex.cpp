#include "core/async_complex.h"

#include <stdexcept>

#include "core/construction.h"
#include "core/round_ops.h"
#include "math/combinatorics.h"

namespace psph::core {

std::uint64_t async_round_facet_count(int participants, int num_processes,
                                      int max_failures) {
  const int m = participants - 1;          // others per process
  const int need = num_processes - 1 - max_failures;  // n - f others required
  if (participants < num_processes - max_failures) return 0;
  std::uint64_t per_process = 0;
  for (int j = std::max(need, 0); j <= m; ++j) {
    per_process += math::binomial(m, j);
  }
  std::uint64_t total = 1;
  for (int i = 0; i < participants; ++i) total *= per_process;
  return total;
}

topology::SimplicialComplex async_round_complex(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  std::vector<detail::RoundGroup> groups;
  detail::expand_async_round(input, params, views, arena, &groups);
  topology::SimplicialComplex result;
  for (detail::RoundGroup& group : groups) {
    result.add_facets(std::move(group.facets));
  }
  return result;
}

topology::SimplicialComplex async_protocol_complex(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  ConstructionCache cache;
  return async_protocol_complex(input, params, views, arena, cache);
}

topology::SimplicialComplex async_protocol_complex_seq(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  if (params.rounds < 1) {
    throw std::invalid_argument("async_protocol_complex: rounds < 1");
  }
  topology::SimplicialComplex one_round =
      async_round_complex(input, params, views, arena);
  if (params.rounds == 1) return one_round;

  AsyncParams next = params;
  next.rounds = params.rounds - 1;
  topology::SimplicialComplex result;
  for (const topology::Simplex& facet : one_round.facets()) {
    result.merge(async_protocol_complex_seq(facet, next, views, arena));
  }
  return result;
}

topology::SimplicialComplex async_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  ConstructionCache cache;
  return async_protocol_complex_over(inputs, params, views, arena, cache);
}

}  // namespace psph::core
