#include "core/semisync_complex.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "core/pseudosphere.h"
#include "math/combinatorics.h"

namespace psph::core {

namespace {

struct DecodedInput {
  std::vector<ProcessId> pids;
  std::unordered_map<ProcessId, StateId> state_of;
};

DecodedInput decode(const topology::Simplex& input,
                    const topology::VertexArena& arena) {
  DecodedInput decoded;
  for (topology::VertexId v : input.vertices()) {
    decoded.pids.push_back(arena.pid(v));
    decoded.state_of[arena.pid(v)] = arena.state(v);
  }
  std::sort(decoded.pids.begin(), decoded.pids.end());
  return decoded;
}

// One view from [F]: `delivered_last[i]` says whether the choice for the
// i-th failing process is μ_j = F(P_j) (true) or F(P_j) - 1 (false).
// `forced` optionally pins one failing process's choice to delivered
// (Lemma 20's [F ↑ j]).
StateId make_view(const DecodedInput& input, const FailurePattern& pattern,
                  int mu, ProcessId receiver,
                  const std::vector<bool>& delivered_last, int round,
                  ViewRegistry& views) {
  std::vector<HeardEntry> heard;
  // Survivors: last message in microround μ.
  for (ProcessId sender : input.pids) {
    if (std::binary_search(pattern.fail_set.begin(), pattern.fail_set.end(),
                           sender)) {
      continue;
    }
    heard.push_back({sender, input.state_of.at(sender), mu});
  }
  // Failing processes: μ_j ∈ {F(P_j)-1, F(P_j)}; μ_j == 0 means nothing was
  // received, so no entry.
  for (std::size_t i = 0; i < pattern.fail_set.size(); ++i) {
    const int micro =
        delivered_last[i] ? pattern.fail_micro[i] : pattern.fail_micro[i] - 1;
    if (micro >= 1) {
      heard.push_back(
          {pattern.fail_set[i], input.state_of.at(pattern.fail_set[i]), micro});
    }
  }
  return views.intern_round(receiver, round, std::move(heard));
}

topology::SimplicialComplex pattern_pseudosphere(
    const DecodedInput& input, const FailurePattern& pattern, int mu,
    int force_delivered_index,  // -1 for none; else index into fail_set
    ViewRegistry& views, topology::VertexArena& arena) {
  std::vector<ProcessId> survivors;
  for (ProcessId p : input.pids) {
    if (!std::binary_search(pattern.fail_set.begin(), pattern.fail_set.end(),
                            p)) {
      survivors.push_back(p);
    }
  }
  if (survivors.empty()) return topology::SimplicialComplex();

  const int round = views.round(input.state_of.at(survivors[0])) + 1;

  // Enumerate [F] (optionally with one coordinate pinned): all 0/1 choices
  // per failing process.
  const std::size_t k = pattern.fail_set.size();
  std::vector<std::vector<bool>> all_choices;
  std::vector<std::size_t> sizes;
  for (std::size_t i = 0; i < k; ++i) {
    sizes.push_back(static_cast<std::size_t>(i) ==
                            static_cast<std::size_t>(force_delivered_index)
                        ? 1u
                        : 2u);
  }
  math::for_each_product(sizes, [&](const std::vector<std::size_t>& odo) {
    std::vector<bool> choice(k);
    for (std::size_t i = 0; i < k; ++i) {
      if (static_cast<int>(i) == force_delivered_index) {
        choice[i] = true;  // pinned: the last message was delivered
      } else {
        choice[i] = odo[i] == 1;
      }
    }
    all_choices.push_back(std::move(choice));
  });

  std::vector<std::vector<StateId>> per_survivor;
  per_survivor.reserve(survivors.size());
  for (ProcessId receiver : survivors) {
    std::vector<StateId> options;
    options.reserve(all_choices.size());
    for (const std::vector<bool>& choice : all_choices) {
      options.push_back(
          make_view(input, pattern, mu, receiver, choice, round, views));
    }
    per_survivor.push_back(std::move(options));
  }
  return pseudosphere(survivors, per_survivor, arena);
}

}  // namespace

std::uint64_t view_count(const FailurePattern& pattern) {
  return 1ULL << pattern.fail_set.size();
}

std::vector<FailurePattern> enumerate_failure_patterns(
    const std::vector<ProcessId>& participants, int max_failures, int mu) {
  if (mu < 1) throw std::invalid_argument("enumerate_failure_patterns: mu<1");
  std::vector<FailurePattern> result;
  for (const std::vector<ProcessId>& fail_set :
       math::subsets_with_size_between(participants, 0, max_failures)) {
    const std::size_t k = fail_set.size();
    if (k == 0) {
      result.push_back({fail_set, {}});
      continue;
    }
    // Reverse lexicographic over microrounds: all-μ first, all-1 last.
    std::vector<std::size_t> sizes(k, static_cast<std::size_t>(mu));
    std::vector<std::vector<int>> micro_choices;
    math::for_each_product(sizes, [&](const std::vector<std::size_t>& odo) {
      std::vector<int> micro(k);
      for (std::size_t i = 0; i < k; ++i) {
        micro[i] = mu - static_cast<int>(odo[i]);  // μ, μ-1, ..., 1
      }
      micro_choices.push_back(std::move(micro));
    });
    for (std::vector<int>& micro : micro_choices) {
      result.push_back({fail_set, std::move(micro)});
    }
  }
  return result;
}

topology::SimplicialComplex semisync_round_complex_for_pattern(
    const topology::Simplex& input, const FailurePattern& pattern, int mu,
    ViewRegistry& views, topology::VertexArena& arena) {
  FailurePattern sorted = pattern;
  // Keep (fail_set, fail_micro) aligned while sorting by pid.
  std::vector<std::size_t> order(sorted.fail_set.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pattern.fail_set[a] < pattern.fail_set[b];
  });
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted.fail_set[i] = pattern.fail_set[order[i]];
    sorted.fail_micro[i] = pattern.fail_micro[order[i]];
  }
  for (int micro : sorted.fail_micro) {
    if (micro < 1 || micro > mu) {
      throw std::invalid_argument("failure pattern: microround out of range");
    }
  }
  const DecodedInput decoded = decode(input, arena);
  return pattern_pseudosphere(decoded, sorted, mu, -1, views, arena);
}

topology::SimplicialComplex semisync_lemma20_rhs(
    const topology::Simplex& input, const FailurePattern& pattern, int mu,
    ViewRegistry& views, topology::VertexArena& arena) {
  const DecodedInput decoded = decode(input, arena);
  topology::SimplicialComplex result;
  for (std::size_t j = 0; j < pattern.fail_set.size(); ++j) {
    result.merge(pattern_pseudosphere(decoded, pattern, mu,
                                      static_cast<int>(j), views, arena));
  }
  return result;
}

topology::SimplicialComplex semisync_round_complex(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  const DecodedInput decoded = decode(input, arena);
  const int cap = std::min(params.failures_per_round, params.total_failures);
  topology::SimplicialComplex result;
  for (const FailurePattern& pattern : enumerate_failure_patterns(
           decoded.pids, cap, params.micro_rounds)) {
    result.merge(pattern_pseudosphere(decoded, pattern, params.micro_rounds,
                                      -1, views, arena));
  }
  return result;
}

topology::SimplicialComplex semisync_protocol_complex(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  if (params.rounds < 1) {
    throw std::invalid_argument("semisync_protocol_complex: rounds < 1");
  }
  const DecodedInput decoded = decode(input, arena);
  const int cap = std::min(params.failures_per_round, params.total_failures);
  topology::SimplicialComplex result;
  for (const FailurePattern& pattern : enumerate_failure_patterns(
           decoded.pids, cap, params.micro_rounds)) {
    const topology::SimplicialComplex round_complex = pattern_pseudosphere(
        decoded, pattern, params.micro_rounds, -1, views, arena);
    if (params.rounds == 1) {
      result.merge(round_complex);
      continue;
    }
    SemiSyncParams next = params;
    next.rounds = params.rounds - 1;
    next.total_failures =
        params.total_failures - static_cast<int>(pattern.fail_set.size());
    for (const topology::Simplex& facet : round_complex.facets()) {
      result.merge(semisync_protocol_complex(facet, next, views, arena));
    }
  }
  return result;
}

topology::SimplicialComplex semisync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  topology::SimplicialComplex result;
  for (const topology::Simplex& facet : inputs.facets()) {
    result.merge(semisync_protocol_complex(facet, params, views, arena));
  }
  return result;
}

}  // namespace psph::core
