#include "core/semisync_complex.h"

#include <algorithm>
#include <stdexcept>

#include "core/construction.h"
#include "core/round_ops.h"
#include "math/combinatorics.h"

namespace psph::core {

std::uint64_t view_count(const FailurePattern& pattern) {
  return 1ULL << pattern.fail_set.size();
}

std::vector<FailurePattern> enumerate_failure_patterns(
    const std::vector<ProcessId>& participants, int max_failures, int mu) {
  if (mu < 1) throw std::invalid_argument("enumerate_failure_patterns: mu<1");
  std::vector<FailurePattern> result;
  for (const std::vector<ProcessId>& fail_set :
       math::subsets_with_size_between(participants, 0, max_failures)) {
    const std::size_t k = fail_set.size();
    if (k == 0) {
      result.push_back({fail_set, {}});
      continue;
    }
    // Reverse lexicographic over microrounds: all-μ first, all-1 last.
    std::vector<std::size_t> sizes(k, static_cast<std::size_t>(mu));
    std::vector<std::vector<int>> micro_choices;
    math::for_each_product(sizes, [&](const std::vector<std::size_t>& odo) {
      std::vector<int> micro(k);
      for (std::size_t i = 0; i < k; ++i) {
        micro[i] = mu - static_cast<int>(odo[i]);  // μ, μ-1, ..., 1
      }
      micro_choices.push_back(std::move(micro));
    });
    for (std::vector<int>& micro : micro_choices) {
      result.push_back({fail_set, std::move(micro)});
    }
  }
  return result;
}

topology::SimplicialComplex semisync_round_complex_for_pattern(
    const topology::Simplex& input, const FailurePattern& pattern, int mu,
    ViewRegistry& views, topology::VertexArena& arena) {
  FailurePattern sorted = pattern;
  // Keep (fail_set, fail_micro) aligned while sorting by pid.
  std::vector<std::size_t> order(sorted.fail_set.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pattern.fail_set[a] < pattern.fail_set[b];
  });
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted.fail_set[i] = pattern.fail_set[order[i]];
    sorted.fail_micro[i] = pattern.fail_micro[order[i]];
  }
  for (int micro : sorted.fail_micro) {
    if (micro < 1 || micro > mu) {
      throw std::invalid_argument("failure pattern: microround out of range");
    }
  }
  const detail::SortedFacet decoded = detail::decode_sorted(input, arena);
  std::vector<topology::Simplex> facets;
  detail::semisync_pattern_facets(decoded, sorted, mu, -1, views, arena,
                                  &facets);
  topology::SimplicialComplex result;
  result.add_facets(std::move(facets));
  return result;
}

topology::SimplicialComplex semisync_lemma20_rhs(
    const topology::Simplex& input, const FailurePattern& pattern, int mu,
    ViewRegistry& views, topology::VertexArena& arena) {
  const detail::SortedFacet decoded = detail::decode_sorted(input, arena);
  topology::SimplicialComplex result;
  for (std::size_t j = 0; j < pattern.fail_set.size(); ++j) {
    std::vector<topology::Simplex> facets;
    detail::semisync_pattern_facets(decoded, pattern, mu, static_cast<int>(j),
                                    views, arena, &facets);
    result.add_facets(std::move(facets));
  }
  return result;
}

topology::SimplicialComplex semisync_round_complex(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  std::vector<detail::RoundGroup> groups;
  detail::expand_semisync_round(input, params, views, arena, &groups);
  topology::SimplicialComplex result;
  for (detail::RoundGroup& group : groups) {
    result.add_facets(std::move(group.facets));
  }
  return result;
}

topology::SimplicialComplex semisync_protocol_complex(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  ConstructionCache cache;
  return semisync_protocol_complex(input, params, views, arena, cache);
}

topology::SimplicialComplex semisync_protocol_complex_seq(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  if (params.rounds < 1) {
    throw std::invalid_argument("semisync_protocol_complex: rounds < 1");
  }
  const detail::SortedFacet decoded = detail::decode_sorted(input, arena);
  const int cap = std::min(params.failures_per_round, params.total_failures);
  topology::SimplicialComplex result;
  for (const FailurePattern& pattern : enumerate_failure_patterns(
           decoded.pids, cap, params.micro_rounds)) {
    std::vector<topology::Simplex> facets;
    detail::semisync_pattern_facets(decoded, pattern, params.micro_rounds, -1,
                                    views, arena, &facets);
    topology::SimplicialComplex round_complex;
    round_complex.add_facets(std::move(facets));
    if (params.rounds == 1) {
      result.merge(round_complex);
      continue;
    }
    SemiSyncParams next = params;
    next.rounds = params.rounds - 1;
    next.total_failures =
        params.total_failures - static_cast<int>(pattern.fail_set.size());
    for (const topology::Simplex& facet : round_complex.facets()) {
      result.merge(semisync_protocol_complex_seq(facet, next, views, arena));
    }
  }
  return result;
}

topology::SimplicialComplex semisync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena) {
  ConstructionCache cache;
  return semisync_protocol_complex_over(inputs, params, views, arena, cache);
}

}  // namespace psph::core
