#pragma once

// Symmetry quotients for protocol complexes (DESIGN §5.16).
//
// Every construction in the paper commutes with relabeling: permute the
// process names by π and the input values by σ and each round operator maps
// executions of the relabeled input to relabeled executions. Whenever the
// *input* is invariant under a joint relabeling g = (π, σ), the whole
// r-round complex is too, so its frontier at every level — and its final
// facet set — partitions into G-orbits for G = Aut(input) ≤ S_pids × S_vals.
// The orbit-quotient pipeline (construction.h, ConstructionMode::kOrbit)
// expands exactly one canonical representative per orbit and recovers the
// full complex's counts, f-vector, and homology from orbit data.
//
// This header provides the group machinery:
//
//   * SymmetryGroup — the automorphism group of an input facet or input
//     complex, enumerated explicitly (|G| ≤ (#participants)!, tiny for the
//     process counts these constructions reach).
//   * OrbitContext  — deterministic canonicalization of facets under G.
//     A facet's canonical form is the lexicographically least relabeled
//     vertex vector over all g ∈ G, where relabeled views are hash-consed
//     through the same ViewRegistry/VertexArena the pipeline builds in.
//     Relabeling is memoized per (group element, StateId), so repeated
//     canonicalizations amortize to hash lookups.
//
// Orbit sizes come from orbit–stabilizer: the number of g mapping a facet
// to its canonical form is |Stab|, hence |orbit| = |G| / |Stab|. Because
// canonical forms are interned deterministically (facets in frontier order,
// group elements in enumeration order), orbit-mode output is bit-identical
// across thread counts and across spill configurations.

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"
#include "topology/simplex.h"

namespace psph::core {

/// One joint relabeling g = (π, σ): a process-name permutation plus an
/// input-value permutation. Both maps are total on the labels they can
/// meet: pids outside `pid_map` and values outside `value_map` are fixed.
struct SymmetryElement {
  /// Sorted by .first; π(pid) for participating pids.
  std::vector<std::pair<ProcessId, ProcessId>> pid_map;
  /// Sorted by .first; σ(value) for input values in use.
  std::vector<std::pair<std::int64_t, std::int64_t>> value_map;

  ProcessId map_pid(ProcessId pid) const;
  std::int64_t map_value(std::int64_t value) const;
  bool is_identity() const;
};

/// The joint automorphism group of an input, enumerated element by element.
/// Element 0 is always the identity.
class SymmetryGroup {
 public:
  /// The trivial group {id}. Orbit mode under it degenerates to the full
  /// pipeline (every orbit has size 1).
  static SymmetryGroup identity();

  /// Aut of a single input facet whose vertices carry round-0 views:
  /// all (π, σ) with σ(input_of(p)) = input_of(π(p)) for every participant
  /// p. For all-distinct inputs (the rainbow facet) this is the full
  /// diagonal copy of S_{participants}. Throws std::invalid_argument if a
  /// vertex state is not a round-0 view.
  static SymmetryGroup for_input_facet(const topology::Simplex& input,
                                       const ViewRegistry& views,
                                       const topology::VertexArena& arena);

  /// Aut of an input complex (round-0 labeled): all (π, σ) whose induced
  /// vertex map is an automorphism of the complex (checked with
  /// topology::is_isomorphism). Enumerates π over participant
  /// permutations and σ over value permutations; throws
  /// std::invalid_argument when participants! * values! exceeds
  /// `max_candidates` (defensive cap — the inputs these constructions take
  /// stay far below it).
  static SymmetryGroup for_input_complex(
      const topology::SimplicialComplex& inputs, const ViewRegistry& views,
      const topology::VertexArena& arena,
      std::uint64_t max_candidates = 1u << 24);

  std::size_t size() const { return elements_.size(); }
  const std::vector<SymmetryElement>& elements() const { return elements_; }
  const SymmetryElement& element(std::size_t i) const { return elements_[i]; }

 private:
  std::vector<SymmetryElement> elements_;
};

/// The result of canonicalizing one facet: the orbit representative and the
/// number of group elements that map the facet onto the representative
/// (= |Stab| by orbit–stabilizer, so orbit_size = |G| / stabilizer).
struct CanonicalFacet {
  topology::Simplex rep;
  std::uint32_t stabilizer = 1;

  std::uint64_t orbit_size(std::size_t group_size) const {
    return static_cast<std::uint64_t>(group_size) / stabilizer;
  }
};

/// Memoized relabeling + canonicalization engine bound to one registry /
/// arena pair. NOT thread-safe: canonicalize interns views and vertices, so
/// the pipeline calls it only from its serial phases (which is also what
/// keeps interning order — and therefore ids — deterministic).
class OrbitContext {
 public:
  OrbitContext(SymmetryGroup group, ViewRegistry& views,
               topology::VertexArena& arena);

  const SymmetryGroup& group() const { return group_; }

  /// g-image of an interned state, interning the result. Memoized per
  /// (element index, state).
  StateId relabel_state(std::size_t element_index, StateId state);

  /// g-image of a vertex (pid, state) as an interned VertexId.
  topology::VertexId relabel_vertex(std::size_t element_index,
                                    topology::VertexId vertex);

  /// g-image of a whole facet (vertex set; Simplex re-sorts).
  topology::Simplex relabel_facet(std::size_t element_index,
                                  const topology::Simplex& facet);

  /// Canonical orbit representative: the lexicographically least relabeled
  /// vertex vector over all g, plus the stabilizer count.
  CanonicalFacet canonicalize(const topology::Simplex& facet);

  /// Cumulative number of canonicalize() calls (obs/stats plumbing).
  std::uint64_t canonicalized() const { return canonicalized_; }

 private:
  SymmetryGroup group_;
  ViewRegistry& views_;
  topology::VertexArena& arena_;
  /// memo_[g][state] = relabeled state; one map per group element.
  std::vector<std::unordered_map<StateId, StateId>> memo_;
  /// vertex_memo_[g][v] = relabeled vertex (kInvalidVertex = not yet
  /// computed). VertexIds are dense arena indices, so a flat vector turns
  /// the hot canonicalize path's per-vertex hash lookups into array reads.
  std::vector<std::vector<topology::VertexId>> vertex_memo_;
  std::uint64_t canonicalized_ = 0;
};

}  // namespace psph::core
