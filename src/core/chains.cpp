#include "core/chains.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>

namespace psph::core {

SimilarityGraph similarity_graph(const topology::SimplicialComplex& k) {
  SimilarityGraph graph;
  graph.facets = k.facets();
  graph.adjacency.assign(graph.facets.size(), {});

  // vertex -> facet indices containing it.
  std::unordered_map<topology::VertexId, std::vector<std::size_t>> by_vertex;
  for (std::size_t i = 0; i < graph.facets.size(); ++i) {
    for (topology::VertexId v : graph.facets[i].vertices()) {
      by_vertex[v].push_back(i);
    }
  }

  // Count shared vertices per facet pair via the vertex lists.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> shared;
  for (const auto& [v, owners] : by_vertex) {
    (void)v;
    for (std::size_t a = 0; a < owners.size(); ++a) {
      for (std::size_t b = a + 1; b < owners.size(); ++b) {
        ++shared[{owners[a], owners[b]}];
      }
    }
  }
  std::size_t max_degree = 0;
  for (const auto& [pair, count] : shared) {
    graph.adjacency[pair.first].push_back(pair.second);
    graph.adjacency[pair.second].push_back(pair.first);
    max_degree = std::max(max_degree, count);
  }
  graph.degree_histogram.assign(max_degree + 1, 0);
  for (const auto& [pair, count] : shared) {
    (void)pair;
    ++graph.degree_histogram[count];
  }
  for (auto& neighbors : graph.adjacency) {
    std::sort(neighbors.begin(), neighbors.end());
  }
  return graph;
}

std::size_t max_similarity_degree(const topology::SimplicialComplex& k) {
  const SimilarityGraph graph = similarity_graph(k);
  for (std::size_t s = graph.degree_histogram.size(); s-- > 1;) {
    if (graph.degree_histogram[s] > 0) return s;
  }
  return 0;
}

namespace {

// The single decision value a facet is forced to, if every vertex's view
// saw exactly one input value and it is the same across the facet.
std::optional<std::int64_t> forced_value(const topology::Simplex& facet,
                                         const ViewRegistry& views,
                                         const topology::VertexArena& arena) {
  std::optional<std::int64_t> forced;
  for (topology::VertexId v : facet.vertices()) {
    const std::set<std::int64_t>& seen = views.inputs_seen(arena.state(v));
    if (seen.size() != 1) return std::nullopt;
    if (forced.has_value() && *forced != *seen.begin()) return std::nullopt;
    forced = *seen.begin();
  }
  return forced;
}

}  // namespace

std::optional<ChainWitness> consensus_chain_witness(
    const topology::SimplicialComplex& protocol, const ViewRegistry& views,
    const topology::VertexArena& arena) {
  const SimilarityGraph graph = similarity_graph(protocol);

  // Locate forced facets per value.
  std::map<std::int64_t, std::vector<std::size_t>> forced_by_value;
  for (std::size_t i = 0; i < graph.facets.size(); ++i) {
    const auto value = forced_value(graph.facets[i], views, arena);
    if (value.has_value()) forced_by_value[*value].push_back(i);
  }
  if (forced_by_value.size() < 2) return std::nullopt;

  // BFS from all facets forced to the smallest value; stop at any facet
  // forced to a different value.
  const auto first = forced_by_value.begin();
  const std::int64_t low = first->first;
  std::vector<std::ptrdiff_t> parent(graph.facets.size(), -2);  // -2 unseen
  std::deque<std::size_t> queue;
  for (std::size_t start : first->second) {
    parent[start] = -1;  // root
    queue.push_back(start);
  }
  while (!queue.empty()) {
    const std::size_t current = queue.front();
    queue.pop_front();
    const auto value = forced_value(graph.facets[current], views, arena);
    if (value.has_value() && *value != low) {
      ChainWitness witness;
      witness.low_value = low;
      witness.high_value = *value;
      for (std::ptrdiff_t node = static_cast<std::ptrdiff_t>(current);
           node >= 0; node = parent[static_cast<std::size_t>(node)]) {
        witness.chain.push_back(static_cast<std::size_t>(node));
      }
      std::reverse(witness.chain.begin(), witness.chain.end());
      return witness;
    }
    for (std::size_t next : graph.adjacency[current]) {
      if (parent[next] == -2) {
        parent[next] = static_cast<std::ptrdiff_t>(current);
        queue.push_back(next);
      }
    }
  }
  return std::nullopt;
}

}  // namespace psph::core
