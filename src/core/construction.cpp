#include "core/construction.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/cancel.h"
#include "util/parallel.h"

namespace psph::core {

namespace {

// Pipeline observability (obs.h): one span per level phase, counters
// mirroring the ConstructionStats the memo cache keeps per-instance, so a
// --stats/--trace-out run shows cache behaviour aggregated across every
// cache the process touched.
obs::Counter g_obs_frontier("construction.frontier_items");
obs::Counter g_obs_hits("construction.cache_hits");
obs::Counter g_obs_misses("construction.cache_misses");
obs::Counter g_obs_deduped("construction.deduped");
obs::Gauge g_obs_level_width("construction.level_width");
// Orbit-quotient and spill observability.
obs::Counter g_obs_orbit_canonicalized("construction.orbit_canonicalized");
obs::Counter g_obs_orbit_reps("construction.orbit_reps");
obs::Counter g_obs_spill_chunks_written("construction.spill_chunks_written");
obs::Counter g_obs_spill_chunks_read("construction.spill_chunks_read");
obs::Counter g_obs_spill_bytes_written("construction.spill_bytes_written");

// Packs up to four small model parameters into one cache-key word. All the
// packed quantities (process counts, failure budgets, microrounds) are tiny
// non-negative ints, so 16 bits each is ample.
std::uint64_t pack16(int a, int b, int c, int d) {
  const auto u = [](int x) {
    return static_cast<std::uint64_t>(static_cast<std::uint16_t>(x));
  };
  return u(a) | (u(b) << 16) | (u(c) << 32) | (u(d) << 48);
}

int unpack16(std::uint64_t key, int slot) {
  return static_cast<int>((key >> (16 * slot)) & 0xffff);
}

// Model adapters: everything the generic driver needs to know about one
// model. params_key must cover every parameter the one-round expansion
// depends on *except* the remaining round count (entries are one-round
// expansions, reusable at any depth); child() advances the params across
// one round given the failures the adversary group consumed; unpack()
// inverts params_key + rounds, which is how spilled frontier items get
// their Params back after a chunk round-trip.

struct AsyncModel {
  using Params = AsyncParams;
  static constexpr std::uint8_t kTag = 1;
  static std::uint64_t params_key(const Params& p) {
    return pack16(p.num_processes, p.max_failures, 0, 0);
  }
  static Params unpack(std::uint64_t key, int rounds) {
    Params p;
    p.num_processes = unpack16(key, 0);
    p.max_failures = unpack16(key, 1);
    p.rounds = rounds;
    return p;
  }
  static int rounds(const Params& p) { return p.rounds; }
  static Params child(Params p, int /*failures_used*/) {
    --p.rounds;
    return p;
  }
  template <typename Views, typename Arena>
  static void expand(const topology::Simplex& facet, const Params& p,
                     Views& views, Arena& arena,
                     std::vector<detail::RoundGroup>* out) {
    detail::expand_async_round(facet, p, views, arena, out);
  }
};

struct SyncModel {
  using Params = SyncParams;
  static constexpr std::uint8_t kTag = 2;
  static std::uint64_t params_key(const Params& p) {
    return pack16(p.num_processes, p.total_failures, p.failures_per_round, 0);
  }
  static Params unpack(std::uint64_t key, int rounds) {
    Params p;
    p.num_processes = unpack16(key, 0);
    p.total_failures = unpack16(key, 1);
    p.failures_per_round = unpack16(key, 2);
    p.rounds = rounds;
    return p;
  }
  static int rounds(const Params& p) { return p.rounds; }
  static Params child(Params p, int failures_used) {
    --p.rounds;
    p.total_failures -= failures_used;
    return p;
  }
  template <typename Views, typename Arena>
  static void expand(const topology::Simplex& facet, const Params& p,
                     Views& views, Arena& arena,
                     std::vector<detail::RoundGroup>* out) {
    detail::expand_sync_round(facet, p, views, arena, out);
  }
};

struct SemiSyncModel {
  using Params = SemiSyncParams;
  static constexpr std::uint8_t kTag = 3;
  static std::uint64_t params_key(const Params& p) {
    return pack16(p.num_processes, p.total_failures, p.failures_per_round,
                  p.micro_rounds);
  }
  static Params unpack(std::uint64_t key, int rounds) {
    Params p;
    p.num_processes = unpack16(key, 0);
    p.total_failures = unpack16(key, 1);
    p.failures_per_round = unpack16(key, 2);
    p.micro_rounds = unpack16(key, 3);
    p.rounds = rounds;
    return p;
  }
  static int rounds(const Params& p) { return p.rounds; }
  static Params child(Params p, int failures_used) {
    --p.rounds;
    p.total_failures -= failures_used;
    return p;
  }
  template <typename Views, typename Arena>
  static void expand(const topology::Simplex& facet, const Params& p,
                     Views& views, Arena& arena,
                     std::vector<detail::RoundGroup>* out) {
    detail::expand_semisync_round(facet, p, views, arena, out);
  }
};

struct IisParams {
  int rounds = 1;
};

struct IisModel {
  using Params = IisParams;
  static constexpr std::uint8_t kTag = 4;
  static std::uint64_t params_key(const Params&) { return 0; }
  static Params unpack(std::uint64_t /*key*/, int rounds) {
    return Params{rounds};
  }
  static int rounds(const Params& p) { return p.rounds; }
  static Params child(Params p, int /*failures_used*/) {
    --p.rounds;
    return p;
  }
  template <typename Views, typename Arena>
  static void expand(const topology::Simplex& facet, const Params&,
                     Views& views, Arena& arena,
                     std::vector<detail::RoundGroup>* out) {
    detail::expand_iis_round(facet, views, arena, out);
  }
};

// ---- frontier chunk codec ----
//
// A spilled frontier item is (params, facet): u64 packed params key,
// u32 remaining rounds, u32 vertex count, then the sorted vertex ids as
// u32s. Little-endian fixed width, matching the store's conventions, but
// encoded here so psph_core stays free of a psph_store dependency — the
// storage backend only ever sees opaque chunk bytes (and seals/checksums
// them itself).

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

class ChunkReader {
 public:
  ChunkReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw std::runtime_error("construction: truncated frontier chunk");
    }
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

template <typename Model>
void encode_item(std::vector<std::uint8_t>& out, const topology::Simplex& facet,
                 const typename Model::Params& params) {
  put_u64(out, Model::params_key(params));
  put_u32(out, static_cast<std::uint32_t>(Model::rounds(params)));
  put_u32(out, static_cast<std::uint32_t>(facet.size()));
  for (const topology::VertexId v : facet.vertices()) put_u32(out, v);
}

// The next-level frontier. budget == 0 buffers plain (facet, params) pairs
// in RAM, exactly the historical path. budget > 0 encodes every pushed item
// and flushes ~budget/2-byte chunks to storage; drain() then replays chunks
// in write order followed by the unflushed tail — the same item order the
// in-RAM path produces, which is what keeps results bit-identical at any
// budget.
template <typename Model>
class LevelQueue {
 public:
  using Params = typename Model::Params;

  LevelQueue(std::uint64_t budget, FrontierStorage* storage)
      : budget_(budget),
        storage_(storage),
        chunk_bytes_(std::max<std::uint64_t>(budget / 2, 256)) {}

  void push(topology::Simplex facet, const Params& params) {
    ++count_;
    if (budget_ == 0) {
      ram_.emplace_back(std::move(facet), params);
      return;
    }
    encode_item<Model>(buffer_, facet, params);
    if (buffer_.size() >= chunk_bytes_) flush();
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Feeds every item to `fn(Simplex, const Params&)` in push order and
  /// resets the queue (chunks are cleared from storage before `fn` can push
  /// the next level's items back into it).
  template <typename Fn>
  void drain(Fn&& fn) {
    count_ = 0;
    if (budget_ == 0) {
      std::vector<std::pair<topology::Simplex, Params>> items =
          std::move(ram_);
      ram_.clear();
      for (auto& [facet, params] : items) fn(std::move(facet), params);
      return;
    }
    const std::size_t chunks = storage_->chunk_count();
    std::vector<std::uint8_t> tail = std::move(buffer_);
    buffer_.clear();
    for (std::size_t i = 0; i < chunks; ++i) {
      const std::vector<std::uint8_t> bytes = storage_->read_chunk(i);
      g_obs_spill_chunks_read.add(1);
      decode_into(bytes, fn);
    }
    storage_->clear();
    decode_into(tail, fn);
  }

 private:
  void flush() {
    if (buffer_.empty()) return;
    obs::SpanTimer span("construction.spill_flush",
                        static_cast<std::int64_t>(buffer_.size()));
    storage_->append_chunk(buffer_);
    g_obs_spill_chunks_written.add(1);
    g_obs_spill_bytes_written.add(buffer_.size());
    buffer_.clear();
  }

  template <typename Fn>
  void decode_into(const std::vector<std::uint8_t>& bytes, Fn&& fn) {
    ChunkReader in(bytes.data(), bytes.size());
    while (!in.done()) {
      const std::uint64_t key = in.u64();
      const int rounds = static_cast<int>(in.u32());
      const std::uint32_t nverts = in.u32();
      std::vector<topology::VertexId> verts;
      verts.reserve(nverts);
      for (std::uint32_t i = 0; i < nverts; ++i) verts.push_back(in.u32());
      fn(topology::Simplex(std::move(verts)), Model::unpack(key, rounds));
    }
  }

  std::uint64_t budget_;
  FrontierStorage* storage_;
  std::uint64_t chunk_bytes_;
  std::vector<std::pair<topology::Simplex, Params>> ram_;
  std::vector<std::uint8_t> buffer_;
  std::size_t count_ = 0;
};

// One scratch expansion's output, produced on a worker thread and consumed
// by the serial remap pass.
struct ScratchOut {
  std::vector<View> new_views;
  std::vector<topology::VertexLabel> new_vertices;
  std::vector<detail::RoundGroup> groups;
};

template <typename Model>
ConstructionCache::Key make_key(const topology::Simplex& facet,
                                const typename Model::Params& params,
                                ConstructionMode mode) {
  return ConstructionCache::Key{Model::kTag,
                                static_cast<std::uint8_t>(mode),
                                Model::params_key(params), facet.vertices()};
}

// Orbit-mode accumulation: canonical representatives of the final-round
// facets, first-seen order, deduplicated by representative.
struct OrbitAccum {
  OrbitContext* ctx = nullptr;
  std::vector<OrbitRecord> records;
  std::unordered_set<topology::Simplex, topology::SimplexHash> seen;

  void add_final(const topology::Simplex& facet) {
    CanonicalFacet canon = ctx->canonicalize(facet);
    g_obs_orbit_canonicalized.add(1);
    if (seen.insert(canon.rep).second) {
      g_obs_orbit_reps.add(1);
      records.push_back(OrbitRecord{std::move(canon.rep), canon.stabilizer,
                                    /*dominated=*/false});
    }
  }
};

// The level-synchronous driver (see construction.h for the phase diagram).
// In full mode the result accretes into *full_out; in orbit mode (orbit !=
// nullptr) incoming facets are canonicalized before DEDUPE and final facets
// flow into the orbit accumulator instead.
template <typename Model>
void run_pipeline(
    std::vector<std::pair<topology::Simplex, typename Model::Params>> seeds,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache, const ConstructionOptions& options,
    topology::SimplicialComplex* full_out, OrbitAccum* orbit) {
  using Params = typename Model::Params;
  cache.bind(views, arena);
  const ConstructionMode mode =
      orbit != nullptr ? ConstructionMode::kOrbit : ConstructionMode::kFull;

  InMemoryFrontierStorage fallback_storage;
  FrontierStorage* storage = options.storage != nullptr
                                 ? options.storage
                                 : &fallback_storage;
  LevelQueue<Model> queue(options.frontier_budget_bytes, storage);
  for (auto& [facet, params] : seeds) queue.push(std::move(facet), params);
  seeds.clear();

  struct Item {
    topology::Simplex facet;
    Params params;
    ConstructionCache::Key key;
  };

  while (!queue.empty()) {
    // Cooperative cancellation boundary: a deadlined caller (the serving
    // layer) aborts between levels, never mid-expand, so partial state
    // stays confined to locals that unwind cleanly.
    util::poll_deadline();
    obs::SpanTimer level_span("construction.level",
                              static_cast<std::int64_t>(queue.size()));
    g_obs_frontier.add(queue.size());
    g_obs_level_width.set(static_cast<double>(queue.size()));

    // DEDUPE. Identical (facet, params) items expand identically and facet
    // unions are idempotent, so one representative suffices. In orbit mode
    // the whole orbit collapses first: each facet is replaced by its
    // canonical representative, so G-equivalent items dedupe too. Within
    // one level every item has the same remaining round count, so keys
    // (which omit rounds) cannot conflate items that should stay distinct.
    std::vector<Item> items;
    items.reserve(queue.size());
    {
      obs::SpanTimer span("construction.dedupe");
      std::unordered_set<ConstructionCache::Key, ConstructionCache::KeyHash>
          seen;
      seen.reserve(queue.size());
      queue.drain([&](topology::Simplex facet, const Params& params) {
        if (orbit != nullptr) {
          facet = orbit->ctx->canonicalize(facet).rep;
          g_obs_orbit_canonicalized.add(1);
        }
        ConstructionCache::Key key = make_key<Model>(facet, params, mode);
        if (!seen.insert(key).second) {
          cache.note_dedup(mode);
          g_obs_deduped.add(1);
          return;
        }
        items.push_back(Item{std::move(facet), params, std::move(key)});
      });
    }

    // LOOKUP.
    std::vector<std::size_t> miss;
    {
      obs::SpanTimer span("construction.lookup");
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (cache.lookup(items[i].key) == nullptr) {
          miss.push_back(i);
          g_obs_misses.add(1);
        } else {
          g_obs_hits.add(1);
        }
      }
    }

    // EXPAND. The canonical registries are frozen for the duration; scratch
    // overlays only read them through the const-thread-safe find()/view()
    // path. Each worker writes its own ScratchOut slot.
    const std::size_t views_base = views.size();
    const std::size_t arena_base = arena.size();
    std::vector<ScratchOut> scratch(miss.size());
    {
      obs::SpanTimer span("construction.expand",
                          static_cast<std::int64_t>(miss.size()));
      util::parallel_for(miss.size(), [&](std::size_t j) {
        const Item& item = items[miss[j]];
        ScratchViews scratch_views(views);
        ScratchArena scratch_arena(arena);
        Model::expand(item.facet, item.params, scratch_views, scratch_arena,
                      &scratch[j].groups);
        scratch[j].new_views = scratch_views.take_local();
        scratch[j].new_vertices = scratch_arena.take_local();
      });
    }

    // REMAP, serially in frontier order. Overlay ids partition at the
    // *pre-expansion* base sizes, which every overlay saw identically.
    {
      obs::SpanTimer remap_span("construction.remap");
      for (std::size_t j = 0; j < miss.size(); ++j) {
        ScratchOut& out = scratch[j];

        // New views reference only canonical parent states (a round's views
        // never hear each other), so interning them in creation order needs
        // no rewriting; hash-consing dedupes overlap with earlier items.
        std::vector<StateId> state_map(out.new_views.size());
        for (std::size_t i = 0; i < out.new_views.size(); ++i) {
          View& v = out.new_views[i];
          state_map[i] = views.intern_round(v.pid, v.round, std::move(v.heard));
        }

        std::vector<topology::VertexId> vertex_map(out.new_vertices.size());
        for (std::size_t i = 0; i < out.new_vertices.size(); ++i) {
          const topology::VertexLabel& label = out.new_vertices[i];
          const StateId state =
              label.state < views_base
                  ? label.state
                  : state_map[static_cast<std::size_t>(label.state -
                                                       views_base)];
          vertex_map[i] = arena.intern(label.pid, state);
        }

        for (detail::RoundGroup& group : out.groups) {
          for (topology::Simplex& facet : group.facets) {
            std::vector<topology::VertexId> mapped;
            mapped.reserve(facet.vertices().size());
            for (const topology::VertexId v : facet.vertices()) {
              mapped.push_back(
                  v < arena_base
                      ? v
                      : vertex_map[static_cast<std::size_t>(v) - arena_base]);
            }
            facet = topology::Simplex(std::move(mapped));
          }
        }

        cache.store(items[miss[j]].key,
                    ConstructionCache::Entry{std::move(out.groups)});
      }
    }

    // CONSUME.
    obs::SpanTimer consume_span("construction.consume");
    for (const Item& item : items) {
      const ConstructionCache::Entry* entry = cache.peek(item.key);
      if (Model::rounds(item.params) == 1) {
        if (orbit != nullptr) {
          for (const detail::RoundGroup& group : entry->groups) {
            for (const topology::Simplex& facet : group.facets) {
              orbit->add_final(facet);
            }
          }
        } else {
          for (const detail::RoundGroup& group : entry->groups) {
            full_out->add_facets(group.facets);
          }
        }
      } else {
        for (const detail::RoundGroup& group : entry->groups) {
          const Params child = Model::child(item.params, group.failures_used);
          for (const topology::Simplex& facet : group.facets) {
            queue.push(facet, child);
          }
        }
      }
    }
  }
}

template <typename Model>
std::vector<std::pair<topology::Simplex, typename Model::Params>> seed_all(
    const topology::SimplicialComplex& inputs,
    const typename Model::Params& params) {
  std::vector<std::pair<topology::Simplex, typename Model::Params>> frontier;
  for (const topology::Simplex& facet : inputs.facets()) {
    frontier.emplace_back(facet, params);
  }
  return frontier;
}

void require_full_mode(const ConstructionOptions& options, const char* who) {
  if (options.mode != ConstructionMode::kFull) {
    throw std::invalid_argument(std::string(who) +
                                ": options.mode must be kFull here; use the "
                                "*_orbit entry points for orbit mode");
  }
}

template <typename Model>
topology::SimplicialComplex run_full(
    std::vector<std::pair<topology::Simplex, typename Model::Params>> seeds,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache, const ConstructionOptions& options) {
  topology::SimplicialComplex result;
  run_pipeline<Model>(std::move(seeds), views, arena, cache, options, &result,
                      nullptr);
  return result;
}

// Orbit post-processing: mark dominated orbits and total the maximal-facet
// count. An orbit of F is dominated in the full complex iff some member
// g·F is a strict face of some representative H — g·F ⊊ H' for a full
// facet H' = h·H reduces to (h⁻¹g)·F ⊊ H. Only possible across different
// facet sizes, so pure rep sets (async, IIS) skip the scan entirely.
template <typename ModelResult>
void finish_orbit_result(OrbitAccum& accum, OrbitContext& ctx,
                         std::size_t group_size, ModelResult& result) {
  obs::SpanTimer span("construction.orbit_finish",
                      static_cast<std::int64_t>(accum.records.size()));
  bool pure = true;
  for (const OrbitRecord& rec : accum.records) {
    if (rec.rep.size() != accum.records.front().rep.size()) {
      pure = false;
      break;
    }
  }
  if (!pure) {
    // Every strict face of every representative, one hash set; an orbit is
    // dominated iff some group image of its representative lands in it.
    std::unordered_set<topology::Simplex, topology::SimplexHash> strict_faces;
    for (const OrbitRecord& rec : accum.records) {
      for (topology::Simplex& face : rec.rep.all_faces()) {
        if (face != rec.rep) strict_faces.insert(std::move(face));
      }
    }
    for (OrbitRecord& rec : accum.records) {
      for (std::size_t gi = 0; gi < group_size && !rec.dominated; ++gi) {
        if (strict_faces.count(ctx.relabel_facet(gi, rec.rep)) != 0) {
          rec.dominated = true;
        }
      }
    }
  }

  std::vector<topology::Simplex> maximal;
  maximal.reserve(accum.records.size());
  for (const OrbitRecord& rec : accum.records) {
    if (rec.dominated) continue;
    result.full_facet_count +=
        static_cast<std::uint64_t>(group_size) / rec.stabilizer;
    maximal.push_back(rec.rep);
  }
  result.reduced.add_facets(std::move(maximal));
  result.orbits = std::move(accum.records);
}

template <typename Model>
OrbitComplexResult run_orbit(
    SymmetryGroup group,
    std::vector<std::pair<topology::Simplex, typename Model::Params>> seeds,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache, const ConstructionOptions& options) {
  OrbitComplexResult result;
  result.group = group;
  OrbitContext ctx(std::move(group), views, arena);
  OrbitAccum accum;
  accum.ctx = &ctx;
  ConstructionOptions orbit_options = options;
  orbit_options.mode = ConstructionMode::kOrbit;
  run_pipeline<Model>(std::move(seeds), views, arena, cache, orbit_options,
                      nullptr, &accum);
  finish_orbit_result(accum, ctx, result.group.size(), result);
  return result;
}

}  // namespace

std::vector<std::size_t> orbit_full_f_vector(const OrbitComplexResult& result,
                                             ViewRegistry& views,
                                             topology::VertexArena& arena) {
  OrbitContext ctx(result.group, views, arena);
  const std::size_t group_size = result.group.size();
  // Every face of the full complex is a face of some maximal facet g·H with
  // H a non-dominated representative, so its orbit shows up among the faces
  // of H; counting each distinct face orbit once with its orbit size gives
  // the exact f-vector.
  std::unordered_map<topology::Simplex, std::uint64_t, topology::SimplexHash>
      face_orbits;
  int max_dim = -1;
  for (const OrbitRecord& rec : result.orbits) {
    if (rec.dominated) continue;
    max_dim = std::max(max_dim, rec.rep.dimension());
    for (const topology::Simplex& face : rec.rep.all_faces()) {
      CanonicalFacet canon = ctx.canonicalize(face);
      face_orbits.emplace(std::move(canon.rep), canon.orbit_size(group_size));
    }
  }
  std::vector<std::size_t> f(static_cast<std::size_t>(max_dim + 1), 0);
  for (const auto& [face, orbit_size] : face_orbits) {
    f[static_cast<std::size_t>(face.dimension())] +=
        static_cast<std::size_t>(orbit_size);
  }
  return f;
}

topology::SimplicialComplex reconstitute_full(const OrbitComplexResult& result,
                                              ViewRegistry& views,
                                              topology::VertexArena& arena) {
  OrbitContext ctx(result.group, views, arena);
  std::vector<topology::Simplex> facets;
  for (const OrbitRecord& rec : result.orbits) {
    if (rec.dominated) continue;
    for (std::size_t gi = 0; gi < result.group.size(); ++gi) {
      facets.push_back(ctx.relabel_facet(gi, rec.rep));
    }
  }
  topology::SimplicialComplex full;
  full.add_facets(std::move(facets));
  return full;
}

topology::SimplicialComplex async_protocol_complex(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("async_protocol_complex: rounds < 1");
  }
  require_full_mode(options, "async_protocol_complex");
  return run_full<AsyncModel>({{input, params}}, views, arena, cache, options);
}

topology::SimplicialComplex async_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("async_protocol_complex: rounds < 1");
  }
  require_full_mode(options, "async_protocol_complex_over");
  return run_full<AsyncModel>(seed_all<AsyncModel>(inputs, params), views,
                              arena, cache, options);
}

topology::SimplicialComplex sync_protocol_complex(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("sync_protocol_complex: rounds < 1");
  }
  require_full_mode(options, "sync_protocol_complex");
  return run_full<SyncModel>({{input, params}}, views, arena, cache, options);
}

topology::SimplicialComplex sync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("sync_protocol_complex: rounds < 1");
  }
  require_full_mode(options, "sync_protocol_complex_over");
  return run_full<SyncModel>(seed_all<SyncModel>(inputs, params), views, arena,
                             cache, options);
}

topology::SimplicialComplex semisync_protocol_complex(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("semisync_protocol_complex: rounds < 1");
  }
  require_full_mode(options, "semisync_protocol_complex");
  return run_full<SemiSyncModel>({{input, params}}, views, arena, cache,
                                 options);
}

topology::SimplicialComplex semisync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("semisync_protocol_complex: rounds < 1");
  }
  require_full_mode(options, "semisync_protocol_complex_over");
  return run_full<SemiSyncModel>(seed_all<SemiSyncModel>(inputs, params),
                                 views, arena, cache, options);
}

topology::SimplicialComplex iis_protocol_complex(
    const topology::Simplex& input, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (rounds < 1) {
    throw std::invalid_argument("iis_protocol_complex: rounds < 1");
  }
  require_full_mode(options, "iis_protocol_complex");
  return run_full<IisModel>({{input, IisParams{rounds}}}, views, arena, cache,
                            options);
}

topology::SimplicialComplex iis_protocol_complex_over(
    const topology::SimplicialComplex& inputs, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (rounds < 1) {
    throw std::invalid_argument("iis_protocol_complex: rounds < 1");
  }
  require_full_mode(options, "iis_protocol_complex_over");
  std::vector<std::pair<topology::Simplex, IisParams>> frontier;
  for (const topology::Simplex& facet : inputs.facets()) {
    frontier.emplace_back(facet, IisParams{rounds});
  }
  return run_full<IisModel>(std::move(frontier), views, arena, cache, options);
}

OrbitComplexResult async_protocol_complex_orbit(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("async_protocol_complex_orbit: rounds < 1");
  }
  return run_orbit<AsyncModel>(
      SymmetryGroup::for_input_facet(input, views, arena), {{input, params}},
      views, arena, cache, options);
}

OrbitComplexResult async_protocol_complex_orbit_over(
    const topology::SimplicialComplex& inputs, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("async_protocol_complex_orbit: rounds < 1");
  }
  return run_orbit<AsyncModel>(
      SymmetryGroup::for_input_complex(inputs, views, arena),
      seed_all<AsyncModel>(inputs, params), views, arena, cache, options);
}

OrbitComplexResult sync_protocol_complex_orbit(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("sync_protocol_complex_orbit: rounds < 1");
  }
  return run_orbit<SyncModel>(
      SymmetryGroup::for_input_facet(input, views, arena), {{input, params}},
      views, arena, cache, options);
}

OrbitComplexResult sync_protocol_complex_orbit_over(
    const topology::SimplicialComplex& inputs, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("sync_protocol_complex_orbit: rounds < 1");
  }
  return run_orbit<SyncModel>(
      SymmetryGroup::for_input_complex(inputs, views, arena),
      seed_all<SyncModel>(inputs, params), views, arena, cache, options);
}

OrbitComplexResult semisync_protocol_complex_orbit(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("semisync_protocol_complex_orbit: rounds < 1");
  }
  return run_orbit<SemiSyncModel>(
      SymmetryGroup::for_input_facet(input, views, arena), {{input, params}},
      views, arena, cache, options);
}

OrbitComplexResult semisync_protocol_complex_orbit_over(
    const topology::SimplicialComplex& inputs, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (params.rounds < 1) {
    throw std::invalid_argument("semisync_protocol_complex_orbit: rounds < 1");
  }
  return run_orbit<SemiSyncModel>(
      SymmetryGroup::for_input_complex(inputs, views, arena),
      seed_all<SemiSyncModel>(inputs, params), views, arena, cache, options);
}

OrbitComplexResult iis_protocol_complex_orbit(
    const topology::Simplex& input, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (rounds < 1) {
    throw std::invalid_argument("iis_protocol_complex_orbit: rounds < 1");
  }
  return run_orbit<IisModel>(
      SymmetryGroup::for_input_facet(input, views, arena),
      {{input, IisParams{rounds}}}, views, arena, cache, options);
}

OrbitComplexResult iis_protocol_complex_orbit_over(
    const topology::SimplicialComplex& inputs, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options) {
  if (rounds < 1) {
    throw std::invalid_argument("iis_protocol_complex_orbit: rounds < 1");
  }
  std::vector<std::pair<topology::Simplex, IisParams>> frontier;
  for (const topology::Simplex& facet : inputs.facets()) {
    frontier.emplace_back(facet, IisParams{rounds});
  }
  return run_orbit<IisModel>(
      SymmetryGroup::for_input_complex(inputs, views, arena),
      std::move(frontier), views, arena, cache, options);
}

}  // namespace psph::core
