#include "core/construction.h"

#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/cancel.h"
#include "util/parallel.h"

namespace psph::core {

namespace {

// Pipeline observability (obs.h): one span per level phase, counters
// mirroring the ConstructionStats the memo cache keeps per-instance, so a
// --stats/--trace-out run shows cache behaviour aggregated across every
// cache the process touched.
obs::Counter g_obs_frontier("construction.frontier_items");
obs::Counter g_obs_hits("construction.cache_hits");
obs::Counter g_obs_misses("construction.cache_misses");
obs::Counter g_obs_deduped("construction.deduped");
obs::Gauge g_obs_level_width("construction.level_width");

// Packs up to four small model parameters into one cache-key word. All the
// packed quantities (process counts, failure budgets, microrounds) are tiny
// non-negative ints, so 16 bits each is ample.
std::uint64_t pack16(int a, int b, int c, int d) {
  const auto u = [](int x) {
    return static_cast<std::uint64_t>(static_cast<std::uint16_t>(x));
  };
  return u(a) | (u(b) << 16) | (u(c) << 32) | (u(d) << 48);
}

// Model adapters: everything the generic driver needs to know about one
// model. params_key must cover every parameter the one-round expansion
// depends on *except* the remaining round count (entries are one-round
// expansions, reusable at any depth); child() advances the params across
// one round given the failures the adversary group consumed.

struct AsyncModel {
  using Params = AsyncParams;
  static constexpr std::uint8_t kTag = 1;
  static std::uint64_t params_key(const Params& p) {
    return pack16(p.num_processes, p.max_failures, 0, 0);
  }
  static int rounds(const Params& p) { return p.rounds; }
  static Params child(Params p, int /*failures_used*/) {
    --p.rounds;
    return p;
  }
  template <typename Views, typename Arena>
  static void expand(const topology::Simplex& facet, const Params& p,
                     Views& views, Arena& arena,
                     std::vector<detail::RoundGroup>* out) {
    detail::expand_async_round(facet, p, views, arena, out);
  }
};

struct SyncModel {
  using Params = SyncParams;
  static constexpr std::uint8_t kTag = 2;
  static std::uint64_t params_key(const Params& p) {
    return pack16(p.num_processes, p.total_failures, p.failures_per_round, 0);
  }
  static int rounds(const Params& p) { return p.rounds; }
  static Params child(Params p, int failures_used) {
    --p.rounds;
    p.total_failures -= failures_used;
    return p;
  }
  template <typename Views, typename Arena>
  static void expand(const topology::Simplex& facet, const Params& p,
                     Views& views, Arena& arena,
                     std::vector<detail::RoundGroup>* out) {
    detail::expand_sync_round(facet, p, views, arena, out);
  }
};

struct SemiSyncModel {
  using Params = SemiSyncParams;
  static constexpr std::uint8_t kTag = 3;
  static std::uint64_t params_key(const Params& p) {
    return pack16(p.num_processes, p.total_failures, p.failures_per_round,
                  p.micro_rounds);
  }
  static int rounds(const Params& p) { return p.rounds; }
  static Params child(Params p, int failures_used) {
    --p.rounds;
    p.total_failures -= failures_used;
    return p;
  }
  template <typename Views, typename Arena>
  static void expand(const topology::Simplex& facet, const Params& p,
                     Views& views, Arena& arena,
                     std::vector<detail::RoundGroup>* out) {
    detail::expand_semisync_round(facet, p, views, arena, out);
  }
};

struct IisParams {
  int rounds = 1;
};

struct IisModel {
  using Params = IisParams;
  static constexpr std::uint8_t kTag = 4;
  static std::uint64_t params_key(const Params&) { return 0; }
  static int rounds(const Params& p) { return p.rounds; }
  static Params child(Params p, int /*failures_used*/) {
    --p.rounds;
    return p;
  }
  template <typename Views, typename Arena>
  static void expand(const topology::Simplex& facet, const Params&,
                     Views& views, Arena& arena,
                     std::vector<detail::RoundGroup>* out) {
    detail::expand_iis_round(facet, views, arena, out);
  }
};

// One scratch expansion's output, produced on a worker thread and consumed
// by the serial remap pass.
struct ScratchOut {
  std::vector<View> new_views;
  std::vector<topology::VertexLabel> new_vertices;
  std::vector<detail::RoundGroup> groups;
};

template <typename Model>
ConstructionCache::Key make_key(const topology::Simplex& facet,
                                const typename Model::Params& params) {
  return ConstructionCache::Key{Model::kTag, Model::params_key(params),
                                facet.vertices()};
}

// The level-synchronous driver (see construction.h for the phase diagram).
template <typename Model>
topology::SimplicialComplex run_pipeline(
    std::vector<std::pair<topology::Simplex, typename Model::Params>> frontier,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache) {
  using Params = typename Model::Params;
  cache.bind(views, arena);

  struct Item {
    topology::Simplex facet;
    Params params;
    ConstructionCache::Key key;
  };

  topology::SimplicialComplex result;
  while (!frontier.empty()) {
    // Cooperative cancellation boundary: a deadlined caller (the serving
    // layer) aborts between levels, never mid-expand, so partial state
    // stays confined to locals that unwind cleanly.
    util::poll_deadline();
    obs::SpanTimer level_span("construction.level",
                              static_cast<std::int64_t>(frontier.size()));
    g_obs_frontier.add(frontier.size());
    g_obs_level_width.set(static_cast<double>(frontier.size()));

    // DEDUPE. Identical (facet, params) items expand identically and facet
    // unions are idempotent, so one representative suffices. Within one
    // level every item has the same remaining round count, so keys (which
    // omit rounds) cannot conflate items that should stay distinct.
    std::vector<Item> items;
    items.reserve(frontier.size());
    {
      obs::SpanTimer span("construction.dedupe");
      std::unordered_set<ConstructionCache::Key, ConstructionCache::KeyHash>
          seen;
      seen.reserve(frontier.size());
      for (auto& [facet, params] : frontier) {
        ConstructionCache::Key key = make_key<Model>(facet, params);
        if (!seen.insert(key).second) {
          cache.note_dedup();
          g_obs_deduped.add(1);
          continue;
        }
        items.push_back(Item{std::move(facet), params, std::move(key)});
      }
    }

    // LOOKUP.
    std::vector<std::size_t> miss;
    {
      obs::SpanTimer span("construction.lookup");
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (cache.lookup(items[i].key) == nullptr) {
          miss.push_back(i);
          g_obs_misses.add(1);
        } else {
          g_obs_hits.add(1);
        }
      }
    }

    // EXPAND. The canonical registries are frozen for the duration; scratch
    // overlays only read them through the const-thread-safe find()/view()
    // path. Each worker writes its own ScratchOut slot.
    const std::size_t views_base = views.size();
    const std::size_t arena_base = arena.size();
    std::vector<ScratchOut> scratch(miss.size());
    {
      obs::SpanTimer span("construction.expand",
                          static_cast<std::int64_t>(miss.size()));
      util::parallel_for(miss.size(), [&](std::size_t j) {
        const Item& item = items[miss[j]];
        ScratchViews scratch_views(views);
        ScratchArena scratch_arena(arena);
        Model::expand(item.facet, item.params, scratch_views, scratch_arena,
                      &scratch[j].groups);
        scratch[j].new_views = scratch_views.take_local();
        scratch[j].new_vertices = scratch_arena.take_local();
      });
    }

    // REMAP, serially in frontier order. Overlay ids partition at the
    // *pre-expansion* base sizes, which every overlay saw identically.
    {
      obs::SpanTimer remap_span("construction.remap");
      for (std::size_t j = 0; j < miss.size(); ++j) {
        ScratchOut& out = scratch[j];

        // New views reference only canonical parent states (a round's views
        // never hear each other), so interning them in creation order needs
        // no rewriting; hash-consing dedupes overlap with earlier items.
        std::vector<StateId> state_map(out.new_views.size());
        for (std::size_t i = 0; i < out.new_views.size(); ++i) {
          View& v = out.new_views[i];
          state_map[i] = views.intern_round(v.pid, v.round, std::move(v.heard));
        }

        std::vector<topology::VertexId> vertex_map(out.new_vertices.size());
        for (std::size_t i = 0; i < out.new_vertices.size(); ++i) {
          const topology::VertexLabel& label = out.new_vertices[i];
          const StateId state =
              label.state < views_base
                  ? label.state
                  : state_map[static_cast<std::size_t>(label.state -
                                                       views_base)];
          vertex_map[i] = arena.intern(label.pid, state);
        }

        for (detail::RoundGroup& group : out.groups) {
          for (topology::Simplex& facet : group.facets) {
            std::vector<topology::VertexId> mapped;
            mapped.reserve(facet.vertices().size());
            for (const topology::VertexId v : facet.vertices()) {
              mapped.push_back(
                  v < arena_base
                      ? v
                      : vertex_map[static_cast<std::size_t>(v) - arena_base]);
            }
            facet = topology::Simplex(std::move(mapped));
          }
        }

        cache.store(items[miss[j]].key,
                    ConstructionCache::Entry{std::move(out.groups)});
      }
    }

    // CONSUME.
    obs::SpanTimer consume_span("construction.consume");
    std::vector<std::pair<topology::Simplex, Params>> next;
    for (const Item& item : items) {
      const ConstructionCache::Entry* entry = cache.peek(item.key);
      if (Model::rounds(item.params) == 1) {
        for (const detail::RoundGroup& group : entry->groups) {
          result.add_facets(group.facets);
        }
      } else {
        for (const detail::RoundGroup& group : entry->groups) {
          const Params child = Model::child(item.params, group.failures_used);
          for (const topology::Simplex& facet : group.facets) {
            next.emplace_back(facet, child);
          }
        }
      }
    }
    frontier = std::move(next);
  }
  return result;
}

template <typename Model>
std::vector<std::pair<topology::Simplex, typename Model::Params>> seed_all(
    const topology::SimplicialComplex& inputs,
    const typename Model::Params& params) {
  std::vector<std::pair<topology::Simplex, typename Model::Params>> frontier;
  for (const topology::Simplex& facet : inputs.facets()) {
    frontier.emplace_back(facet, params);
  }
  return frontier;
}

}  // namespace

topology::SimplicialComplex async_protocol_complex(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache) {
  if (params.rounds < 1) {
    throw std::invalid_argument("async_protocol_complex: rounds < 1");
  }
  return run_pipeline<AsyncModel>({{input, params}}, views, arena, cache);
}

topology::SimplicialComplex async_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache) {
  if (params.rounds < 1) {
    throw std::invalid_argument("async_protocol_complex: rounds < 1");
  }
  return run_pipeline<AsyncModel>(seed_all<AsyncModel>(inputs, params), views,
                                  arena, cache);
}

topology::SimplicialComplex sync_protocol_complex(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache) {
  if (params.rounds < 1) {
    throw std::invalid_argument("sync_protocol_complex: rounds < 1");
  }
  return run_pipeline<SyncModel>({{input, params}}, views, arena, cache);
}

topology::SimplicialComplex sync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache) {
  if (params.rounds < 1) {
    throw std::invalid_argument("sync_protocol_complex: rounds < 1");
  }
  return run_pipeline<SyncModel>(seed_all<SyncModel>(inputs, params), views,
                                 arena, cache);
}

topology::SimplicialComplex semisync_protocol_complex(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache) {
  if (params.rounds < 1) {
    throw std::invalid_argument("semisync_protocol_complex: rounds < 1");
  }
  return run_pipeline<SemiSyncModel>({{input, params}}, views, arena, cache);
}

topology::SimplicialComplex semisync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache) {
  if (params.rounds < 1) {
    throw std::invalid_argument("semisync_protocol_complex: rounds < 1");
  }
  return run_pipeline<SemiSyncModel>(seed_all<SemiSyncModel>(inputs, params),
                                     views, arena, cache);
}

topology::SimplicialComplex iis_protocol_complex(
    const topology::Simplex& input, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache) {
  if (rounds < 1) {
    throw std::invalid_argument("iis_protocol_complex: rounds < 1");
  }
  return run_pipeline<IisModel>({{input, IisParams{rounds}}}, views, arena,
                                cache);
}

topology::SimplicialComplex iis_protocol_complex_over(
    const topology::SimplicialComplex& inputs, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache) {
  if (rounds < 1) {
    throw std::invalid_argument("iis_protocol_complex: rounds < 1");
  }
  std::vector<std::pair<topology::Simplex, IisParams>> frontier;
  for (const topology::Simplex& facet : inputs.facets()) {
    frontier.emplace_back(facet, IisParams{rounds});
  }
  return run_pipeline<IisModel>(std::move(frontier), views, arena, cache);
}

}  // namespace psph::core
