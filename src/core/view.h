#pragma once

// Interned full-information views.
//
// Section 4: a process's local state is its input value plus the sequence of
// messages received so far, and WLOG every protocol is the full-information
// protocol. We represent local states as hash-consed View nodes:
//
//   * round 0: (pid, input value);
//   * round r > 0: (pid, r, heard), where `heard` lists, per sender, the
//     sender's (interned) state at the start of the round — and, in the
//     semi-synchronous model, the microround of the last message received
//     from that sender (Section 8's view component μ_j).
//
// Hash-consing means two local states arising in different branches of a
// construction are the same StateId exactly when they are indistinguishable
// to the process — the similarity structure the paper's proofs live on.

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "topology/types.h"
#include "util/hash.h"

namespace psph::core {

using topology::ProcessId;
using topology::StateId;

/// `last_micro` value meaning "the model has no microround structure"
/// (asynchronous and synchronous views).
inline constexpr int kNoMicro = -1;

struct HeardEntry {
  ProcessId from = -1;
  StateId state = 0;  // sender's state at the start of the round
  int last_micro = kNoMicro;

  bool operator==(const HeardEntry& other) const = default;
  bool operator<(const HeardEntry& other) const {
    if (from != other.from) return from < other.from;
    if (state != other.state) return state < other.state;
    return last_micro < other.last_micro;
  }
};

struct View {
  ProcessId pid = -1;
  int round = 0;
  std::int64_t input = 0;          // meaningful iff round == 0
  std::vector<HeardEntry> heard;   // sorted by sender; empty iff round == 0

  bool operator==(const View& other) const = default;
};

struct ViewHash {
  std::size_t operator()(const View& v) const {
    std::size_t h = util::hash_combine(std::hash<ProcessId>{}(v.pid),
                                       std::hash<int>{}(v.round));
    h = util::hash_combine(h, std::hash<std::int64_t>{}(v.input));
    for (const HeardEntry& e : v.heard) {
      h = util::hash_combine(h, std::hash<ProcessId>{}(e.from));
      h = util::hash_combine(h, std::hash<StateId>{}(e.state));
      h = util::hash_combine(h, std::hash<int>{}(e.last_micro));
    }
    return h;
  }
};

/// Normalizes a round-r view (r >= 1): sorts `heard` by sender and rejects
/// duplicate senders or round < 1. Both ViewRegistry::intern_round and the
/// scratch registries of the parallel construction pipeline build their
/// candidate views through this single function, so the two paths can never
/// disagree on the interned representation.
View make_round_view(ProcessId pid, int round, std::vector<HeardEntry> heard);

class ViewRegistry {
 public:
  /// Interns the round-0 view (pid starts with `input`).
  StateId intern_input(ProcessId pid, std::int64_t input);

  /// Interns a round-r view (r >= 1). `heard` is sorted internally; one
  /// entry per sender is required.
  StateId intern_round(ProcessId pid, int round,
                       std::vector<HeardEntry> heard);

  const View& view(StateId id) const;
  int round(StateId id) const { return view(id).round; }
  ProcessId pid(StateId id) const { return view(id).pid; }

  /// Read-only lookup: the id of this exact (normalized) view, or nullopt
  /// if it has never been interned. Unlike the intern_* methods this never
  /// mutates the registry, so it is safe to call concurrently with view()/
  /// round()/find() from many threads — the parallel construction pipeline
  /// relies on this during its scratch-expansion phase (two-phase intern).
  std::optional<StateId> find(const View& v) const;

  /// All input values visible in this view, i.e. inputs of processes the
  /// owner has (transitively) heard from. Full information means these are
  /// exactly the values the owner may validly decide.
  const std::set<std::int64_t>& inputs_seen(StateId id) const;

  /// min of inputs_seen — the canonical FloodSet decision rule.
  std::int64_t min_input_seen(StateId id) const;

  /// Process ids heard from directly in the final round (including self).
  std::set<ProcessId> direct_senders(StateId id) const;

  /// Human-readable rendering, e.g. "P2@r1<P0:0,P2:1>". Memoized per id:
  /// a view's rendering embeds the renderings of every heard sub-view, so
  /// the naive recursion re-renders shared sub-views exponentially often in
  /// deep rounds; the cache makes each view render exactly once. Like
  /// inputs_seen, this populates a mutable cache and therefore is NOT safe
  /// to call concurrently (view/round/find are the const-thread-safe
  /// subset).
  const std::string& to_string(StateId id) const;

  std::size_t size() const { return views_.size(); }

 private:
  StateId intern(View v);

  std::vector<View> views_;
  std::unordered_map<View, StateId, ViewHash> index_;
  mutable std::unordered_map<StateId, std::set<std::int64_t>> inputs_cache_;
  mutable std::unordered_map<StateId, std::string> string_cache_;
};

}  // namespace psph::core
