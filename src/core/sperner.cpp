#include "core/sperner.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "topology/subdivision.h"

namespace psph::core {

SpernerInstance make_subdivided_simplex(int dim, int rounds) {
  if (dim < 0) throw std::invalid_argument("make_subdivided_simplex: dim<0");
  SpernerInstance instance;
  instance.dim = dim;

  // Round 0: the solid simplex on corners 0..dim, each vertex carried by
  // itself.
  std::vector<topology::VertexId> corners;
  for (int i = 0; i <= dim; ++i) {
    corners.push_back(static_cast<topology::VertexId>(i));
  }
  instance.complex = topology::SimplicialComplex();
  instance.complex.add_facet(topology::Simplex(corners));
  instance.carriers.assign(corners.size(), {});
  for (topology::VertexId c : corners) instance.carriers[c] = {c};

  for (int round = 0; round < rounds; ++round) {
    const topology::Subdivision sd =
        topology::barycentric_subdivision(instance.complex);
    // Compose carriers: the carrier of a barycenter of simplex σ is the
    // union of the carriers of σ's vertices.
    std::vector<std::vector<topology::VertexId>> new_carriers(
        sd.carriers.size());
    for (std::size_t v = 0; v < sd.carriers.size(); ++v) {
      std::set<topology::VertexId> merged;
      for (topology::VertexId old : sd.carriers[v].vertices()) {
        merged.insert(instance.carriers[old].begin(),
                      instance.carriers[old].end());
      }
      new_carriers[v].assign(merged.begin(), merged.end());
    }
    instance.complex = sd.complex;
    instance.carriers = std::move(new_carriers);
  }
  return instance;
}

void color_randomly(SpernerInstance& instance, util::Rng& rng) {
  instance.coloring.assign(instance.carriers.size(), 0);
  for (std::size_t v = 0; v < instance.carriers.size(); ++v) {
    instance.coloring[v] = rng.pick(instance.carriers[v]);
  }
}

void color_min_carrier(SpernerInstance& instance) {
  instance.coloring.assign(instance.carriers.size(), 0);
  for (std::size_t v = 0; v < instance.carriers.size(); ++v) {
    instance.coloring[v] = *std::min_element(instance.carriers[v].begin(),
                                             instance.carriers[v].end());
  }
}

bool is_sperner_coloring(const SpernerInstance& instance) {
  if (instance.coloring.size() != instance.carriers.size()) return false;
  for (std::size_t v = 0; v < instance.carriers.size(); ++v) {
    if (!std::binary_search(instance.carriers[v].begin(),
                            instance.carriers[v].end(),
                            instance.coloring[v])) {
      return false;
    }
  }
  return true;
}

std::size_t count_panchromatic(const SpernerInstance& instance) {
  if (!is_sperner_coloring(instance)) {
    throw std::invalid_argument("count_panchromatic: illegal coloring");
  }
  std::size_t count = 0;
  instance.complex.for_each_facet([&](const topology::Simplex& facet) {
    std::set<topology::VertexId> colors;
    for (topology::VertexId v : facet.vertices()) {
      colors.insert(instance.coloring[v]);
    }
    if (static_cast<int>(colors.size()) == instance.dim + 1) ++count;
  });
  return count;
}

}  // namespace psph::core
