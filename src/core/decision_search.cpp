#include "core/decision_search.h"

#include <algorithm>
#include <set>
#include <vector>

#include "core/agreement.h"
#include "util/cancel.h"

namespace psph::core {

namespace {

struct Problem {
  int k = 1;
  std::vector<topology::VertexId> vertices;           // dense index -> id
  std::unordered_map<topology::VertexId, int> index;  // id -> dense index
  std::vector<std::vector<std::int64_t>> domain;      // allowed values
  std::vector<std::vector<int>> facets;               // facet -> vertex idxs
  std::vector<std::vector<int>> facets_of;            // vertex -> facet idxs
};

struct State {
  std::vector<std::int64_t> value;  // assigned value per vertex
  std::vector<bool> assigned;
  std::uint64_t nodes = 0;
  std::uint64_t limit = 0;
  bool aborted = false;
  bool use_mrv = true;
  std::size_t next_fixed = 0;  // cursor for the fixed-order ablation mode
};

// Effective domain of vertex `v`: its validity domain filtered through every
// facet that already carries k distinct values (new values are then barred).
std::vector<std::int64_t> effective_domain(const Problem& problem,
                                           const State& state, int v) {
  std::vector<std::int64_t> domain = problem.domain[static_cast<std::size_t>(v)];
  for (int facet : problem.facets_of[static_cast<std::size_t>(v)]) {
    std::set<std::int64_t> present;
    int unassigned = 0;
    for (int u : problem.facets[static_cast<std::size_t>(facet)]) {
      if (state.assigned[static_cast<std::size_t>(u)]) {
        present.insert(state.value[static_cast<std::size_t>(u)]);
      } else {
        ++unassigned;
      }
    }
    if (static_cast<int>(present.size()) >= problem.k) {
      // Saturated: v must reuse one of the present values.
      std::vector<std::int64_t> filtered;
      for (std::int64_t value : domain) {
        if (present.count(value) != 0) filtered.push_back(value);
      }
      domain = std::move(filtered);
      if (domain.empty()) break;
    }
    (void)unassigned;
  }
  return domain;
}

// Picks the unassigned vertex with the smallest effective domain (MRV),
// breaking ties toward vertices in more facets. Returns -1 if all assigned.
int pick_vertex(const Problem& problem, const State& state,
                std::vector<std::int64_t>* domain_out) {
  if (!state.use_mrv) {
    // Ablation mode: first unassigned vertex in index order, raw validity
    // domain (no saturated-facet filtering).
    for (std::size_t v = 0; v < problem.vertices.size(); ++v) {
      if (!state.assigned[v]) {
        *domain_out = problem.domain[v];
        return static_cast<int>(v);
      }
    }
    return -1;
  }
  int best = -1;
  std::size_t best_size = 0;
  std::vector<std::int64_t> best_domain;
  for (std::size_t v = 0; v < problem.vertices.size(); ++v) {
    if (state.assigned[v]) continue;
    std::vector<std::int64_t> domain =
        effective_domain(problem, state, static_cast<int>(v));
    if (domain.empty()) {
      *domain_out = {};
      return static_cast<int>(v);  // dead end, fail fast
    }
    const bool better =
        best == -1 || domain.size() < best_size ||
        (domain.size() == best_size &&
         problem.facets_of[v].size() >
             problem.facets_of[static_cast<std::size_t>(best)].size());
    if (better) {
      best = static_cast<int>(v);
      best_size = domain.size();
      best_domain = std::move(domain);
      if (best_size == 1) break;  // cannot do better
    }
  }
  *domain_out = std::move(best_domain);
  return best;
}

bool backtrack(const Problem& problem, State& state) {
  if (state.limit != 0 && state.nodes >= state.limit) {
    state.aborted = true;
    return false;
  }
  ++state.nodes;
  // Cooperative cancellation (serve deadlines): amortize the clock read
  // over 4096 search nodes; a no-deadline run pays one thread-local load.
  if ((state.nodes & 0xFFF) == 0) util::poll_deadline();

  std::vector<std::int64_t> domain;
  const int v = pick_vertex(problem, state, &domain);
  if (v == -1) return true;  // fully assigned
  if (domain.empty()) return false;

  for (std::int64_t value : domain) {
    state.assigned[static_cast<std::size_t>(v)] = true;
    state.value[static_cast<std::size_t>(v)] = value;
    // Local consistency: every facet of v must still be satisfiable —
    // at most k distinct values among its assigned vertices.
    bool feasible = true;
    for (int facet : problem.facets_of[static_cast<std::size_t>(v)]) {
      std::set<std::int64_t> present;
      for (int u : problem.facets[static_cast<std::size_t>(facet)]) {
        if (state.assigned[static_cast<std::size_t>(u)]) {
          present.insert(state.value[static_cast<std::size_t>(u)]);
        }
      }
      if (static_cast<int>(present.size()) > problem.k) {
        feasible = false;
        break;
      }
    }
    if (feasible && backtrack(problem, state)) return true;
    state.assigned[static_cast<std::size_t>(v)] = false;
    if (state.aborted) return false;
  }
  return false;
}

}  // namespace

SearchResult search_decision_map(const topology::SimplicialComplex& protocol,
                                 int k, const ViewRegistry& views,
                                 const topology::VertexArena& arena,
                                 const SearchOptions& options) {
  Problem problem;
  problem.k = k;
  problem.vertices = protocol.vertex_ids();
  for (std::size_t i = 0; i < problem.vertices.size(); ++i) {
    problem.index.emplace(problem.vertices[i], static_cast<int>(i));
  }
  problem.domain.reserve(problem.vertices.size());
  for (topology::VertexId v : problem.vertices) {
    problem.domain.push_back(allowed_values(v, views, arena));
  }
  problem.facets_of.assign(problem.vertices.size(), {});
  protocol.for_each_facet([&](const topology::Simplex& facet) {
    std::vector<int> indices;
    indices.reserve(facet.size());
    for (topology::VertexId v : facet.vertices()) {
      indices.push_back(problem.index.at(v));
    }
    const int facet_id = static_cast<int>(problem.facets.size());
    for (int v : indices) {
      problem.facets_of[static_cast<std::size_t>(v)].push_back(facet_id);
    }
    problem.facets.push_back(std::move(indices));
  });

  State state;
  state.value.assign(problem.vertices.size(), 0);
  state.assigned.assign(problem.vertices.size(), false);
  state.limit = options.node_limit;
  state.use_mrv = options.use_mrv;

  SearchResult result;
  const bool found = backtrack(problem, state);
  result.nodes_explored = state.nodes;
  result.exhausted = !state.aborted;
  result.decidable = found;
  if (found) {
    for (std::size_t i = 0; i < problem.vertices.size(); ++i) {
      result.assignment.emplace(problem.vertices[i], state.value[i]);
    }
  }
  return result;
}

}  // namespace psph::core
