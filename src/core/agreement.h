#pragma once

// k-set agreement as a predicate over protocol complexes (Section 4).
//
// A protocol solves k-set agreement when its decision map δ carries each
// protocol-complex vertex to a value such that
//   (validity)    δ(v) is some participating process's input — with full
//                 information, exactly: a value visible in v's view;
//   (agreement)   no simplex of the protocol complex receives more than k
//                 distinct values.
// This header checks concrete rules (e.g. FloodSet's "decide the minimum
// value seen") against explicitly constructed complexes; decision_search.h
// decides whether *any* rule exists.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"

namespace psph::core {

/// A decision rule maps a local state to a decision value.
using DecisionRule = std::function<std::int64_t(StateId)>;

/// The canonical full-information rule: decide the minimum input seen.
DecisionRule min_seen_rule(const ViewRegistry& views);

struct RuleViolation {
  enum class Kind { validity, agreement } kind;
  topology::Simplex facet;   // offending simplex (vertex for validity)
  std::string description;
};

struct RuleCheckResult {
  bool ok = true;
  std::optional<RuleViolation> violation;
  std::size_t facets_checked = 0;
  std::size_t vertices_checked = 0;
};

/// Checks `rule` on every vertex (validity) and facet (≤ k distinct values)
/// of the protocol complex. Checking facets suffices for agreement: a
/// violating simplex is a face of a violating facet.
RuleCheckResult check_decision_rule(const topology::SimplicialComplex& protocol,
                                    int k, const DecisionRule& rule,
                                    const ViewRegistry& views,
                                    const topology::VertexArena& arena);

/// Allowed decision values for a vertex under validity = inputs visible in
/// its view, materialized as a sorted vector.
std::vector<std::int64_t> allowed_values(topology::VertexId vertex,
                                         const ViewRegistry& views,
                                         const topology::VertexArena& arena);

}  // namespace psph::core
