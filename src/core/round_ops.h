#pragma once

// Templated one-round expanders shared by every construction path.
//
// The model logic — which views one round produces and which facets they
// span (Lemma 11 for async, Lemma 14 for sync, Lemma 19 for semi-sync, the
// chromatic subdivision for IIS) — is written once here, parameterized over
// the view-registry and vertex-arena types. Two instantiations exist:
//
//   * the canonical pair (ViewRegistry, VertexArena), used by the public
//     one-round functions, the legacy *_seq recursions, and anything else
//     that wants direct interning;
//   * the scratch overlay pair (ScratchViews, ScratchArena) from
//     construction.h, used by the parallel multi-round pipeline to expand
//     facets on worker threads without touching shared state.
//
// Enumeration order is part of the contract: every loop below visits
// choices in exactly the order of the original single-threaded code, so the
// canonical remap phase assigns ids bit-identically no matter which
// instantiation ran or how many threads were active.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/async_complex.h"
#include "core/semisync_complex.h"
#include "core/sync_complex.h"
#include "core/view.h"
#include "math/combinatorics.h"
#include "topology/simplex.h"

namespace psph::core::detail {

/// One adversary-choice group of a round expansion: the facets contributed
/// by a single fail set (sync) or failure pattern (semi-sync), plus how much
/// of the total-failure budget that choice consumed. The multi-round driver
/// recurses on each facet with the budget reduced by failures_used; async
/// and IIS have a single group with failures_used = 0.
struct RoundGroup {
  int failures_used = 0;
  std::vector<topology::Simplex> facets;
};

/// Facets of ψ(pids; value_sets) in odometer order (the exact order
/// math::for_each_product visits), interning vertices through `arena`.
/// Positions must be nonempty and pids distinct; within one pseudosphere
/// all facets are distinct and of equal dimension, so the output needs no
/// dedup and qualifies for SimplicialComplex::add_facets's pure fast lane.
template <typename Arena>
void product_facets(const std::vector<ProcessId>& pids,
                    const std::vector<std::vector<StateId>>& value_sets,
                    Arena& arena, std::vector<topology::Simplex>* out) {
  std::vector<std::size_t> sizes;
  sizes.reserve(value_sets.size());
  for (const auto& set : value_sets) sizes.push_back(set.size());
  math::for_each_product(sizes, [&](const std::vector<std::size_t>& choice) {
    std::vector<topology::VertexId> vertices;
    vertices.reserve(pids.size());
    for (std::size_t i = 0; i < pids.size(); ++i) {
      vertices.push_back(arena.intern(pids[i], value_sets[i][choice[i]]));
    }
    out->push_back(topology::Simplex(std::move(vertices)));
  });
}

/// A facet decoded to aligned (pid, state) vectors sorted by pid — the
/// representation the sync and semi-sync expanders work over.
struct SortedFacet {
  std::vector<ProcessId> pids;
  std::vector<StateId> states;

  StateId state_of(ProcessId pid) const {
    const auto it = std::lower_bound(pids.begin(), pids.end(), pid);
    return states[static_cast<std::size_t>(it - pids.begin())];
  }
};

template <typename Arena>
SortedFacet decode_sorted(const topology::Simplex& input, const Arena& arena) {
  SortedFacet decoded;
  for (topology::VertexId v : input.vertices()) {
    decoded.pids.push_back(arena.pid(v));
    decoded.states.push_back(arena.state(v));
  }
  std::vector<std::size_t> order(decoded.pids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return decoded.pids[a] < decoded.pids[b];
  });
  SortedFacet sorted;
  sorted.pids.reserve(order.size());
  sorted.states.reserve(order.size());
  for (std::size_t i : order) {
    sorted.pids.push_back(decoded.pids[i]);
    sorted.states.push_back(decoded.states[i]);
  }
  return sorted;
}

// ------------------------------------------------------------- async ----

/// Lemma 11: one asynchronous round from `input` is the single pseudosphere
/// of independent admissible heard-sets. Empty (no group) when the facet
/// has fewer than n + 1 - f participants.
template <typename Views, typename Arena>
void expand_async_round(const topology::Simplex& input,
                        const AsyncParams& params, Views& views, Arena& arena,
                        std::vector<RoundGroup>* out) {
  std::vector<ProcessId> pids;
  std::vector<StateId> states;
  for (topology::VertexId v : input.vertices()) {
    pids.push_back(arena.pid(v));
    states.push_back(arena.state(v));
  }
  const int participants = static_cast<int>(pids.size());
  if (participants < params.num_processes - params.max_failures) return;
  if (participants == 0) return;

  const int round = views.round(states[0]) + 1;
  const int min_others = params.num_processes - 1 - params.max_failures;

  std::vector<std::vector<StateId>> choices(
      static_cast<std::size_t>(participants));
  for (int i = 0; i < participants; ++i) {
    std::vector<int> others;
    for (int j = 0; j < participants; ++j) {
      if (j != i) others.push_back(j);
    }
    for (const std::vector<int>& subset : math::subsets_with_size_between(
             others, min_others, participants - 1)) {
      std::vector<HeardEntry> heard;
      heard.reserve(subset.size() + 1);
      heard.push_back({pids[static_cast<std::size_t>(i)],
                       states[static_cast<std::size_t>(i)], kNoMicro});
      for (int j : subset) {
        heard.push_back({pids[static_cast<std::size_t>(j)],
                         states[static_cast<std::size_t>(j)], kNoMicro});
      }
      choices[static_cast<std::size_t>(i)].push_back(views.intern_round(
          pids[static_cast<std::size_t>(i)], round, std::move(heard)));
    }
  }
  RoundGroup group;
  product_facets(pids, choices, arena, &group.facets);
  out->push_back(std::move(group));
}

// -------------------------------------------------------------- sync ----

/// ψ(S\K; ...) where each survivor independently hears all survivors plus a
/// subset J ⊆ K of the failing processes, with `required` ⊆ J forced.
/// Lemma 14 uses required = ∅; Lemma 15's right-hand side pins one failing
/// process as heard. `fail_set` and `required` must be sorted.
template <typename Views, typename Arena>
void sync_failset_facets(const SortedFacet& input,
                         const std::vector<ProcessId>& fail_set,
                         const std::vector<ProcessId>& required, Views& views,
                         Arena& arena, std::vector<topology::Simplex>* out) {
  std::vector<ProcessId> survivors;
  for (ProcessId p : input.pids) {
    if (!std::binary_search(fail_set.begin(), fail_set.end(), p)) {
      survivors.push_back(p);
    }
  }
  if (survivors.empty()) return;

  const int round = views.round(input.state_of(survivors[0])) + 1;

  std::vector<ProcessId> optional;
  for (ProcessId p : fail_set) {
    if (!std::binary_search(required.begin(), required.end(), p)) {
      optional.push_back(p);
    }
  }

  std::vector<std::vector<StateId>> choices;
  choices.reserve(survivors.size());
  for (ProcessId receiver : survivors) {
    std::vector<StateId> receiver_choices;
    for (const std::vector<ProcessId>& extra : math::all_subsets(optional)) {
      std::vector<HeardEntry> heard;
      heard.reserve(survivors.size() + required.size() + extra.size());
      for (ProcessId sender : survivors) {
        heard.push_back({sender, input.state_of(sender), kNoMicro});
      }
      for (ProcessId sender : required) {
        heard.push_back({sender, input.state_of(sender), kNoMicro});
      }
      for (ProcessId sender : extra) {
        heard.push_back({sender, input.state_of(sender), kNoMicro});
      }
      receiver_choices.push_back(
          views.intern_round(receiver, round, std::move(heard)));
    }
    choices.push_back(std::move(receiver_choices));
  }
  product_facets(survivors, choices, arena, out);
}

/// Lemma 14 union: one group per fail set K with |K| ≤ min(k, f), in the
/// paper's lexicographic order.
template <typename Views, typename Arena>
void expand_sync_round(const topology::Simplex& input, const SyncParams& params,
                       Views& views, Arena& arena,
                       std::vector<RoundGroup>* out) {
  const SortedFacet decoded = decode_sorted(input, arena);
  const int cap = std::min(params.failures_per_round, params.total_failures);
  for (const std::vector<ProcessId>& fail_set :
       math::subsets_with_size_between(decoded.pids, 0, cap)) {
    RoundGroup group;
    group.failures_used = static_cast<int>(fail_set.size());
    sync_failset_facets(decoded, fail_set, {}, views, arena, &group.facets);
    out->push_back(std::move(group));
  }
}

// ---------------------------------------------------------- semi-sync ----

/// One view from [F]: `delivered_last[i]` says whether the choice for the
/// i-th failing process is μ_j = F(P_j) (true) or F(P_j) - 1 (false).
template <typename Views>
StateId semisync_make_view(const SortedFacet& input,
                           const FailurePattern& pattern, int mu,
                           ProcessId receiver,
                           const std::vector<bool>& delivered_last, int round,
                           Views& views) {
  std::vector<HeardEntry> heard;
  for (ProcessId sender : input.pids) {
    if (std::binary_search(pattern.fail_set.begin(), pattern.fail_set.end(),
                           sender)) {
      continue;
    }
    heard.push_back({sender, input.state_of(sender), mu});
  }
  for (std::size_t i = 0; i < pattern.fail_set.size(); ++i) {
    const int micro =
        delivered_last[i] ? pattern.fail_micro[i] : pattern.fail_micro[i] - 1;
    if (micro >= 1) {
      heard.push_back(
          {pattern.fail_set[i], input.state_of(pattern.fail_set[i]), micro});
    }
  }
  return views.intern_round(receiver, round, std::move(heard));
}

/// Lemma 19: M¹_{K,F}(S) ≅ ψ(S\K; [F]), optionally with one failing
/// process's delivery pinned (Lemma 20's [F ↑ j]); force_delivered_index is
/// -1 for none, else an index into pattern.fail_set. `pattern.fail_set`
/// must be sorted with fail_micro aligned.
template <typename Views, typename Arena>
void semisync_pattern_facets(const SortedFacet& input,
                             const FailurePattern& pattern, int mu,
                             int force_delivered_index, Views& views,
                             Arena& arena,
                             std::vector<topology::Simplex>* out) {
  std::vector<ProcessId> survivors;
  for (ProcessId p : input.pids) {
    if (!std::binary_search(pattern.fail_set.begin(), pattern.fail_set.end(),
                            p)) {
      survivors.push_back(p);
    }
  }
  if (survivors.empty()) return;

  const int round = views.round(input.state_of(survivors[0])) + 1;

  const std::size_t k = pattern.fail_set.size();
  std::vector<std::vector<bool>> all_choices;
  std::vector<std::size_t> sizes;
  for (std::size_t i = 0; i < k; ++i) {
    sizes.push_back(static_cast<std::size_t>(i) ==
                            static_cast<std::size_t>(force_delivered_index)
                        ? 1u
                        : 2u);
  }
  math::for_each_product(sizes, [&](const std::vector<std::size_t>& odo) {
    std::vector<bool> choice(k);
    for (std::size_t i = 0; i < k; ++i) {
      if (static_cast<int>(i) == force_delivered_index) {
        choice[i] = true;  // pinned: the last message was delivered
      } else {
        choice[i] = odo[i] == 1;
      }
    }
    all_choices.push_back(std::move(choice));
  });

  std::vector<std::vector<StateId>> per_survivor;
  per_survivor.reserve(survivors.size());
  for (ProcessId receiver : survivors) {
    std::vector<StateId> options;
    options.reserve(all_choices.size());
    for (const std::vector<bool>& choice : all_choices) {
      options.push_back(semisync_make_view(input, pattern, mu, receiver,
                                           choice, round, views));
    }
    per_survivor.push_back(std::move(options));
  }
  product_facets(survivors, per_survivor, arena, out);
}

/// Lemma 19 union: one group per (K, F) pair in the paper's order.
template <typename Views, typename Arena>
void expand_semisync_round(const topology::Simplex& input,
                           const SemiSyncParams& params, Views& views,
                           Arena& arena, std::vector<RoundGroup>* out) {
  const SortedFacet decoded = decode_sorted(input, arena);
  const int cap = std::min(params.failures_per_round, params.total_failures);
  for (const FailurePattern& pattern : enumerate_failure_patterns(
           decoded.pids, cap, params.micro_rounds)) {
    RoundGroup group;
    group.failures_used = static_cast<int>(pattern.fail_set.size());
    semisync_pattern_facets(decoded, pattern, params.micro_rounds, -1, views,
                            arena, &group.facets);
    out->push_back(std::move(group));
  }
}

// --------------------------------------------------------------- IIS ----

/// Enumerates all ordered partitions of `items` (each block nonempty),
/// calling `visit` with the block list. Every nonempty subset of the
/// remaining items may come first, so enumeration never double counts.
void for_each_ordered_partition(
    const std::vector<int>& items,
    const std::function<void(const std::vector<std::vector<int>>&)>& visit);

/// One IIS round: the chromatic subdivision of the input facet, one facet
/// per ordered partition of the participants.
template <typename Views, typename Arena>
void expand_iis_round(const topology::Simplex& input, Views& views,
                      Arena& arena, std::vector<RoundGroup>* out) {
  std::vector<ProcessId> pids;
  std::vector<StateId> states;
  for (topology::VertexId v : input.vertices()) {
    pids.push_back(arena.pid(v));
    states.push_back(arena.state(v));
  }
  if (pids.empty()) return;
  const int round = views.round(states[0]) + 1;

  std::vector<int> indices;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    indices.push_back(static_cast<int>(i));
  }
  RoundGroup group;
  for_each_ordered_partition(
      indices, [&](const std::vector<std::vector<int>>& blocks) {
        // Process p in block B_j snapshots blocks B_1..B_j.
        std::vector<topology::VertexId> facet;
        std::vector<HeardEntry> seen_so_far;
        for (const std::vector<int>& block : blocks) {
          for (int i : block) {
            seen_so_far.push_back({pids[static_cast<std::size_t>(i)],
                                   states[static_cast<std::size_t>(i)],
                                   kNoMicro});
          }
          for (int i : block) {
            const StateId state = views.intern_round(
                pids[static_cast<std::size_t>(i)], round, seen_so_far);
            facet.push_back(
                arena.intern(pids[static_cast<std::size_t>(i)], state));
          }
        }
        group.facets.push_back(topology::Simplex(std::move(facet)));
      });
  out->push_back(std::move(group));
}

}  // namespace psph::core::detail
