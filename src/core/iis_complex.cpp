#include "core/iis_complex.h"

#include <functional>
#include <limits>
#include <stdexcept>

#include "core/construction.h"
#include "core/round_ops.h"
#include "math/combinatorics.h"
#include "topology/simplex.h"

namespace psph::core {

namespace detail {

void for_each_ordered_partition(
    const std::vector<int>& items,
    const std::function<void(const std::vector<std::vector<int>>&)>& visit) {
  std::vector<std::vector<int>> blocks;
  std::vector<int> remaining = items;
  const std::function<void()> recurse = [&]() {
    if (remaining.empty()) {
      visit(blocks);
      return;
    }
    // Choose the next block: blocks are unordered sets but their *sequence*
    // matters, and every nonempty subset may come first. Enumerating all
    // nonempty subsets of `remaining` as the next block never double
    // counts.
    const std::vector<std::vector<int>> subsets =
        math::subsets_with_size_between(remaining, 1,
                                        static_cast<int>(remaining.size()));
    for (const std::vector<int>& block : subsets) {
      std::vector<int> rest;
      for (int item : remaining) {
        bool in_block = false;
        for (int b : block) {
          if (b == item) in_block = true;
        }
        if (!in_block) rest.push_back(item);
      }
      blocks.push_back(block);
      std::vector<int> saved = std::move(remaining);
      remaining = std::move(rest);
      recurse();
      remaining = std::move(saved);
      blocks.pop_back();
    }
  };
  recurse();
}

}  // namespace detail

std::uint64_t ordered_bell(int m) {
  if (m < 0) throw std::invalid_argument("ordered_bell: m < 0");
  // a(m) = sum_{j=1..m} C(m, j) a(m-j), a(0) = 1.
  std::vector<std::uint64_t> a(static_cast<std::size_t>(m) + 1, 0);
  a[0] = 1;
  for (int i = 1; i <= m; ++i) {
    std::uint64_t total = 0;
    for (int j = 1; j <= i; ++j) {
      const std::uint64_t term = math::binomial(i, j) *
                                 a[static_cast<std::size_t>(i - j)];
      if (total > std::numeric_limits<std::uint64_t>::max() - term) {
        throw std::overflow_error("ordered_bell: overflow");
      }
      total += term;
    }
    a[static_cast<std::size_t>(i)] = total;
  }
  return a[static_cast<std::size_t>(m)];
}

topology::SimplicialComplex iis_round_complex(const topology::Simplex& input,
                                              ViewRegistry& views,
                                              topology::VertexArena& arena) {
  std::vector<detail::RoundGroup> groups;
  detail::expand_iis_round(input, views, arena, &groups);
  topology::SimplicialComplex result;
  for (detail::RoundGroup& group : groups) {
    result.add_facets(std::move(group.facets));
  }
  return result;
}

topology::SimplicialComplex iis_protocol_complex(
    const topology::Simplex& input, int rounds, ViewRegistry& views,
    topology::VertexArena& arena) {
  ConstructionCache cache;
  return iis_protocol_complex(input, rounds, views, arena, cache);
}

topology::SimplicialComplex iis_protocol_complex_seq(
    const topology::Simplex& input, int rounds, ViewRegistry& views,
    topology::VertexArena& arena) {
  if (rounds < 1) {
    throw std::invalid_argument("iis_protocol_complex: rounds < 1");
  }
  topology::SimplicialComplex one_round =
      iis_round_complex(input, views, arena);
  if (rounds == 1) return one_round;
  topology::SimplicialComplex result;
  for (const topology::Simplex& facet : one_round.facets()) {
    result.merge(iis_protocol_complex_seq(facet, rounds - 1, views, arena));
  }
  return result;
}

topology::SimplicialComplex iis_protocol_complex_over(
    const topology::SimplicialComplex& inputs, int rounds,
    ViewRegistry& views, topology::VertexArena& arena) {
  ConstructionCache cache;
  return iis_protocol_complex_over(inputs, rounds, views, arena, cache);
}

}  // namespace psph::core
