#include "core/iis_complex.h"

#include <functional>
#include <stdexcept>

#include "math/combinatorics.h"
#include "topology/simplex.h"

namespace psph::core {

namespace {

// Enumerates all ordered partitions of `items` (each block nonempty),
// calling `visit` with the block list.
void for_each_ordered_partition(
    const std::vector<int>& items,
    const std::function<void(const std::vector<std::vector<int>>&)>& visit) {
  std::vector<std::vector<int>> blocks;
  std::vector<int> remaining = items;
  const std::function<void()> recurse = [&]() {
    if (remaining.empty()) {
      visit(blocks);
      return;
    }
    // Choose the next block: any nonempty subset of `remaining` that
    // contains remaining[0]? No — blocks are unordered sets but their
    // *sequence* matters, and every nonempty subset may come first. To
    // avoid double counting we enumerate all nonempty subsets of
    // `remaining` as the next block.
    const std::vector<std::vector<int>> subsets =
        math::subsets_with_size_between(remaining, 1,
                                        static_cast<int>(remaining.size()));
    for (const std::vector<int>& block : subsets) {
      std::vector<int> rest;
      for (int item : remaining) {
        bool in_block = false;
        for (int b : block) {
          if (b == item) in_block = true;
        }
        if (!in_block) rest.push_back(item);
      }
      blocks.push_back(block);
      std::vector<int> saved = std::move(remaining);
      remaining = std::move(rest);
      recurse();
      remaining = std::move(saved);
      blocks.pop_back();
    }
  };
  recurse();
}

}  // namespace

std::uint64_t ordered_bell(int m) {
  if (m < 0) throw std::invalid_argument("ordered_bell: m < 0");
  // a(m) = sum_{j=1..m} C(m, j) a(m-j), a(0) = 1.
  std::vector<std::uint64_t> a(static_cast<std::size_t>(m) + 1, 0);
  a[0] = 1;
  for (int i = 1; i <= m; ++i) {
    std::uint64_t total = 0;
    for (int j = 1; j <= i; ++j) {
      const std::uint64_t term = math::binomial(i, j) *
                                 a[static_cast<std::size_t>(i - j)];
      if (total > std::numeric_limits<std::uint64_t>::max() - term) {
        throw std::overflow_error("ordered_bell: overflow");
      }
      total += term;
    }
    a[static_cast<std::size_t>(i)] = total;
  }
  return a[static_cast<std::size_t>(m)];
}

topology::SimplicialComplex iis_round_complex(const topology::Simplex& input,
                                              ViewRegistry& views,
                                              topology::VertexArena& arena) {
  topology::SimplicialComplex result;
  std::vector<ProcessId> pids;
  std::vector<StateId> states;
  for (topology::VertexId v : input.vertices()) {
    pids.push_back(arena.pid(v));
    states.push_back(arena.state(v));
  }
  if (pids.empty()) return result;
  const int round = views.round(states[0]) + 1;

  std::vector<int> indices;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    indices.push_back(static_cast<int>(i));
  }
  for_each_ordered_partition(
      indices, [&](const std::vector<std::vector<int>>& blocks) {
        // Process p in block B_j snapshots blocks B_1..B_j.
        std::vector<topology::VertexId> facet;
        std::vector<HeardEntry> seen_so_far;
        for (const std::vector<int>& block : blocks) {
          for (int i : block) {
            seen_so_far.push_back({pids[static_cast<std::size_t>(i)],
                                   states[static_cast<std::size_t>(i)],
                                   kNoMicro});
          }
          for (int i : block) {
            const StateId state = views.intern_round(
                pids[static_cast<std::size_t>(i)], round, seen_so_far);
            facet.push_back(
                arena.intern(pids[static_cast<std::size_t>(i)], state));
          }
        }
        result.add_facet(topology::Simplex(std::move(facet)));
      });
  return result;
}

topology::SimplicialComplex iis_protocol_complex(
    const topology::Simplex& input, int rounds, ViewRegistry& views,
    topology::VertexArena& arena) {
  if (rounds < 1) {
    throw std::invalid_argument("iis_protocol_complex: rounds < 1");
  }
  topology::SimplicialComplex one_round =
      iis_round_complex(input, views, arena);
  if (rounds == 1) return one_round;
  topology::SimplicialComplex result;
  for (const topology::Simplex& facet : one_round.facets()) {
    result.merge(iis_protocol_complex(facet, rounds - 1, views, arena));
  }
  return result;
}

topology::SimplicialComplex iis_protocol_complex_over(
    const topology::SimplicialComplex& inputs, int rounds,
    ViewRegistry& views, topology::VertexArena& arena) {
  topology::SimplicialComplex result;
  for (const topology::Simplex& facet : inputs.facets()) {
    result.merge(iis_protocol_complex(facet, rounds, views, arena));
  }
  return result;
}

}  // namespace psph::core
