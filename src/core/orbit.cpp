#include "core/orbit.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "topology/isomorphism.h"

namespace psph::core {

namespace {

template <typename K, typename V>
V mapped_or_self(const std::vector<std::pair<K, V>>& table, K key) {
  const auto it = std::lower_bound(
      table.begin(), table.end(), key,
      [](const std::pair<K, V>& entry, K k) { return entry.first < k; });
  if (it != table.end() && it->first == key) return it->second;
  return key;
}

/// Round-0 (pid, input) labels of an input facet, sorted by pid. Throws if
/// any vertex state is not a round-0 view.
std::vector<std::pair<ProcessId, std::int64_t>> input_labels(
    const topology::Simplex& input, const ViewRegistry& views,
    const topology::VertexArena& arena) {
  std::vector<std::pair<ProcessId, std::int64_t>> labels;
  for (const topology::VertexId v : input.vertices()) {
    const View& view = views.view(arena.state(v));
    if (view.round != 0) {
      throw std::invalid_argument(
          "SymmetryGroup: input vertex state is not a round-0 view");
    }
    labels.emplace_back(arena.pid(v), view.input);
  }
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

ProcessId SymmetryElement::map_pid(ProcessId pid) const {
  return mapped_or_self(pid_map, pid);
}

std::int64_t SymmetryElement::map_value(std::int64_t value) const {
  return mapped_or_self(value_map, value);
}

bool SymmetryElement::is_identity() const {
  for (const auto& [from, to] : pid_map) {
    if (from != to) return false;
  }
  for (const auto& [from, to] : value_map) {
    if (from != to) return false;
  }
  return true;
}

SymmetryGroup SymmetryGroup::identity() {
  SymmetryGroup group;
  group.elements_.push_back(SymmetryElement{});
  return group;
}

SymmetryGroup SymmetryGroup::for_input_facet(
    const topology::Simplex& input, const ViewRegistry& views,
    const topology::VertexArena& arena) {
  const std::vector<std::pair<ProcessId, std::int64_t>> labels =
      input_labels(input, views, arena);
  std::vector<ProcessId> pids;
  pids.reserve(labels.size());
  for (const auto& [pid, value] : labels) pids.push_back(pid);

  SymmetryGroup group;
  std::vector<std::size_t> perm(pids.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  // std::next_permutation over index positions enumerates all |pids|!
  // candidate π (in lexicographic order, identity first). For each, σ is
  // forced by σ(value_of(p)) = value_of(π(p)); the candidate survives iff
  // that assignment is a well-defined bijection on the values in use.
  do {
    std::vector<std::pair<std::int64_t, std::int64_t>> value_map;
    bool ok = true;
    for (std::size_t i = 0; i < labels.size() && ok; ++i) {
      const std::int64_t from = labels[i].second;
      const std::int64_t to = labels[perm[i]].second;
      bool found = false;
      for (const auto& [existing_from, existing_to] : value_map) {
        if (existing_from == from) {
          ok = existing_to == to;
          found = true;
          break;
        }
        if (existing_to == to) {  // σ must stay injective
          ok = existing_from == from;
          found = ok;
          break;
        }
      }
      if (!found && ok) value_map.emplace_back(from, to);
    }
    if (!ok) continue;
    SymmetryElement element;
    for (std::size_t i = 0; i < pids.size(); ++i) {
      element.pid_map.emplace_back(pids[i], pids[perm[i]]);
    }
    std::sort(value_map.begin(), value_map.end());
    element.value_map = std::move(value_map);
    group.elements_.push_back(std::move(element));
  } while (std::next_permutation(perm.begin(), perm.end()));

  // next_permutation visited the identity first, so element 0 is id.
  return group;
}

SymmetryGroup SymmetryGroup::for_input_complex(
    const topology::SimplicialComplex& inputs, const ViewRegistry& views,
    const topology::VertexArena& arena, std::uint64_t max_candidates) {
  std::set<ProcessId> pid_set;
  std::set<std::int64_t> value_set;
  std::vector<topology::VertexId> vertex_ids = inputs.vertex_ids();
  for (const topology::VertexId v : vertex_ids) {
    const View& view = views.view(arena.state(v));
    if (view.round != 0) {
      throw std::invalid_argument(
          "SymmetryGroup: input vertex state is not a round-0 view");
    }
    pid_set.insert(arena.pid(v));
    value_set.insert(view.input);
  }
  const std::vector<ProcessId> pids(pid_set.begin(), pid_set.end());
  const std::vector<std::int64_t> values(value_set.begin(), value_set.end());

  std::uint64_t candidates = 1;
  for (std::size_t i = 2; i <= pids.size(); ++i) candidates *= i;
  for (std::size_t i = 2; i <= values.size(); ++i) {
    candidates *= i;
    if (candidates > max_candidates) {
      throw std::invalid_argument(
          "SymmetryGroup::for_input_complex: candidate count exceeds cap");
    }
  }
  if (candidates > max_candidates) {
    throw std::invalid_argument(
        "SymmetryGroup::for_input_complex: candidate count exceeds cap");
  }

  SymmetryGroup group;
  std::vector<std::size_t> pid_perm(pids.size());
  std::iota(pid_perm.begin(), pid_perm.end(), std::size_t{0});
  do {
    std::vector<std::size_t> value_perm(values.size());
    std::iota(value_perm.begin(), value_perm.end(), std::size_t{0});
    do {
      SymmetryElement element;
      for (std::size_t i = 0; i < pids.size(); ++i) {
        element.pid_map.emplace_back(pids[i], pids[pid_perm[i]]);
      }
      for (std::size_t i = 0; i < values.size(); ++i) {
        element.value_map.emplace_back(values[i], values[value_perm[i]]);
      }
      // The induced vertex map: (p, v) -> (π(p), σ(v)). It must land on
      // existing vertices and be an automorphism of the facet set — checked
      // with the isomorphism certificate machinery.
      topology::VertexMap vertex_map;
      bool total = true;
      for (const topology::VertexId v : vertex_ids) {
        const View& view = views.view(arena.state(v));
        const ProcessId target_pid = element.map_pid(arena.pid(v));
        const std::int64_t target_value = element.map_value(view.input);
        View target;
        target.pid = target_pid;
        target.round = 0;
        target.input = target_value;
        const std::optional<StateId> state = views.find(target);
        if (!state) {
          total = false;
          break;
        }
        const std::optional<topology::VertexId> image =
            arena.find(target_pid, *state);
        if (!image) {
          total = false;
          break;
        }
        vertex_map[v] = *image;
      }
      if (total && topology::is_automorphism(inputs, vertex_map)) {
        group.elements_.push_back(std::move(element));
      }
    } while (std::next_permutation(value_perm.begin(), value_perm.end()));
  } while (std::next_permutation(pid_perm.begin(), pid_perm.end()));

  if (group.elements_.empty() || !group.elements_.front().is_identity()) {
    throw std::logic_error(
        "SymmetryGroup::for_input_complex: identity element missing");
  }
  return group;
}

OrbitContext::OrbitContext(SymmetryGroup group, ViewRegistry& views,
                           topology::VertexArena& arena)
    : group_(std::move(group)),
      views_(views),
      arena_(arena),
      memo_(group_.size()),
      vertex_memo_(group_.size()) {}

StateId OrbitContext::relabel_state(std::size_t element_index, StateId state) {
  std::unordered_map<StateId, StateId>& memo = memo_[element_index];
  const auto hit = memo.find(state);
  if (hit != memo.end()) return hit->second;

  const SymmetryElement& g = group_.element(element_index);
  const View& v = views_.view(state);
  StateId result;
  if (v.round == 0) {
    result = views_.intern_input(g.map_pid(v.pid), g.map_value(v.input));
  } else {
    std::vector<HeardEntry> heard;
    heard.reserve(v.heard.size());
    for (const HeardEntry& e : v.heard) {
      // Recursion strictly descends in round number, so it terminates; each
      // (g, state) pair relabels once and is thereafter a memo hit.
      heard.push_back(
          {g.map_pid(e.from), relabel_state(element_index, e.state),
           e.last_micro});
    }
    result = views_.intern_round(g.map_pid(v.pid), v.round, std::move(heard));
  }
  memo.emplace(state, result);
  return result;
}

topology::VertexId OrbitContext::relabel_vertex(std::size_t element_index,
                                                topology::VertexId vertex) {
  std::vector<topology::VertexId>& memo = vertex_memo_[element_index];
  if (vertex < memo.size() && memo[vertex] != topology::kInvalidVertex) {
    return memo[vertex];
  }
  const SymmetryElement& g = group_.element(element_index);
  const topology::ProcessId pid = arena_.pid(vertex);
  const StateId state = arena_.state(vertex);
  const topology::VertexId result =
      arena_.intern(g.map_pid(pid), relabel_state(element_index, state));
  if (vertex >= memo.size()) memo.resize(vertex + 1, topology::kInvalidVertex);
  memo[vertex] = result;
  return result;
}

topology::Simplex OrbitContext::relabel_facet(std::size_t element_index,
                                              const topology::Simplex& facet) {
  std::vector<topology::VertexId> mapped;
  mapped.reserve(facet.size());
  for (const topology::VertexId v : facet.vertices()) {
    mapped.push_back(relabel_vertex(element_index, v));
  }
  return topology::Simplex(std::move(mapped));
}

CanonicalFacet OrbitContext::canonicalize(const topology::Simplex& facet) {
  ++canonicalized_;
  CanonicalFacet best{facet, 1};
  if (group_.size() == 1) return best;
  // Element 0 is the identity: start from the facet itself, then challenge
  // with every non-trivial relabeling. Ties count the stabilizer. Candidates
  // are compared as sorted raw vertex vectors in a reused scratch buffer —
  // a Simplex is only materialized when a candidate actually wins.
  std::vector<topology::VertexId> scratch;
  scratch.reserve(facet.size());
  for (std::size_t gi = 1; gi < group_.size(); ++gi) {
    scratch.clear();
    for (const topology::VertexId v : facet.vertices()) {
      scratch.push_back(relabel_vertex(gi, v));
    }
    std::sort(scratch.begin(), scratch.end());
    if (scratch < best.rep.vertices()) {
      best.rep = topology::Simplex(scratch);
      best.stabilizer = 1;
    } else if (scratch == best.rep.vertices()) {
      ++best.stabilizer;
    }
  }
  return best;
}

}  // namespace psph::core
