#pragma once

// The r-round asynchronous protocol complex A^r(S) of Section 6.
//
// One round from input simplex S with participant set ids(S): each
// participating process P_i receives the round's messages from itself plus
// an independently chosen set of at least (n - f) other participants
// (with n + 1 processes total and at most f failures, n - f + 1 received
// messages including one's own is the most a process can wait for). By
// Lemma 11 the resulting complex is a single pseudosphere
//   A¹(S) ≅ ψ(S; 2^{P-{P_0}}_{≥n-f}, ..., 2^{P-{P_m}}_{≥n-f}).
//
// The r-round complex is the inductive union of A^{r-1}(T) over the facets
// T of A¹(S). (The paper takes the union over all simplexes T; every view
// reachable from a proper face of a facet is also reachable from the facet
// itself — the face's executions are those where the missing processes'
// messages are simply never heard — so the facet union generates the same
// complex, and that is what we enumerate.)

#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"
#include "topology/simplex.h"

namespace psph::core {

struct AsyncParams {
  int num_processes = 3;  // n + 1 (global count; participants may be fewer)
  int max_failures = 1;   // f
  int rounds = 1;         // r
};

/// A¹(S): the one-round complex from an input facet whose vertex labels are
/// (pid, state). Empty when fewer than (n + 1 - f) processes participate.
topology::SimplicialComplex async_round_complex(const topology::Simplex& input,
                                                const AsyncParams& params,
                                                ViewRegistry& views,
                                                topology::VertexArena& arena);

/// A^r(S): the r-round complex by the inductive construction. Runs the
/// parallel, memoized pipeline of construction.h (with a private cache);
/// output is bit-identical to the sequential reference at any thread count.
topology::SimplicialComplex async_protocol_complex(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena);

/// Sequential depth-first reference construction of A^r(S). Kept as the
/// correctness oracle for the pipeline (tests) and as the benchmark
/// baseline; always single-threaded, never memoized.
topology::SimplicialComplex async_protocol_complex_seq(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena);

/// P(I): union of A^r over every facet of an input complex (Section 4's
/// P(I) for the subset of well-behaved executions).
topology::SimplicialComplex async_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena);

/// Facet count predicted by Lemma 11 for an input facet with m+1
/// participants: Π_i Σ_{j≥n-f} C(m, j)  — each process independently picks
/// which of the other m participants it hears.
std::uint64_t async_round_facet_count(int participants, int num_processes,
                                      int max_failures);

}  // namespace psph::core
