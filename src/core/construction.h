#pragma once

// Parallel, memoized multi-round protocol-complex construction.
//
// The r-round complexes of every model are inductive unions: expand each
// facet of the one-round complex by another round, recursively. The naive
// recursion (kept as the *_protocol_complex_seq reference functions) is
// depth-first and serial. This module replaces it with a level-synchronous
// pipeline that is parallel across facets and memoized across repeated
// facets, while producing *bit-identical* registries, arenas, and complexes
// at any thread count:
//
//   1. DEDUPE   — the frontier (all facets awaiting one round of expansion)
//                 is deduplicated by (facet, model params). Hash-consing
//                 makes repeated facets common from round 2 on.
//   2. LOOKUP   — each unique item is looked up in the ConstructionCache;
//                 hits skip expansion entirely.
//   3. EXPAND   — cache misses are expanded concurrently via
//                 util::parallel_for. Each worker runs the shared one-round
//                 expander (round_ops.h) against a ScratchViews /
//                 ScratchArena overlay: reads resolve against the frozen
//                 canonical registries (const-thread-safe find()); newly
//                 created views and vertices intern into thread-local
//                 overlay storage with ids offset past the canonical sizes.
//   4. REMAP    — a serial pass walks the missed items in frontier order
//                 and interns each overlay's views and vertices into the
//                 canonical registries in creation order, then rewrites the
//                 produced facets through the resulting id maps. Because
//                 both the frontier order and each overlay's creation order
//                 are fixed by the model's enumeration order, canonical ids
//                 never depend on thread scheduling. (A new round's views
//                 only ever reference canonical parent states, never each
//                 other, so no heard-list rewriting is required.)
//   5. CONSUME  — final-round items merge their facets into the result via
//                 SimplicialComplex::add_facets (bulk fast lane); earlier
//                 rounds enqueue children with the failure budget reduced
//                 per adversary group.
//
// The cache entry for (facet, params-minus-rounds) is the canonical
// one-round expansion, valid for the lifetime of the bound registry/arena
// pair — re-expansion is idempotent under hash-consing, which is what makes
// memoization sound. Shared across calls, the cache also accelerates
// sweeps that revisit the same parameter region.

// Two additions ride on the same level loop (DESIGN §5.16):
//
//   * ConstructionMode::kOrbit — the orbit-quotient pipeline. The paper's
//     round operators commute with joint process-name / input-value
//     permutations, so when the input is symmetric under a group G the
//     frontier partitions into G-orbits and one canonical representative
//     per orbit suffices. DEDUPE canonicalizes each incoming facet (orbit.h)
//     before keying, CONSUME canonicalizes the final-round facets into an
//     orbit table carrying stabilizer sizes, and the exact facet count,
//     f-vector, and homology of the *full* complex are recovered from orbit
//     data (orbit_full_f_vector, reconstitute_full) — equal, value for
//     value, to what the unreduced pipeline reports wherever both can run.
//
//   * Frontier spill — with ConstructionOptions::frontier_budget_bytes > 0
//     the raw child stream between levels is encoded into fixed-size chunks
//     and handed to a FrontierStorage (store::FrontierSpool seals them into
//     checksummed envelopes on disk), so peak memory holds the deduped level
//     plus one chunk instead of the whole raw frontier. Chunks are drained
//     in write order, which is the exact push order of the in-RAM path, so
//     results are bit-identical at any budget.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/orbit.h"
#include "core/round_ops.h"
#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"
#include "topology/simplex.h"
#include "util/hash.h"

namespace psph::core {

/// How the level-synchronous pipeline treats the frontier.
enum class ConstructionMode : std::uint8_t {
  kFull = 0,   // expand every deduplicated facet (the PR-4 pipeline)
  kOrbit = 1,  // expand one canonical representative per symmetry orbit
};

/// Sink/source for spilled frontier chunks. The pipeline writes encoded
/// chunks in push order during CONSUME and reads them back in the same
/// order at the next level's DEDUPE, then clears. Implementations:
/// InMemoryFrontierStorage below (tests, budget-only runs) and
/// store::FrontierSpool (sealed envelopes on disk).
class FrontierStorage {
 public:
  virtual ~FrontierStorage() = default;
  /// Appends one encoded chunk.
  virtual void append_chunk(const std::vector<std::uint8_t>& bytes) = 0;
  virtual std::size_t chunk_count() const = 0;
  /// Chunk `index` in append order; throws on out-of-range or (for durable
  /// implementations) corrupt bytes.
  virtual std::vector<std::uint8_t> read_chunk(std::size_t index) const = 0;
  /// Drops every chunk (one level has been fully consumed).
  virtual void clear() = 0;
};

/// Chunks held in RAM — exercises the exact encode/chunk/drain path without
/// touching disk. Also the pipeline's fallback when a budget is set but no
/// storage is supplied.
class InMemoryFrontierStorage final : public FrontierStorage {
 public:
  void append_chunk(const std::vector<std::uint8_t>& bytes) override {
    chunks_.push_back(bytes);
  }
  std::size_t chunk_count() const override { return chunks_.size(); }
  std::vector<std::uint8_t> read_chunk(std::size_t index) const override {
    if (index >= chunks_.size()) {
      throw std::out_of_range("InMemoryFrontierStorage: chunk index");
    }
    return chunks_[index];
  }
  void clear() override { chunks_.clear(); }

 private:
  std::vector<std::vector<std::uint8_t>> chunks_;
};

struct ConstructionOptions {
  ConstructionMode mode = ConstructionMode::kFull;
  /// 0 keeps the whole next-level frontier in RAM (the historical path).
  /// Positive: children are encoded as they are produced and flushed to
  /// `storage` in chunks of ~budget/2 bytes, bounding frontier RAM.
  std::uint64_t frontier_budget_bytes = 0;
  /// Where spilled chunks go. Ignored when the budget is 0; when the budget
  /// is positive and this is null the pipeline uses a private
  /// InMemoryFrontierStorage (chunked, but not out-of-core).
  FrontierStorage* storage = nullptr;
};

/// Thread-local view overlay for the scratch-expansion phase. Lookups fall
/// through to the frozen canonical registry (find(), const-thread-safe);
/// new views get local ids starting at the canonical size, in creation
/// order. The overlay never copies the base, so construction is O(1).
class ScratchViews {
 public:
  explicit ScratchViews(const ViewRegistry& base)
      : base_(base), base_size_(base.size()) {}

  int round(StateId id) const {
    return id < base_size_
               ? base_.round(id)
               : local_[static_cast<std::size_t>(id - base_size_)].round;
  }

  StateId intern_round(ProcessId pid, int round,
                       std::vector<HeardEntry> heard) {
    View v = make_round_view(pid, round, std::move(heard));
    if (const std::optional<StateId> hit = base_.find(v)) return *hit;
    const auto it = index_.find(v);
    if (it != index_.end()) return it->second;
    const StateId id = static_cast<StateId>(base_size_ + local_.size());
    index_.emplace(v, id);
    local_.push_back(std::move(v));
    return id;
  }

  std::size_t base_size() const { return base_size_; }

  /// Local views in creation order (ids base_size(), base_size()+1, ...).
  /// Leaves the overlay empty.
  std::vector<View> take_local() {
    index_.clear();
    return std::move(local_);
  }

 private:
  const ViewRegistry& base_;
  const std::size_t base_size_;
  std::vector<View> local_;
  std::unordered_map<View, StateId, ViewHash> index_;
};

/// Thread-local vertex overlay, same scheme as ScratchViews. Sound because
/// every label in the base arena references a canonical state (id below the
/// view base size), while labels minted during scratch expansion that
/// reference *local* states carry ids at or past it — the two can never
/// collide in the base index.
class ScratchArena {
 public:
  explicit ScratchArena(const topology::VertexArena& base)
      : base_(base), base_size_(base.size()) {}

  topology::ProcessId pid(topology::VertexId id) const {
    return label_of(id).pid;
  }
  StateId state(topology::VertexId id) const { return label_of(id).state; }

  topology::VertexId intern(topology::ProcessId pid, StateId state) {
    if (const std::optional<topology::VertexId> hit = base_.find(pid, state)) {
      return *hit;
    }
    const topology::VertexLabel label{pid, state};
    const auto it = index_.find(label);
    if (it != index_.end()) return it->second;
    const topology::VertexId id =
        static_cast<topology::VertexId>(base_size_ + local_.size());
    index_.emplace(label, id);
    local_.push_back(label);
    return id;
  }

  std::size_t base_size() const { return base_size_; }

  /// Local labels in creation order. Leaves the overlay empty.
  std::vector<topology::VertexLabel> take_local() {
    index_.clear();
    return std::move(local_);
  }

 private:
  const topology::VertexLabel& label_of(topology::VertexId id) const {
    return id < base_size_
               ? base_.label(id)
               : local_[static_cast<std::size_t>(id) - base_size_];
  }

  const topology::VertexArena& base_;
  const std::size_t base_size_;
  std::vector<topology::VertexLabel> local_;
  std::unordered_map<topology::VertexLabel, topology::VertexId,
                     topology::VertexLabelHash>
      index_;
};

struct ConstructionStats {
  std::uint64_t lookups = 0;  // cache probes, one per unique frontier item
  std::uint64_t hits = 0;     // probes answered from the cache
  std::uint64_t misses = 0;   // probes that required a scratch expansion
  std::uint64_t deduped = 0;  // frontier duplicates dropped before probing
};

/// Memo cache for canonical one-round expansions, keyed by
/// (construction mode, model, params-minus-rounds, facet vertex ids).
/// Entries hold canonical StateId / VertexId references, so a cache is
/// bound to the first (ViewRegistry, VertexArena) pair it is used with and
/// rejects any other. The mode byte keeps orbit-mode and full-mode entries
/// (and their stats) apart: the two pipelines probe with different facet
/// populations, and letting them cross-hit would make hit/miss accounting
/// meaningless — stats are kept per mode, with stats() aggregating.
class ConstructionCache {
 public:
  /// Key and Entry are an implementation detail of the pipeline; they are
  /// public only so construction.cpp can drive the cache.
  struct Key {
    std::uint8_t model = 0;
    std::uint8_t mode = 0;  // ConstructionMode, as its underlying byte
    std::uint64_t params = 0;  // packed model params, excluding rounds
    std::vector<topology::VertexId> facet;

    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::size_t h =
          util::hash_combine(std::hash<std::uint8_t>{}(key.model),
                             std::hash<std::uint64_t>{}(key.params));
      h = util::hash_combine(h, std::hash<std::uint8_t>{}(key.mode));
      for (const topology::VertexId v : key.facet) {
        h = util::hash_combine(h, std::hash<topology::VertexId>{}(v));
      }
      return h;
    }
  };
  struct Entry {
    std::vector<detail::RoundGroup> groups;
  };

  ConstructionCache() = default;

  /// Aggregate across both modes (the historical accessor).
  ConstructionStats stats() const {
    ConstructionStats total;
    for (const ConstructionStats& s : stats_) {
      total.lookups += s.lookups;
      total.hits += s.hits;
      total.misses += s.misses;
      total.deduped += s.deduped;
    }
    return total;
  }
  /// Stats for one construction mode only.
  const ConstructionStats& stats(ConstructionMode mode) const {
    return stats_[static_cast<std::size_t>(mode)];
  }
  std::size_t size() const { return entries_.size(); }

  /// Binds the cache to a registry/arena pair on first use; throws
  /// std::logic_error if later used with a different pair (the cached ids
  /// would be meaningless there).
  void bind(const ViewRegistry& views, const topology::VertexArena& arena) {
    if (views_ == nullptr) {
      views_ = &views;
      arena_ = &arena;
      return;
    }
    if (views_ != &views || arena_ != &arena) {
      throw std::logic_error(
          "ConstructionCache: already bound to a different registry/arena");
    }
  }

  /// Counted probe: records a lookup plus a hit or miss against the mode
  /// the key carries.
  const Entry* lookup(const Key& key) {
    ConstructionStats& stats = stats_[key.mode];
    ++stats.lookups;
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats.misses;
      return nullptr;
    }
    ++stats.hits;
    return &it->second;
  }

  /// Uncounted probe (pipeline-internal re-reads).
  const Entry* peek(const Key& key) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  void store(Key key, Entry entry) {
    entries_.emplace(std::move(key), std::move(entry));
  }

  void note_dedup(ConstructionMode mode) {
    ++stats_[static_cast<std::size_t>(mode)].deduped;
  }

 private:
  const ViewRegistry* views_ = nullptr;
  const topology::VertexArena* arena_ = nullptr;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  ConstructionStats stats_[2];  // indexed by ConstructionMode
};

// ---- orbit-quotient results ----

/// One final-facet orbit: the canonical representative, its stabilizer size
/// (so |orbit| = |G| / stabilizer), and whether the orbit is dominated in
/// the full complex (its members are strict faces of some maximal facet;
/// dominated orbits contribute faces but no maximal facets).
struct OrbitRecord {
  topology::Simplex rep;
  std::uint32_t stabilizer = 1;
  bool dominated = false;
};

/// The orbit pipeline's output. `reduced` is the complex spanned by the
/// non-dominated representatives — an exact fundamental domain of the full
/// complex's maximal facets. The full complex itself is never materialized:
/// its facet count is reconstituted here via orbit–stabilizer, its f-vector
/// by orbit_full_f_vector, and (when it fits in RAM, e.g. for differential
/// tests) the complex itself by reconstitute_full.
struct OrbitComplexResult {
  topology::SimplicialComplex reduced;
  std::vector<OrbitRecord> orbits;  // first-seen order, dominated included
  SymmetryGroup group;
  /// Exact maximal-facet count of the full complex:
  /// Σ over non-dominated orbits of |G| / stabilizer.
  std::uint64_t full_facet_count = 0;
};

/// Exact f-vector of the full complex from orbit data: every face orbit of
/// the full complex has a representative among the faces of the
/// non-dominated facet representatives, so canonicalizing those faces and
/// summing orbit sizes per dimension counts all faces exactly once.
std::vector<std::size_t> orbit_full_f_vector(const OrbitComplexResult& result,
                                             ViewRegistry& views,
                                             topology::VertexArena& arena);

/// Materializes the full complex by applying every group element to every
/// non-dominated representative. Memory is proportional to the full facet
/// count — intended for differential tests and overlap verification, not
/// for beyond-the-wall sizes.
topology::SimplicialComplex reconstitute_full(const OrbitComplexResult& result,
                                              ViewRegistry& views,
                                              topology::VertexArena& arena);

// Cache-sharing entry points. The plain *_protocol_complex functions in the
// model headers are thin wrappers that run these with a throwaway cache;
// pass your own cache to amortize expansions across calls (sweeps, theorem
// batteries, repeated rounds over one input complex). `options` controls
// frontier spill; its mode must be kFull here (the orbit pipeline returns
// orbit data through the *_orbit entry points below).

topology::SimplicialComplex async_protocol_complex(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

topology::SimplicialComplex async_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

topology::SimplicialComplex sync_protocol_complex(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

topology::SimplicialComplex sync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

topology::SimplicialComplex semisync_protocol_complex(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

topology::SimplicialComplex semisync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

topology::SimplicialComplex iis_protocol_complex(
    const topology::Simplex& input, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

topology::SimplicialComplex iis_protocol_complex_over(
    const topology::SimplicialComplex& inputs, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

// Orbit-quotient entry points. Single-facet forms take G = Aut(input facet)
// (the full diagonal symmetric group for a rainbow input); _over forms take
// G = Aut(input complex). options.mode is forced to kOrbit. Output values
// (counts, f-vectors, homology of the reconstituted complex) match the full
// pipeline's wherever both can run; vertex/state ids are mode-local.

OrbitComplexResult async_protocol_complex_orbit(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

OrbitComplexResult async_protocol_complex_orbit_over(
    const topology::SimplicialComplex& inputs, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

OrbitComplexResult sync_protocol_complex_orbit(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

OrbitComplexResult sync_protocol_complex_orbit_over(
    const topology::SimplicialComplex& inputs, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

OrbitComplexResult semisync_protocol_complex_orbit(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

OrbitComplexResult semisync_protocol_complex_orbit_over(
    const topology::SimplicialComplex& inputs, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

OrbitComplexResult iis_protocol_complex_orbit(
    const topology::Simplex& input, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

OrbitComplexResult iis_protocol_complex_orbit_over(
    const topology::SimplicialComplex& inputs, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache,
    const ConstructionOptions& options = {});

}  // namespace psph::core
