#pragma once

// Parallel, memoized multi-round protocol-complex construction.
//
// The r-round complexes of every model are inductive unions: expand each
// facet of the one-round complex by another round, recursively. The naive
// recursion (kept as the *_protocol_complex_seq reference functions) is
// depth-first and serial. This module replaces it with a level-synchronous
// pipeline that is parallel across facets and memoized across repeated
// facets, while producing *bit-identical* registries, arenas, and complexes
// at any thread count:
//
//   1. DEDUPE   — the frontier (all facets awaiting one round of expansion)
//                 is deduplicated by (facet, model params). Hash-consing
//                 makes repeated facets common from round 2 on.
//   2. LOOKUP   — each unique item is looked up in the ConstructionCache;
//                 hits skip expansion entirely.
//   3. EXPAND   — cache misses are expanded concurrently via
//                 util::parallel_for. Each worker runs the shared one-round
//                 expander (round_ops.h) against a ScratchViews /
//                 ScratchArena overlay: reads resolve against the frozen
//                 canonical registries (const-thread-safe find()); newly
//                 created views and vertices intern into thread-local
//                 overlay storage with ids offset past the canonical sizes.
//   4. REMAP    — a serial pass walks the missed items in frontier order
//                 and interns each overlay's views and vertices into the
//                 canonical registries in creation order, then rewrites the
//                 produced facets through the resulting id maps. Because
//                 both the frontier order and each overlay's creation order
//                 are fixed by the model's enumeration order, canonical ids
//                 never depend on thread scheduling. (A new round's views
//                 only ever reference canonical parent states, never each
//                 other, so no heard-list rewriting is required.)
//   5. CONSUME  — final-round items merge their facets into the result via
//                 SimplicialComplex::add_facets (bulk fast lane); earlier
//                 rounds enqueue children with the failure budget reduced
//                 per adversary group.
//
// The cache entry for (facet, params-minus-rounds) is the canonical
// one-round expansion, valid for the lifetime of the bound registry/arena
// pair — re-expansion is idempotent under hash-consing, which is what makes
// memoization sound. Shared across calls, the cache also accelerates
// sweeps that revisit the same parameter region.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/round_ops.h"
#include "core/view.h"
#include "topology/arena.h"
#include "topology/complex.h"
#include "topology/simplex.h"
#include "util/hash.h"

namespace psph::core {

/// Thread-local view overlay for the scratch-expansion phase. Lookups fall
/// through to the frozen canonical registry (find(), const-thread-safe);
/// new views get local ids starting at the canonical size, in creation
/// order. The overlay never copies the base, so construction is O(1).
class ScratchViews {
 public:
  explicit ScratchViews(const ViewRegistry& base)
      : base_(base), base_size_(base.size()) {}

  int round(StateId id) const {
    return id < base_size_
               ? base_.round(id)
               : local_[static_cast<std::size_t>(id - base_size_)].round;
  }

  StateId intern_round(ProcessId pid, int round,
                       std::vector<HeardEntry> heard) {
    View v = make_round_view(pid, round, std::move(heard));
    if (const std::optional<StateId> hit = base_.find(v)) return *hit;
    const auto it = index_.find(v);
    if (it != index_.end()) return it->second;
    const StateId id = static_cast<StateId>(base_size_ + local_.size());
    index_.emplace(v, id);
    local_.push_back(std::move(v));
    return id;
  }

  std::size_t base_size() const { return base_size_; }

  /// Local views in creation order (ids base_size(), base_size()+1, ...).
  /// Leaves the overlay empty.
  std::vector<View> take_local() {
    index_.clear();
    return std::move(local_);
  }

 private:
  const ViewRegistry& base_;
  const std::size_t base_size_;
  std::vector<View> local_;
  std::unordered_map<View, StateId, ViewHash> index_;
};

/// Thread-local vertex overlay, same scheme as ScratchViews. Sound because
/// every label in the base arena references a canonical state (id below the
/// view base size), while labels minted during scratch expansion that
/// reference *local* states carry ids at or past it — the two can never
/// collide in the base index.
class ScratchArena {
 public:
  explicit ScratchArena(const topology::VertexArena& base)
      : base_(base), base_size_(base.size()) {}

  topology::ProcessId pid(topology::VertexId id) const {
    return label_of(id).pid;
  }
  StateId state(topology::VertexId id) const { return label_of(id).state; }

  topology::VertexId intern(topology::ProcessId pid, StateId state) {
    if (const std::optional<topology::VertexId> hit = base_.find(pid, state)) {
      return *hit;
    }
    const topology::VertexLabel label{pid, state};
    const auto it = index_.find(label);
    if (it != index_.end()) return it->second;
    const topology::VertexId id =
        static_cast<topology::VertexId>(base_size_ + local_.size());
    index_.emplace(label, id);
    local_.push_back(label);
    return id;
  }

  std::size_t base_size() const { return base_size_; }

  /// Local labels in creation order. Leaves the overlay empty.
  std::vector<topology::VertexLabel> take_local() {
    index_.clear();
    return std::move(local_);
  }

 private:
  const topology::VertexLabel& label_of(topology::VertexId id) const {
    return id < base_size_
               ? base_.label(id)
               : local_[static_cast<std::size_t>(id) - base_size_];
  }

  const topology::VertexArena& base_;
  const std::size_t base_size_;
  std::vector<topology::VertexLabel> local_;
  std::unordered_map<topology::VertexLabel, topology::VertexId,
                     topology::VertexLabelHash>
      index_;
};

struct ConstructionStats {
  std::uint64_t lookups = 0;  // cache probes, one per unique frontier item
  std::uint64_t hits = 0;     // probes answered from the cache
  std::uint64_t misses = 0;   // probes that required a scratch expansion
  std::uint64_t deduped = 0;  // frontier duplicates dropped before probing
};

/// Memo cache for canonical one-round expansions, keyed by
/// (model, params-minus-rounds, facet vertex ids). Entries hold canonical
/// StateId / VertexId references, so a cache is bound to the first
/// (ViewRegistry, VertexArena) pair it is used with and rejects any other.
class ConstructionCache {
 public:
  /// Key and Entry are an implementation detail of the pipeline; they are
  /// public only so construction.cpp can drive the cache.
  struct Key {
    std::uint8_t model = 0;
    std::uint64_t params = 0;  // packed model params, excluding rounds
    std::vector<topology::VertexId> facet;

    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::size_t h =
          util::hash_combine(std::hash<std::uint8_t>{}(key.model),
                             std::hash<std::uint64_t>{}(key.params));
      for (const topology::VertexId v : key.facet) {
        h = util::hash_combine(h, std::hash<topology::VertexId>{}(v));
      }
      return h;
    }
  };
  struct Entry {
    std::vector<detail::RoundGroup> groups;
  };

  ConstructionCache() = default;

  const ConstructionStats& stats() const { return stats_; }
  std::size_t size() const { return entries_.size(); }

  /// Binds the cache to a registry/arena pair on first use; throws
  /// std::logic_error if later used with a different pair (the cached ids
  /// would be meaningless there).
  void bind(const ViewRegistry& views, const topology::VertexArena& arena) {
    if (views_ == nullptr) {
      views_ = &views;
      arena_ = &arena;
      return;
    }
    if (views_ != &views || arena_ != &arena) {
      throw std::logic_error(
          "ConstructionCache: already bound to a different registry/arena");
    }
  }

  /// Counted probe: records a lookup plus a hit or miss.
  const Entry* lookup(const Key& key) {
    ++stats_.lookups;
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    return &it->second;
  }

  /// Uncounted probe (pipeline-internal re-reads).
  const Entry* peek(const Key& key) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  void store(Key key, Entry entry) {
    entries_.emplace(std::move(key), std::move(entry));
  }

  void note_dedup() { ++stats_.deduped; }

 private:
  const ViewRegistry* views_ = nullptr;
  const topology::VertexArena* arena_ = nullptr;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  ConstructionStats stats_;
};

// Cache-sharing entry points. The plain *_protocol_complex functions in the
// model headers are thin wrappers that run these with a throwaway cache;
// pass your own cache to amortize expansions across calls (sweeps, theorem
// batteries, repeated rounds over one input complex).

topology::SimplicialComplex async_protocol_complex(
    const topology::Simplex& input, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache);

topology::SimplicialComplex async_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const AsyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache);

topology::SimplicialComplex sync_protocol_complex(
    const topology::Simplex& input, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache);

topology::SimplicialComplex sync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache);

topology::SimplicialComplex semisync_protocol_complex(
    const topology::Simplex& input, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache);

topology::SimplicialComplex semisync_protocol_complex_over(
    const topology::SimplicialComplex& inputs, const SemiSyncParams& params,
    ViewRegistry& views, topology::VertexArena& arena,
    ConstructionCache& cache);

topology::SimplicialComplex iis_protocol_complex(
    const topology::Simplex& input, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache);

topology::SimplicialComplex iis_protocol_complex_over(
    const topology::SimplicialComplex& inputs, int rounds, ViewRegistry& views,
    topology::VertexArena& arena, ConstructionCache& cache);

}  // namespace psph::core
