#pragma once

// Arbitrary-precision signed integers (sign-magnitude, base 2^32).
//
// Used by the Smith-normal-form homology computation, where intermediate
// entries of integer boundary matrices can overflow any fixed-width type.
// The implementation favours clarity over asymptotic speed: schoolbook
// multiplication and long division are ample for the matrix sizes the
// protocol-complex experiments produce.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace psph::math {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor): numeric literal interop is intended
  /// Parses an optional '-' followed by decimal digits; throws on bad input.
  explicit BigInt(const std::string& decimal);

  bool is_zero() const { return magnitude_.empty(); }
  bool is_negative() const { return negative_; }
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  bool operator==(const BigInt& other) const;
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const;
  bool operator>(const BigInt& other) const { return other < *this; }
  bool operator<=(const BigInt& other) const { return !(other < *this); }
  bool operator>=(const BigInt& other) const { return !(*this < other); }

  /// Quotient and remainder in one pass; remainder has dividend's sign.
  static void div_mod(const BigInt& dividend, const BigInt& divisor,
                      BigInt* quotient, BigInt* remainder);

  /// Nonnegative greatest common divisor; gcd(0, 0) == 0.
  static BigInt gcd(BigInt a, BigInt b);

  std::string to_string() const;

  /// Value as int64 if representable; throws std::overflow_error otherwise.
  std::int64_t to_int64() const;

  /// True if the value fits in int64.
  bool fits_int64() const;

  /// Number of 32-bit limbs (0 for zero); exposed for tests and heuristics.
  std::size_t limb_count() const { return magnitude_.size(); }

  /// Little-endian 32-bit limbs of |*this| with no leading zero limb (empty
  /// for zero). Together with is_negative() this is an exact external
  /// representation, used by the binary serializers in src/store.
  const std::vector<std::uint32_t>& limbs() const { return magnitude_; }

  /// Rebuilds a value from limbs() + sign. Trailing zero limbs are trimmed;
  /// a zero magnitude ignores `negative` (there is no negative zero).
  static BigInt from_limbs(bool negative, std::vector<std::uint32_t> limbs);

 private:
  // Compares magnitudes only: -1, 0, +1.
  static int compare_magnitude(const std::vector<std::uint32_t>& a,
                               const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_magnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_magnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_magnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);

  void trim();

  bool negative_ = false;
  std::vector<std::uint32_t> magnitude_;  // little-endian limbs, no leading 0
};

std::ostream& operator<<(std::ostream& out, const BigInt& value);

}  // namespace psph::math
