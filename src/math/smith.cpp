#include "math/smith.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"
#include "util/parallel.h"

namespace psph::math {

std::vector<BigInt> SmithResult::torsion() const {
  std::vector<BigInt> result;
  const BigInt one(1);
  for (const BigInt& d : invariants) {
    if (d > one) result.push_back(d);
  }
  return result;
}

namespace {

// True if the matrix entry is zero — small helper for readability.
bool is_zero(const BigInt& v) { return v.is_zero(); }

// Finds a nonzero entry in the submatrix with top-left corner (t, t),
// preferring the smallest absolute value (keeps coefficient growth down).
bool find_pivot(const std::vector<std::vector<BigInt>>& a, std::size_t t,
                std::size_t* pivot_row, std::size_t* pivot_col) {
  bool found = false;
  BigInt best;
  for (std::size_t i = t; i < a.size(); ++i) {
    for (std::size_t j = t; j < a[i].size(); ++j) {
      if (is_zero(a[i][j])) continue;
      const BigInt magnitude = a[i][j].abs();
      if (!found || magnitude < best) {
        found = true;
        best = magnitude;
        *pivot_row = i;
        *pivot_col = j;
      }
    }
  }
  return found;
}

void swap_rows(std::vector<std::vector<BigInt>>& a, std::size_t r1,
               std::size_t r2) {
  if (r1 != r2) std::swap(a[r1], a[r2]);
}

void swap_cols(std::vector<std::vector<BigInt>>& a, std::size_t c1,
               std::size_t c2) {
  if (c1 == c2) return;
  for (auto& row : a) std::swap(row[c1], row[c2]);
}

// row[target] -= q * row[source]
void row_axpy(std::vector<std::vector<BigInt>>& a, std::size_t target,
              std::size_t source, const BigInt& q) {
  if (q.is_zero()) return;
  for (std::size_t j = 0; j < a[target].size(); ++j) {
    a[target][j] -= q * a[source][j];
  }
}

// col[target] -= q * col[source]
void col_axpy(std::vector<std::vector<BigInt>>& a, std::size_t target,
              std::size_t source, const BigInt& q) {
  if (q.is_zero()) return;
  for (auto& row : a) {
    row[target] -= q * row[source];
  }
}

}  // namespace

SmithResult smith_normal_form_dense(std::vector<std::vector<BigInt>> a) {
  SmithResult result;
  if (a.empty() || a[0].empty()) return result;
  const std::size_t rows = a.size();
  const std::size_t cols = a[0].size();
  // The trace arg carries the reduced matrix's larger side; per-dimension
  // attribution comes from the enclosing homology.snf span.
  obs::SpanTimer span("smith.snf",
                      static_cast<std::int64_t>(std::max(rows, cols)));
  const std::size_t limit = std::min(rows, cols);

  for (std::size_t t = 0; t < limit; ++t) {
    std::size_t pr = t, pc = t;
    if (!find_pivot(a, t, &pr, &pc)) break;
    swap_rows(a, t, pr);
    swap_cols(a, t, pc);

    // Phase A (sequential): gcd fix-up. Reduce only the entries the pivot
    // does NOT divide — each such reduction leaves a smaller remainder,
    // which swaps into the pivot slot, so |a[t][t]| strictly shrinks and
    // the loop terminates with the pivot dividing all of row t and
    // column t. This serializes exactly the data-dependent part of the
    // classical clearing loop.
    for (;;) {
      bool dirty = false;
      for (std::size_t i = t + 1; i < rows; ++i) {
        if (is_zero(a[i][t]) || (a[i][t] % a[t][t]).is_zero()) continue;
        const BigInt q = a[i][t] / a[t][t];
        row_axpy(a, i, t, q);
        // Remainder is smaller than the pivot; swap it up and restart.
        swap_rows(a, t, i);
        dirty = true;
      }
      for (std::size_t j = t + 1; j < cols; ++j) {
        if (is_zero(a[t][j]) || (a[t][j] % a[t][t]).is_zero()) continue;
        const BigInt q = a[t][j] / a[t][t];
        col_axpy(a, j, t, q);
        swap_cols(a, t, j);
        dirty = true;
      }
      if (!dirty) break;
    }

    // Phase B: the pivot now divides everything in its row and column, so
    // each remaining row update is an exact, independent elimination —
    // row i changes only itself and reads only row t. That makes the block
    // safe (and bit-identical) to run on the pool at any thread count; the
    // size gate keeps small submatrices on the calling thread where the
    // fork overhead would dominate.
    {
      const std::size_t tail_rows = rows - t - 1;
      const auto clear_row = [&](std::size_t offset) {
        const std::size_t i = t + 1 + offset;
        if (is_zero(a[i][t])) return;
        const BigInt q = a[i][t] / a[t][t];
        row_axpy(a, i, t, q);
      };
      if (tail_rows >= 4 && (rows - t) * (cols - t) >= 2048) {
        util::parallel_for(tail_rows, clear_row);
      } else {
        for (std::size_t offset = 0; offset < tail_rows; ++offset) {
          clear_row(offset);
        }
      }
      // With column t cleared below the pivot, zeroing row t is a pure
      // column operation that touches only row t: a[t][j] -= q * pivot
      // with q exact, i.e. the entries just vanish.
      for (std::size_t j = t + 1; j < cols; ++j) a[t][j] = BigInt(0);
    }

    // Enforce the divisibility chain: if some entry in the remaining
    // submatrix is not divisible by the pivot, fold its row into row t and
    // re-run the clearing loop (the pivot strictly shrinks).
    bool divides_all = true;
    for (std::size_t i = t + 1; i < rows && divides_all; ++i) {
      for (std::size_t j = t + 1; j < cols; ++j) {
        if (!(a[i][j] % a[t][t]).is_zero()) {
          // Add row i to row t; the offending entry lands in row t and the
          // next clearing pass reduces the pivot.
          for (std::size_t jj = 0; jj < cols; ++jj) a[t][jj] += a[i][jj];
          divides_all = false;
          break;
        }
      }
    }
    if (!divides_all) {
      --t;  // redo this step with the updated row t
      continue;
    }

    if (a[t][t].is_negative()) a[t][t] = -a[t][t];
    result.invariants.push_back(a[t][t]);
  }
  return result;
}

SmithResult smith_normal_form(const SparseMatrix& matrix) {
  std::vector<std::vector<BigInt>> dense(
      matrix.rows(), std::vector<BigInt>(matrix.cols(), BigInt(0)));
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    for (const auto& [c, v] : matrix.row(r)) dense[r][c] = BigInt(v);
  }
  return smith_normal_form_dense(std::move(dense));
}

}  // namespace psph::math
