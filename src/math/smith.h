#pragma once

// Exact Smith normal form over the integers, using arbitrary-precision
// entries so intermediate coefficient growth is harmless.
//
// For an integer matrix A this produces the invariant factors
// d_1 | d_2 | ... | d_r (all positive, r = rank(A)). Integer simplicial
// homology follows directly: for boundary operators ∂_d and ∂_{d+1},
//   H_d ≅ Z^{n_d - rank ∂_d - rank ∂_{d+1}}  ⊕  ⊕_i Z/d_i(∂_{d+1})
// where the torsion summands come from invariant factors d_i > 1.

#include <vector>

#include "math/bigint.h"
#include "math/matrix.h"

namespace psph::math {

struct SmithResult {
  /// Invariant factors d_1 | d_2 | ... | d_r, each positive.
  std::vector<BigInt> invariants;

  std::size_t rank() const { return invariants.size(); }

  /// Invariant factors greater than 1 (the torsion coefficients).
  std::vector<BigInt> torsion() const;
};

/// Computes the Smith normal form of `matrix`. Cost is roughly cubic with
/// BigInt coefficient growth; intended for the exact cross-check path, not
/// the large GF(p) fast path.
SmithResult smith_normal_form(const SparseMatrix& matrix);

/// Smith normal form of a dense BigInt matrix (the in-place workhorse).
SmithResult smith_normal_form_dense(std::vector<std::vector<BigInt>> work);

}  // namespace psph::math
