#include "math/combinatorics.h"

#include <limits>

namespace psph::math {

std::uint64_t binomial(int n, int k) {
  if (k < 0 || n < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    const std::uint64_t numerator = static_cast<std::uint64_t>(n - k + i);
    if (result > std::numeric_limits<std::uint64_t>::max() / numerator) {
      throw std::overflow_error("binomial: overflow");
    }
    result = result * numerator / static_cast<std::uint64_t>(i);
  }
  return result;
}

std::vector<std::vector<int>> combinations(int n, int k) {
  std::vector<std::vector<int>> result;
  if (k < 0 || n < 0 || k > n) return result;
  std::vector<int> combo(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) combo[static_cast<std::size_t>(i)] = i;
  for (;;) {
    result.push_back(combo);
    // Advance to the next combination in lexicographic order.
    int i = k - 1;
    while (i >= 0 && combo[static_cast<std::size_t>(i)] == n - k + i) --i;
    if (i < 0) break;
    ++combo[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      combo[static_cast<std::size_t>(j)] = combo[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  return result;
}

void for_each_product(
    const std::vector<std::size_t>& sizes,
    const std::function<void(const std::vector<std::size_t>&)>& visit) {
  for (std::size_t size : sizes) {
    if (size == 0) return;
  }
  std::vector<std::size_t> odometer(sizes.size(), 0);
  for (;;) {
    visit(odometer);
    std::size_t position = sizes.size();
    while (position > 0) {
      --position;
      if (++odometer[position] < sizes[position]) break;
      odometer[position] = 0;
      if (position == 0) return;
    }
    if (sizes.empty()) return;  // single visit for the empty product
  }
}

}  // namespace psph::math
