#pragma once

// Arithmetic in the prime field GF(p) for p < 2^31, used by the fast rank
// computation behind Betti numbers. Rank over GF(p) equals rank over Q
// unless p divides a torsion coefficient; the homology driver cross-checks
// against exact Smith normal form on small instances.

#include <cstdint>
#include <stdexcept>

namespace psph::math {

/// Default field: the Mersenne prime 2^31 - 1, far larger than any torsion
/// that the complexes in this library exhibit.
inline constexpr std::int64_t kDefaultPrime = 2147483647;

/// Normalizes value into [0, p).
constexpr std::int64_t mod_normalize(std::int64_t value, std::int64_t p) {
  const std::int64_t r = value % p;
  return r < 0 ? r + p : r;
}

constexpr std::int64_t mod_add(std::int64_t a, std::int64_t b, std::int64_t p) {
  const std::int64_t s = a + b;
  return s >= p ? s - p : s;
}

constexpr std::int64_t mod_sub(std::int64_t a, std::int64_t b, std::int64_t p) {
  const std::int64_t d = a - b;
  return d < 0 ? d + p : d;
}

constexpr std::int64_t mod_mul(std::int64_t a, std::int64_t b, std::int64_t p) {
  // Promote through unsigned 128-bit to avoid overflow for p < 2^63 inputs.
  return static_cast<std::int64_t>(
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b) %
      static_cast<unsigned __int128>(p));
}

constexpr std::int64_t mod_pow(std::int64_t base, std::int64_t exponent,
                               std::int64_t p) {
  std::int64_t result = 1 % p;
  std::int64_t acc = mod_normalize(base, p);
  while (exponent > 0) {
    if (exponent & 1) result = mod_mul(result, acc, p);
    acc = mod_mul(acc, acc, p);
    exponent >>= 1;
  }
  return result;
}

/// Multiplicative inverse via Fermat's little theorem; throws on zero.
inline std::int64_t mod_inverse(std::int64_t value, std::int64_t p) {
  const std::int64_t v = mod_normalize(value, p);
  if (v == 0) throw std::domain_error("mod_inverse: zero has no inverse");
  return mod_pow(v, p - 2, p);
}

}  // namespace psph::math
