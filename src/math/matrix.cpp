#include "math/matrix.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>

#include "math/modular.h"
#include "math/simd.h"

namespace psph::math {

namespace {

constexpr std::size_t kNoPivot = static_cast<std::size_t>(-1);
constexpr std::uint32_t kNoPivot32 = static_cast<std::uint32_t>(-1);

// Iterator to the entry with column c, or end() if absent.
SparseMatrix::Row::iterator find_col(SparseMatrix::Row& row, std::size_t c) {
  const auto it = std::lower_bound(
      row.begin(), row.end(), c,
      [](const SparseMatrix::Entry& e, std::size_t col) {
        return e.first < col;
      });
  return (it != row.end() && it->first == c) ? it : row.end();
}

}  // namespace

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), entries_(rows) {}

void SparseMatrix::set(std::size_t r, std::size_t c, std::int64_t value) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("SparseMatrix::set");
  Row& row = entries_[r];
  if (row.empty() || row.back().first < c) {
    if (value != 0) row.emplace_back(c, value);
    return;
  }
  const auto it = std::lower_bound(
      row.begin(), row.end(), c,
      [](const Entry& e, std::size_t col) { return e.first < col; });
  if (it != row.end() && it->first == c) {
    if (value == 0) {
      row.erase(it);
    } else {
      it->second = value;
    }
  } else if (value != 0) {
    row.insert(it, Entry(c, value));
  }
}

void SparseMatrix::add(std::size_t r, std::size_t c, std::int64_t delta) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("SparseMatrix::add");
  Row& row = entries_[r];
  const auto it = find_col(row, c);
  if (it != row.end()) {
    it->second += delta;
    if (it->second == 0) row.erase(it);
  } else if (delta != 0) {
    set(r, c, delta);
  }
}

std::int64_t SparseMatrix::get(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("SparseMatrix::get");
  const Row& row = entries_[r];
  const auto it = std::lower_bound(
      row.begin(), row.end(), c,
      [](const Entry& e, std::size_t col) { return e.first < col; });
  return (it != row.end() && it->first == c) ? it->second : 0;
}

std::size_t SparseMatrix::nonzeros() const {
  std::size_t count = 0;
  for (const Row& row : entries_) count += row.size();
  return count;
}

std::vector<std::vector<std::int64_t>> SparseMatrix::to_dense() const {
  std::vector<std::vector<std::int64_t>> dense(
      rows_, std::vector<std::int64_t>(cols_, 0));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (const auto& [c, v] : entries_[r]) dense[r][c] = v;
  }
  return dense;
}

std::size_t SparseMatrix::rank_mod_p(std::int64_t p) const {
  if (p < 2) throw std::invalid_argument("rank_mod_p: p must be prime >= 2");
  if (p == 2) return rank_mod_2();

  // Working copy with entries normalized into [0, p); empty rows dropped.
  std::vector<Row> work;
  work.reserve(entries_.size());
  for (const Row& row : entries_) {
    Row reduced;
    reduced.reserve(row.size());
    for (const auto& [c, v] : row) {
      const std::int64_t m = mod_normalize(v, p);
      if (m != 0) reduced.emplace_back(c, m);
    }
    if (!reduced.empty()) work.push_back(std::move(reduced));
  }

  // pivot_of[c]: index in `pivot_rows` of the pivot whose leading column is
  // c. Pivot rows are normalized so their leading coefficient is 1.
  std::vector<std::size_t> pivot_of(cols_, kNoPivot);
  std::vector<Row> pivot_rows;
  pivot_rows.reserve(std::min(rows_, cols_));
  Row scratch;

  std::size_t rank = 0;
  for (Row& row : work) {
    // Cancel the leading entry against the recorded pivot for its column
    // until none matches; the leading column strictly increases each pass,
    // so the loop terminates. Deterministic: rows are processed in storage
    // order with a fixed pivot set, independent of any threading above.
    while (!row.empty()) {
      const std::size_t pivot = pivot_of[row.front().first];
      if (pivot == kNoPivot) break;
      const Row& pivot_row = pivot_rows[pivot];
      const std::int64_t factor = row.front().second;
      // row -= factor * pivot_row, merged into scratch (leading cancels).
      scratch.clear();
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < row.size() && j < pivot_row.size()) {
        if (row[i].first < pivot_row[j].first) {
          scratch.push_back(row[i]);
          ++i;
        } else if (row[i].first > pivot_row[j].first) {
          const std::int64_t v =
              mod_sub(0, mod_mul(factor, pivot_row[j].second, p), p);
          if (v != 0) scratch.emplace_back(pivot_row[j].first, v);
          ++j;
        } else {
          const std::int64_t v = mod_sub(
              row[i].second, mod_mul(factor, pivot_row[j].second, p), p);
          if (v != 0) scratch.emplace_back(row[i].first, v);
          ++i;
          ++j;
        }
      }
      for (; i < row.size(); ++i) scratch.push_back(row[i]);
      for (; j < pivot_row.size(); ++j) {
        const std::int64_t v =
            mod_sub(0, mod_mul(factor, pivot_row[j].second, p), p);
        if (v != 0) scratch.emplace_back(pivot_row[j].first, v);
      }
      row.swap(scratch);
    }
    if (row.empty()) continue;
    const std::int64_t inverse = mod_inverse(row.front().second, p);
    for (auto& [c, v] : row) v = mod_mul(v, inverse, p);
    pivot_of[row.front().first] = pivot_rows.size();
    pivot_rows.push_back(std::move(row));
    ++rank;
  }
  return rank;
}

std::size_t SparseMatrix::rank_mod_2() const {
  const std::size_t words = (cols_ + 63) / 64;
  if (words == 0) return 0;

  // Rows as bitsets in one contiguous 64-byte-aligned arena: over GF(2)
  // elimination is a word-wise XOR, which runs through the runtime-
  // dispatched SIMD kernel (simd.h). The stride is padded to a whole
  // cache line so every row start is aligned and every XOR span is a
  // multiple of the kernel's 8-word block.
  const std::size_t stride = (words + 7) & ~std::size_t{7};
  std::size_t nonzero_rows = 0;
  for (const Row& row : entries_) {
    for (const auto& [c, v] : row) {
      (void)c;
      if ((v & 1) != 0) {
        ++nonzero_rows;
        break;
      }
    }
  }
  if (nonzero_rows == 0) return 0;

  struct FreeDeleter {
    void operator()(std::uint64_t* p) const { std::free(p); }
  };
  const std::size_t arena_bytes = nonzero_rows * stride * sizeof(std::uint64_t);
  std::unique_ptr<std::uint64_t[], FreeDeleter> arena(
      static_cast<std::uint64_t*>(std::aligned_alloc(64, arena_bytes)));
  if (!arena) throw std::bad_alloc();
  std::memset(arena.get(), 0, arena_bytes);

  // Fill the arena and record each row's population count; processing rows
  // sparsest-first keeps the recorded pivots low-weight, which both shrinks
  // the XOR cascade and mirrors the classical low-fill pivoting heuristic.
  // The (weight, slot) sort key is total, so the elimination order — and
  // the intermediate bit patterns — are identical at every dispatch level
  // and thread count.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;  // weight, slot
  order.reserve(nonzero_rows);
  std::size_t slot = 0;
  for (const Row& row : entries_) {
    std::uint64_t* bits = arena.get() + slot * stride;
    std::uint32_t weight = 0;
    for (const auto& [c, v] : row) {
      if ((v & 1) != 0) {
        bits[c >> 6] ^= std::uint64_t{1} << (c & 63);
        ++weight;
      }
    }
    if (weight > 0) {
      order.emplace_back(weight, static_cast<std::uint32_t>(slot));
      ++slot;
    }
  }
  std::sort(order.begin(), order.end());

  const SimdLevel level = simd_level();
  std::vector<std::uint32_t> pivot_of(cols_, kNoPivot32);

  std::size_t rank = 0;
  for (const auto& [weight, s] : order) {
    std::uint64_t* bits = arena.get() + s * stride;
    std::size_t w = 0;
    for (;;) {
      while (w < words && bits[w] == 0) ++w;
      if (w == words) break;  // row became zero: dependent
      const std::size_t lead =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(bits[w]));
      const std::uint32_t pivot = pivot_of[lead];
      if (pivot == kNoPivot32) {
        pivot_of[lead] = s;
        ++rank;
        break;
      }
      // XOR from the cache line holding the leading word: everything
      // before it is already zero in both rows.
      const std::size_t off = w & ~std::size_t{7};
      xor_words(bits + off, arena.get() + pivot * stride + off, stride - off,
                level);
    }
  }
  return rank;
}

}  // namespace psph::math
