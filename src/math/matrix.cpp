#include "math/matrix.h"

#include <algorithm>
#include <stdexcept>

#include "math/modular.h"

namespace psph::math {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), entries_(rows) {}

void SparseMatrix::set(std::size_t r, std::size_t c, std::int64_t value) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("SparseMatrix::set");
  if (value == 0) {
    entries_[r].erase(c);
  } else {
    entries_[r][c] = value;
  }
}

void SparseMatrix::add(std::size_t r, std::size_t c, std::int64_t delta) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("SparseMatrix::add");
  auto [it, inserted] = entries_[r].emplace(c, delta);
  if (!inserted) {
    it->second += delta;
    if (it->second == 0) entries_[r].erase(it);
  } else if (delta == 0) {
    entries_[r].erase(it);
  }
}

std::int64_t SparseMatrix::get(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("SparseMatrix::get");
  const auto it = entries_[r].find(c);
  return it == entries_[r].end() ? 0 : it->second;
}

std::size_t SparseMatrix::nonzeros() const {
  std::size_t count = 0;
  for (const auto& row : entries_) count += row.size();
  return count;
}

std::vector<std::vector<std::int64_t>> SparseMatrix::to_dense() const {
  std::vector<std::vector<std::int64_t>> dense(
      rows_, std::vector<std::int64_t>(cols_, 0));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (const auto& [c, v] : entries_[r]) dense[r][c] = v;
  }
  return dense;
}

std::size_t SparseMatrix::rank_mod_p(std::int64_t p) const {
  if (p < 2) throw std::invalid_argument("rank_mod_p: p must be prime >= 2");
  // Column-pivot elimination over sparse rows reduced mod p. Rows that become
  // empty are dropped; pivot columns are chosen as each remaining row's
  // leading column, preferring sparse rows to limit fill-in.
  std::vector<std::map<std::size_t, std::int64_t>> work;
  work.reserve(entries_.size());
  for (const auto& row : entries_) {
    std::map<std::size_t, std::int64_t> reduced;
    for (const auto& [c, v] : row) {
      const std::int64_t m = mod_normalize(v, p);
      if (m != 0) reduced.emplace(c, m);
    }
    if (!reduced.empty()) work.push_back(std::move(reduced));
  }

  // pivot column -> index in `pivots` storage
  std::vector<std::pair<std::size_t, std::map<std::size_t, std::int64_t>>>
      pivots;

  std::size_t rank = 0;
  for (auto& row : work) {
    // Reduce `row` against all existing pivots (they are kept normalized so
    // their leading coefficient is 1).
    for (const auto& [pivot_col, pivot_row] : pivots) {
      const auto it = row.find(pivot_col);
      if (it == row.end()) continue;
      const std::int64_t factor = it->second;
      for (const auto& [c, v] : pivot_row) {
        auto [cell, inserted] = row.emplace(c, 0);
        cell->second = mod_sub(cell->second, mod_mul(factor, v, p), p);
        if (cell->second == 0) row.erase(cell);
        (void)inserted;
      }
    }
    if (row.empty()) continue;
    // Normalize so the leading coefficient is 1 and record the pivot.
    const std::size_t lead_col = row.begin()->first;
    const std::int64_t inv = mod_inverse(row.begin()->second, p);
    for (auto& [c, v] : row) v = mod_mul(v, inv, p);
    pivots.emplace_back(lead_col, std::move(row));
    // Keep pivots sorted by column so reduction always eliminates leading
    // entries left to right.
    std::sort(pivots.begin(), pivots.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    ++rank;
  }
  return rank;
}

}  // namespace psph::math
