#pragma once

// Subset and tuple enumeration used throughout the pseudosphere
// constructions: power sets 2^U, the restricted power set 2^U_{>=k} from
// Lemma 11, lexicographic orders on process sets (Section 7), and cartesian
// products of value sets (Definition 3).

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

namespace psph::math {

/// Binomial coefficient C(n, k) as uint64; throws on overflow.
std::uint64_t binomial(int n, int k);

/// All subsets of `items`, in order of increasing size, ties broken
/// lexicographically by element position. Includes the empty set.
template <typename T>
std::vector<std::vector<T>> all_subsets(const std::vector<T>& items);

/// All subsets of `items` with size in [min_size, max_size], ordered by size
/// then lexicographically by position.
template <typename T>
std::vector<std::vector<T>> subsets_with_size_between(
    const std::vector<T>& items, int min_size, int max_size);

/// Calls `visit` for each element of the cartesian product of the given
/// choice lists; the argument vector holds one chosen index per position.
/// Iterates in odometer order (last position varies fastest). Visits nothing
/// if any list is empty.
void for_each_product(const std::vector<std::size_t>& sizes,
                      const std::function<void(const std::vector<std::size_t>&)>& visit);

/// All k-element subsets of {0,...,n-1}, lexicographic.
std::vector<std::vector<int>> combinations(int n, int k);

// ---- template implementations -------------------------------------------

template <typename T>
std::vector<std::vector<T>> subsets_with_size_between(
    const std::vector<T>& items, int min_size, int max_size) {
  const int n = static_cast<int>(items.size());
  if (min_size < 0) min_size = 0;
  if (max_size > n) max_size = n;
  std::vector<std::vector<T>> result;
  for (int k = min_size; k <= max_size; ++k) {
    for (const std::vector<int>& combo : combinations(n, k)) {
      std::vector<T> subset;
      subset.reserve(combo.size());
      for (int index : combo) subset.push_back(items[static_cast<std::size_t>(index)]);
      result.push_back(std::move(subset));
    }
  }
  return result;
}

template <typename T>
std::vector<std::vector<T>> all_subsets(const std::vector<T>& items) {
  return subsets_with_size_between(items, 0, static_cast<int>(items.size()));
}

}  // namespace psph::math
