#pragma once

// Runtime-dispatched SIMD kernels for the GF(2) elimination path.
//
// The GF(2) rank computation spends essentially all of its time XORing
// 64-byte-aligned bitset rows into each other. The kernels here are
// compiled per ISA with GCC target attributes, so the library builds with
// the portable baseline flags and still uses AVX2/AVX-512 when the CPU at
// runtime has them. Dispatch is resolved once from CPUID and the PSPH_SIMD
// environment variable:
//
//   PSPH_SIMD=0 | scalar   force the portable word-at-a-time kernel
//   PSPH_SIMD=1 | avx2     cap at AVX2
//   PSPH_SIMD=2 | avx512   cap at AVX-512
//   (unset)                use the best level the CPU supports
//
// Requested levels are clamped to hardware support, so PSPH_SIMD=2 on an
// AVX2-only machine runs AVX2, and any setting on non-x86 runs scalar.
// Every level computes bit-identical results — the choice is observable
// only through timing (tests/parallel_test.cpp holds us to that).

#include <cstddef>
#include <cstdint>

namespace psph::math {

enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Best level the running CPU supports (kScalar on non-x86 builds).
SimdLevel max_supported_simd_level();

/// The active dispatch level: PSPH_SIMD clamped to hardware support,
/// resolved once on first use.
SimdLevel simd_level();

/// Overrides the active level (clamped to hardware support). Returns the
/// level actually installed. Benchmarks and differential tests use this to
/// pin a kernel; production code should leave the resolved default alone.
SimdLevel set_simd_level(SimdLevel level);

/// Human-readable name ("scalar", "avx2", "avx512") for logs and bench
/// context stamps.
const char* simd_level_name(SimdLevel level);

/// dst[i] ^= src[i] for i in [0, n) using the given kernel. Requires both
/// pointers 64-byte aligned and n a multiple of 8 words (one cache line) —
/// the bitset arena in SparseMatrix::rank_mod_2 guarantees both.
void xor_words(std::uint64_t* dst, const std::uint64_t* src, std::size_t n,
               SimdLevel level);

/// Convenience overload using the active dispatch level.
inline void xor_words(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  xor_words(dst, src, n, simd_level());
}

}  // namespace psph::math
