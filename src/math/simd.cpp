#include "math/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define PSPH_X86_64 1
#endif

namespace psph::math {

namespace {

#if PSPH_X86_64

// Kernels are compiled for their ISA via target attributes so the
// translation unit itself builds with baseline flags; callers must go
// through the dispatch below, which only selects what CPUID reports.

__attribute__((target("avx2"))) void xor_words_avx2(std::uint64_t* dst,
                                                    const std::uint64_t* src,
                                                    std::size_t n) {
  for (std::size_t i = 0; i < n; i += 8) {
    __m256i a0 = _mm256_load_si256(reinterpret_cast<__m256i*>(dst + i));
    __m256i a1 = _mm256_load_si256(reinterpret_cast<__m256i*>(dst + i + 4));
    const __m256i b0 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dst + i),
                       _mm256_xor_si256(a0, b0));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                       _mm256_xor_si256(a1, b1));
  }
}

__attribute__((target("avx512f"))) void xor_words_avx512(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; i += 8) {
    const __m512i a =
        _mm512_load_si512(reinterpret_cast<const void*>(dst + i));
    const __m512i b =
        _mm512_load_si512(reinterpret_cast<const void*>(src + i));
    _mm512_store_si512(reinterpret_cast<void*>(dst + i),
                       _mm512_xor_si512(a, b));
  }
}

#endif  // PSPH_X86_64

void xor_words_scalar(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

SimdLevel clamp_to_supported(SimdLevel level) {
  const int requested = static_cast<int>(level);
  const int ceiling = static_cast<int>(max_supported_simd_level());
  const int clamped = requested < 0 ? 0 : requested;
  return static_cast<SimdLevel>(clamped > ceiling ? ceiling : clamped);
}

SimdLevel level_from_env() {
  const char* env = std::getenv("PSPH_SIMD");
  if (env == nullptr || *env == '\0') return max_supported_simd_level();
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "scalar") == 0 ||
      std::strcmp(env, "off") == 0) {
    return SimdLevel::kScalar;
  }
  if (std::strcmp(env, "1") == 0 || std::strcmp(env, "avx2") == 0) {
    return clamp_to_supported(SimdLevel::kAvx2);
  }
  if (std::strcmp(env, "2") == 0 || std::strcmp(env, "avx512") == 0) {
    return clamp_to_supported(SimdLevel::kAvx512);
  }
  return max_supported_simd_level();
}

// -1 = unresolved; otherwise a SimdLevel value.
std::atomic<int> g_level{-1};

}  // namespace

SimdLevel max_supported_simd_level() {
#if PSPH_X86_64
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel simd_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    // Benign race: every thread resolves to the same value.
    level = static_cast<int>(level_from_env());
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

SimdLevel set_simd_level(SimdLevel level) {
  const SimdLevel installed = clamp_to_supported(level);
  g_level.store(static_cast<int>(installed), std::memory_order_relaxed);
  return installed;
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
    default:
      return "scalar";
  }
}

void xor_words(std::uint64_t* dst, const std::uint64_t* src, std::size_t n,
               SimdLevel level) {
#if PSPH_X86_64
  if (level == SimdLevel::kAvx512) {
    xor_words_avx512(dst, src, n);
    return;
  }
  if (level == SimdLevel::kAvx2) {
    xor_words_avx2(dst, src, n);
    return;
  }
#else
  (void)level;
#endif
  xor_words_scalar(dst, src, n);
}

}  // namespace psph::math
