#include "math/bigint.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace psph::math {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Convert through uint64 to handle INT64_MIN without overflow.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    magnitude_.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffULL));
    magnitude >>= 32;
  }
}

BigInt::BigInt(const std::string& decimal) {
  std::size_t index = 0;
  bool negative = false;
  if (index < decimal.size() && (decimal[index] == '-' || decimal[index] == '+')) {
    negative = decimal[index] == '-';
    ++index;
  }
  if (index >= decimal.size()) {
    throw std::invalid_argument("BigInt: empty numeral");
  }
  BigInt result;
  const BigInt ten(10);
  for (; index < decimal.size(); ++index) {
    const char c = decimal[index];
    if (c < '0' || c > '9') {
      throw std::invalid_argument("BigInt: bad digit in numeral");
    }
    result = result * ten + BigInt(c - '0');
  }
  result.negative_ = negative && !result.is_zero();
  *this = std::move(result);
}

void BigInt::trim() {
  while (!magnitude_.empty() && magnitude_.back() == 0) magnitude_.pop_back();
  if (magnitude_.empty()) negative_ = false;
}

BigInt BigInt::from_limbs(bool negative, std::vector<std::uint32_t> limbs) {
  BigInt value;
  value.negative_ = negative;
  value.magnitude_ = std::move(limbs);
  value.trim();
  return value;
}

int BigInt::compare_magnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::add_magnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result;
  result.reserve(std::max(a.size(), b.size()) + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    std::uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    result.push_back(static_cast<std::uint32_t>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry != 0) result.push_back(static_cast<std::uint32_t>(carry));
  return result;
}

std::vector<std::uint32_t> BigInt::sub_magnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result;
  result.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= static_cast<std::int64_t>(b[i]);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

std::vector<std::uint32_t> BigInt::mul_magnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> result(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cell = static_cast<std::uint64_t>(a[i]) * b[j] +
                           result[i + j] + carry;
      result[i + j] = static_cast<std::uint32_t>(cell & 0xffffffffULL);
      carry = cell >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cell = result[k] + carry;
      result[k] = static_cast<std::uint32_t>(cell & 0xffffffffULL);
      carry = cell >> 32;
      ++k;
    }
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt result;
  if (negative_ == other.negative_) {
    result.magnitude_ = add_magnitude(magnitude_, other.magnitude_);
    result.negative_ = negative_;
  } else {
    const int cmp = compare_magnitude(magnitude_, other.magnitude_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      result.magnitude_ = sub_magnitude(magnitude_, other.magnitude_);
      result.negative_ = negative_;
    } else {
      result.magnitude_ = sub_magnitude(other.magnitude_, magnitude_);
      result.negative_ = other.negative_;
    }
  }
  result.trim();
  return result;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt result;
  result.magnitude_ = mul_magnitude(magnitude_, other.magnitude_);
  result.negative_ = !result.magnitude_.empty() && (negative_ != other.negative_);
  return result;
}

void BigInt::div_mod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder) {
  if (divisor.is_zero()) throw std::domain_error("BigInt: division by zero");
  // Long division on magnitudes, bit by bit from the top. O(bits * limbs) —
  // fine for homology-sized matrices.
  const std::vector<std::uint32_t>& num = dividend.magnitude_;
  BigInt q, r;
  const BigInt divisor_abs = divisor.abs();
  for (std::size_t limb = num.size(); limb-- > 0;) {
    for (int bit = 31; bit >= 0; --bit) {
      // r = r*2 + next bit
      r.magnitude_ = add_magnitude(r.magnitude_, r.magnitude_);
      if ((num[limb] >> bit) & 1U) {
        r.magnitude_ = add_magnitude(r.magnitude_, {1});
      }
      r.trim();
      // q = q*2 (+1 if r >= |divisor|)
      q.magnitude_ = add_magnitude(q.magnitude_, q.magnitude_);
      if (compare_magnitude(r.magnitude_, divisor_abs.magnitude_) >= 0) {
        r.magnitude_ = sub_magnitude(r.magnitude_, divisor_abs.magnitude_);
        q.magnitude_ = add_magnitude(q.magnitude_, {1});
      }
      q.trim();
    }
  }
  q.negative_ = !q.magnitude_.empty() && (dividend.negative_ != divisor.negative_);
  r.negative_ = !r.magnitude_.empty() && dividend.negative_;
  q.trim();
  r.trim();
  if (quotient != nullptr) *quotient = std::move(q);
  if (remainder != nullptr) *remainder = std::move(r);
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt quotient;
  div_mod(*this, other, &quotient, nullptr);
  return quotient;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt remainder;
  div_mod(*this, other, nullptr, &remainder);
  return remainder;
}

bool BigInt::operator==(const BigInt& other) const {
  return negative_ == other.negative_ && magnitude_ == other.magnitude_;
}

bool BigInt::operator<(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_;
  const int cmp = compare_magnitude(magnitude_, other.magnitude_);
  return negative_ ? cmp > 0 : cmp < 0;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Repeated division by 10^9 to peel decimal chunks.
  std::vector<std::uint32_t> work = magnitude_;
  std::string digits;
  while (!work.empty()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const std::uint64_t cell = (remainder << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cell / 1000000000ULL);
      remainder = cell % 1000000000ULL;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

bool BigInt::fits_int64() const {
  if (magnitude_.size() > 2) return false;
  std::uint64_t magnitude = 0;
  if (magnitude_.size() >= 1) magnitude |= magnitude_[0];
  if (magnitude_.size() == 2) {
    magnitude |= static_cast<std::uint64_t>(magnitude_[1]) << 32;
  }
  if (negative_) return magnitude <= (1ULL << 63);
  return magnitude < (1ULL << 63);
}

std::int64_t BigInt::to_int64() const {
  if (!fits_int64()) throw std::overflow_error("BigInt: does not fit int64");
  std::uint64_t magnitude = 0;
  if (magnitude_.size() >= 1) magnitude |= magnitude_[0];
  if (magnitude_.size() == 2) {
    magnitude |= static_cast<std::uint64_t>(magnitude_[1]) << 32;
  }
  if (negative_) {
    // Negating via unsigned arithmetic handles INT64_MIN without overflow.
    return static_cast<std::int64_t>(~magnitude + 1);
  }
  return static_cast<std::int64_t>(magnitude);
}

std::ostream& operator<<(std::ostream& out, const BigInt& value) {
  return out << value.to_string();
}

}  // namespace psph::math
