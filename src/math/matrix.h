#pragma once

// Sparse integer matrices in row-major flat-row form. These hold
// simplicial boundary operators, whose entries start in {-1, 0, +1}; the
// Smith normal form reduction mutates entries, so the value type is int64
// here and BigInt in the exact SNF path (see smith.h).

#include <cstdint>
#include <utility>
#include <vector>

namespace psph::math {

/// A sparse matrix with int64 entries. Each row is a flat vector of
/// (column, value) pairs sorted by column; zero values are never stored.
/// Flat rows keep the GF(p) elimination inner loop allocation-free: row
/// updates are two-pointer merges into a reused scratch buffer instead of
/// node-by-node mutation of a std::map.
class SparseMatrix {
 public:
  using Entry = std::pair<std::size_t, std::int64_t>;
  using Row = std::vector<Entry>;

  SparseMatrix() = default;
  SparseMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Sets entry (r, c); storing 0 erases it. Appending in increasing
  /// column order per row is O(1).
  void set(std::size_t r, std::size_t c, std::int64_t value);

  /// Reserves capacity for `n` entries in row r (builders that know their
  /// fill pattern, e.g. boundary-matrix assembly, avoid growth churn).
  void reserve_row(std::size_t r, std::size_t n) { entries_[r].reserve(n); }

  /// Adds delta to entry (r, c).
  void add(std::size_t r, std::size_t c, std::int64_t delta);

  std::int64_t get(std::size_t r, std::size_t c) const;

  /// Number of stored nonzero entries.
  std::size_t nonzeros() const;

  const Row& row(std::size_t r) const { return entries_[r]; }

  /// Dense copy (tests and small exact computations only).
  std::vector<std::vector<std::int64_t>> to_dense() const;

  /// Matrix rank over GF(p) via sparse Gaussian elimination on a working
  /// copy; p == 2 takes a dense-bitset XOR path. Does not modify *this.
  std::size_t rank_mod_p(std::int64_t p) const;

 private:
  std::size_t rank_mod_2() const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Row> entries_;
};

}  // namespace psph::math
