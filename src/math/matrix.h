#pragma once

// Sparse integer matrices in row-major triplet/row-list form. These hold
// simplicial boundary operators, whose entries start in {-1, 0, +1}; the
// Smith normal form reduction mutates entries, so the value type is int64
// here and BigInt in the exact SNF path (see smith.h).

#include <cstdint>
#include <map>
#include <vector>

namespace psph::math {

/// A sparse matrix with int64 entries. Rows are kept as sorted
/// (column -> value) maps; zero values are never stored.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Sets entry (r, c); storing 0 erases it.
  void set(std::size_t r, std::size_t c, std::int64_t value);

  /// Adds delta to entry (r, c).
  void add(std::size_t r, std::size_t c, std::int64_t delta);

  std::int64_t get(std::size_t r, std::size_t c) const;

  /// Number of stored nonzero entries.
  std::size_t nonzeros() const;

  const std::map<std::size_t, std::int64_t>& row(std::size_t r) const {
    return entries_[r];
  }

  /// Dense copy (tests and small exact computations only).
  std::vector<std::vector<std::int64_t>> to_dense() const;

  /// Matrix rank over GF(p) via fraction-free-ish Gaussian elimination on a
  /// working copy. Does not modify *this.
  std::size_t rank_mod_p(std::int64_t p) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::map<std::size_t, std::int64_t>> entries_;
};

}  // namespace psph::math
