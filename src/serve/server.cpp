#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "obs/obs.h"
#include "serve/queries.h"
#include "serve/wire.h"
#include "util/cancel.h"
#include "util/parallel.h"

namespace psph::serve {

namespace {

using Clock = std::chrono::steady_clock;

obs::Counter g_requests("serve.requests");
obs::Counter g_coalesced("serve.coalesced");
obs::Counter g_overloaded("serve.overloaded");
obs::Counter g_deadline("serve.deadline_exceeded");
obs::Gauge g_queue_depth("serve.queue_depth");

Clock::time_point effective_deadline(const Query& q,
                                     std::int64_t default_deadline_ms,
                                     Clock::time_point now) {
  const std::int64_t ms =
      q.deadline_ms != 0 ? q.deadline_ms : default_deadline_ms;
  if (ms == 0) return Clock::time_point::max();
  return now + std::chrono::milliseconds(ms);
}

}  // namespace

void Server::Connection::close_fd() {
  std::lock_guard<std::mutex> lock(write_mutex);
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) throw std::runtime_error("serve: start() called twice");
  started_ = true;
  if (!options_.store_dir.empty()) {
    store_ = std::make_unique<store::ResultStore>(options_.store_dir,
                                                  options_.fs);
  }
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("serve: pipe() failed");
  }
  listen_fd_ = listen_unix(options_.socket_path, options_.listen_backlog);
  listener_ = std::thread([this] { listener_loop(); });
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void Server::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    stop_signalled_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    paused_ = false;  // a paused dispatcher must still observe the stop
  }
  queue_cv_.notify_all();
  // Wake the listener's poll(), then join it so no new connections appear.
  const char byte = 'x';
  (void)!::write(wake_pipe_[1], &byte, 1);
  if (listener_.joinable()) listener_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  // Let the in-flight batch finish delivering responses before the
  // connections go away: join the dispatcher first.
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const ConnPtr& conn : conns_) {
      std::lock_guard<std::mutex> write_lock(conn->write_mutex);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (std::thread& thread : conn_threads_) {
    if (thread.joinable()) thread.join();
  }
  for (const ConnPtr& conn : conns_) conn->close_fd();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  shutdown_cv_.notify_all();
}

bool Server::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  return shutdown_requested_;
}

bool Server::wait_for_shutdown(std::int64_t poll_ms) {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  const auto ready = [this] { return shutdown_requested_ || stop_signalled_; };
  if (poll_ms <= 0) {
    shutdown_cv_.wait(lock, ready);
  } else {
    shutdown_cv_.wait_for(lock, std::chrono::milliseconds(poll_ms), ready);
  }
  return shutdown_requested_;
}

void Server::pause_dispatch() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  paused_ = true;
}

void Server::resume_dispatch() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void Server::listener_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { connection_loop(conn); });
  }
}

void Server::connection_loop(ConnPtr conn) {
  while (true) {
    std::string payload;
    FrameStatus status;
    try {
      status = read_frame(conn->fd, &payload);
    } catch (const WireError& error) {
      // The stream is damaged (torn/oversized frame): report once, close.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      send_json(conn, make_error_response(0, {"bad_frame", error.what()}));
      break;
    }
    if (status == FrameStatus::kClosed) break;

    Json request;
    try {
      request = Json::parse(payload);
    } catch (const JsonError& error) {
      // Framing is intact, only this payload is garbage: the connection
      // can keep serving.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      send_json(conn, make_error_response(0, {"bad_frame", error.what()}));
      continue;
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    g_requests.add();
    const ParsedRequest parsed = parse_request(request);
    if (parsed.error.has_value()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      send_json(conn, make_error_response(parsed.id, *parsed.error));
      continue;
    }
    if (parsed.is_admin) {
      handle_admin(conn, parsed);
      if (parsed.kind == "shutdown") break;
      continue;
    }

    Pending pending;
    pending.conn = conn;
    pending.id = parsed.id;
    pending.query = *parsed.query;
    pending.key_hex = cache_key(pending.query).key().hex();
    pending.enqueued = Clock::now();
    pending.deadline = effective_deadline(
        pending.query, options_.default_deadline_ms, pending.enqueued);
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() < options_.queue_limit) {
        queue_.push_back(std::move(pending));
        g_queue_depth.set(static_cast<double>(queue_.size()));
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      g_overloaded.add();
      send_json(conn,
                make_error_response(
                    parsed.id,
                    {"overloaded", "queue full (" +
                                       std::to_string(options_.queue_limit) +
                                       " requests); retry later"}));
    }
  }
  conn->close_fd();
}

void Server::handle_admin(const ConnPtr& conn, const ParsedRequest& parsed) {
  if (parsed.kind == "ping") {
    send_json(conn, make_ok_response(parsed.id, "ping", Json::object(),
                                     /*cached=*/false, /*coalesced=*/false));
    return;
  }
  if (parsed.kind == "stats") {
    send_json(conn, make_ok_response(parsed.id, "stats", render_stats(),
                                     /*cached=*/false, /*coalesced=*/false));
    return;
  }
  // shutdown: acknowledge, then let the owner (daemon main / test) observe
  // the flag and call stop() — stopping from this thread would self-join.
  send_json(conn, make_ok_response(parsed.id, "shutdown", Json::object(),
                                   /*cached=*/false, /*coalesced=*/false));
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::dispatcher_loop() {
  while (true) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (stopping_) return;
      const std::size_t take = std::min(options_.batch_max, queue_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      g_queue_depth.set(static_cast<double>(queue_.size()));
    }
    process_batch(std::move(batch));
  }
}

void Server::process_batch(std::vector<Pending> batch) {
  obs::SpanTimer batch_span("serve.batch",
                            static_cast<std::int64_t>(batch.size()));

  struct Group {
    Query query;
    std::vector<Pending> waiters;
    Clock::time_point latest_deadline = Clock::time_point::min();
    bool ok = false;
    QueryResult result;
    ErrorInfo error;
  };

  // Reject requests whose deadline already passed while queued, and group
  // the rest by cache key: one computation per distinct query.
  std::vector<Group> groups;
  const Clock::time_point now = Clock::now();
  for (Pending& pending : batch) {
    if (pending.deadline <= now) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      g_deadline.add();
      send_json(pending.conn,
                make_error_response(
                    pending.id,
                    {"deadline_exceeded", "deadline expired while queued"}));
      continue;
    }
    Group* group = nullptr;
    for (Group& candidate : groups) {
      if (candidate.waiters.front().key_hex == pending.key_hex) {
        group = &candidate;
        break;
      }
    }
    if (group == nullptr) {
      groups.emplace_back();
      group = &groups.back();
      group->query = pending.query;
    }
    group->latest_deadline = std::max(group->latest_deadline, pending.deadline);
    group->waiters.push_back(std::move(pending));
  }
  if (groups.empty()) return;

  in_flight_.store(groups.size(), std::memory_order_relaxed);
  // Nested parallel_for calls inside a query run inline on this worker, so
  // the DeadlineScope set here governs the whole computation.
  util::parallel_for(groups.size(), [&](std::size_t i) {
    Group& group = groups[i];
    obs::SpanTimer query_span("serve.query");
    try {
      if (group.latest_deadline != Clock::time_point::max()) {
        util::DeadlineScope scope(group.latest_deadline);
        util::poll_deadline();
        group.result = execute_query(group.query, store_.get());
      } else {
        group.result = execute_query(group.query, store_.get());
      }
      group.ok = true;
    } catch (const util::DeadlineExceeded&) {
      group.error = {"deadline_exceeded", "computation exceeded deadline"};
    } catch (const std::exception& error) {
      group.error = {"internal", error.what()};
    }
  });
  in_flight_.store(0, std::memory_order_relaxed);

  const Clock::time_point done = Clock::now();
  for (Group& group : groups) {
    if (group.ok) {
      if (group.result.cache_hit) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        computed_.fetch_add(1, std::memory_order_relaxed);
      }
      if (group.waiters.size() > 1) {
        coalesced_.fetch_add(group.waiters.size() - 1,
                             std::memory_order_relaxed);
        g_coalesced.add(group.waiters.size() - 1);
      }
    } else if (group.error.code == "deadline_exceeded") {
      deadline_expired_.fetch_add(group.waiters.size(),
                                  std::memory_order_relaxed);
      g_deadline.add(group.waiters.size());
    } else {
      internal_errors_.fetch_add(group.waiters.size(),
                                 std::memory_order_relaxed);
    }
    for (std::size_t w = 0; w < group.waiters.size(); ++w) {
      const Pending& waiter = group.waiters[w];
      if (!group.ok) {
        send_json(waiter.conn, make_error_response(waiter.id, group.error));
        continue;
      }
      if (waiter.deadline <= done) {
        // The shared computation outlived this waiter's budget; the result
        // is in the store for a retry, but this response honours the
        // deadline contract strictly.
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        g_deadline.add();
        send_json(waiter.conn,
                  make_error_response(waiter.id,
                                      {"deadline_exceeded",
                                       "result ready after deadline"}));
        continue;
      }
      // Latency is recorded before the response goes out so a client that
      // immediately asks for `stats` after its answer sees itself counted.
      note_latency(waiter.query, waiter.enqueued);
      send_json(waiter.conn,
                make_ok_response(waiter.id, kind_name(waiter.query.kind),
                                 group.result.body, group.result.cache_hit,
                                 /*coalesced=*/w > 0));
    }
  }
}

void Server::send_json(const ConnPtr& conn, const Json& response) {
  const std::string payload = response.dump();
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->fd < 0) return;
  try {
    write_frame(conn->fd, payload);
    responses_.fetch_add(1, std::memory_order_relaxed);
  } catch (const WireError&) {
    // Peer hung up mid-response; its reader thread will observe the close.
  }
}

void Server::note_latency(const Query& q, Clock::time_point enqueued) {
  const std::uint64_t us =
      static_cast<std::uint64_t>(std::chrono::duration_cast<
                                     std::chrono::microseconds>(Clock::now() -
                                                                enqueued)
                                     .count());
  std::lock_guard<std::mutex> lock(latency_mutex_);
  KindLatency& latency = per_kind_[kind_name(q.kind)];
  latency.count += 1;
  latency.total_us += us;
  latency.max_us = std::max(latency.max_us, us);
}

ServeStats Server::stats() const {
  ServeStats out;
  out.connections = connections_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.responses = responses_.load(std::memory_order_relaxed);
  out.computed = computed_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.overloaded = overloaded_.load(std::memory_order_relaxed);
  out.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  out.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  out.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  out.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  out.in_flight = in_flight_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    out.queue_depth = queue_.size();
  }
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    out.per_kind = per_kind_;
  }
  return out;
}

Json Server::render_stats() const {
  const ServeStats snapshot = stats();
  Json body = Json::object();
  body.set("queue_depth",
           Json::integer(static_cast<std::int64_t>(snapshot.queue_depth)));
  body.set("in_flight",
           Json::integer(static_cast<std::int64_t>(snapshot.in_flight)));
  body.set("connections",
           Json::integer(static_cast<std::int64_t>(snapshot.connections)));
  body.set("requests",
           Json::integer(static_cast<std::int64_t>(snapshot.requests)));
  body.set("responses",
           Json::integer(static_cast<std::int64_t>(snapshot.responses)));
  body.set("computed",
           Json::integer(static_cast<std::int64_t>(snapshot.computed)));
  body.set("cache_hits",
           Json::integer(static_cast<std::int64_t>(snapshot.cache_hits)));
  body.set("coalesced",
           Json::integer(static_cast<std::int64_t>(snapshot.coalesced)));
  body.set("overloaded",
           Json::integer(static_cast<std::int64_t>(snapshot.overloaded)));
  body.set("deadline_exceeded", Json::integer(static_cast<std::int64_t>(
                                    snapshot.deadline_expired)));
  body.set("bad_requests",
           Json::integer(static_cast<std::int64_t>(snapshot.bad_requests)));
  body.set("bad_frames",
           Json::integer(static_cast<std::int64_t>(snapshot.bad_frames)));
  body.set("internal_errors", Json::integer(static_cast<std::int64_t>(
                                  snapshot.internal_errors)));
  if (store_ != nullptr) {
    const store::StoreStats store_stats = store_->stats();
    Json store_body = Json::object();
    store_body.set("hits", Json::integer(
                               static_cast<std::int64_t>(store_stats.hits)));
    store_body.set("misses", Json::integer(static_cast<std::int64_t>(
                                 store_stats.misses)));
    store_body.set("writes", Json::integer(static_cast<std::int64_t>(
                                 store_stats.writes)));
    store_body.set("corrupt_entries", Json::integer(static_cast<std::int64_t>(
                                          store_stats.corrupt_entries)));
    const std::uint64_t lookups = store_stats.hits + store_stats.misses;
    store_body.set("hit_rate",
                   Json::number(lookups == 0
                                    ? 0.0
                                    : static_cast<double>(store_stats.hits) /
                                          static_cast<double>(lookups)));
    body.set("store", std::move(store_body));
  }
  Json latency = Json::object();
  for (const auto& [kind, stat] : snapshot.per_kind) {
    Json entry = Json::object();
    entry.set("count", Json::integer(static_cast<std::int64_t>(stat.count)));
    entry.set("mean_us",
              Json::number(stat.count == 0
                               ? 0.0
                               : static_cast<double>(stat.total_us) /
                                     static_cast<double>(stat.count)));
    entry.set("max_us", Json::integer(static_cast<std::int64_t>(stat.max_us)));
    latency.set(kind, std::move(entry));
  }
  body.set("latency_us", std::move(latency));
  return body;
}

}  // namespace psph::serve
