// psph_serve — long-running query daemon over the protocol-complex engine.
//
//   psph_serve --socket=/tmp/psph.sock --store-dir=/var/cache/psph &
//   # then any client speaks the length-prefixed JSON protocol; see
//   # README "Serving" for a walkthrough and DESIGN §5.14 for the grammar.
//
// Runs until SIGINT/SIGTERM or a client `shutdown` request. With
// --fault-seed != 0 the store runs over a fault-injecting filesystem
// (check/fault_fs.h) — the soak configuration: faults must degrade to
// cache misses and recomputation, never wrong bytes.

#include <csignal>
#include <cstdio>
#include <memory>

#include "check/fault_fs.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/random.h"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void handle_signal(int) { g_signalled = 1; }

/// Deterministic sprinkle of faults across the first `horizon` operations
/// of each category: density 1/16 per category, different offsets per
/// category so faults do not line up.
psph::check::FaultPlan plan_from_seed(std::uint64_t seed,
                                      std::size_t horizon) {
  psph::util::Rng rng(seed);
  psph::check::FaultPlan plan;
  std::set<std::size_t>* categories[] = {
      &plan.fail_writes,    &plan.short_writes,  &plan.fail_renames,
      &plan.fail_dir_syncs, &plan.corrupt_reads, &plan.truncate_reads,
  };
  for (std::set<std::size_t>* category : categories) {
    for (std::size_t op = 0; op < horizon; ++op) {
      if (rng.next_below(16) == 0) category->insert(op);
    }
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  psph::serve::ServerOptions options;
  options.socket_path = "/tmp/psph_serve.sock";
  int threads = 0;
  std::int64_t queue_limit = 1024;
  std::int64_t batch_max = 64;
  std::int64_t fault_seed = 0;

  psph::util::Cli cli("psph_serve",
                      "serve protocol-complex queries over a local socket");
  cli.flag("socket", &options.socket_path, "AF_UNIX socket path to listen on");
  cli.flag("store-dir", &options.store_dir,
           "result-store root (empty: serve without a cache)");
  cli.flag("threads", &threads, "worker threads (0 = hardware concurrency)");
  cli.flag("queue-limit", &queue_limit,
           "queued compute requests before overload rejections");
  cli.flag("batch-max", &batch_max, "max requests per dispatcher batch");
  cli.flag("default-deadline-ms", &options.default_deadline_ms,
           "deadline for requests that carry none (0 = unlimited)");
  cli.flag("fault-seed", &fault_seed,
           "nonzero: run the store over a fault-injecting filesystem "
           "seeded here (soak mode)");
  cli.parse(argc, argv);

  if (threads > 0) psph::util::set_thread_count(threads);
  options.queue_limit = static_cast<std::size_t>(queue_limit);
  options.batch_max = static_cast<std::size_t>(batch_max);
  if (fault_seed != 0) {
    options.fs = std::make_shared<psph::check::FaultyFsOps>(
        plan_from_seed(static_cast<std::uint64_t>(fault_seed), 100'000));
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  psph::serve::Server server(options);
  try {
    server.start();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "psph_serve: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "psph_serve: listening on %s (store: %s%s)\n",
               options.socket_path.c_str(),
               options.store_dir.empty() ? "none" : options.store_dir.c_str(),
               fault_seed != 0 ? ", fault injection ON" : "");

  while (g_signalled == 0) {
    if (server.wait_for_shutdown(/*poll_ms=*/200)) break;
  }
  std::fprintf(stderr, "psph_serve: shutting down\n");
  server.stop();
  return 0;
}
