#pragma once

// Query execution for psph_serve: the bridge between a validated protocol
// Query and the batch engines (theorems.h checks, reduced_homology).
//
// The bit-identical-serving guarantee lives here: compute_sealed() calls
// the *same* check_* / reduced_homology entry points the batch binaries
// call, and serializes with the same store:: encoders, so a daemon response
// and a batch run of the identical query produce the same sealed bytes —
// which is exactly what the serve_smoke CI target asserts. The JSON body is
// always rendered from the *decoded sealed bytes* (never from the in-memory
// struct), so a cache hit and a fresh computation render identically too.

#include <cstdint>
#include <vector>

#include "serve/json.h"
#include "serve/protocol.h"
#include "store/store.h"

namespace psph::serve {

struct QueryResult {
  /// Sealed store envelope of the result — the canonical byte form.
  std::vector<std::uint8_t> sealed;
  /// JSON rendering of `sealed`, placed in the response's "result" field.
  Json body;
  bool cache_hit = false;
};

/// Computes the query: exactly what the batch binaries do. Polls the
/// thread-local deadline (util/cancel.h) through the underlying engines, so
/// it throws util::DeadlineExceeded when a DeadlineScope expires
/// mid-computation (for decide, mid-*propagation* — the solve engine polls
/// inside its propagate loop, not just per search node). The result bytes
/// are deterministic, with or without `store`: a non-null store only lets
/// the decide path reuse (and feed) the engine-level kDecision memo that
/// sweeps share — a hit returns the identical sealed bytes a fresh
/// computation would.
std::vector<std::uint8_t> compute_sealed(const Query& q,
                                         store::ResultStore* store = nullptr);

/// Decodes sealed bytes for `q` and renders the response body. Throws
/// store::SerializationError on damaged bytes.
Json render_result(const Query& q, const std::vector<std::uint8_t>& sealed);

/// Store-first execution: load (any store fault degrades to a miss), else
/// compute and write back (a failed save degrades to "not cached"). `store`
/// may be null for a storeless server.
QueryResult execute_query(const Query& q, store::ResultStore* store);

}  // namespace psph::serve
