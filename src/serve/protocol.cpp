#include "serve/protocol.h"

#include "solve/decide.h"

namespace psph::serve {

namespace {

// Tractability bounds: protocol complexes grow super-exponentially in these
// parameters, so anything past the caps would hog a worker for hours. The
// caps comfortably cover every instance the paper's experiments use.
constexpr int kMaxProcesses = 8;
constexpr int kMaxRounds = 8;
constexpr int kMaxMu = 16;
constexpr int kMaxHomologyDim = 8;
constexpr std::size_t kMaxSizes = 8;
constexpr int kMaxSizeEntry = 8;
constexpr std::int64_t kMaxDeadlineMs = 3'600'000;

std::optional<ErrorInfo> bad(const std::string& message) {
  return ErrorInfo{"bad_request", message};
}

/// Reads an optional integer field with range validation.
std::optional<ErrorInfo> read_int(const Json& request, const char* name,
                                  std::int64_t lo, std::int64_t hi,
                                  int* target) {
  const Json* field = request.get(name);
  if (field == nullptr) return std::nullopt;
  if (!field->is_int()) {
    return bad(std::string(name) + " must be an integer");
  }
  const std::int64_t value = field->as_int();
  if (value < lo || value > hi) {
    return bad(std::string(name) + "=" + std::to_string(value) +
               " out of range [" + std::to_string(lo) + ", " +
               std::to_string(hi) + "]");
  }
  *target = static_cast<int>(value);
  return std::nullopt;
}

/// Zeroes every field the (kind, model) pair does not consume, so the cache
/// key — and therefore coalescing — only sees meaningful parameters.
void normalize(Query* q) {
  const bool homology = q->kind == QueryKind::kHomology;
  const bool decide = q->kind == QueryKind::kDecide;
  if (!homology) {
    q->max_dim = 0;
    q->exact = false;
  }
  // Only the kinds that build a protocol complex directly consume the
  // construction backend; connectivity/decide go through the theorem
  // checkers and pseudospheres have no round structure to quotient.
  const bool builds_complex =
      homology || q->kind == QueryKind::kComplexStats;
  if (!builds_complex || q->model == "pseudosphere") {
    q->construction = "full";
  }
  if (q->model == "pseudosphere") {
    q->processes = 0;
    q->participants = 0;
    q->f = 0;
    q->k = 0;
    q->mu = 0;
    q->rounds = 0;
    return;
  }
  q->sizes.clear();
  if (decide) {
    // decide uses processes, f, k, rounds (+ mu for semisync); the input
    // complex is full, so participants is meaningless. iis is wait-free
    // full-information — no failure budget either.
    q->participants = 0;
    if (q->model != "semisync") q->mu = 0;
    if (q->model == "iis") q->f = 0;
    return;
  }
  if (q->model == "async") {
    q->k = 0;
    q->mu = 0;
  } else {  // sync / semisync connectivity: per-round cap k, no budget f
    q->f = 0;
    if (q->model != "semisync") q->mu = 0;
  }
}

std::optional<ErrorInfo> fill_query(const Json& request, Query* q) {
  if (const Json* model = request.get("model")) {
    if (!model->is_string()) return bad("model must be a string");
    q->model = model->as_string();
  }
  if (q->model != "async" && q->model != "sync" && q->model != "semisync" &&
      q->model != "pseudosphere" && q->model != "iis") {
    return bad("unknown model '" + q->model +
               "' (choices: async sync semisync iis pseudosphere)");
  }
  if (q->model == "pseudosphere" && q->kind == QueryKind::kDecide) {
    return bad("decide needs a timing model, not 'pseudosphere'");
  }
  if (q->model == "iis" && q->kind != QueryKind::kDecide) {
    return bad("model 'iis' is only available for decide queries");
  }

  if (auto err = read_int(request, "processes", 1, kMaxProcesses,
                          &q->processes)) {
    return err;
  }
  q->participants = q->processes;  // default before an explicit override
  if (auto err = read_int(request, "participants", 1, kMaxProcesses,
                          &q->participants)) {
    return err;
  }
  if (q->participants > q->processes) {
    return bad("participants must be <= processes");
  }
  if (auto err = read_int(request, "f", 0, kMaxProcesses - 1, &q->f)) {
    return err;
  }
  if (auto err = read_int(request, "k", 1, kMaxProcesses, &q->k)) return err;
  if (auto err = read_int(request, "mu", 1, kMaxMu, &q->mu)) return err;
  if (auto err = read_int(request, "rounds", 1, kMaxRounds, &q->rounds)) {
    return err;
  }
  if (auto err = read_int(request, "max_dim", 0, kMaxHomologyDim,
                          &q->max_dim)) {
    return err;
  }
  if (q->f >= q->processes) return bad("f must be < processes");

  if (const Json* exact = request.get("exact")) {
    if (!exact->is_bool()) return bad("exact must be a bool");
    q->exact = exact->as_bool();
  }

  if (const Json* sizes = request.get("sizes")) {
    if (!sizes->is_array()) return bad("sizes must be an array");
    for (const Json& entry : sizes->items()) {
      if (!entry.is_int() || entry.as_int() < 1 ||
          entry.as_int() > kMaxSizeEntry) {
        return bad("sizes entries must be integers in [1, " +
                   std::to_string(kMaxSizeEntry) + "]");
      }
      q->sizes.push_back(static_cast<int>(entry.as_int()));
    }
    if (q->sizes.size() > kMaxSizes) {
      return bad("sizes may list at most " + std::to_string(kMaxSizes) +
                 " positions");
    }
  }
  if (q->model == "pseudosphere" && q->sizes.empty()) {
    return bad("model 'pseudosphere' needs a nonempty sizes array");
  }

  if (const Json* construction = request.get("construction")) {
    if (!construction->is_string()) {
      return bad("construction must be a string");
    }
    q->construction = construction->as_string();
    if (q->construction != "full" && q->construction != "orbit") {
      return bad("unknown construction '" + q->construction +
                 "' (choices: full orbit)");
    }
  }

  if (const Json* deadline = request.get("deadline_ms")) {
    if (!deadline->is_int() || deadline->as_int() < 0 ||
        deadline->as_int() > kMaxDeadlineMs) {
      return bad("deadline_ms must be an integer in [0, " +
                 std::to_string(kMaxDeadlineMs) + "]");
    }
    q->deadline_ms = deadline->as_int();
  }

  normalize(q);
  return std::nullopt;
}

}  // namespace

const char* kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kConnectivity: return "connectivity";
    case QueryKind::kHomology: return "homology";
    case QueryKind::kComplexStats: return "complex_stats";
    case QueryKind::kDecide: return "decide";
  }
  return "?";
}

store::CacheKeyBuilder cache_key(const Query& q) {
  store::CacheKeyBuilder key(std::string("serve/") + kind_name(q.kind));
  if (q.kind == QueryKind::kDecide) {
    // decide responses carry a kDecision payload versioned by the solve
    // engine; keying on the version keeps pre-engine kAgreementCheck
    // entries (and any future engine bump) from aliasing.
    key.param(solve::kDecisionEngineVersion);
  }
  key.param_string(q.model);
  key.param_string(q.construction);
  key.param(q.processes)
      .param(q.participants)
      .param(q.f)
      .param(q.k)
      .param(q.mu)
      .param(q.rounds)
      .param(q.max_dim)
      .param(q.exact ? 1 : 0);
  key.param(static_cast<std::int64_t>(q.sizes.size()));
  for (const int size : q.sizes) key.param(size);
  return key;
}

ParsedRequest parse_request(const Json& request) {
  ParsedRequest parsed;
  if (!request.is_object()) {
    parsed.error = ErrorInfo{"bad_request", "request must be a JSON object"};
    return parsed;
  }
  if (const Json* id = request.get("id")) {
    if (!id->is_int()) {
      parsed.error = ErrorInfo{"bad_request", "id must be an integer"};
      return parsed;
    }
    parsed.id = id->as_int();
  }
  const Json* kind = request.get("kind");
  if (kind == nullptr || !kind->is_string()) {
    parsed.error = ErrorInfo{"bad_request", "kind must be a string"};
    return parsed;
  }
  parsed.kind = kind->as_string();

  if (parsed.kind == "ping" || parsed.kind == "stats" ||
      parsed.kind == "shutdown") {
    parsed.is_admin = true;
    return parsed;
  }

  Query q;
  if (parsed.kind == "connectivity") {
    q.kind = QueryKind::kConnectivity;
  } else if (parsed.kind == "homology") {
    q.kind = QueryKind::kHomology;
  } else if (parsed.kind == "complex_stats") {
    q.kind = QueryKind::kComplexStats;
  } else if (parsed.kind == "decide") {
    q.kind = QueryKind::kDecide;
  } else {
    parsed.error = ErrorInfo{
        "bad_request",
        "unknown kind '" + parsed.kind +
            "' (choices: connectivity homology complex_stats decide ping "
            "stats shutdown)"};
    return parsed;
  }

  if (auto err = fill_query(request, &q)) {
    parsed.error = std::move(err);
    return parsed;
  }
  parsed.query = std::move(q);
  return parsed;
}

Json make_ok_response(std::int64_t id, const std::string& kind, Json result,
                      bool cached, bool coalesced) {
  Json response = Json::object();
  response.set("id", Json::integer(id));
  response.set("ok", Json::boolean(true));
  response.set("kind", Json::string(kind));
  response.set("cached", Json::boolean(cached));
  response.set("coalesced", Json::boolean(coalesced));
  response.set("result", std::move(result));
  return response;
}

Json make_error_response(std::int64_t id, const ErrorInfo& error) {
  Json body = Json::object();
  body.set("code", Json::string(error.code));
  body.set("message", Json::string(error.message));
  Json response = Json::object();
  response.set("id", Json::integer(id));
  response.set("ok", Json::boolean(false));
  response.set("error", std::move(body));
  return response;
}

}  // namespace psph::serve
