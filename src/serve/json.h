#pragma once

// Minimal JSON value for the serve wire protocol (DESIGN §5.14).
//
// Deliberately small and strict: standard JSON only (no comments, no
// trailing commas, no NaN/Infinity), a recursion-depth cap so adversarial
// nesting cannot blow the stack, and 64-bit integers kept exact — a number
// without '.'/'e' that fits std::int64_t stays an integer through a
// round-trip, which is what lets responses rendered from cached and freshly
// computed results be byte-identical. Objects preserve insertion order and
// dump() emits exactly that order, so serialization is deterministic: equal
// values built the same way produce equal bytes.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace psph::serve {

/// Thrown on malformed JSON text (parse) and type mismatches (accessors).
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// Insertion-ordered; keys are unique (set() overwrites in place).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}

  static Json boolean(bool v) { return Json(Value(v)); }
  static Json integer(std::int64_t v) { return Json(Value(v)); }
  /// Throws JsonError on NaN/Infinity (not representable in JSON).
  static Json number(double v);
  static Json string(std::string v) { return Json(Value(std::move(v))); }
  static Json array() { return Json(Value(Array{})); }
  static Json object() { return Json(Value(Object{})); }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; each throws JsonError naming the mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Accepts both kInt and kDouble.
  double as_double() const;
  const std::string& as_string() const;
  const Array& items() const;
  Array& items();
  const Object& entries() const;

  /// Object: sets `key` (overwriting an existing entry in place, so the
  /// original insertion order survives updates). Returns *this for chains.
  Json& set(const std::string& key, Json value);
  /// Object: pointer to the value at `key`, or nullptr when absent.
  const Json* get(const std::string& key) const;
  /// Array: appends.
  Json& push(Json value);

  /// Deterministic serialization (insertion order, fixed number format).
  std::string dump() const;

  /// Strict parse of a complete JSON document; trailing non-whitespace,
  /// depth > kMaxDepth, and every grammar violation throw JsonError.
  static Json parse(const std::string& text);
  static Json parse(const char* data, std::size_t size);

  static constexpr std::size_t kMaxDepth = 64;

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  using Value = std::variant<std::nullptr_t, bool, std::int64_t, double,
                             std::string, Array, Object>;
  explicit Json(Value value) : value_(std::move(value)) {}

  void dump_to(std::string* out) const;

  Value value_;
};

}  // namespace psph::serve
