#pragma once

// Length-prefixed framing over local (AF_UNIX) stream sockets.
//
// A frame is a 4-byte little-endian payload length followed by that many
// bytes of UTF-8 JSON. The length prefix makes message boundaries explicit,
// so a reader can reject an oversized announcement *before* allocating, and
// can tell a clean close (EOF between frames) from a torn one (EOF inside a
// frame). All syscall loops retry EINTR; writes use MSG_NOSIGNAL so a peer
// hanging up yields an error return instead of SIGPIPE.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace psph::serve {

/// Frames larger than this are rejected without allocation. Generous for
/// this protocol: the largest legitimate responses (homology tables, stats)
/// are a few KiB.
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

/// Thrown on unrecoverable stream damage: oversized length prefix, EOF in
/// the middle of a frame, or a socket error. After a WireError the stream
/// position is unknown, so the connection must be closed.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

enum class FrameStatus {
  kFrame,   // *payload holds one complete frame
  kClosed,  // clean EOF: the peer closed between frames
};

/// Reads one frame. Returns kClosed only on EOF at a frame boundary;
/// mid-frame EOF and oversized prefixes throw WireError.
FrameStatus read_frame(int fd, std::string* payload);

/// Writes one frame (header + payload). Throws WireError if the payload
/// exceeds kMaxFrameBytes or the peer is gone.
void write_frame(int fd, const std::string& payload);

/// Creates, binds, and listens on an AF_UNIX stream socket, unlinking any
/// stale socket file first. Throws WireError (with errno text) on failure.
int listen_unix(const std::string& path, int backlog);

/// Connects to an AF_UNIX stream socket. Throws WireError on failure.
int connect_unix(const std::string& path);

}  // namespace psph::serve
