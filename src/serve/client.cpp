#include "serve/client.h"

#include <unistd.h>

#include "serve/wire.h"

namespace psph::serve {

Client::Client(const std::string& socket_path)
    : fd_(connect_unix(socket_path)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send(const Json& request) { write_frame(fd_, request.dump()); }

Json Client::recv() {
  std::string payload;
  if (read_frame(fd_, &payload) == FrameStatus::kClosed) {
    throw WireError("client: server closed the connection");
  }
  return Json::parse(payload);
}

Json Client::call(const Json& request) {
  send(request);
  return recv();
}

Json Client::request(std::int64_t id, const std::string& kind) {
  Json out = Json::object();
  out.set("id", Json::integer(id));
  out.set("kind", Json::string(kind));
  return out;
}

}  // namespace psph::serve
