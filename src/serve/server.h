#pragma once

// The psph_serve daemon core (DESIGN §5.14).
//
// Thread structure:
//   * one listener thread accepting AF_UNIX connections,
//   * one reader thread per connection (admin requests answered inline,
//     compute requests admitted into a bounded queue),
//   * one dispatcher thread that drains the queue in batches, coalesces
//     identical queries (one computation, N responders), and fans the
//     unique jobs out over util::parallel_for — whose nested calls run
//     inline, so the thread-local DeadlineScope a job sets governs all of
//     its computation.
//
// Back-pressure is explicit: when the queue is full the reader answers
// `overloaded` immediately instead of buffering without bound. Deadlines
// are enforced twice — queued requests whose deadline passed are rejected
// before any work happens, and running computations are cancelled
// cooperatively via util/cancel.h.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "store/fs_ops.h"
#include "store/store.h"

namespace psph::serve {

struct ServerOptions {
  std::string socket_path;
  /// Result-store root; empty runs without a cache.
  std::string store_dir;
  /// Filesystem for the store (null = real). The fault-injection soak
  /// passes a FaultyFsOps here.
  std::shared_ptr<store::FsOps> fs;
  /// Compute requests admitted before `overloaded` rejections start.
  std::size_t queue_limit = 1024;
  /// Max compute requests drained per dispatcher batch.
  std::size_t batch_max = 64;
  /// Applied when a request carries no deadline_ms; 0 = unlimited.
  std::int64_t default_deadline_ms = 0;
  int listen_backlog = 64;
};

struct KindLatency {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t max_us = 0;
};

/// Snapshot exported by the `stats` request (and Server::stats()).
struct ServeStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t computed = 0;      // unique jobs actually computed
  std::uint64_t cache_hits = 0;    // unique jobs answered from the store
  std::uint64_t coalesced = 0;     // waiters served by someone else's job
  std::uint64_t overloaded = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t bad_frames = 0;
  std::uint64_t internal_errors = 0;
  std::size_t queue_depth = 0;
  std::size_t in_flight = 0;
  /// Queue-to-response latency per query kind, microseconds.
  std::map<std::string, KindLatency> per_kind;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  /// Binds the socket and starts the listener/dispatcher threads. Throws
  /// WireError or std::runtime_error on setup failure.
  void start();

  /// Stops accepting, finishes the in-flight batch, closes every
  /// connection, joins all threads, and unlinks the socket. Idempotent.
  void stop();

  /// True once a client has issued a `shutdown` request.
  bool shutdown_requested() const;
  /// Blocks until a `shutdown` request arrives, stop() is called, or
  /// `poll_ms` elapses (0 = wait indefinitely). Returns shutdown_requested().
  bool wait_for_shutdown(std::int64_t poll_ms = 0);

  ServeStats stats() const;
  /// Null when the server runs storeless.
  store::ResultStore* result_store() { return store_.get(); }

  /// Test hooks: freeze the dispatcher between batches so tests can stage a
  /// queue deterministically (coalescing, admission, queued-deadline tests).
  void pause_dispatch();
  void resume_dispatch();

  const ServerOptions& options() const { return options_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    void close_fd();
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct Pending {
    ConnPtr conn;
    std::int64_t id = 0;
    Query query;
    std::string key_hex;
    std::chrono::steady_clock::time_point enqueued;
    /// steady_clock::time_point::max() when unlimited.
    std::chrono::steady_clock::time_point deadline;
  };

  void listener_loop();
  void connection_loop(ConnPtr conn);
  void dispatcher_loop();
  void process_batch(std::vector<Pending> batch);
  void handle_admin(const ConnPtr& conn, const ParsedRequest& parsed);
  void send_json(const ConnPtr& conn, const Json& response);
  void note_latency(const Query& q,
                    std::chrono::steady_clock::time_point enqueued);
  Json render_stats() const;

  ServerOptions options_;
  std::unique_ptr<store::ResultStore> store_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool paused_ = false;
  bool stopping_ = false;

  std::mutex conns_mutex_;
  std::vector<ConnPtr> conns_;
  std::vector<std::thread> conn_threads_;

  std::thread listener_;
  std::thread dispatcher_;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stop_signalled_ = false;  // lets wait_for_shutdown() observe stop()

  // Counters (atomic: bumped from reader threads and the dispatcher).
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> computed_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::uint64_t> internal_errors_{0};
  std::atomic<std::size_t> in_flight_{0};

  mutable std::mutex latency_mutex_;
  std::map<std::string, KindLatency> per_kind_;
};

}  // namespace psph::serve
