#include "serve/wire.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace psph::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw WireError(what + ": " + std::strerror(errno));
}

/// Reads exactly n bytes. Returns the number read before EOF (== n on
/// success); throws WireError on a socket error.
std::size_t read_exact(int fd, void* buffer, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got =
        ::read(fd, static_cast<char*>(buffer) + done, n - done);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) return done;  // EOF
    if (errno == EINTR) continue;
    fail_errno("wire: read");
  }
  return done;
}

void write_exact(int fd, const void* buffer, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::send(fd, static_cast<const char*>(buffer) + done,
                               n - done, MSG_NOSIGNAL);
    if (put >= 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    if (errno == EINTR) continue;
    fail_errno("wire: write");
  }
}

}  // namespace

FrameStatus read_frame(int fd, std::string* payload) {
  std::uint8_t header[4];
  const std::size_t got = read_exact(fd, header, sizeof header);
  if (got == 0) return FrameStatus::kClosed;
  if (got < sizeof header) throw WireError("wire: torn frame header");
  const std::uint32_t length = static_cast<std::uint32_t>(header[0]) |
                               (static_cast<std::uint32_t>(header[1]) << 8) |
                               (static_cast<std::uint32_t>(header[2]) << 16) |
                               (static_cast<std::uint32_t>(header[3]) << 24);
  if (length > kMaxFrameBytes) {
    throw WireError("wire: frame length " + std::to_string(length) +
                    " exceeds limit " + std::to_string(kMaxFrameBytes));
  }
  payload->resize(length);
  if (length != 0 && read_exact(fd, payload->data(), length) < length) {
    throw WireError("wire: torn frame payload");
  }
  return FrameStatus::kFrame;
}

void write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw WireError("wire: refusing to send oversized frame");
  }
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  std::uint8_t header[4] = {
      static_cast<std::uint8_t>(length & 0xFF),
      static_cast<std::uint8_t>((length >> 8) & 0xFF),
      static_cast<std::uint8_t>((length >> 16) & 0xFF),
      static_cast<std::uint8_t>((length >> 24) & 0xFF),
  };
  write_exact(fd, header, sizeof header);
  write_exact(fd, payload.data(), payload.size());
}

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw WireError("wire: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) fail_errno("wire: socket");
  ::unlink(path.c_str());  // remove a stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("wire: bind " + path);
  }
  if (::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("wire: listen " + path);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) fail_errno("wire: socket");
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) < 0) {
    if (errno == EINTR) continue;
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("wire: connect " + path);
  }
  return fd;
}

}  // namespace psph::serve
