#pragma once

// Request/response schema for psph_serve (DESIGN §5.14).
//
// A request is one JSON object per frame:
//
//   {"id": 7, "kind": "connectivity", "model": "async",
//    "processes": 4, "participants": 4, "f": 1, "rounds": 1}
//
// Compute kinds are `connectivity`, `homology`, `complex_stats`, `decide`;
// admin kinds are `ping`, `stats`, `shutdown`. Responses echo the id:
//
//   {"id": 7, "ok": true, "kind": "connectivity", "cached": false,
//    "coalesced": false, "result": {...}}
//   {"id": 7, "ok": false, "error": {"code": "bad_request", "message": ...}}
//
// Parsing *normalizes* the query: every parameter a given kind/model does
// not consume is reset to zero before the cache key is formed, so requests
// that differ only in irrelevant fields hash to the same key and coalesce.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/json.h"
#include "store/store.h"

namespace psph::serve {

enum class QueryKind { kConnectivity, kHomology, kComplexStats, kDecide };

const char* kind_name(QueryKind kind);

/// One validated, normalized compute query. Process counts follow the
/// codebase convention: `processes` = n+1 and `participants` = m+1.
struct Query {
  QueryKind kind = QueryKind::kConnectivity;
  std::string model = "async";  // async | sync | semisync | pseudosphere
  int processes = 3;
  int participants = 3;
  int f = 1;        // failure budget (async connectivity; every decide)
  int k = 1;        // per-round cap (sync/semisync) and set-agreement k
  int mu = 2;       // semisync spacing
  int rounds = 1;
  int max_dim = 2;  // homology only
  bool exact = false;  // homology only
  /// Construction backend for homology / complex_stats on timing models:
  /// "full" expands every facet; "orbit" runs the symmetry-reduced pipeline
  /// (DESIGN §5.16) and reconstitutes, bit-identical where both run. Kinds
  /// and models that do not consume it are normalized back to "full".
  std::string construction = "full";
  std::vector<int> sizes;  // pseudosphere value-set sizes, |U_i| each
  /// Per-query deadline; 0 means "use the server default".
  std::int64_t deadline_ms = 0;
};

/// Canonical cache key over the normalized query (kind, model, and every
/// parameter that can affect the result — never the deadline).
store::CacheKeyBuilder cache_key(const Query& q);

struct ErrorInfo {
  std::string code;  // bad_request|overloaded|deadline_exceeded|internal|bad_frame
  std::string message;
};

struct ParsedRequest {
  std::int64_t id = 0;
  std::string kind;              // raw kind string, "" when absent
  std::optional<Query> query;    // set for valid compute kinds
  std::optional<ErrorInfo> error;  // set on any validation failure
  bool is_admin = false;         // ping / stats / shutdown
};

/// Parses and validates a request object. Never throws: malformed shapes
/// come back as a bad_request ErrorInfo so the connection can keep serving.
ParsedRequest parse_request(const Json& request);

Json make_ok_response(std::int64_t id, const std::string& kind, Json result,
                      bool cached, bool coalesced);
Json make_error_response(std::int64_t id, const ErrorInfo& error);

}  // namespace psph::serve
