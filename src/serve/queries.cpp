#include "serve/queries.h"

#include "core/construction.h"
#include "core/pseudosphere.h"
#include "core/theorems.h"
#include "solve/decide.h"
#include "store/serialize.h"
#include "topology/homology.h"
#include "util/cancel.h"

namespace psph::serve {

namespace {

/// Runs the symmetry-reduced pipeline for a timing-model query (DESIGN
/// §5.16). Only reachable when normalize() kept construction == "orbit",
/// which excludes pseudospheres.
core::OrbitComplexResult build_orbit_result(const Query& q,
                                            core::ViewRegistry& views,
                                            topology::VertexArena& arena) {
  core::ConstructionCache cache;
  const topology::Simplex input =
      core::rainbow_input(q.participants, views, arena);
  if (q.model == "async") {
    core::AsyncParams params{q.processes, q.f, q.rounds};
    return core::async_protocol_complex_orbit(input, params, views, arena,
                                              cache);
  }
  if (q.model == "sync") {
    core::SyncParams params{q.processes, /*total_failures=*/q.rounds * q.k,
                            /*failures_per_round=*/q.k, q.rounds};
    return core::sync_protocol_complex_orbit(input, params, views, arena,
                                             cache);
  }
  core::SemiSyncParams params{q.processes, /*total_failures=*/q.rounds * q.k,
                              /*failures_per_round=*/q.k, q.mu, q.rounds};
  return core::semisync_protocol_complex_orbit(input, params, views, arena,
                                               cache);
}

/// Builds the complex a connectivity check of the same parameters measures
/// — the identical construction path theorems.cpp uses, so homology and
/// complex_stats queries describe the same object the checks certify.
topology::SimplicialComplex build_model_complex(const Query& q,
                                                core::ViewRegistry& views,
                                                topology::VertexArena& arena) {
  if (q.model == "pseudosphere") {
    std::vector<core::ProcessId> pids;
    std::vector<std::vector<core::StateId>> value_sets;
    core::StateId next_value = 0;
    for (std::size_t i = 0; i < q.sizes.size(); ++i) {
      pids.push_back(static_cast<core::ProcessId>(i));
      std::vector<core::StateId> values;
      for (int v = 0; v < q.sizes[i]; ++v) values.push_back(next_value++);
      value_sets.push_back(std::move(values));
    }
    return core::pseudosphere(pids, value_sets, arena);
  }
  const topology::Simplex input =
      core::rainbow_input(q.participants, views, arena);
  if (q.model == "async") {
    core::AsyncParams params{q.processes, q.f, q.rounds};
    return core::async_protocol_complex(input, params, views, arena);
  }
  if (q.model == "sync") {
    core::SyncParams params{q.processes, /*total_failures=*/q.rounds * q.k,
                            /*failures_per_round=*/q.k, q.rounds};
    return core::sync_protocol_complex(input, params, views, arena);
  }
  core::SemiSyncParams params{q.processes, /*total_failures=*/q.rounds * q.k,
                              /*failures_per_round=*/q.k, q.mu, q.rounds};
  return core::semisync_protocol_complex(input, params, views, arena);
}

std::vector<std::uint8_t> compute_connectivity(const Query& q) {
  core::ConnectivityCheck check;
  if (q.model == "pseudosphere") {
    check = core::check_pseudosphere_connectivity(q.sizes);
  } else if (q.model == "async") {
    check = core::check_async_connectivity(q.processes, q.participants, q.f,
                                           q.rounds);
  } else if (q.model == "sync") {
    check = core::check_sync_connectivity(q.processes, q.participants, q.k,
                                          q.rounds);
  } else {
    check = core::check_semisync_connectivity(q.processes, q.participants,
                                              q.k, q.mu, q.rounds);
  }
  return store::serialize_connectivity_check(check);
}

std::vector<std::uint8_t> compute_homology(const Query& q) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  topology::HomologyOptions options;
  options.max_dim = q.max_dim;
  options.exact = q.exact;
  if (q.construction == "orbit") {
    // Homology needs the chain complex, so the full object is materialized
    // from orbit data; the saving is in the construction, not the algebra.
    const core::OrbitComplexResult orbit = build_orbit_result(q, views, arena);
    return store::serialize_homology_report(topology::reduced_homology(
        core::reconstitute_full(orbit, views, arena), options));
  }
  const topology::SimplicialComplex complex =
      build_model_complex(q, views, arena);
  return store::serialize_homology_report(
      topology::reduced_homology(complex, options));
}

std::vector<std::uint8_t> compute_complex_stats(const Query& q) {
  core::ViewRegistry views;
  topology::VertexArena arena;
  store::ByteWriter out;
  if (q.construction == "orbit") {
    // Counting-only path: the full complex is never materialized. Facet
    // count comes from orbit–stabilizer, the f-vector from face-orbit
    // counting; both are bit-identical to the full pipeline's.
    const core::OrbitComplexResult orbit = build_orbit_result(q, views, arena);
    const std::vector<std::size_t> fvec =
        core::orbit_full_f_vector(orbit, views, arena);
    std::int64_t euler = 0;
    for (std::size_t d = 0; d < fvec.size(); ++d) {
      const auto count = static_cast<std::int64_t>(fvec[d]);
      euler += (d % 2 == 0) ? count : -count;
    }
    out.u64(orbit.full_facet_count);
    out.u64(fvec.empty() ? 0 : fvec[0]);
    out.i32(static_cast<std::int32_t>(fvec.size()) - 1);
    out.i64(euler);
    out.u32(static_cast<std::uint32_t>(fvec.size()));
    for (const std::size_t count : fvec) out.u64(count);
    out.u64(orbit.group.size());
    out.u64(orbit.orbits.size());
    out.u64(orbit.reduced.facet_count());
    return store::seal(store::PayloadKind::kRawBytes, out.bytes());
  }
  const topology::SimplicialComplex complex =
      build_model_complex(q, views, arena);
  out.u64(complex.facet_count());
  out.u64(complex.vertex_ids().size());
  out.i32(complex.dimension());
  out.i64(complex.euler_characteristic());
  const std::vector<std::size_t> fvec = complex.f_vector();
  out.u32(static_cast<std::uint32_t>(fvec.size()));
  for (const std::size_t count : fvec) out.u64(count);
  return store::seal(store::PayloadKind::kRawBytes, out.bytes());
}

std::vector<std::uint8_t> compute_decide(const Query& q,
                                         store::ResultStore* store) {
  const auto model = solve::parse_model(q.model);
  if (!model.has_value()) {
    throw std::logic_error("compute_decide: unvalidated model " + q.model);
  }
  solve::DecideRequest request;
  request.model = *model;
  request.processes = q.processes;
  request.f = q.f;
  request.k = q.k;
  request.mu = q.mu;
  request.rounds = q.rounds;
  return solve::decide_sealed(request, solve::EngineOptions{}, store);
}

Json render_connectivity(const std::vector<std::uint8_t>& sealed) {
  const core::ConnectivityCheck check =
      store::deserialize_connectivity_check(sealed);
  Json body = Json::object();
  body.set("expected", Json::integer(check.expected));
  body.set("measured", Json::integer(check.measured));
  body.set("satisfied", Json::boolean(check.satisfied));
  body.set("facets", Json::integer(static_cast<std::int64_t>(check.facet_count)));
  body.set("vertices",
           Json::integer(static_cast<std::int64_t>(check.vertex_count)));
  body.set("dimension", Json::integer(check.dimension));
  return body;
}

Json render_homology(const std::vector<std::uint8_t>& sealed) {
  const topology::HomologyReport report =
      store::deserialize_homology_report(sealed);
  Json body = Json::object();
  body.set("nonempty", Json::boolean(report.nonempty));
  Json betti = Json::array();
  for (const long long rank : report.reduced_betti) {
    betti.push(Json::integer(rank));
  }
  body.set("reduced_betti", std::move(betti));
  body.set("exact", Json::boolean(report.exact));
  if (report.exact) {
    Json torsion = Json::array();
    for (const std::vector<std::string>& dim : report.torsion) {
      Json coefficients = Json::array();
      for (const std::string& coefficient : dim) {
        coefficients.push(Json::string(coefficient));
      }
      torsion.push(std::move(coefficients));
    }
    body.set("torsion", std::move(torsion));
  }
  return body;
}

Json render_complex_stats(const std::vector<std::uint8_t>& sealed) {
  const std::vector<std::uint8_t> payload =
      store::unseal(sealed, store::PayloadKind::kRawBytes);
  store::ByteReader in(payload);
  Json body = Json::object();
  body.set("facets", Json::integer(static_cast<std::int64_t>(in.u64())));
  body.set("vertices", Json::integer(static_cast<std::int64_t>(in.u64())));
  body.set("dimension", Json::integer(in.i32()));
  body.set("euler", Json::integer(in.i64()));
  Json fvec = Json::array();
  const std::uint32_t dims = in.u32();
  for (std::uint32_t d = 0; d < dims; ++d) {
    fvec.push(Json::integer(static_cast<std::int64_t>(in.u64())));
  }
  body.set("f_vector", std::move(fvec));
  if (!in.done()) {
    // Orbit-mode payloads carry the quotient's shape after the shared
    // fields; full-mode payloads end here.
    Json orbit = Json::object();
    orbit.set("group_order", Json::integer(static_cast<std::int64_t>(in.u64())));
    orbit.set("orbit_reps", Json::integer(static_cast<std::int64_t>(in.u64())));
    orbit.set("reduced_facets",
              Json::integer(static_cast<std::int64_t>(in.u64())));
    body.set("orbit", std::move(orbit));
  }
  in.expect_done("complex_stats payload");
  return body;
}

Json render_decide(const std::vector<std::uint8_t>& sealed) {
  const store::DecisionRecord record = store::deserialize_decision(sealed);
  Json body = Json::object();
  body.set("impossible", Json::boolean(record.exhausted && !record.solvable));
  body.set("possible", Json::boolean(record.solvable));
  body.set("search_exhausted", Json::boolean(record.exhausted));
  // No node counts here: the record holds only deterministic fields, so a
  // cache hit and a fresh portfolio run render byte-identically.
  body.set("protocol_facets",
           Json::integer(static_cast<std::int64_t>(record.protocol_facets)));
  body.set("protocol_vertices",
           Json::integer(static_cast<std::int64_t>(record.protocol_vertices)));
  body.set("witness_vertices",
           Json::integer(static_cast<std::int64_t>(record.witness.size())));
  body.set("engine_version",
           Json::integer(static_cast<std::int64_t>(record.engine_version)));
  return body;
}

}  // namespace

std::vector<std::uint8_t> compute_sealed(const Query& q,
                                         store::ResultStore* store) {
  switch (q.kind) {
    case QueryKind::kConnectivity: return compute_connectivity(q);
    case QueryKind::kHomology: return compute_homology(q);
    case QueryKind::kComplexStats: return compute_complex_stats(q);
    case QueryKind::kDecide: return compute_decide(q, store);
  }
  throw std::logic_error("compute_sealed: bad kind");
}

Json render_result(const Query& q, const std::vector<std::uint8_t>& sealed) {
  switch (q.kind) {
    case QueryKind::kConnectivity: return render_connectivity(sealed);
    case QueryKind::kHomology: return render_homology(sealed);
    case QueryKind::kComplexStats: return render_complex_stats(sealed);
    case QueryKind::kDecide: return render_decide(sealed);
  }
  throw std::logic_error("render_result: bad kind");
}

QueryResult execute_query(const Query& q, store::ResultStore* store) {
  const store::CacheKeyBuilder key = cache_key(q);
  QueryResult out;
  if (store != nullptr) {
    try {
      if (auto cached = store->load(key)) {
        out.sealed = std::move(*cached);
        out.cache_hit = true;
      }
    } catch (const util::DeadlineExceeded&) {
      throw;
    } catch (const std::exception&) {
      // An injected (or real) I/O fault during lookup is just a miss.
    }
  }
  if (!out.cache_hit) {
    out.sealed = compute_sealed(q, store);
    if (store != nullptr) {
      try {
        store->save(key, out.sealed);
      } catch (const util::DeadlineExceeded&) {
        throw;
      } catch (const std::exception&) {
        // A failed publish degrades to "computed but not cached".
      }
    }
  }
  out.body = render_result(q, out.sealed);
  return out;
}

}  // namespace psph::serve
