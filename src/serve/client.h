#pragma once

// Blocking client for psph_serve. One connection, synchronous call() for
// simple users, and split send()/recv() for pipelined windows (the load
// generator keeps several requests in flight and matches responses by id).

#include <cstdint>
#include <string>

#include "serve/json.h"

namespace psph::serve {

class Client {
 public:
  /// Connects to the daemon's AF_UNIX socket; throws WireError on failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Fire-and-forget one request frame.
  void send(const Json& request);
  /// Blocks for the next response frame. Throws WireError if the server
  /// closed the connection, JsonError on an unparseable response.
  Json recv();
  /// send() + recv(): correct only when no other request is in flight on
  /// this connection.
  Json call(const Json& request);

  /// Convenience builder: {"id": id, "kind": kind}.
  static Json request(std::int64_t id, const std::string& kind);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace psph::serve
