#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace psph::serve {

namespace {

[[noreturn]] void fail(const std::string& message) { throw JsonError(message); }

const char* type_name(Json::Type type) {
  switch (type) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kInt: return "int";
    case Json::Type::kDouble: return "double";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void fail_type(const char* wanted, Json::Type got) {
  fail(std::string("json: expected ") + wanted + ", got " + type_name(got));
}

void append_escaped(const std::string& text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Recursive-descent parser over a byte range. Strict: one document, no
// extensions, bounded depth.
class Parser {
 public:
  Parser(const char* data, std::size_t size)
      : cursor_(data), end_(data + size) {}

  Json run() {
    Json value = parse_value(0);
    skip_whitespace();
    if (cursor_ != end_) fail("json: trailing bytes after document");
    return value;
  }

 private:
  void skip_whitespace() {
    while (cursor_ != end_ &&
           (*cursor_ == ' ' || *cursor_ == '\t' || *cursor_ == '\n' ||
            *cursor_ == '\r')) {
      ++cursor_;
    }
  }

  char peek() {
    if (cursor_ == end_) fail("json: unexpected end of input");
    return *cursor_;
  }

  char take() {
    const char c = peek();
    ++cursor_;
    return c;
  }

  void expect_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (cursor_ == end_ || *cursor_ != *p) {
        fail(std::string("json: bad literal (wanted '") + literal + "')");
      }
      ++cursor_;
    }
  }

  Json parse_value(std::size_t depth) {
    if (depth > Json::kMaxDepth) fail("json: nesting too deep");
    skip_whitespace();
    switch (peek()) {
      case 'n': expect_literal("null"); return Json();
      case 't': expect_literal("true"); return Json::boolean(true);
      case 'f': expect_literal("false"); return Json::boolean(false);
      case '"': return Json::string(parse_string());
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  Json parse_array(std::size_t depth) {
    take();  // '['
    Json out = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      take();
      return out;
    }
    while (true) {
      out.push(parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == ']') return out;
      if (c != ',') fail("json: expected ',' or ']' in array");
    }
  }

  Json parse_object(std::size_t depth) {
    take();  // '{'
    Json out = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      take();
      return out;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("json: object key must be a string");
      std::string key = parse_string();
      skip_whitespace();
      if (take() != ':') fail("json: expected ':' after object key");
      out.set(key, parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == '}') return out;
      if (c != ',') fail("json: expected ',' or '}' in object");
    }
  }

  std::string parse_string() {
    take();  // opening quote
    std::string out;
    while (true) {
      if (cursor_ == end_) fail("json: unterminated string");
      const char c = *cursor_++;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("json: raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = cursor_ == end_ ? '\0' : *cursor_++;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(&out); break;
        default: fail("json: bad escape in string");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (cursor_ == end_) fail("json: truncated \\u escape");
      const char c = *cursor_++;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("json: bad hex digit in \\u escape");
    }
    return value;
  }

  void append_unicode_escape(std::string* out) {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: require the paired low surrogate.
      if (end_ - cursor_ < 2 || cursor_[0] != '\\' || cursor_[1] != 'u') {
        fail("json: lone high surrogate");
      }
      cursor_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("json: bad surrogate pair");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("json: lone low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_number() {
    const char* start = cursor_;
    bool is_double = false;
    if (cursor_ != end_ && *cursor_ == '-') ++cursor_;
    if (cursor_ == end_ || *cursor_ < '0' || *cursor_ > '9') {
      fail("json: bad number");
    }
    if (*cursor_ == '0' && cursor_ + 1 != end_ && cursor_[1] >= '0' &&
        cursor_[1] <= '9') {
      fail("json: leading zero in number");
    }
    while (cursor_ != end_ && *cursor_ >= '0' && *cursor_ <= '9') ++cursor_;
    if (cursor_ != end_ && *cursor_ == '.') {
      is_double = true;
      ++cursor_;
      if (cursor_ == end_ || *cursor_ < '0' || *cursor_ > '9') {
        fail("json: bad fraction");
      }
      while (cursor_ != end_ && *cursor_ >= '0' && *cursor_ <= '9') ++cursor_;
    }
    if (cursor_ != end_ && (*cursor_ == 'e' || *cursor_ == 'E')) {
      is_double = true;
      ++cursor_;
      if (cursor_ != end_ && (*cursor_ == '+' || *cursor_ == '-')) ++cursor_;
      if (cursor_ == end_ || *cursor_ < '0' || *cursor_ > '9') {
        fail("json: bad exponent");
      }
      while (cursor_ != end_ && *cursor_ >= '0' && *cursor_ <= '9') ++cursor_;
    }
    const std::string text(start, cursor_);
    if (!is_double) {
      errno = 0;
      char* parse_end = nullptr;
      const long long value = std::strtoll(text.c_str(), &parse_end, 10);
      if (errno == 0 && parse_end == text.c_str() + text.size()) {
        return Json::integer(static_cast<std::int64_t>(value));
      }
      // Integer literal out of int64 range: fall through to double.
    }
    char* parse_end = nullptr;
    const double value = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size() || !std::isfinite(value)) {
      fail("json: unrepresentable number");
    }
    return Json::number(value);
  }

  const char* cursor_;
  const char* end_;
};

}  // namespace

Json Json::number(double v) {
  if (!std::isfinite(v)) fail("json: NaN/Infinity not representable");
  return Json(Value(v));
}

bool Json::as_bool() const {
  if (const bool* v = std::get_if<bool>(&value_)) return *v;
  fail_type("bool", type());
}

std::int64_t Json::as_int() const {
  if (const std::int64_t* v = std::get_if<std::int64_t>(&value_)) return *v;
  fail_type("int", type());
}

double Json::as_double() const {
  if (const std::int64_t* v = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*v);
  }
  if (const double* v = std::get_if<double>(&value_)) return *v;
  fail_type("number", type());
}

const std::string& Json::as_string() const {
  if (const std::string* v = std::get_if<std::string>(&value_)) return *v;
  fail_type("string", type());
}

const Json::Array& Json::items() const {
  if (const Array* v = std::get_if<Array>(&value_)) return *v;
  fail_type("array", type());
}

Json::Array& Json::items() {
  if (Array* v = std::get_if<Array>(&value_)) return *v;
  fail_type("array", type());
}

const Json::Object& Json::entries() const {
  if (const Object* v = std::get_if<Object>(&value_)) return *v;
  fail_type("object", type());
}

Json& Json::set(const std::string& key, Json value) {
  Object* object = std::get_if<Object>(&value_);
  if (object == nullptr) fail_type("object", type());
  for (auto& entry : *object) {
    if (entry.first == key) {
      entry.second = std::move(value);
      return *this;
    }
  }
  object->emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::get(const std::string& key) const {
  const Object* object = std::get_if<Object>(&value_);
  if (object == nullptr) fail_type("object", type());
  for (const auto& entry : *object) {
    if (entry.first == key) return &entry.second;
  }
  return nullptr;
}

Json& Json::push(Json value) {
  Array* array = std::get_if<Array>(&value_);
  if (array == nullptr) fail_type("array", type());
  array->push_back(std::move(value));
  return *this;
}

void Json::dump_to(std::string* out) const {
  switch (type()) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += std::get<bool>(value_) ? "true" : "false";
      return;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(std::get<std::int64_t>(value_)));
      *out += buf;
      return;
    }
    case Type::kDouble: {
      // %.17g round-trips IEEE doubles exactly; the ".0" suffix keeps the
      // value a double through a parse round-trip.
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", std::get<double>(value_));
      *out += buf;
      if (std::strpbrk(buf, ".eE") == nullptr) *out += ".0";
      return;
    }
    case Type::kString:
      append_escaped(std::get<std::string>(value_), out);
      return;
    case Type::kArray: {
      out->push_back('[');
      const Array& array = std::get<Array>(value_);
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i != 0) out->push_back(',');
        array[i].dump_to(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      const Object& object = std::get<Object>(value_);
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i != 0) out->push_back(',');
        append_escaped(object[i].first, out);
        out->push_back(':');
        object[i].second.dump_to(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(&out);
  return out;
}

Json Json::parse(const char* data, std::size_t size) {
  return Parser(data, size).run();
}

Json Json::parse(const std::string& text) {
  return parse(text.data(), text.size());
}

}  // namespace psph::serve
